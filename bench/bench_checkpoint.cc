// Durable checkpoint subsystem costs (src/checkpoint/).
//
// Three questions an operator sizes the knobs with:
//   1. What does write-ahead journaling cost per published event
//      (append throughput, with and without fsync)?
//   2. What does one snapshot cost, as a function of the in-flight window
//      it has to serialize (the WITHIN spans of registered queries)?
//   3. How fast does recovery replay a journal suffix (bounds worst-case
//      restart time for a given checkpoint_journal_bytes)?
//
// Baseline numbers for this repository's CI container are recorded in
// BENCH_checkpoint.json.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench_util.h"
#include "checkpoint/journal.h"
#include "system/sase_system.h"

namespace sase {
namespace bench {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/sase_bench_checkpoint_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

const std::vector<EventPtr>& Stream(int64_t count) {
  SyntheticConfig config;
  config.seed = 53;
  config.event_count = count;
  config.tag_count = 100;
  return CachedStream(config, "checkpoint_" + std::to_string(count));
}

/// Raw journal append throughput. Arg 0: 0 = FsyncPolicy::kNever (write(2)
/// per record), 1 = kAlways (fsync per record). Arg 1: group-commit
/// interval under kAlways — records per fsync (1 = the legacy
/// fsync-every-record behavior). The /1/128 point is the WAL group-commit
/// payoff: one fsync amortized over 128 records, with every group closed
/// by an explicit Sync() before the iteration ends so the durability
/// frontier covers the whole stream.
void BM_JournalAppend(benchmark::State& state) {
  const auto& stream = Stream(10000);
  auto fsync = state.range(0) == 0 ? checkpoint::FsyncPolicy::kNever
                                   : checkpoint::FsyncPolicy::kAlways;
  const uint64_t group = static_cast<uint64_t>(state.range(1));
  std::string dir = FreshDir("append");
  uint64_t bytes = 0, commits = 0;
  for (auto _ : state) {
    auto journal = checkpoint::EventJournal::Open(dir, 1, 0, 64ull << 20, fsync);
    if (!journal.ok()) {
      state.SkipWithError(journal.status().ToString().c_str());
      return;
    }
    journal.value()->set_group_commit(group, /*max_delay_us=*/0);
    for (const auto& event : stream) {
      Status appended = journal.value()->AppendEvent("", *event);
      if (!appended.ok()) {
        state.SkipWithError(appended.ToString().c_str());
        return;
      }
    }
    Status synced = journal.value()->Sync();
    if (!synced.ok()) {
      state.SkipWithError(synced.ToString().c_str());
      return;
    }
    bytes = journal.value()->bytes_written();
    commits = journal.value()->group_commits();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
  state.counters["group_commits"] = static_cast<double>(commits);
  std::filesystem::remove_all(dir);
}

/// Consumer-ack durability cost under the strictest fsync policy. Arg =
/// ack_commit_interval: 1 journals (and fsyncs) every AckOutput, 64 group-
/// commits a coalesced cursor record once per 64 acks. The gap between the
/// two is what the batching knob buys an exactly-once consumer: the
/// cursor is cumulative, so one coalesced record carries the same
/// durability as the 64 records it replaces.
void BM_AckCursorCommit(benchmark::State& state) {
  const uint64_t interval = static_cast<uint64_t>(state.range(0));
  std::string dir = FreshDir("ack_commit_" + std::to_string(interval));
  constexpr uint64_t kAcksPerIteration = 512;
  uint64_t position = 0;
  for (auto _ : state) {
    auto journal = checkpoint::EventJournal::Open(
        dir, 1, 0, 64ull << 20, checkpoint::FsyncPolicy::kAlways);
    if (!journal.ok()) {
      state.SkipWithError(journal.status().ToString().c_str());
      return;
    }
    journal.value()->set_ack_commit_interval(interval);
    for (uint64_t i = 0; i < kAcksPerIteration; ++i) {
      ++position;  // one statement per ack: the old single-expression form
                   // left the two argument reads indeterminately sequenced
      Status acked = journal.value()->AppendAckCursor(position, position);
      if (!acked.ok()) {
        state.SkipWithError(acked.ToString().c_str());
        return;
      }
    }
    Status committed = journal.value()->CommitAcks();
    if (!committed.ok()) {
      state.SkipWithError(committed.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kAcksPerIteration));
  std::filesystem::remove_all(dir);
}

/// One snapshot at a quiesce point, with the in-flight window scaled by the
/// registered query's WITHIN span (arg = window ticks). Larger windows
/// retain more events, so the WINDOW section dominates snapshot cost.
void BM_SnapshotCost(benchmark::State& state) {
  const auto& stream = Stream(20000);
  std::string dir = FreshDir("snapshot_" + std::to_string(state.range(0)));
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = 2;
  config.checkpoint.dir = dir;
  SaseSystem system(StoreLayout::RetailDemo(), config);
  auto id = system.RegisterMonitoringQuery(
      "pattern",
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN " +
          std::to_string(state.range(0)));
  if (!id.ok()) {
    state.SkipWithError(id.status().ToString().c_str());
    return;
  }
  for (const auto& event : stream) system.event_bus().OnEvent(event);
  size_t window = 0;
  for (auto _ : state) {
    Status taken = system.Checkpoint();
    if (!taken.ok()) {
      state.SkipWithError(taken.ToString().c_str());
      return;
    }
    window = system.runtime()->replay_buffer_len();
  }
  state.counters["window_events"] =
      benchmark::Counter(static_cast<double>(window));
  std::filesystem::remove_all(dir);
}

/// Recovery wall time as a function of journal length: checkpoint at event
/// 0 (empty snapshot), journal `arg` events, recover. Dominated by the
/// journal-suffix replay, which runs at engine speed.
void BM_RecoveryTime(benchmark::State& state) {
  const auto& stream = Stream(20000);
  int64_t journal_events = state.range(0);
  std::string dir = FreshDir("recovery_" + std::to_string(journal_events));
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = 2;
  config.checkpoint.dir = dir;
  {
    SaseSystem system(StoreLayout::RetailDemo(), config);
    auto id = system.RegisterMonitoringQuery(
        "pattern",
        "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
        "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 200");
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    Status taken = system.Checkpoint();
    if (!taken.ok()) {
      state.SkipWithError(taken.ToString().c_str());
      return;
    }
    for (int64_t i = 0; i < journal_events; ++i) {
      system.event_bus().OnEvent(stream[static_cast<size_t>(i)]);
    }
    // Falls out of scope un-flushed: the crash.
  }
  uint64_t replayed = 0;
  for (auto _ : state) {
    auto recovered =
        SaseSystem::Recover(dir, StoreLayout::RetailDemo(), config);
    if (!recovered.ok()) {
      state.SkipWithError(recovered.status().ToString().c_str());
      return;
    }
    replayed = recovered.value()->recovered_journal_records();
    // Each recovery resumes journaling in the same epoch at the next
    // segment; the journal contents replayed stay identical across
    // iterations because no new events are published.
  }
  state.SetItemsProcessed(state.iterations() * journal_events);
  state.counters["journal_records"] =
      benchmark::Counter(static_cast<double>(replayed));
  std::filesystem::remove_all(dir);
}

BENCHMARK(BM_JournalAppend)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({1, 128})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AckCursorCommit)->Arg(1)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotCost)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RecoveryTime)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
