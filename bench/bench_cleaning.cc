// Experiment E6 (DESIGN.md): cleaning-layer throughput.
//
// §1 requires that "filtering, pattern matching, and aggregation must all
// be performed with low latency" despite noisy readers. This bench pushes
// pre-generated raw readings through the Cleaning and Association pipeline
// (all five sub-layers) and through each error-handling layer in isolation,
// sweeping the noise rate. Expected shape: per-reading cost is flat in the
// noise rate (each layer is O(1) per reading) and far above the demo's
// reader rates.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cleaning/pipeline.h"
#include "rfid/simulator.h"

namespace sase {
namespace bench {
namespace {

/// Pre-generates raw readings by running the simulator with `noise_pct`
/// percent miss/duplicate/anomaly rates.
const std::vector<RawReading>& Readings(int64_t noise_pct) {
  static std::map<int64_t, std::vector<RawReading>>* cache =
      new std::map<int64_t, std::vector<RawReading>>();
  auto it = cache->find(noise_pct);
  if (it == cache->end()) {
    double rate = static_cast<double>(noise_pct) / 100.0;
    NoiseModel noise{.miss_rate = rate / 2,
                     .truncation_rate = rate / 4,
                     .spurious_rate = rate / 4,
                     .duplicate_rate = rate};
    StoreLayout layout = StoreLayout::RetailDemo();
    RetailSimulator sim(layout, noise, /*seed=*/noise_pct + 1, 1000);

    class Collector : public ReadingSink {
     public:
      void OnReading(const RawReading& reading) override {
        readings.push_back(reading);
      }
      std::vector<RawReading> readings;
    } collector;
    sim.set_sink(&collector);
    for (int i = 0; i < 200; ++i) {
      sim.AddItem(TagInfo{MakeEpc(i), "P" + std::to_string(i % 10), "", true});
      sim.Place(MakeEpc(i), i % 4);
    }
    sim.RunUntil(300);
    it = cache->emplace(noise_pct, std::move(collector.readings)).first;
  }
  return it->second;
}

CleaningPipeline::Config PipelineConfig() {
  StoreLayout layout = StoreLayout::RetailDemo();
  CleaningPipeline::Config config;
  for (const auto& reader : layout.readers()) {
    config.anomaly.valid_readers.insert(reader.id);
  }
  config.smoothing.window = 3000;
  config.smoothing.sampling_interval = 1000;
  config.time.raw_units_per_tick = 1000;
  config.dedup.reader_to_area = layout.ReaderToArea();
  config.generation.area_to_event_type = layout.AreaToEventType();
  return config;
}

class NullEventSink : public EventSink {
 public:
  void OnEvent(const EventPtr&) override { ++count; }
  uint64_t count = 0;
};

class NullReadingSink : public ReadingSink {
 public:
  void OnReading(const RawReading&) override { ++count; }
  uint64_t count = 0;
};

void BM_Cleaning_FullPipeline(benchmark::State& state) {
  const auto& readings = Readings(state.range(0));
  uint64_t events = 0;
  for (auto _ : state) {
    NullEventSink sink;
    CleaningPipeline pipeline(PipelineConfig(), &BenchCatalog(), nullptr, &sink);
    for (const auto& reading : readings) pipeline.OnReading(reading);
    pipeline.OnFlush();
    events = sink.count;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(readings.size()));
  state.counters["readings"] = static_cast<double>(readings.size());
  state.counters["events_out"] = static_cast<double>(events);
}

void BM_Cleaning_AnomalyFilterOnly(benchmark::State& state) {
  const auto& readings = Readings(state.range(0));
  AnomalyFilter::Config config;
  config.valid_readers = {0, 1, 2, 3};
  for (auto _ : state) {
    NullReadingSink sink;
    AnomalyFilter filter(config, &sink);
    for (const auto& reading : readings) filter.OnReading(reading);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(readings.size()));
}

void BM_Cleaning_SmoothingOnly(benchmark::State& state) {
  const auto& readings = Readings(state.range(0));
  for (auto _ : state) {
    NullReadingSink sink;
    TemporalSmoothing smoothing({.window = 3000, .sampling_interval = 1000},
                                &sink);
    for (const auto& reading : readings) smoothing.OnReading(reading);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(readings.size()));
}

void BM_Cleaning_DeduplicationOnly(benchmark::State& state) {
  const auto& readings = Readings(state.range(0));
  StoreLayout layout = StoreLayout::RetailDemo();
  for (auto _ : state) {
    NullReadingSink sink;
    Deduplication dedup({.reader_to_area = layout.ReaderToArea(), .horizon = 0},
                        &sink);
    for (const auto& reading : readings) dedup.OnReading(reading);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(readings.size()));
}

// Noise sweep: clean, realistic, harsh.
BENCHMARK(BM_Cleaning_FullPipeline)->Arg(0)->Arg(10)->Arg(40)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cleaning_AnomalyFilterOnly)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cleaning_SmoothingOnly)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cleaning_DeduplicationOnly)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
