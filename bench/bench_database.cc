// Experiment E8 (DESIGN.md): event database and track-and-trace.
//
// §4 runs "track-and-trace queries over an event database populated with
// data collected in advance". This bench populates location/containment
// history from the warehouse workload generator and measures:
//   - archival ingest rate (UpdateLocation/UpdateContainment),
//   - current-location / movement-history point queries (indexed),
//   - the same access path via the SQL layer, with and without an index.
// Expected shape: indexed lookups stay flat as history grows; unindexed
// SQL scans grow linearly.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "db/archiver.h"
#include "db/sql_executor.h"
#include "db/track_trace.h"

namespace sase {
namespace bench {
namespace {

using db::Archiver;
using db::Database;
using db::SqlExecutor;
using db::TrackTrace;

/// Populates an archive database with `items` item histories.
std::unique_ptr<Database> Populate(int64_t items) {
  auto database = std::make_unique<Database>();
  Archiver archiver(database.get());
  WarehouseConfig config;
  config.item_count = items;
  config.container_count = std::max<int64_t>(1, items / 10);
  WarehouseHistoryGenerator generator(&BenchCatalog(), config);
  for (const auto& event : generator.Generate()) {
    const EventSchema& schema = BenchCatalog().schema(event->type());
    std::string tag = event->attribute(schema.FindAttribute("TagId")).AsString();
    int64_t area = event->attribute(schema.FindAttribute("AreaId")).AsInt();
    (void)archiver.UpdateLocation(tag, area, event->timestamp());
    AttrIndex cont = schema.FindAttribute("ContainerId");
    if (cont != kInvalidAttr && !event->attribute(cont).is_null()) {
      (void)archiver.UpdateContainment(tag, event->attribute(cont).AsString(),
                                       event->timestamp());
    }
  }
  return database;
}

void BM_Database_ArchivalIngest(benchmark::State& state) {
  int64_t items = state.range(0);
  WarehouseConfig config;
  config.item_count = items;
  WarehouseHistoryGenerator generator(&BenchCatalog(), config);
  auto events = generator.Generate();
  uint64_t rows = 0;
  for (auto _ : state) {
    Database database;
    Archiver archiver(&database);
    for (const auto& event : events) {
      const EventSchema& schema = BenchCatalog().schema(event->type());
      std::string tag =
          event->attribute(schema.FindAttribute("TagId")).AsString();
      int64_t area = event->attribute(schema.FindAttribute("AreaId")).AsInt();
      (void)archiver.UpdateLocation(tag, area, event->timestamp());
    }
    rows = database.GetTable("location_history")->row_count();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["history_rows"] = static_cast<double>(rows);
}

void BM_Database_CurrentLocation(benchmark::State& state) {
  int64_t items = state.range(0);
  auto database = Populate(items);
  TrackTrace trace(database.get());
  int64_t i = 0;
  for (auto _ : state) {
    auto stay = trace.CurrentLocation(MakeEpc(i++ % items));
    benchmark::DoNotOptimize(stay);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["history_rows"] = static_cast<double>(
      database->GetTable("location_history")->row_count());
}

void BM_Database_MovementHistory(benchmark::State& state) {
  int64_t items = state.range(0);
  auto database = Populate(items);
  TrackTrace trace(database.get());
  int64_t i = 0;
  for (auto _ : state) {
    auto movement = trace.MovementHistory(MakeEpc(i++ % items));
    benchmark::DoNotOptimize(movement);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Database_SqlIndexedPoint(benchmark::State& state) {
  int64_t items = state.range(0);
  auto database = Populate(items);  // TagId index exists
  SqlExecutor executor(database.get());
  int64_t i = 0;
  for (auto _ : state) {
    auto result = executor.Execute(
        "SELECT AreaId FROM location_history WHERE TagId = '" +
        MakeEpc(i++ % items) + "' AND TimeOut IS NULL");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rows_examined"] = static_cast<double>(executor.rows_examined());
}

void BM_Database_SqlScanPoint(benchmark::State& state) {
  int64_t items = state.range(0);
  auto database = Populate(items);
  SqlExecutor executor(database.get());
  int64_t i = 0;
  for (auto _ : state) {
    // AreaId has no index: forces a full scan with the same result shape.
    auto result = executor.Execute(
        "SELECT TagId FROM location_history WHERE TimeIn >= 0 AND TimeOut IS "
        "NULL AND AreaId = " + std::to_string(i++ % 4));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rows_examined"] = static_cast<double>(executor.rows_examined());
}

BENCHMARK(BM_Database_ArchivalIngest)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Database_CurrentLocation)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Database_MovementHistory)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Database_SqlIndexedPoint)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Database_SqlScanPoint)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
