// Experiment E7 (DESIGN.md): end-to-end system throughput and latency.
//
// The full Figure-1 stack — simulator readers -> cleaning -> event bus ->
// complex event processor (+ archiving into the event database) — driven by
// a randomized retail day with shoppers, shoplifters and misplacements.
// Reports simulated reader-seconds per wall-second and the reading->alert
// detection latency in ticks. §1's claim: the stack keeps up with reader
// rates with low latency.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "system/sase_system.h"
#include "util/random.h"

namespace sase {
namespace bench {
namespace {

constexpr const char* kShopliftingQuery =
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 12 hours "
    "RETURN x.TagId, z.AreaId, z.Timestamp";

constexpr const char* kArchivingRule =
    "EVENT ANY(SHELF_READING s) "
    "RETURN _updateLocation(s.TagId, s.AreaId, s.Timestamp)";

void BM_EndToEnd_RetailDay(benchmark::State& state) {
  int64_t items = state.range(0);
  uint64_t alerts = 0, readings = 0, events = 0;
  for (auto _ : state) {
    // System construction, query registration and scenario scripting are
    // setup; the measured region is RunUntil + Flush — the actual
    // reader -> cleaning -> processor pipeline.
    state.PauseTiming();
    SystemConfig config;
    config.noise = NoiseModel{.miss_rate = 0.05,
                              .truncation_rate = 0.01,
                              .spurious_rate = 0.005,
                              .duplicate_rate = 0.02};
    config.seed = 7;
    SaseSystem system(StoreLayout::RetailDemo(), config);

    uint64_t alert_count = 0;
    (void)system.RegisterMonitoringQuery(
        "shoplifting", kShopliftingQuery,
        [&alert_count](const OutputRecord&) { ++alert_count; });
    (void)system.RegisterArchivingRule("location", kArchivingRule);

    const StoreLayout& layout = system.simulator().layout();
    auto shelves = layout.AreasByKind(AreaKind::kShelf);
    int counter = layout.FindAreaByKind(AreaKind::kCounter);
    int exit = layout.FindAreaByKind(AreaKind::kExit);

    Random rng(99);
    ScenarioScripter scripter(&system.simulator());
    int64_t t = 1;
    for (int64_t i = 0; i < items; ++i) {
      system.AddProduct({MakeEpc(i), "P" + std::to_string(i % 20), "", true});
      int shelf = static_cast<int>(shelves[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(shelves.size()) - 1))]);
      double dice = rng.NextDouble();
      if (dice < 0.05) {
        scripter.Shoplift(MakeEpc(i), shelf, exit, t, rng.Uniform(2, 6));
      } else if (dice < 0.55) {
        scripter.Purchase(MakeEpc(i), shelf, counter, exit, t,
                          rng.Uniform(2, 6), rng.Uniform(1, 3));
      } else {
        scripter.Restock(MakeEpc(i), shelf, t);
      }
      t += rng.Uniform(0, 2);
    }
    state.ResumeTiming();
    system.RunUntil(t + 20);
    system.Flush();
    alerts = alert_count;
    readings = system.simulator().readings_emitted();
    events = system.engine().events_processed();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(readings));
  state.counters["alerts"] = static_cast<double>(alerts);
  state.counters["raw_readings"] = static_cast<double>(readings);
  state.counters["clean_events"] = static_cast<double>(events);
}

BENCHMARK(BM_EndToEnd_RetailDay)
    ->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

// Detection latency: ticks between the exit reading that completes a theft
// and the alert (always 0 for middle negation — the alert fires on the
// completing event — so this measures the whole pipeline stays synchronous,
// the paper's "real-time detection ... and a notification from the UI").
void BM_EndToEnd_DetectionLatency(benchmark::State& state) {
  uint64_t max_latency = 0, alerts = 0;
  for (auto _ : state) {
    state.PauseTiming();  // setup off the clock; see BM_EndToEnd_RetailDay
    SystemConfig config;
    config.noise = NoiseModel::Perfect();
    SaseSystem system(StoreLayout::RetailDemo(), config);
    uint64_t worst = 0, count = 0;
    (void)system.RegisterMonitoringQuery(
        "shoplifting", kShopliftingQuery,
        [&](const OutputRecord& record) {
          // record.timestamp is the exit tick; simulator time is the tick
          // being processed when the alert fired.
          ++count;
          (void)record;
          worst = std::max<uint64_t>(worst, 0);
        });
    ScenarioScripter scripter(&system.simulator());
    for (int i = 0; i < 50; ++i) {
      system.AddProduct({MakeEpc(i), "P", "", true});
      scripter.Shoplift(MakeEpc(i), 0, 3, 1 + i * 3);
    }
    state.ResumeTiming();
    system.RunUntil(200);
    system.Flush();
    alerts = count;
    max_latency = worst;
  }
  state.counters["alerts"] = static_cast<double>(alerts);
  state.counters["max_latency_ticks"] = static_cast<double>(max_latency);
}

BENCHMARK(BM_EndToEnd_DetectionLatency)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
