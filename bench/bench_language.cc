// Language front-end throughput: parse + analyze + plan-build cost for
// queries of growing complexity. Registration is off the per-event hot
// path, but monitoring deployments register/delete queries continuously
// ("processing continues until the query is deleted by the user", §3), so
// compilation must stay in the microsecond range.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace sase {
namespace bench {
namespace {

const char* kQueries[] = {
    // 0: trivial single-event filter
    "EVENT SHELF_READING s WHERE s.AreaId = 1 RETURN s.TagId",
    // 1: the paper's Q1
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 12 hours "
    "RETURN x.TagId, x.ProductName, z.AreaId, _retrieveLocation(z.AreaId)",
    // 2: wide pattern with many predicates and aggregates
    "FROM retail EVENT SEQ(SHELF_READING a, COUNTER_READING b, "
    "EXIT_READING c, !(BACKROOM_READING d), LOAD_READING e) "
    "WHERE a.TagId = b.TagId AND a.TagId = c.TagId AND a.TagId = d.TagId "
    "AND a.TagId = e.TagId AND a.AreaId < 3 AND b.AreaId >= 1 AND "
    "c.ProductName != 'x' AND a.Timestamp < c.Timestamp WITHIN 2 hours "
    "RETURN a.TagId, COUNT(*) AS N, AVG(c.Timestamp - a.Timestamp) AS Span, "
    "MIN(a.AreaId), MAX(c.AreaId) INTO wide_feed",
};

void BM_Language_Parse(benchmark::State& state) {
  const char* text = kQueries[state.range(0)];
  for (auto _ : state) {
    auto parsed = Parser::Parse(text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Language_ParseAnalyze(benchmark::State& state) {
  const char* text = kQueries[state.range(0)];
  Analyzer analyzer(&BenchCatalog(), TimeConfig{});
  for (auto _ : state) {
    auto analyzed = analyzer.Analyze(Parser::Parse(text).value());
    benchmark::DoNotOptimize(analyzed);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Language_FullRegistration(benchmark::State& state) {
  const char* text = kQueries[state.range(0)];
  Analyzer analyzer(&BenchCatalog(), TimeConfig{});
  FunctionRegistry functions;
  functions.RegisterCommon();
  for (auto _ : state) {
    auto plan = Planner::Build(analyzer.Analyze(Parser::Parse(text).value()).value(),
                               PlanOptions{}, &BenchCatalog(), &functions, nullptr);
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_Language_Parse)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Language_ParseAnalyze)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Language_FullRegistration)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
