// Experiment E9 (DESIGN.md): multi-query engine scaling.
//
// §3: the complex event processor hosts many continuous queries at once
// (monitoring queries + archiving rules), each receiving every event.
// Sweep the number of registered queries 1..64 over one stream. Expected
// shape: throughput scales ~1/Q (each event visits every plan), with a
// small constant because non-matching types exit the scan immediately.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace sase {
namespace bench {
namespace {

/// A family of shoplifting-style queries with slightly different windows
/// and area filters so plans are not identical.
std::string QueryVariant(int64_t i) {
  return "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
         "WHERE x.TagId = y.TagId AND x.TagId = z.TagId AND z.AreaId >= " +
         std::to_string(i % 4) + " WITHIN " + std::to_string(200 + 10 * i);
}

void BM_MultiQuery(benchmark::State& state) {
  int64_t queries = state.range(0);
  SyntheticConfig config;
  config.seed = 53;
  config.event_count = 10000;
  config.tag_count = 100;
  const auto& stream = CachedStream(config, "mq");

  uint64_t outputs = 0;
  for (auto _ : state) {
    // Engine construction and query compilation are setup, not the measured
    // event path — keep them off the clock so items/s reports stream
    // throughput alone.
    state.PauseTiming();
    QueryEngine engine(&BenchCatalog());
    uint64_t count = 0;
    for (int64_t i = 0; i < queries; ++i) {
      auto id = engine.Register(QueryVariant(i),
                                [&count](const OutputRecord&) { ++count; });
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
    }
    state.ResumeTiming();
    for (const auto& event : stream) engine.OnEvent(event);
    engine.OnFlush();
    outputs = count;
  }
  state.SetItemsProcessed(state.iterations() * config.event_count);
  state.counters["queries"] = static_cast<double>(queries);
  state.counters["total_alerts"] = static_cast<double>(outputs);
}

BENCHMARK(BM_MultiQuery)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Mixed workload: half pattern queries, half single-event projections with
// aggregates — the demo's monitoring + archiving mixture.
void BM_MultiQuery_Mixed(benchmark::State& state) {
  int64_t queries = state.range(0);
  SyntheticConfig config;
  config.seed = 59;
  config.event_count = 10000;
  config.tag_count = 100;
  const auto& stream = CachedStream(config, "mqm");
  uint64_t outputs = 0;
  for (auto _ : state) {
    state.PauseTiming();  // compilation is setup; see BM_MultiQuery
    QueryEngine engine(&BenchCatalog());
    uint64_t count = 0;
    for (int64_t i = 0; i < queries; ++i) {
      std::string text =
          (i % 2 == 0)
              ? QueryVariant(i)
              : "EVENT SHELF_READING s WHERE s.AreaId = " +
                    std::to_string(i % 4) + " RETURN s.TagId, COUNT(*)";
      auto id = engine.Register(text, [&count](const OutputRecord&) { ++count; });
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
    }
    state.ResumeTiming();
    for (const auto& event : stream) engine.OnEvent(event);
    engine.OnFlush();
    outputs = count;
  }
  state.SetItemsProcessed(state.iterations() * config.event_count);
  state.counters["total_outputs"] = static_cast<double>(outputs);
}

BENCHMARK(BM_MultiQuery_Mixed)
    ->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
