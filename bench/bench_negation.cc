// Experiment E4 (DESIGN.md): negation cost.
//
// Negation ('!') is one of the language features the demo highlights (Q1's
// shoplifting query). This bench measures its runtime cost: the same
// positive pattern with and without a negated middle component, sweeping
// the rate of negated-type (COUNTER) events in the stream, plus the
// partitioned vs. scan negation-buffer ablation. Expected shape: negation
// adds a modest constant factor; the partitioned buffer keeps the check
// cheap even when counter events are frequent.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace sase {
namespace bench {
namespace {

constexpr const char* kWithNegation =
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 300";

constexpr const char* kWithoutNegation =
    "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
    "WHERE x.TagId = z.TagId WITHIN 300";

/// counter_pct is the percentage of COUNTER_READING events in the mix.
const std::vector<EventPtr>& Stream(int64_t counter_pct) {
  SyntheticConfig config;
  config.seed = 37;
  config.event_count = 20000;
  config.tag_count = 100;
  double counter = static_cast<double>(counter_pct) / 100.0;
  config.type_weights = {
      {"SHELF_READING", (1.0 - counter) / 2},
      {"COUNTER_READING", counter},
      {"EXIT_READING", (1.0 - counter) / 2},
  };
  return CachedStream(config, "neg" + std::to_string(counter_pct));
}

void BM_Negation_Off(benchmark::State& state) {
  const auto& stream = Stream(state.range(0));
  uint64_t outputs = 0;
  for (auto _ : state) {
    BenchPlan plan(kWithoutNegation, PlanOptions{});
    plan.Run(stream);
    outputs = plan.outputs;
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.counters["matches"] = static_cast<double>(outputs);
}

void BM_Negation_On(benchmark::State& state) {
  const auto& stream = Stream(state.range(0));
  uint64_t outputs = 0, rejected = 0, examined = 0;
  for (auto _ : state) {
    BenchPlan plan(kWithNegation, PlanOptions{});
    plan.Run(stream);
    outputs = plan.outputs;
    rejected = plan.plan->negation().stats().matches_rejected;
    examined = plan.plan->negation().stats().candidates_examined;
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.counters["matches"] = static_cast<double>(outputs);
  state.counters["rejected"] = static_cast<double>(rejected);
  state.counters["candidates"] = static_cast<double>(examined);
}

void BM_Negation_On_UnpartitionedBuffer(benchmark::State& state) {
  const auto& stream = Stream(state.range(0));
  PlanOptions options;
  options.use_partitioning = false;
  uint64_t outputs = 0, examined = 0;
  for (auto _ : state) {
    BenchPlan plan(kWithNegation, options);
    plan.Run(stream);
    outputs = plan.outputs;
    examined = plan.plan->negation().stats().candidates_examined;
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.counters["matches"] = static_cast<double>(outputs);
  state.counters["candidates"] = static_cast<double>(examined);
}

// Sweep the share of counter (negated-type) events: 10% .. 60%.
BENCHMARK(BM_Negation_Off)->Arg(10)->Arg(30)->Arg(60)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Negation_On)->Arg(10)->Arg(30)->Arg(60)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Negation_On_UnpartitionedBuffer)
    ->Arg(10)->Arg(30)->Arg(60)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
