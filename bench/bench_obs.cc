// Observability overhead (src/obs/).
//
// The registry's hot paths are wait-free (striped relaxed atomics) and the
// disabled mode is a null-pointer branch, so the claims to verify are:
//
//   control  — no registry, no tracer: the exact pre-instrumentation loops
//   disabled — what SaseSystem wires with obs.metrics_enabled=false: a
//              dormant tracer is attached (so `.trace on` works later),
//              which costs one clock read per batch — near zero
//   enabled  — full metrics: two clock reads + one histogram record per
//              (query, event), ring-wait and dispatch->merge histograms
//   tracing  — metrics + 1-in-64 event-lifecycle sampling on top
//
// Run: ./bench_obs
// CI overhead gate: ./bench_obs --check_overhead
//   paired rounds of control vs disabled, median of the per-round ratios;
//   exits non-zero when the disabled-mode overhead exceeds 3%.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/sharded_runtime.h"

namespace sase {
namespace bench {
namespace {

constexpr int64_t kQueries = 8;
constexpr int64_t kEventCount = 10000;

enum class Mode { kControl, kDisabled, kEnabled, kTracing };

std::string QueryVariant(int64_t i) {
  return "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
         "WHERE x.TagId = y.TagId AND x.TagId = z.TagId AND z.AreaId >= " +
         std::to_string(i % 4) + " WITHIN " + std::to_string(200 + 10 * i);
}

const std::vector<EventPtr>& Stream(int64_t count, const std::string& key) {
  SyntheticConfig config;
  config.seed = 61;
  config.event_count = count;
  config.tag_count = 100;
  return CachedStream(config, key);
}

/// One full workload pass (construct, register, feed, flush) under `mode`;
/// returns the feed+flush wall seconds (construction and registration are
/// excluded so the comparison isolates the per-event paths). When
/// `cpu_seconds` is non-null it receives the process CPU time of the same
/// window (all threads; idle workers sleep, so this tracks actual work).
double RunSeconds(Mode mode, int shards, const std::vector<EventPtr>& stream,
                  obs::MetricsRegistry* registry, obs::TraceCollector* tracer,
                  uint64_t* outputs, double* cpu_seconds = nullptr) {
  RuntimeConfig config;
  config.shard_count = shards;
  if (mode == Mode::kEnabled || mode == Mode::kTracing) {
    config.metrics = registry;
  }
  if (mode != Mode::kControl) {
    // Standalone runtime self-samples at dispatch (no external ingest tap).
    tracer->SetSampling(mode == Mode::kTracing ? 64 : 0);
    config.tracer = tracer;
  }
  ShardedRuntime runtime(&BenchCatalog(), config);
  uint64_t count = 0;
  for (int64_t i = 0; i < kQueries; ++i) {
    auto id = runtime.Register(QueryVariant(i),
                               [&count](const OutputRecord&) { ++count; });
    if (!id.ok()) return -1;
  }
  std::clock_t cpu_start = std::clock();
  uint64_t start = obs::MonotonicNs();
  for (const auto& event : stream) runtime.OnEvent(event);
  runtime.OnFlush();
  uint64_t elapsed = obs::MonotonicNs() - start;
  if (cpu_seconds != nullptr) {
    *cpu_seconds =
        static_cast<double>(std::clock() - cpu_start) / CLOCKS_PER_SEC;
  }
  if (mode != Mode::kControl) tracer->Clear();
  if (outputs != nullptr) *outputs = count;
  return elapsed * 1e-9;
}

void RunBenchmark(benchmark::State& state, Mode mode) {
  obs::MetricsRegistry registry;
  obs::TraceCollector tracer;
  uint64_t outputs = 0;
  const auto& stream = Stream(kEventCount, "obs");
  for (auto _ : state) {
    double seconds = RunSeconds(mode, /*shards=*/2, stream, &registry,
                                &tracer, &outputs);
    if (seconds < 0) {
      state.SkipWithError("query registration failed");
      return;
    }
    state.SetIterationTime(seconds);
  }
  state.SetItemsProcessed(state.iterations() * kEventCount);
  state.counters["total_alerts"] = static_cast<double>(outputs);
}

void BM_ObsControl(benchmark::State& state) {
  RunBenchmark(state, Mode::kControl);
}
void BM_ObsDisabled(benchmark::State& state) {
  RunBenchmark(state, Mode::kDisabled);
}
void BM_ObsEnabled(benchmark::State& state) {
  RunBenchmark(state, Mode::kEnabled);
}
void BM_ObsTracing(benchmark::State& state) {
  RunBenchmark(state, Mode::kTracing);
}

/// Scrape cost with the full per-query surface armed: 8 queries' state
/// gauges (scan stacks/partitions, negation buffers, accumulators), the
/// slow-query ring (threshold 1ns so every event qualifies) and the
/// hot-key mirror. The loop measures ScrapeMetrics + RenderPrometheus —
/// the quiesce/settle/render path both the console `.metrics` command and
/// the HTTP /metrics endpoint take per scrape.
void BM_ObsPerQueryScrape(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::TraceCollector tracer;
  RuntimeConfig config;
  config.shard_count = 2;
  config.metrics = &registry;
  config.tracer = &tracer;
  config.slow_query_threshold_ns = 1;
  ShardedRuntime runtime(&BenchCatalog(), config);
  uint64_t outputs = 0;
  for (int64_t i = 0; i < kQueries; ++i) {
    auto id = runtime.Register(QueryVariant(i),
                               [&outputs](const OutputRecord&) { ++outputs; });
    if (!id.ok()) {
      state.SkipWithError("query registration failed");
      return;
    }
  }
  const auto& stream = Stream(kEventCount, "obs");
  for (const auto& event : stream) runtime.OnEvent(event);
  runtime.OnFlush();
  size_t bytes = 0;
  for (auto _ : state) {
    runtime.ScrapeMetrics();
    std::string text = registry.RenderPrometheus();
    bytes = text.size();
    benchmark::DoNotOptimize(text.data());
  }
  // One item per scrape: items/s is scrapes/s, which lets the CI bench
  // gate compare this variant against the checked-in baseline too.
  state.SetItemsProcessed(state.iterations());
  state.counters["prom_bytes"] = static_cast<double>(bytes);
}

BENCHMARK(BM_ObsControl)->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK(BM_ObsDisabled)->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK(BM_ObsEnabled)->Unit(benchmark::kMillisecond)->UseManualTime();
BENCHMARK(BM_ObsTracing)->Unit(benchmark::kMillisecond)->UseManualTime();
// Longer sampling window than the default: a scrape is sub-millisecond, so
// the CI gate needs more iterations for a stable items/s median.
BENCHMARK(BM_ObsPerQueryScrape)->Unit(benchmark::kMillisecond)->MinTime(2.0);

/// The CI gate: disabled-mode overhead vs the no-registry control. Each
/// round runs both variants back to back (pairing cancels slow drift),
/// alternating which goes first (cancels order effects), and the gate
/// compares the MEDIAN of the per-round ratios — a shard worker being
/// descheduled in one round cannot move the median on a noisy 1-core CI
/// box the way it moves a min or a mean.
int CheckOverhead() {
  constexpr int kRounds = 75;
  constexpr double kMaxOverheadPercent = 3.0;
  obs::TraceCollector tracer;
  // Many SHORT runs: each ~tens of ms, so one ABBA round sits inside a
  // tight time window (drift cancels) and 2 x kRounds samples per variant
  // shrink the median's noise enough to hold a 3% gate on a 1-core CI box
  // whose individual wall timings swing +-5%.
  const auto& stream = Stream(1000, "obs-gate");
  // Warmup: first-touch of the stream cache and thread-pool paths.
  (void)RunSeconds(Mode::kControl, 1, stream, nullptr, &tracer, nullptr);
  (void)RunSeconds(Mode::kDisabled, 1, stream, nullptr, &tracer, nullptr);
  std::vector<double> control_times, disabled_times;
  for (int round = 0; round < kRounds; ++round) {
    // ABBA within a round cancels linear drift (CPU frequency, co-tenant
    // load); alternating ABBA/BAAB across rounds cancels position effects
    // (the run right after a teardown tends to be the slow one).
    Mode first = round % 2 == 0 ? Mode::kControl : Mode::kDisabled;
    Mode second = round % 2 == 0 ? Mode::kDisabled : Mode::kControl;
    double f1 = RunSeconds(first, 1, stream, nullptr, &tracer, nullptr);
    double s1 = RunSeconds(second, 1, stream, nullptr, &tracer, nullptr);
    double s2 = RunSeconds(second, 1, stream, nullptr, &tracer, nullptr);
    double f2 = RunSeconds(first, 1, stream, nullptr, &tracer, nullptr);
    if (f1 <= 0 || f2 <= 0 || s1 <= 0 || s2 <= 0) {
      std::fprintf(stderr, "FAILED: workload did not run\n");
      return 1;
    }
    auto& firsts = first == Mode::kControl ? control_times : disabled_times;
    auto& seconds = first == Mode::kControl ? disabled_times : control_times;
    firsts.push_back(f1);
    firsts.push_back(f2);
    seconds.push_back(s1);
    seconds.push_back(s2);
  }
  // Medians per variant: descheduling blips are rare, large and one-sided,
  // so a robust location estimate beats means, totals or minima.
  auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  double control = median(control_times);
  double disabled = median(disabled_times);
  double overhead = (disabled / control - 1.0) * 100.0;
  std::printf("obs disabled-mode overhead: %d ABBA/BAAB rounds, median "
              "wall control=%.2fms disabled=%.2fms -> %.2f%% "
              "(limit %.1f%%)\n",
              kRounds, control * 1e3, disabled * 1e3, overhead,
              kMaxOverheadPercent);
  if (overhead > kMaxOverheadPercent) {
    std::fprintf(stderr,
                 "FAILED: disabled-mode observability overhead %.2f%% "
                 "exceeds %.1f%%\n",
                 overhead, kMaxOverheadPercent);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sase

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check_overhead") == 0) {
      return sase::bench::CheckOverhead();
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
