// Experiment E2 (DESIGN.md): intermediate result sets / PAIS.
//
// §2.1.2: "Large intermediate result sets also strongly affect query
// processing. To reduce intermediate results, we strategically push some of
// the predicates and windows down to the sequence operators; the
// optimizations are based on indexing relevant events both in temporal
// order and across value-based partitions."
//
// The sweep varies tag cardinality (1 .. 10,000 distinct tags) on a fixed
// stream and compares:
//   PAIS - stacks partitioned by the TagId equivalence class [default]
//   Flat - single stack set; equality enforced by Selection afterwards
// Expected shape: Flat degrades sharply as cardinality grows (construction
// enumerates cross-tag sequences only to discard them above); PAIS improves
// with cardinality because each partition shrinks.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace sase {
namespace bench {
namespace {

constexpr const char* kQuery =
    "EVENT SEQ(SHELF_READING x, COUNTER_READING y, EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100";

void RunWithOptions(benchmark::State& state, bool use_partitioning) {
  int64_t tags = state.range(0);
  SyntheticConfig config;
  config.seed = 23;
  config.event_count = 20000;
  config.tag_count = tags;
  const auto& stream = CachedStream(config, "p" + std::to_string(tags));

  PlanOptions options;
  options.use_partitioning = use_partitioning;

  uint64_t outputs = 0, constructed = 0, selection_in = 0;
  for (auto _ : state) {
    BenchPlan plan(kQuery, options);
    plan.Run(stream);
    outputs = plan.outputs;
    constructed = plan.plan->sequence_scan().stats().matches_emitted;
    selection_in = plan.plan->selection().matches_in();
  }
  state.SetItemsProcessed(state.iterations() * config.event_count);
  state.counters["matches"] = static_cast<double>(outputs);
  // The experiment's headline number: sequences constructed by the scan =
  // the intermediate result set handed to the relational operators.
  state.counters["intermediate"] = static_cast<double>(selection_in);
  (void)constructed;
}

void BM_Partitioning_PAIS(benchmark::State& state) {
  RunWithOptions(state, /*use_partitioning=*/true);
}

void BM_Partitioning_Flat(benchmark::State& state) {
  RunWithOptions(state, /*use_partitioning=*/false);
}

BENCHMARK(BM_Partitioning_PAIS)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partitioning_Flat)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Zipf-skewed tag popularity: hot partitions stay large, so PAIS's win
// shrinks but remains. (The paper's retail data is similarly skewed: a few
// fast-moving products dominate readings.)
void BM_Partitioning_PAIS_Zipf(benchmark::State& state) {
  SyntheticConfig config;
  config.seed = 29;
  config.event_count = 20000;
  config.tag_count = state.range(0);
  config.zipf_s = 1.1;
  const auto& stream =
      CachedStream(config, "pz" + std::to_string(state.range(0)));
  PlanOptions options;
  uint64_t outputs = 0;
  for (auto _ : state) {
    BenchPlan plan(kQuery, options);
    plan.Run(stream);
    outputs = plan.outputs;
  }
  state.SetItemsProcessed(state.iterations() * config.event_count);
  state.counters["matches"] = static_cast<double>(outputs);
}

BENCHMARK(BM_Partitioning_PAIS_Zipf)
    ->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
