// Experiment E3 (DESIGN.md): predicate pushdown.
//
// §2.1.2 pushes predicates "down to the sequence operators" to cut
// intermediate results. Here single-variable predicates of varying
// selectivity either run on the NFA edges (pushdown) or in the Selection
// operator above the scan (post-filter). Expected shape: at low selectivity
// pushdown wins by a widening margin — unselective instances never enter
// the stacks, so construction never enumerates them.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace sase {
namespace bench {
namespace {

// area_count = 10, so `x.AreaId < k` keeps roughly k/10 of shelf events.
std::string Query(int64_t k) {
  return "EVENT SEQ(SHELF_READING x, COUNTER_READING y, EXIT_READING z) "
         "WHERE x.AreaId < " + std::to_string(k) +
         " AND y.AreaId < " + std::to_string(k) +
         " AND z.AreaId < " + std::to_string(k) + " WITHIN 200";
}

const std::vector<EventPtr>& Stream() {
  SyntheticConfig config;
  config.seed = 31;
  config.event_count = 10000;
  config.tag_count = 100;
  config.area_count = 10;
  return CachedStream(config, "pred");
}

void RunWithOptions(benchmark::State& state, bool push_predicates) {
  int64_t selectivity = state.range(0);
  PlanOptions options;
  options.push_predicates = push_predicates;
  uint64_t outputs = 0, intermediate = 0;
  for (auto _ : state) {
    BenchPlan plan(Query(selectivity), options);
    plan.Run(Stream());
    outputs = plan.outputs;
    intermediate = plan.plan->selection().matches_in();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  state.counters["matches"] = static_cast<double>(outputs);
  state.counters["intermediate"] = static_cast<double>(intermediate);
}

void BM_Predicate_Pushdown(benchmark::State& state) {
  RunWithOptions(state, /*push_predicates=*/true);
}

void BM_Predicate_PostFilter(benchmark::State& state) {
  RunWithOptions(state, /*push_predicates=*/false);
}

// Selectivity sweep: ~10%, ~30%, ~50%, 100% of events pass each filter.
BENCHMARK(BM_Predicate_Pushdown)
    ->Arg(1)->Arg(3)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Predicate_PostFilter)
    ->Arg(1)->Arg(3)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
