// Experiment E5 (DESIGN.md): NFA sequence-scan scaling with pattern arity.
//
// SEQ patterns of length 2..6 over the six retail event types, with the
// TagId equivalence chain across all components. Expected shape: with PAIS
// + window pushdown, throughput decays gently with arity (each event
// touches at most one extra stack); match counts shrink as patterns get
// more selective.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace sase {
namespace bench {
namespace {

const char* kTypes[] = {"SHELF_READING", "COUNTER_READING", "EXIT_READING",
                        "BACKROOM_READING", "LOAD_READING", "UNLOAD_READING"};

std::string Query(int64_t length) {
  std::string pattern, where;
  for (int64_t i = 0; i < length; ++i) {
    if (i > 0) pattern += ", ";
    pattern += std::string(kTypes[i]) + " v" + std::to_string(i);
    if (i > 0) {
      if (i > 1) where += " AND ";
      where += "v0.TagId = v" + std::to_string(i) + ".TagId";
    }
  }
  std::string query = "EVENT SEQ(" + pattern + ")";
  if (!where.empty()) query += " WHERE " + where;
  query += " WITHIN 200";
  return query;
}

const std::vector<EventPtr>& Stream() {
  SyntheticConfig config;
  config.seed = 41;
  config.event_count = 30000;
  config.tag_count = 50;
  config.type_weights.clear();
  for (const char* type : kTypes) config.type_weights.emplace_back(type, 1.0);
  return CachedStream(config, "len");
}

void BM_SequenceLength(benchmark::State& state) {
  std::string query = Query(state.range(0));
  const auto& stream = Stream();
  uint64_t outputs = 0, pushed = 0;
  for (auto _ : state) {
    BenchPlan plan(query, PlanOptions{});
    plan.Run(stream);
    outputs = plan.outputs;
    pushed = plan.plan->sequence_scan().stats().instances_pushed;
  }
  state.SetItemsProcessed(state.iterations() * 30000);
  state.counters["matches"] = static_cast<double>(outputs);
  state.counters["instances"] = static_cast<double>(pushed);
}

BENCHMARK(BM_SequenceLength)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

// The same sweep without the equivalence chain (no partitioning possible):
// the all-matches semantics makes results combinatorial, so the stream is
// smaller and the window tighter.
void BM_SequenceLength_Unkeyed(benchmark::State& state) {
  std::string pattern;
  for (int64_t i = 0; i < state.range(0); ++i) {
    if (i > 0) pattern += ", ";
    pattern += std::string(kTypes[i]) + " v" + std::to_string(i);
  }
  std::string query = "EVENT SEQ(" + pattern + ") WITHIN 50";
  SyntheticConfig config;
  config.seed = 43;
  config.event_count = 5000;
  config.tag_count = 50;
  config.type_weights.clear();
  for (const char* type : kTypes) config.type_weights.emplace_back(type, 1.0);
  const auto& stream = CachedStream(config, "lenu");
  uint64_t outputs = 0;
  for (auto _ : state) {
    BenchPlan plan(query, PlanOptions{});
    plan.Run(stream);
    outputs = plan.outputs;
  }
  state.SetItemsProcessed(state.iterations() * 5000);
  state.counters["matches"] = static_cast<double>(outputs);
}

BENCHMARK(BM_SequenceLength_Unkeyed)
    ->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
