// Sharded execution runtime scaling (src/runtime/).
//
// The multi-query experiment E9 shows serial throughput degrading ~1/Q as
// queries are added: every event visits every plan on one core. The sharded
// runtime routes events by TagId across N workers, each owning a private
// QueryEngine with the full query set, so the per-event work spreads over N
// cores while the OutputMerger keeps results byte-identical to serial
// execution. Sweep the shard count on the 64-query workload and compare
// against the serial baseline; on an M-core machine, expect throughput to
// approach min(N, M)x serial (minus routing + merge overhead, measured by
// the 1-shard point).

#include <benchmark/benchmark.h>

#include <limits>

#include "bench_util.h"
#include "runtime/sharded_runtime.h"

namespace sase {
namespace bench {
namespace {

constexpr int64_t kQueries = 64;
constexpr int64_t kEventCount = 10000;

/// The same query family as bench_multi_query: TagId-equivalent shoplifting
/// variants, all shardable.
std::string QueryVariant(int64_t i) {
  return "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
         "WHERE x.TagId = y.TagId AND x.TagId = z.TagId AND z.AreaId >= " +
         std::to_string(i % 4) + " WITHIN " + std::to_string(200 + 10 * i);
}

const std::vector<EventPtr>& Stream() {
  SyntheticConfig config;
  config.seed = 53;
  config.event_count = kEventCount;
  config.tag_count = 100;
  return CachedStream(config, "sharded");
}

/// Serial baseline: one QueryEngine on the dispatcher thread.
void BM_Serial64Queries(benchmark::State& state) {
  const auto& stream = Stream();
  uint64_t outputs = 0;
  for (auto _ : state) {
    QueryEngine engine(&BenchCatalog());
    uint64_t count = 0;
    for (int64_t i = 0; i < kQueries; ++i) {
      auto id = engine.Register(QueryVariant(i),
                                [&count](const OutputRecord&) { ++count; });
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
    }
    for (const auto& event : stream) engine.OnEvent(event);
    engine.OnFlush();
    outputs = count;
  }
  state.SetItemsProcessed(state.iterations() * kEventCount);
  state.counters["total_alerts"] = static_cast<double>(outputs);
}

BENCHMARK(BM_Serial64Queries)->Unit(benchmark::kMillisecond);

/// Sharded runtime at state.range(0) shards, same workload. Registration and
/// thread startup happen inside the timed loop, mirroring the serial
/// baseline's per-iteration engine construction.
void BM_Sharded64Queries(benchmark::State& state) {
  const auto& stream = Stream();
  uint64_t outputs = 0;
  for (auto _ : state) {
    RuntimeConfig config;
    config.shard_count = static_cast<int>(state.range(0));
    ShardedRuntime runtime(&BenchCatalog(), config);
    uint64_t count = 0;
    for (int64_t i = 0; i < kQueries; ++i) {
      auto id = runtime.Register(QueryVariant(i),
                                 [&count](const OutputRecord&) { ++count; });
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
      if (!runtime.IsSharded(id.value())) {
        state.SkipWithError("workload query unexpectedly not shardable");
        return;
      }
    }
    for (const auto& event : stream) runtime.OnEvent(event);
    runtime.OnFlush();
    outputs = count;
  }
  state.SetItemsProcessed(state.iterations() * kEventCount);
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["total_alerts"] = static_cast<double>(outputs);
}

BENCHMARK(BM_Sharded64Queries)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Dispatch-path overhead in isolation: shards with zero registered queries
/// measure routing + dispatch-log cost per event.
void BM_DispatchOverhead(benchmark::State& state) {
  const auto& stream = Stream();
  for (auto _ : state) {
    RuntimeConfig config;
    config.shard_count = static_cast<int>(state.range(0));
    ShardedRuntime runtime(&BenchCatalog(), config);
    uint64_t count = 0;
    auto id = runtime.Register("EVENT SHELF_READING s WHERE s.AreaId > 99 "
                               "RETURN s.TagId",
                               [&count](const OutputRecord&) { ++count; });
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    for (const auto& event : stream) runtime.OnEvent(event);
    runtime.OnFlush();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kEventCount);
}

BENCHMARK(BM_DispatchOverhead)
    ->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Long-stream memory bound: the dispatch log once grew 16 B/event forever;
/// prefix compaction below the merge watermark keeps it at O(in-flight
/// window). state.range(0) toggles compaction (0 = disabled, the
/// pre-compaction behavior) so the peak_log counter shows before vs after:
/// ~kLongStreamEvents entries without compaction, a few merge intervals
/// with it.
void BM_LongStreamDispatchLog(benchmark::State& state) {
  constexpr int64_t kLongStreamEvents = 200000;
  SyntheticConfig stream_config;
  stream_config.seed = 97;
  stream_config.event_count = kLongStreamEvents;
  stream_config.tag_count = 200;
  const auto& stream = CachedStream(stream_config, "long");

  const bool compaction = state.range(0) != 0;
  size_t peak = 0, final_len = 0;
  uint64_t compactions = 0;
  for (auto _ : state) {
    RuntimeConfig config;
    config.shard_count = 4;
    config.merge_interval = 1024;
    config.log_compact_min =
        compaction ? size_t{1024} : std::numeric_limits<size_t>::max();
    ShardedRuntime runtime(&BenchCatalog(), config);
    uint64_t count = 0;
    auto id = runtime.Register(QueryVariant(0),
                               [&count](const OutputRecord&) { ++count; });
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    for (const auto& event : stream) runtime.OnEvent(event);
    peak = runtime.peak_dispatch_log_len();
    final_len = runtime.dispatch_log_len();
    compactions = runtime.log_compactions();
    runtime.OnFlush();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kLongStreamEvents);
  state.counters["peak_log"] = static_cast<double>(peak);
  state.counters["final_log"] = static_cast<double>(final_len);
  state.counters["compactions"] = static_cast<double>(compactions);
}

BENCHMARK(BM_LongStreamDispatchLog)
    ->Arg(0)->Arg(1)
    ->ArgNames({"compaction"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
