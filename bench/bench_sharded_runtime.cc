// Sharded execution runtime scaling (src/runtime/).
//
// The multi-query experiment E9 shows serial throughput degrading ~1/Q as
// queries are added: every event visits every plan on one core. The sharded
// runtime routes events by TagId across N workers, each owning a private
// QueryEngine with the full query set, so the per-event work spreads over N
// cores while the OutputMerger keeps results byte-identical to serial
// execution. Sweep the shard count on the 64-query workload and compare
// against the serial baseline; on an M-core machine, expect throughput to
// approach min(N, M)x serial (minus routing + merge overhead, measured by
// the 1-shard point).

#include <benchmark/benchmark.h>

#include <limits>

#include "bench_util.h"
#include "runtime/sharded_runtime.h"

namespace sase {
namespace bench {
namespace {

constexpr int64_t kQueries = 64;
constexpr int64_t kEventCount = 10000;

/// The same query family as bench_multi_query: TagId-equivalent shoplifting
/// variants, all shardable.
std::string QueryVariant(int64_t i) {
  return "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
         "WHERE x.TagId = y.TagId AND x.TagId = z.TagId AND z.AreaId >= " +
         std::to_string(i % 4) + " WITHIN " + std::to_string(200 + 10 * i);
}

const std::vector<EventPtr>& Stream() {
  SyntheticConfig config;
  config.seed = 53;
  config.event_count = kEventCount;
  config.tag_count = 100;
  return CachedStream(config, "sharded");
}

/// Serial baseline: one QueryEngine on the dispatcher thread. The 64
/// variants differ only in predicate constants and WITHIN spans, so with
/// multi-query sharing (state.range(0) = 1) they all ride one shared NFA;
/// output is byte-identical either way (total_alerts pins it).
void BM_Serial64Queries(benchmark::State& state) {
  const auto& stream = Stream();
  const bool sharing = state.range(0) != 0;
  uint64_t outputs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    QueryEngine engine(&BenchCatalog());
    engine.set_scan_sharing(sharing);
    uint64_t count = 0;
    for (int64_t i = 0; i < kQueries; ++i) {
      auto id = engine.Register(QueryVariant(i),
                                [&count](const OutputRecord&) { ++count; });
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
    }
    state.ResumeTiming();
    for (const auto& event : stream) engine.OnEvent(event);
    engine.OnFlush();
    outputs = count;
  }
  state.SetItemsProcessed(state.iterations() * kEventCount);
  state.counters["sharing"] = static_cast<double>(sharing ? 1 : 0);
  state.counters["total_alerts"] = static_cast<double>(outputs);
}

BENCHMARK(BM_Serial64Queries)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Sharded runtime at state.range(0) shards, same workload. Registration and
/// thread startup happen inside the timed loop, mirroring the serial
/// baseline's per-iteration engine construction.
void BM_Sharded64Queries(benchmark::State& state) {
  const auto& stream = Stream();
  uint64_t outputs = 0;
  for (auto _ : state) {
    RuntimeConfig config;
    config.shard_count = static_cast<int>(state.range(0));
    ShardedRuntime runtime(&BenchCatalog(), config);
    uint64_t count = 0;
    for (int64_t i = 0; i < kQueries; ++i) {
      auto id = runtime.Register(QueryVariant(i),
                                 [&count](const OutputRecord&) { ++count; });
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
      if (!runtime.IsSharded(id.value())) {
        state.SkipWithError("workload query unexpectedly not shardable");
        return;
      }
    }
    for (const auto& event : stream) runtime.OnEvent(event);
    runtime.OnFlush();
    outputs = count;
  }
  state.SetItemsProcessed(state.iterations() * kEventCount);
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["total_alerts"] = static_cast<double>(outputs);
}

BENCHMARK(BM_Sharded64Queries)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Dispatch-path overhead in isolation: shards with zero registered queries
/// measure routing + dispatch-log cost per event.
void BM_DispatchOverhead(benchmark::State& state) {
  const auto& stream = Stream();
  for (auto _ : state) {
    RuntimeConfig config;
    config.shard_count = static_cast<int>(state.range(0));
    ShardedRuntime runtime(&BenchCatalog(), config);
    uint64_t count = 0;
    auto id = runtime.Register("EVENT SHELF_READING s WHERE s.AreaId > 99 "
                               "RETURN s.TagId",
                               [&count](const OutputRecord&) { ++count; });
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    for (const auto& event : stream) runtime.OnEvent(event);
    runtime.OnFlush();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kEventCount);
}

BENCHMARK(BM_DispatchOverhead)
    ->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Long-stream memory bound: the dispatch log once grew 16 B/event forever;
/// prefix compaction below the merge watermark keeps it at O(in-flight
/// window). state.range(0) toggles compaction (0 = disabled, the
/// pre-compaction behavior) so the peak_log counter shows before vs after:
/// ~kLongStreamEvents entries without compaction, a few merge intervals
/// with it.
void BM_LongStreamDispatchLog(benchmark::State& state) {
  constexpr int64_t kLongStreamEvents = 200000;
  SyntheticConfig stream_config;
  stream_config.seed = 97;
  stream_config.event_count = kLongStreamEvents;
  stream_config.tag_count = 200;
  const auto& stream = CachedStream(stream_config, "long");

  const bool compaction = state.range(0) != 0;
  size_t peak = 0, final_len = 0;
  uint64_t compactions = 0;
  for (auto _ : state) {
    RuntimeConfig config;
    config.shard_count = 4;
    config.merge_interval = 1024;
    config.log_compact_min =
        compaction ? size_t{1024} : std::numeric_limits<size_t>::max();
    ShardedRuntime runtime(&BenchCatalog(), config);
    uint64_t count = 0;
    auto id = runtime.Register(QueryVariant(0),
                               [&count](const OutputRecord&) { ++count; });
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    for (const auto& event : stream) runtime.OnEvent(event);
    peak = runtime.peak_dispatch_log_len();
    final_len = runtime.dispatch_log_len();
    compactions = runtime.log_compactions();
    runtime.OnFlush();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kLongStreamEvents);
  state.counters["peak_log"] = static_cast<double>(peak);
  state.counters["final_log"] = static_cast<double>(final_len);
  state.counters["compactions"] = static_cast<double>(compactions);
}

BENCHMARK(BM_LongStreamDispatchLog)
    ->Arg(0)->Arg(1)
    ->ArgNames({"compaction"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Elastic resize cost: run the 64-query workload and re-partition
/// mid-stream every state.range(0) events (0 = never, the baseline). The
/// delta against the baseline is the quiesce + replay + thread-restart tax;
/// `replayed` reports how much in-flight window each resize rebuilt.
void BM_ResizeMidStream(benchmark::State& state) {
  const auto& stream = Stream();
  const int64_t resize_every = state.range(0);
  uint64_t outputs = 0, resizes = 0, replayed = 0;
  for (auto _ : state) {
    RuntimeConfig config;
    config.shard_count = 2;
    ShardedRuntime runtime(&BenchCatalog(), config);
    uint64_t count = 0;
    for (int64_t i = 0; i < kQueries; ++i) {
      auto id = runtime.Register(QueryVariant(i),
                                 [&count](const OutputRecord&) { ++count; });
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
    }
    // Alternate 2 <-> 4 shards so the run exercises both grow and shrink.
    int64_t fed = 0;
    for (const auto& event : stream) {
      if (resize_every > 0 && fed > 0 && fed % resize_every == 0) {
        int target = runtime.shard_count() == 2 ? 4 : 2;
        if (!runtime.Resize(target).ok()) {
          state.SkipWithError("resize failed");
          return;
        }
      }
      runtime.OnEvent(event);
      ++fed;
    }
    runtime.OnFlush();
    outputs = count;
    resizes = runtime.resize_count();
    replayed = runtime.events_replayed();
  }
  state.SetItemsProcessed(state.iterations() * kEventCount);
  state.counters["total_alerts"] = static_cast<double>(outputs);
  state.counters["resizes"] = static_cast<double>(resizes);
  state.counters["replayed"] = static_cast<double>(replayed);
}

BENCHMARK(BM_ResizeMidStream)
    ->Arg(0)->Arg(5000)->Arg(1000)
    ->ArgNames({"resize_every"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The skew workload's query family: a three-slot positive sequence whose
/// equivalence class covers AreaId on every component as well as TagId.
/// Still shardable by TagId — and because matches only ever combine
/// same-area events, the hot-key mitigation may legally sub-partition a
/// hot tag by (TagId, AreaId). Three positive slots make the hot
/// partition's live state QUADRATIC in partition density: every COUNTER
/// extends every in-window SHELF into a stored partial run, and every
/// EXIT then scans those pairs — so a 4-way sub-partition cuts the scan
/// ~16x (density squared), well past what a two-slot family's linear
/// state (~4x) can show. The ProductName equality keeps that scan from
/// turning into an output explosion: it is checked at completion, so
/// almost all scanned pairs are rejected after being counted — the cost
/// stays, the merger does not drown in alerts.
std::string CoveringQueryVariant(int64_t i) {
  return "EVENT SEQ(SHELF_READING x, COUNTER_READING m, EXIT_READING z) "
         "WHERE x.TagId = m.TagId AND x.TagId = z.TagId "
         "AND x.AreaId = m.AreaId AND x.AreaId = z.AreaId "
         "AND x.ProductName = z.ProductName "
         "AND z.AreaId = " + std::to_string(i % 4) +
         " WITHIN " + std::to_string(120 + 4 * i);
}

/// Skewed-load behavior: state.range(0) percent of events carry one hot
/// tag, the rest spread over 100 tags. Key-hash sharding cannot split a
/// single key's partition, so the hot shard bottlenecks the fleet — and
/// its value partition's pair enumeration grows quadratically with the
/// hot share. state.range(1) turns the hot-key mitigation on: the runtime
/// detects the hot tag from its sketch share and sub-partitions it by
/// (TagId, AreaId) — sound here because the query family covers AreaId —
/// which cuts the quadratic partition state even on one core. The
/// mitigation-on/off pair at 90% hot is the headline number (gated >= 3x
/// by scripts/check_bench_regress.py --expect-speedup in CI). The pair is
/// measured on process CPU time, not wall time: the work the mitigation
/// eliminates is the contract, and process CPU is insensitive to runner
/// core count and to co-tenant noise inflating the multi-threaded
/// mitigated run's wall clock.
void BM_SkewedLoad(benchmark::State& state) {
  SyntheticConfig stream_config;
  stream_config.seed = 71;
  stream_config.event_count = kEventCount;
  stream_config.tag_count = 100;
  const auto& base = CachedStream(stream_config, "skew_base");
  // Rewrite a fraction of the stream onto one hot tag, preserving
  // timestamps and seqs (stream order is untouched).
  const int64_t hot_percent = state.range(0);
  std::vector<EventPtr> stream;
  stream.reserve(base.size());
  {
    const Catalog& catalog = BenchCatalog();
    int64_t i = 0;
    for (const auto& event : base) {
      if (i++ % 100 < hot_percent) {
        const EventSchema& schema = catalog.schema(event->type());
        EventBuilder b(catalog, schema.name());
        AttrIndex area = schema.FindAttribute("AreaId");
        AttrIndex prod = schema.FindAttribute("ProductName");
        b.Set("TagId", "HOT_TAG");
        if (area >= 0) b.Set("AreaId", event->attribute(area));
        // Keep the original high-cardinality ProductName: the query
        // family's completion predicate needs it to stay selective.
        if (prod >= 0) b.Set("ProductName", event->attribute(prod));
        auto rebuilt = b.Build(event->timestamp(), event->seq());
        if (!rebuilt.ok()) {
          state.SkipWithError("rebuild failed");
          return;
        }
        stream.push_back(rebuilt.value());
      } else {
        stream.push_back(event);
      }
    }
  }
  const bool mitigation = state.range(1) != 0;
  uint64_t outputs = 0, splits = 0, refusals = 0;
  for (auto _ : state) {
    RuntimeConfig config;
    config.shard_count = 4;
    config.hotkey_mitigation = mitigation;
    config.hotkey_min_events = 512;
    config.hotkey_split_threshold = 40;
    ShardedRuntime runtime(&BenchCatalog(), config);
    uint64_t count = 0;
    for (int64_t i = 0; i < kQueries; ++i) {
      auto id = runtime.Register(CoveringQueryVariant(i),
                                 [&count](const OutputRecord&) { ++count; });
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
    }
    for (const auto& event : stream) runtime.OnEvent(event);
    runtime.OnFlush();
    outputs = count;
    splits = runtime.hotkey_active_splits();
    refusals = runtime.hotkey_split_refusals();
  }
  state.SetItemsProcessed(state.iterations() * kEventCount);
  state.counters["total_alerts"] = static_cast<double>(outputs);
  state.counters["splits"] = static_cast<double>(splits);
  state.counters["refused"] = static_cast<double>(refusals);
}

BENCHMARK(BM_SkewedLoad)
    ->Args({0, 0})->Args({50, 0})->Args({90, 0})->Args({90, 1})
    ->ArgNames({"hot_percent", "mitigation"})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
