#ifndef SASE_BENCH_BENCH_UTIL_H_
#define SASE_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "engine/planner.h"
#include "engine/query_engine.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "rfid/workload.h"

namespace sase {
namespace bench {

/// Shared retail catalog for all benchmarks.
inline const Catalog& BenchCatalog() {
  static const Catalog catalog = Catalog::RetailDemo();
  return catalog;
}

/// Builds (and caches, keyed by a config signature) a synthetic stream so
/// repeated benchmark iterations reuse the same events.
inline const std::vector<EventPtr>& CachedStream(const SyntheticConfig& config,
                                                 const std::string& key) {
  static std::map<std::string, std::vector<EventPtr>>* cache =
      new std::map<std::string, std::vector<EventPtr>>();
  auto it = cache->find(key);
  if (it == cache->end()) {
    SyntheticStreamGenerator generator(&BenchCatalog(), config);
    it = cache->emplace(key, generator.Generate()).first;
  }
  return it->second;
}

/// Compiles `text` into an executable plan counting its outputs.
struct BenchPlan {
  std::unique_ptr<QueryPlan> plan;
  uint64_t outputs = 0;
  FunctionRegistry functions;

  BenchPlan(const std::string& text, PlanOptions options) {
    auto parsed = Parser::Parse(text);
    Analyzer analyzer(&BenchCatalog(), TimeConfig{});
    auto analyzed = analyzer.Analyze(std::move(parsed).value());
    functions.RegisterCommon();
    plan = Planner::Build(std::move(analyzed).value(), options, &BenchCatalog(),
                          &functions, [this](const OutputRecord&) { ++outputs; });
  }

  void Run(const std::vector<EventPtr>& events) {
    for (const auto& event : events) plan->OnEvent(event);
    plan->OnFlush();
  }
};

}  // namespace bench
}  // namespace sase

#endif  // SASE_BENCH_BENCH_UTIL_H_
