// Experiment E1 (DESIGN.md): large sliding windows.
//
// §2.1.2: "Large sliding windows spanning hours or days are commonly used
// in monitoring applications. Sequence generation from events widely
// dispersed in such windows can be an expensive operation. To address this
// issue, we develop optimizations that employ novel sequence indexes to
// expedite the sequence operators."
//
// The sweep runs the Q1-shaped query over a fixed 100k-event stream while
// the WITHIN window grows from 100 to 100k ticks, comparing:
//   Pushdown  - window pushed into SequenceScan (stack pruning) [default]
//   NoPushdown- window enforced only by the WindowFilter above
//   BruteForce- the ReferenceMatcher baseline (small windows only; it is
//               O(n^k) and stands in for non-incremental evaluation)
// Expected shape: Pushdown stays near-flat as W grows; NoPushdown degrades
// because stacks never shrink and construction walks ever more instances.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/reference_matcher.h"

namespace sase {
namespace bench {
namespace {

constexpr const char* kQuery =
    "EVENT SEQ(SHELF_READING x, COUNTER_READING y, EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN ";

SyntheticConfig StreamConfig(int64_t events) {
  SyntheticConfig config;
  config.seed = 11;
  config.event_count = events;
  // Cardinality scales with the stream so per-tag density stays constant
  // (~50 events/tag); the all-matches semantics would otherwise explode
  // combinatorially at the full-stream window sizes.
  config.tag_count = std::max<int64_t>(1, events / 50);
  config.area_count = 4;
  return config;
}

void RunWithOptions(benchmark::State& state, bool push_window) {
  int64_t window = state.range(0);
  int64_t events = state.range(1);
  const auto& stream =
      CachedStream(StreamConfig(events), "w" + std::to_string(events));
  PlanOptions options;
  options.push_window = push_window;

  uint64_t outputs = 0, peak = 0;
  for (auto _ : state) {
    BenchPlan plan(kQuery + std::to_string(window), options);
    plan.Run(stream);
    outputs = plan.outputs;
    peak = plan.plan->sequence_scan().stats().peak_instances;
  }
  state.SetItemsProcessed(state.iterations() * events);
  state.counters["matches"] = static_cast<double>(outputs);
  state.counters["peak_instances"] = static_cast<double>(peak);
}

void BM_Window_Pushdown(benchmark::State& state) {
  RunWithOptions(state, /*push_window=*/true);
}

void BM_Window_NoPushdown(benchmark::State& state) {
  RunWithOptions(state, /*push_window=*/false);
}

void BM_Window_BruteForce(benchmark::State& state) {
  int64_t window = state.range(0);
  int64_t events = state.range(1);
  const auto& stream =
      CachedStream(StreamConfig(events), "w" + std::to_string(events));
  auto parsed = Parser::Parse(kQuery + std::to_string(window));
  Analyzer analyzer(&BenchCatalog(), TimeConfig{});
  AnalyzedQuery analyzed = analyzer.Analyze(std::move(parsed).value()).value();
  FunctionRegistry functions;
  uint64_t outputs = 0;
  for (auto _ : state) {
    ReferenceMatcher reference(&analyzed, &functions);
    auto matches = reference.FindMatches(stream);
    outputs = matches.ok() ? matches.value().size() : 0;
  }
  state.SetItemsProcessed(state.iterations() * events);
  state.counters["matches"] = static_cast<double>(outputs);
}

// Window sweep over a 50k-event stream (about 50k ticks long).
BENCHMARK(BM_Window_Pushdown)
    ->Args({100, 50000})->Args({1000, 50000})->Args({10000, 50000})
    ->Args({50000, 50000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Window_NoPushdown)
    ->Args({100, 50000})->Args({1000, 50000})->Args({10000, 50000})
    ->Args({50000, 50000})
    ->Unit(benchmark::kMillisecond);
// Brute force only at small scale: it enumerates every (x, y, z) triple.
BENCHMARK(BM_Window_BruteForce)
    ->Args({100, 1000})->Args({1000, 1000})->Args({10000, 1000})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace sase

BENCHMARK_MAIN();
