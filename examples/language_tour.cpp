// A tour of the SASE event language (§2.1.1): sequence patterns, negation,
// parameterized predicates, sliding windows, aggregates, output naming and
// built-in functions — each demonstrated on a small hand-built stream.
//
// Run: ./language_tour

#include <cstdio>
#include <vector>

#include "engine/query_engine.h"

namespace {

using namespace sase;

struct Demo {
  const char* title;
  const char* query;
};

const Demo kDemos[] = {
    {"1. Sequence with temporal order (all matches semantics)",
     "EVENT SEQ(SHELF_READING x, EXIT_READING z)\n"
     "RETURN x.TagId AS PickedTag, z.TagId AS ExitTag, z.Timestamp AS At"},

    {"2. Parameterized predicates across events",
     "EVENT SEQ(SHELF_READING x, EXIT_READING z)\n"
     "WHERE x.TagId = z.TagId\n"
     "RETURN x.TagId, x.Timestamp AS Picked, z.Timestamp AS Left"},

    {"3. Sliding window (WITHIN) bounds the sequence span",
     "EVENT SEQ(SHELF_READING x, EXIT_READING z)\n"
     "WHERE x.TagId = z.TagId WITHIN 50\n"
     "RETURN x.TagId, z.Timestamp - x.Timestamp AS SpanTicks"},

    {"4. Negation: non-occurrence of a checkout in between (Q1)",
     "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z)\n"
     "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100\n"
     "RETURN x.TagId, x.ProductName"},

    {"5. Single-event pattern with value predicates and arithmetic",
     "EVENT SHELF_READING s\n"
     "WHERE s.AreaId % 2 = 0 AND NOT s.ProductName = 'Soap'\n"
     "RETURN s.TagId, s.AreaId * 10 AS Scaled"},

    {"6. Running aggregates over composite events",
     "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId\n"
     "RETURN COUNT(*) AS Seen, MIN(z.Timestamp) AS First, "
     "MAX(z.Timestamp) AS Last, AVG(z.Timestamp - x.Timestamp) AS MeanSpan"},

    {"7. Output naming (INTO) and string functions",
     "EVENT EXIT_READING e\n"
     "RETURN _concat(e.ProductName, ' @door ', e.AreaId) AS Message "
     "INTO exit_feed"},

    {"8. The paper's Unicode connective works too",
     "EVENT SEQ(SHELF_READING x, EXIT_READING z)\n"
     "WHERE x.TagId = z.TagId \xE2\x88\xA7 x.AreaId != z.AreaId\n"
     "RETURN x.TagId"},
};

std::vector<EventPtr> BuildStream(const Catalog& catalog) {
  std::vector<EventPtr> events;
  SequenceNumber seq = 0;
  auto add = [&](const char* type, Timestamp ts, const char* tag, int64_t area,
                 const char* product) {
    EventBuilder builder(catalog, type);
    events.push_back(builder.Set("TagId", tag).Set("AreaId", area)
                         .Set("ProductName", product).Build(ts, seq++).value());
  };
  add("SHELF_READING", 10, "TAG-A", 1, "Razor");
  add("SHELF_READING", 15, "TAG-B", 2, "Soap");
  add("COUNTER_READING", 40, "TAG-B", 3, "Soap");
  add("SHELF_READING", 55, "TAG-C", 2, "Shampoo");
  add("EXIT_READING", 70, "TAG-A", 4, "Razor");     // stolen (no checkout)
  add("EXIT_READING", 80, "TAG-B", 4, "Soap");      // honest purchase
  add("EXIT_READING", 120, "TAG-C", 4, "Shampoo");  // stolen, but slow
  return events;
}

}  // namespace

int main() {
  Catalog catalog = Catalog::RetailDemo();
  auto events = BuildStream(catalog);

  for (const Demo& demo : kDemos) {
    std::printf("---- %s ----\n%s\n", demo.title, demo.query);
    QueryEngine engine(&catalog);
    int count = 0;
    auto id = engine.Register(demo.query, [&count](const OutputRecord& record) {
      std::printf("  -> %s\n", record.ToString().c_str());
      ++count;
    });
    if (!id.ok()) {
      std::printf("  REGISTER ERROR: %s\n", id.status().ToString().c_str());
      continue;
    }
    for (const auto& event : events) engine.OnEvent(event);
    engine.OnFlush();
    std::printf("  (%d result%s)\n\n", count, count == 1 ? "" : "s");
  }

  // Bonus: what the analyzer did with Q1's predicates.
  QueryEngine engine(&catalog);
  auto q1 = engine.Register(kDemos[3].query, nullptr);
  std::printf("---- Q1 plan analysis ----\n%s\n",
              engine.plan(q1.value())->Explain(catalog).c_str());
  return 0;
}
