// Observability demo: an 8-shard SaseSystem with metrics and sampled
// event-lifecycle tracing enabled, driven through a synthetic stream, then
// self-validated:
//
//   1. the Prometheus scrape parses and carries per-query, per-shard and
//      runtime families with the expected totals, and
//   2. the Chrome trace-event JSON dump contains, for at least one sampled
//      event, the full lifecycle: ingest -> partition -> ring -> operator
//      -> merge -> emit.
//
// Load the dumped trace in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Exits non-zero if either validation fails, so CI can smoke-run it.
//
// Run: ./example_observability_demo [trace.json]
//        [--http_port=N] [--serve_seconds=S]
//
// With --http_port=N (and N != 0) the embedded HTTP endpoint is enabled;
// with --serve_seconds=S the demo, after the validations pass, keeps the
// process alive for S seconds so an external scraper (curl, Prometheus,
// the CI smoke step) can hit /metrics, /healthz and /statusz.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rfid/workload.h"
#include "system/sase_system.h"

using namespace sase;

namespace {

int Fail(const std::string& why) {
  std::fprintf(stderr, "FAILED: %s\n", why.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path = "observability_trace.json";
  int http_port = 0;
  int serve_seconds = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--http_port=", 0) == 0) {
      http_port = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--serve_seconds=", 0) == 0) {
      serve_seconds = std::atoi(arg.c_str() + 16);
    } else {
      trace_path = arg;
    }
  }

  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = 8;
  // Low merge cadence: dispatch->merge latency and merge/emit spans close
  // often instead of only at the flush.
  config.runtime_merge_interval = 32;
  // Sample aggressively so a short demo stream still catches full
  // lifecycles (production: 1 in 10'000 or so).
  config.obs.trace_sample_every = 7;
  config.obs.trace_path = trace_path;
  config.obs.http_port = http_port;

  SaseSystem system(StoreLayout::RetailDemo(), config);

  auto registered = system.RegisterMonitoringQuery(
      "pairing",
      // Key-partitioned pattern: shardable, so sampled events cross the
      // dispatcher -> ring -> shard worker -> merger path.
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 50 RETURN x.TagId");
  if (!registered.ok()) return Fail(registered.status().ToString());

  Catalog catalog = Catalog::RetailDemo();
  SyntheticConfig workload;
  workload.seed = 3;
  workload.event_count = 2000;
  workload.tag_count = 64;
  workload.area_count = 4;
  SyntheticStreamGenerator generator(&catalog, workload);
  for (const EventPtr& event : generator.Generate()) {
    system.event_bus().OnEvent(event);
  }
  system.Flush();

  // --- validation 1: the Prometheus scrape ---------------------------------
  system.ScrapeMetrics();
  std::string prom = system.metrics()->RenderPrometheus();
  std::map<std::string, double> samples;
  {
    std::istringstream in(prom);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      size_t space = line.rfind(' ');
      if (space == std::string::npos) {
        return Fail("unparseable scrape line: " + line);
      }
      try {
        samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
      } catch (...) {
        return Fail("non-numeric sample value: " + line);
      }
    }
  }
  if (samples["sase_runtime_events_dispatched_total"] != 2000) {
    return Fail("events_dispatched_total != 2000");
  }
  if (samples["sase_runtime_shards"] != 8) return Fail("shards gauge != 8");
  double shard_events = 0;
  for (const auto& [name, value] : samples) {
    if (name.rfind("sase_shard_events_total", 0) == 0) shard_events += value;
  }
  if (shard_events != 2000) return Fail("per-shard events do not sum to 2000");
  double outputs = 0, op_samples = 0;
  for (const auto& [name, value] : samples) {
    if (name.rfind("sase_query_outputs_total", 0) == 0) outputs += value;
    if (name.rfind("sase_query_op_latency_ns_count", 0) == 0) {
      op_samples += value;
    }
  }
  if (outputs <= 0) return Fail("no query outputs recorded");
  if (outputs != static_cast<double>(system.records_delivered())) {
    return Fail("query outputs do not match records_delivered()");
  }
  if (op_samples <= 0) return Fail("operator latency histograms are empty");
  std::printf("scrape ok: %zu series, %.0f events across 8 shards, "
              "%.0f outputs\n",
              samples.size(), shard_events, outputs);

  // --- validation 2: the event-lifecycle trace -----------------------------
  // One sampled event must carry the complete span chain. Spans live on the
  // collector; the JSON dump is rendered from the same list.
  const char* kLifecycle[] = {"ingest", "partition", "ring",
                              "operator", "merge",    "emit"};
  std::map<uint64_t, std::set<std::string>> by_trace;
  for (const obs::TraceSpan& span : system.tracer().Spans()) {
    by_trace[span.trace_id].insert(span.name);
  }
  uint64_t complete = 0;
  for (const auto& [trace_id, names] : by_trace) {
    bool all = true;
    for (const char* name : kLifecycle) {
      if (names.count(name) == 0) all = false;
    }
    if (all) {
      complete = trace_id;
      break;
    }
  }
  if (complete == 0) {
    return Fail("no sampled event collected the full "
                "ingest->partition->ring->operator->merge->emit lifecycle");
  }

  std::string json = system.tracer().ToJson();
  if (json.find("{\"traceEvents\":[") != 0 || json.back() != '}') {
    return Fail("trace JSON envelope malformed");
  }
  for (const char* name : kLifecycle) {
    if (json.find("\"name\":\"" + std::string(name) + "\"") ==
        std::string::npos) {
      return Fail("trace JSON lacks a '" + std::string(name) + "' span");
    }
  }
  Status dumped = system.tracer().DumpJson(trace_path);
  if (!dumped.ok()) return Fail(dumped.ToString());
  std::printf("trace ok: %zu spans, trace #%llu has the full lifecycle; "
              "dumped to %s (load in Perfetto)\n",
              system.tracer().span_count(),
              static_cast<unsigned long long>(complete), trace_path.c_str());

  // --- optional: stay alive for external scrapers --------------------------
  if (serve_seconds > 0 && system.http_port() != 0) {
    std::printf("serving http://127.0.0.1:%d/{metrics,healthz,statusz} "
                "for %d s\n",
                system.http_port(), serve_seconds);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }
  return 0;
}
