// Quickstart: the paper's Q1 (shoplifting detection) in ~40 lines of API.
//
// Builds a catalog, registers the query with the complex event processor,
// pushes a handful of events, and prints the alert — including the hybrid
// stream+database lookup via _retrieveLocation.
//
// Run: ./quickstart

#include <cstdio>

#include "db/archiver.h"
#include "db/database.h"
#include "engine/query_engine.h"

int main() {
  using namespace sase;

  // 1. The event schema: the retail demo types (SHELF/COUNTER/EXIT...).
  Catalog catalog = Catalog::RetailDemo();

  // 2. An event database so the query's RETURN clause can look up the exit
  //    description, exactly like the paper's Q1.
  db::Database database;
  db::Archiver archiver(&database);
  (void)archiver.DescribeArea(4, "the leftmost door on the south side");

  // 3. The complex event processor hosting continuous queries.
  QueryEngine engine(&catalog);
  (void)archiver.RegisterFunctions(engine.functions());

  // 4. Register Q1. The callback fires on every detected theft.
  auto query = engine.Register(
      "EVENT  SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z)\n"
      "WHERE  x.TagId = y.TagId AND x.TagId = z.TagId\n"
      "WITHIN 12 hours\n"
      "RETURN x.TagId, x.ProductName, z.AreaId, _retrieveLocation(z.AreaId)",
      [](const OutputRecord& alert) {
        std::printf("ALERT  %s\n", alert.ToString().c_str());
      });
  if (!query.ok()) {
    std::fprintf(stderr, "register failed: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("registered Q1:\n%s\n\n",
              engine.plan(query.value())->query().parsed.ToString().c_str());

  // 5. Push events. TAG-A is picked from a shelf and leaves without
  //    checkout; TAG-B is paid for at the counter.
  auto push = [&](const char* type, Timestamp ts, const char* tag,
                  int64_t area, const char* product) {
    EventBuilder builder(catalog, type);
    auto event = builder.Set("TagId", tag).Set("AreaId", area)
                     .Set("ProductName", product).Build(ts, static_cast<SequenceNumber>(ts));
    engine.OnEvent(event.value());
  };
  push("SHELF_READING", 100, "TAG-A", 1, "Razor");
  push("SHELF_READING", 105, "TAG-B", 1, "Soap");
  push("COUNTER_READING", 160, "TAG-B", 3, "Soap");
  push("EXIT_READING", 200, "TAG-A", 4, "Razor");   // no checkout -> alert
  push("EXIT_READING", 210, "TAG-B", 4, "Soap");    // honest -> silent
  engine.OnFlush();

  std::printf("\nplan explain:\n%s\n",
              engine.plan(query.value())->Explain(catalog).c_str());
  return 0;
}
