// The full §4 demonstration scenario: a simulated retail store (Figure 2:
// two shelves, a check-out counter, an exit — four readers), noisy RFID
// tags cleaned by the Cleaning and Association Layer, continuous queries
// for shoplifting and misplaced inventory, an archiving rule keeping the
// event database current, and the five UI windows of Figure 3 printed at
// the end.
//
// Run: ./retail_monitoring

#include <cstdio>

#include "rfid/tag.h"
#include "system/sase_system.h"

int main() {
  using namespace sase;

  // --- assemble the Figure-1 stack over the Figure-2 store -------------
  SystemConfig config;
  config.noise = NoiseModel{.miss_rate = 0.10,
                            .truncation_rate = 0.02,
                            .spurious_rate = 0.01,
                            .duplicate_rate = 0.05};
  config.seed = 2026;
  SaseSystem system(StoreLayout::RetailDemo(), config);

  const StoreLayout& layout = system.simulator().layout();
  auto shelves = layout.AreasByKind(AreaKind::kShelf);
  int counter = layout.FindAreaByKind(AreaKind::kCounter);
  int exit = layout.FindAreaByKind(AreaKind::kExit);

  // --- products registered with the (simulated) ONS --------------------
  const char* names[] = {"Razor", "Soap", "Shampoo", "Toothpaste", "Towel"};
  for (int i = 0; i < 25; ++i) {
    system.AddProduct({MakeEpc(i), names[i % 5], "2027-01-01", true});
  }

  // --- continuous queries (the demo registers these live) --------------
  int thefts = 0;
  auto shoplifting = system.RegisterMonitoringQuery(
      "shoplifting",
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 12 hours "
      "RETURN x.TagId, x.ProductName, z.AreaId, _retrieveLocation(z.AreaId)",
      [&thefts](const OutputRecord&) { ++thefts; });
  if (!shoplifting.ok()) {
    std::fprintf(stderr, "%s\n", shoplifting.status().ToString().c_str());
    return 1;
  }

  // Misplaced inventory: razors belong on shelf 1; one on shelf 2 is wrong.
  int misplaced = 0;
  auto misplaced_q = system.RegisterMonitoringQuery(
      "misplaced-inventory",
      "EVENT SHELF_READING s WHERE s.ProductName = 'Razor' AND s.AreaId = " +
          std::to_string(shelves[1]) +
          " RETURN s.TagId, s.AreaId, _retrieveLocation(s.AreaId)",
      [&misplaced](const OutputRecord&) { ++misplaced; });
  if (!misplaced_q.ok()) return 1;

  // Archiving rule: every shelf observation keeps location_history current.
  auto rule = system.RegisterArchivingRule(
      "location-update",
      "EVENT ANY(SHELF_READING s) "
      "RETURN _updateLocation(s.TagId, s.AreaId, s.Timestamp)");
  if (!rule.ok()) return 1;

  // --- the live behaviours (§4: simulated live in the store) -----------
  ScenarioScripter scripter(&system.simulator());
  scripter.Shoplift(MakeEpc(0), shelves[0], exit, /*start=*/2,
                    /*shelf_dwell=*/6, /*exit_dwell=*/4);
  scripter.Purchase(MakeEpc(1), shelves[0], counter, exit, /*start=*/3,
                    /*shelf_dwell=*/5, /*counter_dwell=*/4, /*exit_dwell=*/3);
  scripter.Misplace(MakeEpc(5), shelves[0], shelves[1], /*start=*/4);  // a Razor
  for (int i = 6; i < 25; ++i) {
    scripter.Restock(MakeEpc(i), shelves[i % 2], 1 + i % 4);
  }
  system.RunUntil(40);
  system.Flush();

  // --- the Figure-3 UI windows ------------------------------------------
  auto& reports = system.reports();
  std::printf("%s\n", reports.Channel(ReportBoard::kPresentQueries).ToString().c_str());
  std::printf("%s\n", reports.Channel(ReportBoard::kMessageResults).ToString().c_str());

  const auto& cleaning = reports.Channel(ReportBoard::kCleaningOutput);
  std::printf("=== %s === (%zu events, first 5)\n", cleaning.name().c_str(),
              cleaning.size());
  for (size_t i = 0; i < cleaning.size() && i < 5; ++i) {
    std::printf("%s\n", cleaning.lines()[i].c_str());
  }

  std::printf("\n=== Cleaning and Association Layer statistics ===\n%s\n",
              system.cleaning().StatsReport().c_str());

  // --- ad-hoc SQL over the event database (logged to Database Report) ---
  (void)system.ExecuteSql(
      "SELECT TagId, AreaId FROM location_history WHERE TimeOut IS NULL "
      "ORDER BY TagId LIMIT 5");
  std::printf("\n%s\n", reports.Channel(ReportBoard::kDatabaseReport).ToString().c_str());

  std::printf("summary: %d theft alert(s), %d misplaced-inventory alert(s)\n",
              thefts, misplaced);
  return thefts >= 1 && misplaced >= 1 ? 0 : 1;
}
