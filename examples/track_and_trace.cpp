// Track-and-trace over the Event Database (§4): pre-populates the archive
// with a simulated warehouse/retail workload ("loading/unloading items,
// stocking shelves, and changing containments"), then answers the demo's
// two queries — current location and movement history — plus ad-hoc SQL.
//
// Run: ./track_and_trace

#include <cstdio>

#include "db/archiver.h"
#include "db/database.h"
#include "db/sql_executor.h"
#include "db/track_trace.h"
#include "rfid/workload.h"

int main() {
  using namespace sase;

  Catalog catalog = Catalog::RetailDemo();
  db::Database database;
  db::Archiver archiver(&database);
  (void)archiver.DescribeArea(100, "loading dock");
  (void)archiver.DescribeArea(101, "backroom");
  for (int s = 0; s < 4; ++s) {
    (void)archiver.DescribeArea(s, "shelf " + std::to_string(s + 1));
  }

  // --- pre-populate: every item's life cycle through the supply chain ---
  WarehouseConfig config;
  config.item_count = 500;
  config.container_count = 40;
  WarehouseHistoryGenerator generator(&catalog, config);
  auto events = generator.Generate();
  for (const auto& event : events) {
    const EventSchema& schema = catalog.schema(event->type());
    std::string tag = event->attribute(schema.FindAttribute("TagId")).AsString();
    int64_t area = event->attribute(schema.FindAttribute("AreaId")).AsInt();
    (void)archiver.UpdateLocation(tag, area, event->timestamp());
    AttrIndex cont = schema.FindAttribute("ContainerId");
    if (cont != kInvalidAttr && !event->attribute(cont).is_null()) {
      (void)archiver.UpdateContainment(tag, event->attribute(cont).AsString(),
                                       event->timestamp());
    }
  }
  std::printf("archived %zu events into %llu location rows\n\n", events.size(),
              static_cast<unsigned long long>(
                  database.GetTable("location_history")->row_count()));

  // --- the demo's track-and-trace queries --------------------------------
  db::TrackTrace trace(&database);
  std::string item = MakeEpc(7);

  auto current = trace.CurrentLocation(item);
  std::printf("current location of %s:\n  %s (since tick %lld)\n\n",
              item.c_str(),
              current ? archiver.RetrieveLocation(current->where.AsInt()).c_str()
                      : "unknown",
              current ? static_cast<long long>(current->time_in) : -1);

  std::printf("movement history of %s:\n", item.c_str());
  for (const auto& entry : trace.MovementHistory(item)) {
    std::printf("  %s\n", entry.ToString().c_str());
  }

  auto box = trace.CurrentContainment(item);
  std::printf("\ncurrent container: %s\n\n",
              box ? box->where.ToString().c_str() : "(none)");

  // --- inventory view: what is on shelf 1 right now ----------------------
  auto on_shelf = trace.TagsInArea(0);
  std::printf("items currently on shelf 1: %zu\n", on_shelf.size());

  // --- the same questions through ad-hoc SQL -----------------------------
  db::SqlExecutor executor(&database);
  auto result = executor.Execute(
      "SELECT AreaId, TimeIn FROM location_history WHERE TagId = '" + item +
      "' ORDER BY TimeIn");
  if (result.ok()) {
    std::printf("\nSQL movement history for %s:\n%s\n", item.c_str(),
                result.value().ToString().c_str());
  }
  auto stats = executor.Execute(
      "SELECT TagId FROM containment_history WHERE ContainerId = 'CONT3' AND "
      "TimeOut IS NULL");
  if (stats.ok()) {
    std::printf("\nitems currently in container CONT3: %zu\n",
                stats.value().rows.size());
  }
  return 0;
}
