// Warehouse flow: the §3 Containment Update rule end to end.
//
// A layout with a loading zone, a backroom and two shelves. Items arrive
// in containers at the loading zone (LOAD_READING events carry the
// ContainerId read alongside the item's tag), get unloaded, parked in the
// backroom and stocked. Two archiving rules keep the Event Database
// current:
//   - containment: LOAD_READING  -> _updateContainment
//   - location:    any reading   -> _updateLocation
// Afterwards the database is dumped to a file, reloaded, and the demo's
// track-and-trace queries are answered from the reloaded copy — the §4
// workflow of querying an event database "pre-populated with data
// collected in advance".
//
// Run: ./warehouse_flow

#include <cstdio>

#include "db/dump.h"
#include "rfid/tag.h"
#include "system/sase_system.h"

int main() {
  using namespace sase;

  // --- a warehouse-flavoured layout --------------------------------------
  StoreLayout layout;
  int loading = layout.AddArea("Loading Dock", AreaKind::kLoadingZone);
  int backroom = layout.AddArea("Backroom", AreaKind::kBackroom);
  int shelf1 = layout.AddArea("Shelf 1", AreaKind::kShelf);
  int shelf2 = layout.AddArea("Shelf 2", AreaKind::kShelf);
  for (int area : {loading, backroom, shelf1, shelf2}) layout.AddReader(area);

  SystemConfig config;
  config.noise = NoiseModel::Perfect();  // determinism for the walkthrough
  SaseSystem system(std::move(layout), config);

  // --- archiving rules -----------------------------------------------------
  auto containment_rule = system.RegisterArchivingRule(
      "containment-update",
      "EVENT ANY(LOAD_READING l) "
      "RETURN _updateContainment(l.TagId, l.ContainerId, l.Timestamp)");
  auto unload_rule = system.RegisterArchivingRule(
      "containment-close",
      "EVENT ANY(BACKROOM_READING b) "
      "RETURN _closeContainment(b.TagId, b.Timestamp)");
  auto location_rules_ok = containment_rule.ok() && unload_rule.ok();
  for (const char* type : {"LOAD_READING", "BACKROOM_READING", "SHELF_READING"}) {
    auto rule = system.RegisterArchivingRule(
        std::string("location-update-") + type,
        std::string("EVENT ANY(") + type +
            " r) RETURN _updateLocation(r.TagId, r.AreaId, r.Timestamp)");
    location_rules_ok = location_rules_ok && rule.ok();
  }
  if (!location_rules_ok) {
    std::fprintf(stderr, "failed to register archiving rules\n");
    return 1;
  }

  // --- monitoring: alert when an item leaves the dock still in a container -
  int stuck_alerts = 0;
  auto stuck = system.RegisterMonitoringQuery(
      "still-in-container",
      "EVENT SEQ(LOAD_READING l, BACKROOM_READING b) "
      "WHERE l.TagId = b.TagId WITHIN 1 hours "
      "RETURN b.TagId, l.ContainerId",
      [&stuck_alerts](const OutputRecord&) { ++stuck_alerts; });
  if (!stuck.ok()) return 1;

  // --- the flow -------------------------------------------------------------
  ScenarioScripter scripter(&system.simulator());
  for (int i = 0; i < 12; ++i) {
    system.AddProduct({MakeEpc(i), "Crate-Good-" + std::to_string(i % 3), "", true});
    std::string container = "CONT" + std::to_string(i % 4);
    scripter.WarehouseArrival(MakeEpc(i), container, loading, backroom,
                              i % 2 == 0 ? shelf1 : shelf2,
                              /*start=*/1 + i, /*stage_dwell=*/3);
  }
  system.RunUntil(30);
  system.Flush();

  // --- persist and reload ----------------------------------------------------
  const std::string path = "/tmp/sase_warehouse.db";
  if (!db::DumpToFile(system.database(), path).ok()) return 1;
  auto reloaded = db::LoadFromFile(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("dumped and reloaded event database (%zu tables)\n\n",
              reloaded.value()->table_count());

  // --- track-and-trace over the *reloaded* database ---------------------------
  db::TrackTrace trace(reloaded.value().get());
  std::string item = MakeEpc(3);
  std::printf("movement history of %s:\n", item.c_str());
  for (const auto& entry : trace.MovementHistory(item)) {
    std::printf("  %s\n", entry.ToString().c_str());
  }
  auto current = trace.CurrentLocation(item);
  std::printf("currently in area %s\n",
              current ? current->where.ToString().c_str() : "?");
  auto box = trace.CurrentContainment(item);
  std::printf("currently contained: %s\n",
              box ? box->where.ToString().c_str() : "(unloaded)");

  std::printf("\n'%d' items passed the dock-to-backroom monitor\n", stuck_alerts);
  return current && !box ? 0 : 1;  // stocked items must be out of containers
}
