#!/usr/bin/env python3
"""Bench-regression gate: compare fresh Google Benchmark JSON against a
checked-in baseline and fail on items/s regressions beyond a threshold.

Usage:
    check_bench_regress.py [--threshold 0.15] FRESH:BASELINE [FRESH:BASELINE ...]

Each positional argument pairs a fresh run (produced with
`--benchmark_out=<file> --benchmark_out_format=json`) with its baseline
(the BENCH_*.json files at the repo root). Benchmarks are matched by full
name (including /arg and /real_time suffixes) and compared on
items_per_second, the counter every gated benchmark reports.

Exit codes: 0 clean, 1 regression or a baseline benchmark missing from the
fresh run (a rename without a baseline refresh must not pass silently).
Benchmarks present only in the fresh run warn but do not fail, so adding a
benchmark does not break CI before the next baseline refresh.
"""

import argparse
import json
import re
import sys


def load_items_per_second(path):
    with open(path) as f:
        doc = json.load(f)
    rates = {}
    for bench in doc.get("benchmarks", []):
        # Skip repetition aggregates (mean/median/stddev) and entries that
        # report no throughput (e.g. BM_SnapshotCost measures bytes, not
        # items/s) — there is nothing comparable to gate on.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        rate = bench.get("items_per_second")
        if rate is None:
            continue
        rates[bench["name"]] = rate
    return rates


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "pairs",
        nargs="+",
        metavar="FRESH:BASELINE",
        help="fresh benchmark JSON paired with its checked-in baseline",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="fractional items/s drop that fails the gate (default 0.15)",
    )
    parser.add_argument(
        "--only",
        metavar="REGEX",
        default=None,
        help="gate only baseline benchmarks matching this regex (for "
        "filtered quick runs: pass the same regex to --benchmark_filter). "
        "Matching names must still be present in the fresh run, so a "
        "rename of a gated benchmark cannot pass silently",
    )
    parser.add_argument(
        "--expect-speedup",
        action="append",
        default=[],
        metavar="FAST,SLOW,MIN_RATIO",
        help="assert the fresh run's FAST benchmark sustains at least "
        "MIN_RATIO times the items/s of its SLOW counterpart (comma "
        "separators: benchmark names embed colons). Repeatable. Used to "
        "gate paired benchmarks whose relative speedup is the contract — "
        "e.g. hot-key mitigation on vs off — independent of absolute "
        "machine speed",
    )
    args = parser.parse_args()
    only = re.compile(args.only) if args.only else None
    expectations = []
    for spec in args.expect_speedup:
        parts = spec.split(",")
        if len(parts) != 3:
            parser.error(f"expected FAST,SLOW,MIN_RATIO, got {spec!r}")
        try:
            expectations.append((parts[0], parts[1], float(parts[2])))
        except ValueError:
            parser.error(f"MIN_RATIO must be a number, got {parts[2]!r}")

    failures = []
    all_fresh = {}
    for pair in args.pairs:
        try:
            fresh_path, baseline_path = pair.split(":", 1)
        except ValueError:
            parser.error(f"expected FRESH:BASELINE, got {pair!r}")
        fresh = load_items_per_second(fresh_path)
        baseline = load_items_per_second(baseline_path)
        all_fresh.update(fresh)

        print(f"== {fresh_path} vs {baseline_path} "
              f"(fail below -{args.threshold:.0%})")
        gated = [n for n in sorted(baseline)
                 if only is None or only.search(n)]
        if not gated:
            failures.append(f"{baseline_path}: no baseline benchmark "
                            f"matches --only {args.only!r}")
            continue
        for name in gated:
            base_rate = baseline[name]
            if name not in fresh:
                failures.append(f"{name}: in baseline {baseline_path} but "
                                f"missing from fresh run — refresh the "
                                f"baseline if the benchmark was renamed")
                print(f"  MISSING  {name}")
                continue
            delta = fresh[name] / base_rate - 1.0
            verdict = "ok"
            if delta < -args.threshold:
                verdict = "REGRESSED"
                failures.append(
                    f"{name}: {fresh[name]:,.0f} items/s vs baseline "
                    f"{base_rate:,.0f} ({delta:+.1%})")
            print(f"  {verdict:10s}{name}: {fresh[name]:,.0f} vs "
                  f"{base_rate:,.0f} items/s ({delta:+.1%})")
        for name in sorted(set(fresh) - set(baseline)):
            print(f"  NEW      {name}: {fresh[name]:,.0f} items/s "
                  f"(no baseline — refresh to start gating it)")

    for fast, slow, min_ratio in expectations:
        missing = [n for n in (fast, slow) if n not in all_fresh]
        if missing:
            failures.append(f"speedup {fast} vs {slow}: fresh run lacks "
                            f"{', '.join(missing)} — run both benchmarks of "
                            f"the pair in the gated invocation")
            print(f"  MISSING  speedup pair: {', '.join(missing)}")
            continue
        ratio = all_fresh[fast] / all_fresh[slow]
        verdict = "ok" if ratio >= min_ratio else "TOO SLOW"
        if ratio < min_ratio:
            failures.append(f"speedup {fast} vs {slow}: {ratio:.2f}x, "
                            f"expected >= {min_ratio:.2f}x")
        print(f"  {verdict:10s}speedup {fast} vs {slow}: {ratio:.2f}x "
              f"(expected >= {min_ratio:.2f}x)")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark check(s) failed "
              f"(threshold {args.threshold:.0%}):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nOK: no benchmark regressed past the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
