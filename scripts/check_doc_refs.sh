#!/usr/bin/env bash
# Fails when README.md or docs/language.md reference a repo path that does
# not exist, so documentation cannot rot silently. A "reference" is any
# backtick-quoted token that looks like a repo path: contains a slash or
# ends in a known source/doc extension. Tokens under build/ are ignored
# (they only exist after a build).
set -u

cd "$(dirname "$0")/.."

status=0
for doc in README.md docs/language.md; do
  if [[ ! -f "$doc" ]]; then
    echo "MISSING DOC: $doc"
    status=1
    continue
  fi
  refs=$(grep -oE '`[A-Za-z0-9_./-]+`' "$doc" | tr -d '`' | sort -u)
  for ref in $refs; do
    case "$ref" in
      build/*) continue ;;                      # build artifacts
      */*) ;;                                   # path with a directory
      *.md|*.cc|*.cpp|*.h|*.txt|*.yml) ;;       # bare file name
      *) continue ;;                            # not a path reference
    esac
    if [[ ! -e "$ref" ]]; then
      echo "BROKEN REFERENCE in $doc: $ref"
      status=1
    fi
  done
done

if [[ $status -eq 0 ]]; then
  echo "doc references OK"
fi
exit $status
