#!/usr/bin/env bash
# Documentation anti-rot checks, run in CI:
#
#  1. Path references: fails when a doc references a repo path that does
#     not exist. A "reference" is any backtick-quoted token that looks
#     like a repo path: contains a slash or ends in a known source/doc
#     extension. Tokens under build/ are ignored (they only exist after a
#     build).
#  2. Config knobs: every knob named in docs/operations.md's knob tables
#     (rows of the form "| `knob_name` | ...") must exist as an
#     identifier in src/system/sase_system.h, src/runtime/*.h,
#     src/checkpoint/*.h or src/obs/*.h, so the tuning guide cannot
#     document a knob that was renamed or removed.
#  3. Metric catalog: docs/observability.md's catalog rows
#     ("| `sase_...` | ...") are checked against the registry call sites
#     in src/ BOTH ways — a documented metric must exist in the code, and
#     every "sase_..." name literal in src/ must appear in the catalog.
set -u

cd "$(dirname "$0")/.."

status=0
for doc in README.md docs/language.md docs/operations.md docs/architecture.md docs/recovery.md docs/observability.md; do
  if [[ ! -f "$doc" ]]; then
    echo "MISSING DOC: $doc"
    status=1
    continue
  fi
  refs=$(grep -oE '`[A-Za-z0-9_./-]+`' "$doc" | tr -d '`' | sort -u)
  for ref in $refs; do
    case "$ref" in
      build/*) continue ;;                      # build artifacts
      /*) continue ;;                           # absolute: URL paths like /metrics
      */*) ;;                                   # path with a directory
      *.md|*.cc|*.cpp|*.h|*.txt|*.yml|*.json) ;;  # bare file name
      *) continue ;;                            # not a path reference
    esac
    if [[ ! -e "$ref" ]]; then
      echo "BROKEN REFERENCE in $doc: $ref"
      status=1
    fi
  done
done

# --- knob existence check (docs/operations.md vs the config headers) ---
knob_doc=docs/operations.md
if [[ -f "$knob_doc" ]]; then
  knobs=$(grep -oE '^\| `[A-Za-z_][A-Za-z0-9_]*`' "$knob_doc" \
            | sed -E 's/^\| `([A-Za-z0-9_]+)`/\1/' | sort -u)
  if [[ -z "$knobs" ]]; then
    echo "NO KNOB TABLE ROWS found in $knob_doc (format: '| \`knob\` | ...')"
    status=1
  fi
  for knob in $knobs; do
    if ! grep -qrE "\b${knob}\b" src/system/sase_system.h src/runtime/*.h \
         src/checkpoint/*.h src/obs/*.h; then
      echo "UNKNOWN KNOB in $knob_doc: \`$knob\` not found in" \
           "src/system/sase_system.h, src/runtime/*.h, src/checkpoint/*.h" \
           "or src/obs/*.h"
      status=1
    fi
  done
fi

# --- metric catalog check (docs/observability.md vs src/ call sites) ---
metric_doc=docs/observability.md
if [[ -f "$metric_doc" ]]; then
  # Documented -> code. Engine per-query names are assembled at runtime
  # ("sase_query_" + suffix), so for those grep the suffix literal.
  metrics=$(grep -oE '^\| `sase_[a-z_]+`' "$metric_doc" \
              | sed -E 's/^\| `(sase_[a-z_]+)`/\1/' | sort -u)
  if [[ -z "$metrics" ]]; then
    echo "NO METRIC CATALOG ROWS found in $metric_doc (format: '| \`sase_...\` | ...')"
    status=1
  fi
  for metric in $metrics; do
    needle="$metric"
    case "$metric" in
      sase_query_*) needle="${metric#sase_query_}" ;;
    esac
    if ! grep -qr "\"${needle}" src/; then
      echo "UNKNOWN METRIC in $metric_doc: \`$metric\` has no registry" \
           "call site in src/"
      status=1
    fi
  done
  # Pre-quiesce semantics: the gauges docs/observability.md section 1
  # names as sampled *before* the quiesce must still be the ones the code
  # samples early (a grep for the literal near the pre-quiesce sampling
  # sites), so the alerting guidance cannot drift from the scrape order.
  for gauge in sase_shard_queue_len sase_runtime_merge_watermark_lag \
               sase_partition_hotkey_queue_lag; do
    if ! grep -q "\`${gauge}\`" "$metric_doc"; then
      echo "PRE-QUIESCE GAUGE \`$gauge\` missing from $metric_doc" \
           "section 1's sampled-before-quiesce list"
      status=1
    fi
    if ! grep -qr "\"${gauge}" src/; then
      echo "PRE-QUIESCE GAUGE \`$gauge\` documented in $metric_doc but" \
           "has no call site in src/"
      status=1
    fi
  done
  # Hot-key mitigation: the knobs and the split metrics are pinned BOTH
  # directions explicitly — the operations guide documents the decision
  # surface (threshold/cadence/switch) and the observability catalog the
  # outcome surface (splits/refusals/active), and neither may rot away
  # from the code while the other survives.
  for knob in hotkey_mitigation hotkey_split_threshold hotkey_min_events; do
    if ! grep -q "\`${knob}\`" "$knob_doc"; then
      echo "MITIGATION KNOB \`$knob\` missing from $knob_doc's knob tables"
      status=1
    fi
    if ! grep -qE "\b${knob}\b" src/system/sase_system.h src/runtime/*.h; then
      echo "MITIGATION KNOB \`$knob\` documented in $knob_doc but absent" \
           "from src/system/sase_system.h and src/runtime/*.h"
      status=1
    fi
  done
  for metric in sase_partition_hotkey_splits_total \
                sase_partition_hotkey_split_refused_total \
                sase_partition_hotkey_split_active; do
    if ! grep -q "\`${metric}\`" "$metric_doc"; then
      echo "MITIGATION METRIC \`$metric\` missing from $metric_doc's catalog"
      status=1
    fi
    if ! grep -qr "\"${metric}" src/; then
      echo "MITIGATION METRIC \`$metric\` documented in $metric_doc but" \
           "has no call site in src/"
      status=1
    fi
  done
  # Code -> documented. Every metric-name literal in src/ (including the
  # assembled "sase_query_" prefix) must appear in the catalog.
  srcnames=$(grep -rhoE '"sase_[a-z_]+' src/ | tr -d '"' | sort -u)
  for name in $srcnames; do
    case "$name" in
      *_) pattern="\`${name}" ;;       # assembled prefix ("sase_query_" + ...)
      *) pattern="\`${name}\`" ;;      # full name: match exactly
    esac
    if ! grep -q "$pattern" "$metric_doc"; then
      echo "UNDOCUMENTED METRIC: \"$name\" used in src/ but absent from" \
           "$metric_doc's catalog"
      status=1
    fi
  done
fi

if [[ $status -eq 0 ]]; then
  echo "doc references OK"
fi
exit $status
