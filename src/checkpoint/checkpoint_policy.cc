#include "checkpoint/checkpoint_policy.h"

#include <sstream>

namespace sase {
namespace checkpoint {

CheckpointPolicy::CheckpointPolicy(CheckpointConfig config)
    : config_(std::move(config)) {}

CheckpointDecision CheckpointPolicy::Evaluate(const CheckpointSample& sample) {
  ++checks_;
  if (!armed_) return CheckpointDecision::kHold;
  bool interval_hit = config_.checkpoint_interval_events > 0 &&
                      sample.events_since_checkpoint >=
                          config_.checkpoint_interval_events;
  bool size_hit = config_.checkpoint_journal_bytes > 0 &&
                  sample.journal_bytes_since_checkpoint >=
                      config_.checkpoint_journal_bytes;
  if (!interval_hit && !size_hit) return CheckpointDecision::kHold;
  armed_ = false;
  ++decisions_;
  return CheckpointDecision::kCheckpoint;
}

std::string CheckpointPolicy::Describe() const {
  std::ostringstream out;
  out << "checkpoint policy: ";
  if (config_.checkpoint_interval_events == 0 &&
      config_.checkpoint_journal_bytes == 0) {
    out << "manual only";
  } else {
    out << "interval=" << config_.checkpoint_interval_events
        << " events, journal_limit=" << config_.checkpoint_journal_bytes
        << " bytes";
  }
  out << " (checks=" << checks_ << " decisions=" << decisions_ << ")";
  return out.str();
}

}  // namespace checkpoint
}  // namespace sase
