#ifndef SASE_CHECKPOINT_CHECKPOINT_POLICY_H_
#define SASE_CHECKPOINT_CHECKPOINT_POLICY_H_

#include <cstdint>
#include <string>

#include "checkpoint/journal.h"

namespace sase {
namespace checkpoint {

/// Who acknowledges delivered output records (docs/recovery.md, the
/// exactly-once section).
enum class AckMode {
  /// Delivery IS acknowledgment: the system self-acks every record it hands
  /// to a sink, and the journal's delivered-output marks double as the ack
  /// cursor. Recovery behaves exactly like the pre-cursor releases —
  /// exactly-once up to the durability of the journal tail. The default.
  kAuto = 0,
  /// Only explicit SaseSystem::AckOutput calls advance the cursor. Records
  /// delivered but not yet durably acked RE-EMIT after a crash (with their
  /// original cursor stamps, so sinks dedup or re-ack idempotently):
  /// at-least-once raw delivery, exactly-once at the acked cursor.
  kConsumer = 1,
};

/// Knobs of the durable checkpoint subsystem, wired through
/// SystemConfig::checkpoint. With `dir` set, a SaseSystem write-ahead
/// journals every published event into `dir` and can snapshot its full
/// processing state there (see docs/recovery.md); SaseSystem::Recover
/// rebuilds a system from the directory after a crash.
struct CheckpointConfig {
  /// Checkpoint directory; empty disables journaling and automatic
  /// snapshots (manual SaseSystem::Checkpoint(dir) still works and writes a
  /// standalone snapshot with no journal).
  std::string dir;

  /// Published events between automatic snapshots; 0 = snapshot only on
  /// explicit Checkpoint() calls.
  uint64_t checkpoint_interval_events = 0;

  /// Journal bytes appended since the last snapshot that trigger an
  /// automatic snapshot regardless of the event interval; 0 disables the
  /// size trigger. Bounds recovery time: replay work is proportional to the
  /// journal suffix.
  uint64_t checkpoint_journal_bytes = 0;

  /// Segment size at which the journal rotates to a fresh file.
  uint64_t journal_rotate_bytes = 8ull << 20;

  /// Durability of each appended record; see FsyncPolicy.
  FsyncPolicy journal_fsync = FsyncPolicy::kNever;

  /// Output acknowledgment mode; see AckMode.
  AckMode ack_mode = AckMode::kAuto;

  /// Consumer acks coalesced into one journaled cursor record (one write,
  /// one fsync under kAlways) — the group-commit batch size. 1 commits
  /// every ack (maximum durability, one fsync per ack under kAlways);
  /// larger values amortize the fsync at the cost of a wider ack-to-disk
  /// crash window. Only meaningful under AckMode::kConsumer.
  uint64_t ack_commit_interval = 32;

  /// WAL group commit: journal records per fsync under
  /// FsyncPolicy::kAlways. 1 (the default) fsyncs every record — the legacy
  /// behavior; larger values amortize the fsync across a group, recovering
  /// orders of magnitude of append throughput while keeping the guarantee
  /// that a record is acked-durable only after its group's fsync (see
  /// docs/recovery.md, "Group commit").
  uint64_t group_commit_interval = 1;

  /// Commit-latency bound for group commit: a record waits at most this
  /// long (microseconds, measured from the group's first record) before its
  /// group is fsynced, enforced at the next append or idle Sync(). 0 = no
  /// time bound (the group closes on count, flush, ack commit, rotation or
  /// idle only).
  uint64_t group_commit_max_delay_us = 2000;
};

/// One observation per published event, fed to the policy by the system.
struct CheckpointSample {
  uint64_t events_since_checkpoint = 0;
  uint64_t journal_bytes_since_checkpoint = 0;
};

enum class CheckpointDecision { kHold, kCheckpoint };

/// Pure decision core of the automatic checkpointer, in the style of
/// ElasticPolicy: thresholds only, no clocks, no filesystem and no system
/// dependencies, so the trigger behavior is unit-testable in isolation.
/// The system samples after every fully processed event, acts on
/// kCheckpoint, and calls NoteCheckpoint() when a snapshot completes (or
/// failed, to re-arm the interval rather than retry every event).
class CheckpointPolicy {
 public:
  explicit CheckpointPolicy(CheckpointConfig config);

  CheckpointDecision Evaluate(const CheckpointSample& sample);

  /// Resets the trigger baseline after a snapshot attempt.
  void NoteCheckpoint() { armed_ = true; }

  const CheckpointConfig& config() const { return config_; }

  // --- counters (surfaced through the system stats report) ---
  uint64_t checks() const { return checks_; }
  uint64_t decisions() const { return decisions_; }

  /// One-line state summary for stats reports.
  std::string Describe() const;

 private:
  CheckpointConfig config_;
  /// False between a kCheckpoint decision and NoteCheckpoint(): the system
  /// is acting on the decision, don't re-fire on every event meanwhile.
  bool armed_ = true;
  uint64_t checks_ = 0;
  uint64_t decisions_ = 0;
};

}  // namespace checkpoint
}  // namespace sase

#endif  // SASE_CHECKPOINT_CHECKPOINT_POLICY_H_
