#include "checkpoint/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32.h"

namespace sase {
namespace checkpoint {
namespace {

constexpr char kMagic[8] = {'S', 'A', 'S', 'E', 'J', 'N', 'L', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = sizeof(kMagic) + 4 + 8 + 8;
/// Sanity cap on one record's payload; a larger length field means the
/// length itself is corrupt.
constexpr uint32_t kMaxPayload = 64u << 20;

// --- little-endian primitive encoding --------------------------------------

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      PutU8(out, 0);
      break;
    case ValueType::kInt:
      PutU8(out, 1);
      PutU64(out, static_cast<uint64_t>(value.AsInt()));
      break;
    case ValueType::kDouble: {
      PutU8(out, 2);
      double d = value.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case ValueType::kString:
      PutU8(out, 3);
      PutString(out, value.AsString());
      break;
    case ValueType::kBool:
      PutU8(out, 4);
      PutU8(out, value.AsBool() ? 1 : 0);
      break;
  }
}

/// Bounds-checked cursor over one decoded payload.
struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;

  bool Need(size_t n) const { return pos + n <= size; }

  bool GetU8(uint8_t* v) {
    if (!Need(1)) return false;
    *v = static_cast<uint8_t>(data[pos++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (!Need(4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(data[pos++])) << (8 * i);
    }
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (!Need(8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(data[pos++])) << (8 * i);
    }
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t len = 0;
    if (!GetU32(&len) || !Need(len)) return false;
    s->assign(data + pos, len);
    pos += len;
    return true;
  }
  bool GetValue(Value* value) {
    uint8_t tag = 0;
    if (!GetU8(&tag)) return false;
    switch (tag) {
      case 0:
        *value = Value();
        return true;
      case 1: {
        uint64_t v = 0;
        if (!GetU64(&v)) return false;
        *value = Value(static_cast<int64_t>(v));
        return true;
      }
      case 2: {
        uint64_t bits = 0;
        if (!GetU64(&bits)) return false;
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        *value = Value(d);
        return true;
      }
      case 3: {
        std::string s;
        if (!GetString(&s)) return false;
        *value = Value(std::move(s));
        return true;
      }
      case 4: {
        uint8_t b = 0;
        if (!GetU8(&b)) return false;
        *value = Value(b != 0);
        return true;
      }
      default:
        return false;
    }
  }
};

void PutEventBody(std::string* out, const Event& event) {
  PutU32(out, static_cast<uint32_t>(event.type()));
  PutU64(out, static_cast<uint64_t>(event.timestamp()));
  PutU64(out, event.seq());
  PutU32(out, static_cast<uint32_t>(event.attribute_count()));
  for (size_t i = 0; i < event.attribute_count(); ++i) {
    PutValue(out, event.attribute(static_cast<AttrIndex>(i)));
  }
}

bool GetEventBody(Cursor* in, JournalRecord* record) {
  uint32_t type = 0;
  uint64_t ts = 0;
  uint64_t seq = 0;
  uint32_t count = 0;
  if (!in->GetU32(&type) || !in->GetU64(&ts) || !in->GetU64(&seq) ||
      !in->GetU32(&count)) {
    return false;
  }
  record->type = static_cast<EventTypeId>(type);
  record->timestamp = static_cast<Timestamp>(ts);
  record->seq = seq;
  record->values.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!in->GetValue(&record->values[i])) return false;
  }
  return true;
}

bool DecodePayload(const char* data, size_t size, JournalRecord* record) {
  Cursor in{data, size};
  uint8_t kind = 0;
  if (!in.GetU8(&kind)) return false;
  switch (static_cast<JournalRecord::Kind>(kind)) {
    case JournalRecord::Kind::kEvent:
      record->kind = JournalRecord::Kind::kEvent;
      record->stream.clear();
      return GetEventBody(&in, record);
    case JournalRecord::Kind::kStreamEvent:
      record->kind = JournalRecord::Kind::kStreamEvent;
      return in.GetString(&record->stream) && GetEventBody(&in, record);
    case JournalRecord::Kind::kFlush:
      record->kind = JournalRecord::Kind::kFlush;
      return true;
    case JournalRecord::Kind::kOutputMark:
      record->kind = JournalRecord::Kind::kOutputMark;
      return in.GetU64(&record->delivered_runtime) &&
             in.GetU64(&record->delivered_serial);
    case JournalRecord::Kind::kRegister: {
      record->kind = JournalRecord::Kind::kRegister;
      uint8_t archiving = 0;
      if (!in.GetU8(&archiving)) return false;
      record->archiving = archiving != 0;
      return in.GetString(&record->name) && in.GetString(&record->text);
    }
    case JournalRecord::Kind::kAckCursor:
      record->kind = JournalRecord::Kind::kAckCursor;
      return in.GetU64(&record->acked_runtime) &&
             in.GetU64(&record->acked_serial);
    default:
      return false;
  }
}

Status WriteErrno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

std::string SegmentFileName(uint64_t snapshot, uint64_t segment) {
  std::ostringstream name;
  name << "journal-" << snapshot << "-";
  std::string seg = std::to_string(segment);
  for (size_t i = seg.size(); i < 6; ++i) name << '0';
  name << seg << ".log";
  return name.str();
}

Result<std::unique_ptr<EventJournal>> EventJournal::Open(
    const std::string& dir, uint64_t snapshot, uint64_t start_segment,
    uint64_t rotate_bytes, FsyncPolicy fsync) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create journal directory " + dir +
                                   ": " + ec.message());
  }
  std::unique_ptr<EventJournal> journal(
      new EventJournal(dir, snapshot, rotate_bytes == 0 ? 1 : rotate_bytes, fsync));
  SASE_RETURN_IF_ERROR(journal->OpenSegment(start_segment));
  return journal;
}

EventJournal::~EventJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Status EventJournal::OpenSegment(uint64_t segment) {
  if (fd_ >= 0) {
    // Seal the old segment: its open commit group (if any) must reach the
    // platter before we move on. Sync() no-ops when everything is durable
    // already; the close itself proceeds either way, as before.
    Sync();
    ::close(fd_);
    fd_ = -1;
  }
  std::string path = dir_ + "/" + SegmentFileName(snapshot_, segment);
  fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) return WriteErrno("cannot open journal segment " + path);
  segment_ = segment;
  segment_bytes_ = 0;
  synced_segment_bytes_ = 0;

  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kVersion);
  PutU64(&header, snapshot_);
  PutU64(&header, segment);
  if (::write(fd_, header.data(), header.size()) !=
      static_cast<ssize_t>(header.size())) {
    return WriteErrno("cannot write journal header " + path);
  }
  segment_bytes_ += header.size();
  bytes_written_ += header.size();
  return Status::Ok();
}

Status EventJournal::AppendPayload(const std::string& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("journal is not open");
  uint64_t start = append_latency_ != nullptr ? obs::MonotonicNs() : 0;
  std::string framed;
  framed.reserve(payload.size() + 8);
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  PutU32(&framed, Crc32(payload.data(), payload.size()));
  framed.append(payload);
  if (::write(fd_, framed.data(), framed.size()) !=
      static_cast<ssize_t>(framed.size())) {
    return WriteErrno("journal append failed");
  }
  if (append_latency_ != nullptr) {
    append_latency_->Record(static_cast<int64_t>(obs::MonotonicNs() - start));
  }
  segment_bytes_ += framed.size();
  bytes_written_ += framed.size();
  ++records_written_;
  if (fsync_ == FsyncPolicy::kAlways) {
    // Group commit: fsync once per `group_commit_interval_` records, or
    // earlier when the group's oldest record has waited `max_delay_us`.
    if (unsynced_records_ == 0 && group_commit_max_delay_us_ > 0) {
      group_open_ns_ = obs::MonotonicNs();
    }
    ++unsynced_records_;
    bool due = unsynced_records_ >= group_commit_interval_;
    if (!due && group_commit_max_delay_us_ > 0) {
      due = obs::MonotonicNs() - group_open_ns_ >=
            group_commit_max_delay_us_ * 1000;
    }
    if (due) SASE_RETURN_IF_ERROR(Sync());
  }
  if (segment_bytes_ >= rotate_bytes_) {
    ++rotations_;
    SASE_RETURN_IF_ERROR(OpenSegment(segment_ + 1));
  }
  return Status::Ok();
}

Status EventJournal::Sync() {
  if (fd_ < 0 || fsync_ != FsyncPolicy::kAlways || unsynced_records_ == 0) {
    return Status::Ok();
  }
  uint64_t sync_start = fsync_latency_ != nullptr ? obs::MonotonicNs() : 0;
  if (::fsync(fd_) != 0) return WriteErrno("journal fsync failed");
  if (fsync_latency_ != nullptr) {
    fsync_latency_->Record(
        static_cast<int64_t>(obs::MonotonicNs() - sync_start));
  }
  if (group_occupancy_ != nullptr) {
    group_occupancy_->Record(static_cast<int64_t>(unsynced_records_));
  }
  ++group_commits_;
  unsynced_records_ = 0;
  durable_records_ = records_written_;
  durable_bytes_ = bytes_written_;
  synced_segment_bytes_ = segment_bytes_;
  return Status::Ok();
}

Status EventJournal::AppendEvent(const std::string& stream, const Event& event) {
  std::string payload;
  if (stream.empty()) {
    PutU8(&payload, static_cast<uint8_t>(JournalRecord::Kind::kEvent));
  } else {
    PutU8(&payload, static_cast<uint8_t>(JournalRecord::Kind::kStreamEvent));
    PutString(&payload, stream);
  }
  PutEventBody(&payload, event);
  return AppendPayload(payload);
}

Status EventJournal::AppendFlush() {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(JournalRecord::Kind::kFlush));
  SASE_RETURN_IF_ERROR(AppendPayload(payload));
  // End-of-stream is a natural commit point: close the open group so the
  // whole stream is durable once the flush returns.
  return Sync();
}

Status EventJournal::AppendOutputMark(uint64_t delivered_runtime,
                                      uint64_t delivered_serial) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(JournalRecord::Kind::kOutputMark));
  PutU64(&payload, delivered_runtime);
  PutU64(&payload, delivered_serial);
  return AppendPayload(payload);
}

Status EventJournal::AppendRegister(bool archiving, const std::string& name,
                                    const std::string& text) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(JournalRecord::Kind::kRegister));
  PutU8(&payload, archiving ? 1 : 0);
  PutString(&payload, name);
  PutString(&payload, text);
  return AppendPayload(payload);
}

Status EventJournal::AppendAckCursor(uint64_t acked_runtime,
                                     uint64_t acked_serial) {
  // Latest cumulative counters win: a batch of N acks collapses into one
  // record carrying the final values.
  pending_ack_runtime_ = acked_runtime;
  pending_ack_serial_ = acked_serial;
  ++pending_acks_;
  if (pending_acks_ >= ack_commit_interval_) return CommitAcks();
  return Status::Ok();
}

Status EventJournal::CommitAcks() {
  if (pending_acks_ == 0) return Status::Ok();
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(JournalRecord::Kind::kAckCursor));
  PutU64(&payload, pending_ack_runtime_);
  PutU64(&payload, pending_ack_serial_);
  pending_acks_ = 0;
  Status appended = AppendPayload(payload);
  if (appended.ok()) ++ack_commits_;
  // An ack is claimed durable the moment its batch commits, so the cursor
  // record may not ride in an open commit group — force its fsync now.
  if (appended.ok()) appended = Sync();
  return appended;
}

Result<JournalScan> ReadJournal(const std::string& dir, uint64_t snapshot) {
  JournalScan scan;
  for (uint64_t segment = 0;; ++segment) {
    std::string path = dir + "/" + SegmentFileName(snapshot, segment);
    std::ifstream file(path, std::ios::binary);
    if (!file.is_open()) {
      scan.next_segment = segment;
      return scan;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    std::string bytes = std::move(buffer).str();
    ++scan.segments_read;

    if (bytes.size() < kHeaderSize ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
      scan.truncated = true;
      scan.truncation_reason = "bad segment header in " + path;
      scan.truncated_segment = segment;
      scan.truncated_offset = 0;
      scan.next_segment = segment + 1;
      return scan;
    }
    Cursor header{bytes.data() + sizeof(kMagic), kHeaderSize - sizeof(kMagic)};
    uint32_t version = 0;
    uint64_t file_snapshot = 0;
    uint64_t file_segment = 0;
    header.GetU32(&version);
    header.GetU64(&file_snapshot);
    header.GetU64(&file_segment);
    if (version != kVersion || file_snapshot != snapshot ||
        file_segment != segment) {
      scan.truncated = true;
      scan.truncation_reason = "segment header mismatch in " + path;
      scan.truncated_segment = segment;
      scan.truncated_offset = 0;
      scan.next_segment = segment + 1;
      return scan;
    }

    size_t pos = kHeaderSize;
    while (pos < bytes.size()) {
      Cursor frame{bytes.data() + pos, bytes.size() - pos};
      uint32_t len = 0;
      uint32_t crc = 0;
      if (!frame.GetU32(&len) || !frame.GetU32(&crc) || len > kMaxPayload ||
          !frame.Need(len)) {
        scan.truncated = true;
        scan.truncation_reason = "torn record at byte " + std::to_string(pos) +
                                 " of " + path;
        scan.truncated_segment = segment;
        scan.truncated_offset = pos;
        scan.next_segment = segment + 1;
        return scan;
      }
      const char* payload = bytes.data() + pos + 8;
      if (Crc32(payload, len) != crc) {
        scan.truncated = true;
        scan.truncation_reason = "CRC mismatch at byte " + std::to_string(pos) +
                                 " of " + path;
        scan.truncated_segment = segment;
        scan.truncated_offset = pos;
        scan.next_segment = segment + 1;
        return scan;
      }
      JournalRecord record;
      if (!DecodePayload(payload, len, &record)) {
        scan.truncated = true;
        scan.truncation_reason = "undecodable record at byte " +
                                 std::to_string(pos) + " of " + path;
        scan.truncated_segment = segment;
        scan.truncated_offset = pos;
        scan.next_segment = segment + 1;
        return scan;
      }
      scan.records.push_back(std::move(record));
      pos += 8 + len;
    }
    scan.next_segment = segment + 1;
  }
}

uint64_t RepairJournal(const std::string& dir, uint64_t snapshot,
                       const JournalScan& scan) {
  if (!scan.truncated) return scan.next_segment;
  std::error_code ec;
  std::string path =
      dir + "/" + SegmentFileName(snapshot, scan.truncated_segment);
  if (scan.truncated_offset > 0) {
    // Cut the torn tail; the valid record prefix stays readable, and the
    // next scan continues into the segments appended after recovery.
    std::filesystem::resize_file(path, scan.truncated_offset, ec);
    return scan.next_segment;
  }
  // The segment header itself is unusable: nothing in the file is
  // salvageable, so resume writing at this very slot — OpenSegment
  // truncates it and the next scan reads straight through.
  std::filesystem::remove(path, ec);
  return scan.truncated_segment;
}

void RemoveStaleJournals(const std::string& dir, uint64_t keep_snapshot) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return;
  for (const auto& entry : it) {
    std::string name = entry.path().filename().string();
    if (name.rfind("journal-", 0) != 0) continue;
    size_t dash = name.find('-', 8);
    if (dash == std::string::npos) continue;
    uint64_t snapshot = std::strtoull(name.substr(8, dash - 8).c_str(), nullptr, 10);
    if (snapshot < keep_snapshot) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

}  // namespace checkpoint
}  // namespace sase
