#ifndef SASE_CHECKPOINT_JOURNAL_H_
#define SASE_CHECKPOINT_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/event.h"
#include "util/status.h"

namespace sase {
namespace obs {
class HistogramMetric;
}  // namespace obs
namespace checkpoint {

/// How aggressively the journal pushes appended records to stable storage.
enum class FsyncPolicy {
  /// Records are write(2)-n immediately (they survive a process crash) but
  /// the kernel decides when they reach the platter; an OS crash can lose
  /// the tail. The throughput default.
  kNever = 0,
  /// fsync after every appended record: a committed record survives power
  /// loss, at a large per-record cost (see bench_checkpoint.cc).
  kAlways = 1,
};

/// One decoded journal record. The journal logs, between two checkpoints,
/// everything that feeds the event processors: published events (default
/// and named-stream), end-of-stream flushes, query registrations,
/// delivered-output marks (the cumulative delivery counters the recovery
/// gate uses to resume emission at the exact record where the crashed
/// process stopped), and acked-output cursors (the consumer-acknowledged
/// delivery positions the exactly-once gate resumes from instead of the
/// marks when `ack_mode = kConsumer`).
struct JournalRecord {
  enum class Kind : uint8_t {
    kEvent = 1,        // default-input event
    kStreamEvent = 2,  // named-stream event (`stream` set)
    kFlush = 3,        // end-of-stream marker
    kOutputMark = 4,   // cumulative delivered-output counters
    kRegister = 5,     // query registration (name/text/kind)
    kAckCursor = 6,    // cumulative consumer-acked output counters
  };

  Kind kind = Kind::kEvent;

  // kEvent / kStreamEvent
  std::string stream;  // empty for the default input
  EventTypeId type = kInvalidEventType;
  Timestamp timestamp = 0;
  SequenceNumber seq = 0;
  std::vector<Value> values;

  // kOutputMark: absolute counts of records delivered by runtime-hosted
  // and serial-hosted queries since system construction.
  uint64_t delivered_runtime = 0;
  uint64_t delivered_serial = 0;

  // kAckCursor: absolute counts of records the consumer has acknowledged,
  // per delivery class. Cumulative like the marks: a later record
  // supersedes every earlier one.
  uint64_t acked_runtime = 0;
  uint64_t acked_serial = 0;

  // kRegister
  bool archiving = false;  // archiving rule vs monitoring query
  std::string name;
  std::string text;
};

/// Write side of the event journal: length-prefixed binary records
///
///   [u32 payload_len][u32 crc32(payload)][payload]
///
/// appended to numbered segment files `journal-<snapshot>-<seg>.log`, each
/// opened with a magic+version header. A segment is sealed and the next one
/// opened once it exceeds `rotate_bytes` (rotation bounds the damage of a
/// corrupt file and lets recovery stream segments one at a time). All calls
/// are made from the single dispatcher thread.
class EventJournal {
 public:
  /// Opens segment `start_segment` of epoch `snapshot` in `dir` for
  /// appending. Each checkpoint starts a fresh epoch at segment 0; recovery
  /// resumes the current epoch at the segment after the last one replayed.
  static Result<std::unique_ptr<EventJournal>> Open(const std::string& dir,
                                                    uint64_t snapshot,
                                                    uint64_t start_segment,
                                                    uint64_t rotate_bytes,
                                                    FsyncPolicy fsync);
  ~EventJournal();

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  Status AppendEvent(const std::string& stream, const Event& event);
  Status AppendFlush();
  Status AppendOutputMark(uint64_t delivered_runtime, uint64_t delivered_serial);
  Status AppendRegister(bool archiving, const std::string& name,
                        const std::string& text);

  /// Buffers the cumulative acked-output cursor for a batched (group)
  /// commit: nothing hits the file until `ack_commit_interval` acks have
  /// accumulated, at which point ONE coalesced kAckCursor record carrying
  /// the latest counters is appended (one write, one fsync under kAlways)
  /// and the batch resets. Values are cumulative, so coalescing loses
  /// nothing but the crash-window acks — which is exactly the contract:
  /// an ack is durable only after its batch commits (see CommitAcks).
  /// Destroying the journal does NOT commit a pending batch; that is the
  /// simulated ack-to-fsync crash window the differential harness kills in.
  Status AppendAckCursor(uint64_t acked_runtime, uint64_t acked_serial);

  /// Commits the pending ack batch now (no-op when nothing is buffered).
  /// Called at end-of-stream flush, before a snapshot, and on demand.
  Status CommitAcks();

  /// Acks buffered per coalesced cursor record; minimum 1 (commit every
  /// ack). Set from CheckpointConfig::ack_commit_interval.
  void set_ack_commit_interval(uint64_t interval) {
    ack_commit_interval_ = interval == 0 ? 1 : interval;
  }

  /// Group commit (WAL-style): under FsyncPolicy::kAlways, fsync once per
  /// `interval` appended records instead of once per record, bounded by
  /// `max_delay_us` — a record waits at most that long (measured from the
  /// first unsynced record, enforced at the next append or explicit Sync())
  /// before its group is pushed to stable storage. `interval == 1` is
  /// exactly the legacy record-per-fsync behavior. Records in the open
  /// group have been write(2)-n (they survive a process crash) but are NOT
  /// durable against power loss until the group's fsync; nothing may be
  /// acked-durable before then (CommitAcks forces a Sync for this reason).
  /// Destroying the journal does NOT sync the open group — that is the
  /// crash window the recovery tests kill inside.
  void set_group_commit(uint64_t interval, uint64_t max_delay_us) {
    group_commit_interval_ = interval == 0 ? 1 : interval;
    group_commit_max_delay_us_ = max_delay_us;
  }

  /// Fsyncs the open commit group now (no-op when nothing is unsynced or
  /// the policy is kNever). Called on end-of-stream flush, ack commits,
  /// segment rotation, and when the dispatcher goes idle.
  Status Sync();

  /// Bytes appended across all segments of this writer (headers included).
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t records_written() const { return records_written_; }
  uint64_t rotations() const { return rotations_; }
  uint64_t segment() const { return segment_; }
  /// Acks buffered since the last committed cursor record.
  uint64_t pending_acks() const { return pending_acks_; }
  /// Coalesced kAckCursor records written.
  uint64_t ack_commits() const { return ack_commits_; }

  /// Durability frontier, meaningful under FsyncPolicy::kAlways only:
  /// counts/bytes covered by a completed fsync. Everything past them sits in
  /// the open commit group — written but not power-loss durable.
  uint64_t durable_records() const { return durable_records_; }
  uint64_t durable_bytes() const { return durable_bytes_; }
  /// Bytes of the CURRENT segment file covered by a completed fsync. Crash
  /// tests truncate the segment to this size to simulate power loss at the
  /// exact durability frontier.
  uint64_t synced_segment_bytes() const { return synced_segment_bytes_; }
  /// Records written but not yet covered by an fsync (open group size).
  uint64_t unsynced_records() const { return unsynced_records_; }
  /// Completed group fsyncs.
  uint64_t group_commits() const { return group_commits_; }

  /// Attaches per-append latency histograms (not owned; nullptr detaches):
  /// `append` times frame build + write(2), `fsync` times the fsync(2) under
  /// FsyncPolicy::kAlways. Detached, the append path takes no timestamps.
  void set_latency_metrics(obs::HistogramMetric* append,
                           obs::HistogramMetric* fsync) {
    append_latency_ = append;
    fsync_latency_ = fsync;
  }

  /// Histogram of group-commit occupancy: records covered per fsync (not
  /// owned; nullptr detaches).
  void set_group_occupancy_metric(obs::HistogramMetric* occupancy) {
    group_occupancy_ = occupancy;
  }

 private:
  EventJournal(std::string dir, uint64_t snapshot, uint64_t rotate_bytes,
               FsyncPolicy fsync)
      : dir_(std::move(dir)), snapshot_(snapshot), rotate_bytes_(rotate_bytes),
        fsync_(fsync) {}

  Status OpenSegment(uint64_t segment);
  Status AppendPayload(const std::string& payload);

  std::string dir_;
  uint64_t snapshot_ = 0;
  uint64_t rotate_bytes_ = 0;
  FsyncPolicy fsync_ = FsyncPolicy::kNever;

  obs::HistogramMetric* append_latency_ = nullptr;
  obs::HistogramMetric* fsync_latency_ = nullptr;
  obs::HistogramMetric* group_occupancy_ = nullptr;

  int fd_ = -1;
  uint64_t segment_ = 0;
  uint64_t segment_bytes_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t records_written_ = 0;
  uint64_t rotations_ = 0;

  // Group-commit state (kAlways only; see set_group_commit).
  uint64_t group_commit_interval_ = 1;
  uint64_t group_commit_max_delay_us_ = 0;  // 0 = no time bound
  uint64_t unsynced_records_ = 0;
  uint64_t group_open_ns_ = 0;  // MonotonicNs of the group's first record
  uint64_t durable_records_ = 0;
  uint64_t durable_bytes_ = 0;
  uint64_t synced_segment_bytes_ = 0;
  uint64_t group_commits_ = 0;

  // Pending ack batch (latest cumulative counters win; see AppendAckCursor).
  uint64_t ack_commit_interval_ = 1;
  uint64_t pending_acks_ = 0;
  uint64_t pending_ack_runtime_ = 0;
  uint64_t pending_ack_serial_ = 0;
  uint64_t ack_commits_ = 0;
};

/// Result of scanning one epoch's segments. Recovery replays `records` in
/// order; `truncated` reports that the scan stopped early at a torn or
/// corrupt record (crash mid-append) — everything before it is intact, and
/// recovery proceeds from the valid prefix.
struct JournalScan {
  std::vector<JournalRecord> records;
  uint64_t segments_read = 0;
  /// Segment index recovery should continue appending at (last segment
  /// seen + 1; 0 when the epoch has no segments yet).
  uint64_t next_segment = 0;
  bool truncated = false;
  std::string truncation_reason;
  /// When truncated: the damaged segment and the valid byte prefix at its
  /// front (0 when even the header is unusable). RepairJournal cuts the
  /// damage out with these so the next scan reads past the old crash
  /// point into records journaled after recovery.
  uint64_t truncated_segment = 0;
  uint64_t truncated_offset = 0;
};

/// Reads every segment of epoch `snapshot` in `dir`, in segment order,
/// stopping cleanly at the first record whose length or CRC does not
/// verify. A missing directory or an epoch with no segments yields an empty
/// scan, not an error.
Result<JournalScan> ReadJournal(const std::string& dir, uint64_t snapshot);

/// Deletes every journal segment in `dir` belonging to an epoch older than
/// `keep_snapshot` (checkpoint garbage collection).
void RemoveStaleJournals(const std::string& dir, uint64_t keep_snapshot);

/// Makes the epoch's segments scannable end-to-end again after a truncated
/// scan, and returns the segment index journaling should resume at. A
/// damaged segment left in place would stop every FUTURE scan at the old
/// crash point, silently hiding records journaled after recovery — so the
/// torn tail is resized away (or, when the segment header itself is
/// unusable, the slot is left to be overwritten by the resumed writer).
/// No-op (returns next_segment) for clean scans.
uint64_t RepairJournal(const std::string& dir, uint64_t snapshot,
                       const JournalScan& scan);

/// Journal segment file name for one (epoch, segment) pair.
std::string SegmentFileName(uint64_t snapshot, uint64_t segment);

}  // namespace checkpoint
}  // namespace sase

#endif  // SASE_CHECKPOINT_JOURNAL_H_
