#include "checkpoint/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "db/dump.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace sase {
namespace checkpoint {
namespace {

constexpr const char* kStateHeaderV1 = "SASE-CHECKPOINT v1";
constexpr const char* kStateHeaderV2 = "SASE-CHECKPOINT v2";
constexpr const char* kStateHeaderV3 = "SASE-CHECKPOINT v3";
constexpr const char* kStateHeaderV4 = "SASE-CHECKPOINT v4";
constexpr const char* kManifestHeader = "SASE-MANIFEST v1";
constexpr const char* kEngineHeader = "SASE-ENGINE-STATE v1";

std::string SnapshotDir(const std::string& dir, uint64_t id) {
  return dir + "/snap-" + std::to_string(id);
}

/// Best-effort fsync of an already-written file (and of the directory for
/// the manifest rename): recovery correctness never depends on it, but the
/// window in which an OS crash can lose a fresh checkpoint shrinks to the
/// rename itself.
void SyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

// Field parsing uses the strict util ParseU64/ParseI64 (string_util.h),
// shared with the engine-state codec.

Status WriteState(const std::string& path, const SystemSnapshot& snap) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << kStateHeaderV4 << "\n";
  out << "SHARDS " << snap.shard_count << "\n";
  out << "KEY " << EscapeField(snap.partition_key) << "\n";
  out << "DISPATCHED " << snap.events_dispatched << "\n";
  out << "DELIVERED " << snap.delivered_runtime << "|" << snap.delivered_serial
      << "\n";
  out << "ACKED " << snap.acked_runtime << "|" << snap.acked_serial << "\n";
  out << "ROUTED " << (snap.any_routed ? 1 : 0) << "|" << snap.routed_stream
      << "|" << (snap.multi_routed ? 1 : 0) << "\n";
  out << "CATALOG";
  for (size_t i = 0; i < snap.catalog_types.size(); ++i) {
    out << (i == 0 ? " " : "|") << EscapeField(snap.catalog_types[i]);
  }
  out << "\n";
  for (const SnapshotStream& stream : snap.streams) {
    out << "STREAM " << stream.id << "|" << EscapeField(stream.name) << "|"
        << stream.clock << "|" << stream.last_seq << "|" << stream.events
        << "\n";
  }
  for (const SnapshotSplit& split : snap.splits) {
    out << "SPLIT " << split.stream << "|" << split.mode << "|"
        << db::EncodeValue(split.key) << "|"
        << EscapeField(split.secondary_attr) << "\n";
  }
  for (const SnapshotQuery& query : snap.queries) {
    out << "QUERY " << query.id << "|" << (query.archiving ? "A" : "M") << "|"
        << (query.runtime_hosted ? "R" : "S") << "|" << query.registered_at
        << "|" << (query.options.push_window ? 1 : 0) << "|"
        << (query.options.push_predicates ? 1 : 0) << "|"
        << (query.options.use_partitioning ? 1 : 0) << "|"
        << EscapeField(query.name) << "|" << EscapeField(query.text) << "\n";
  }
  for (const SnapshotWindowEvent& entry : snap.window) {
    out << "WINDOW " << entry.stream << "|" << entry.global << "|"
        << entry.event->type() << "|" << entry.event->timestamp() << "|"
        << entry.event->seq() << "|" << entry.event->attribute_count();
    for (size_t i = 0; i < entry.event->attribute_count(); ++i) {
      out << "|" << db::EncodeValue(entry.event->attribute(static_cast<AttrIndex>(i)));
    }
    out << "\n";
  }
  out << "END\n";
  out.close();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

/// engine.sase: framed engine-state sections (snapshot v2).
///
///   SASE-ENGINE-STATE v1
///   SECTION <kind>|<host>|<query-id>|<version>|<payload-bytes>|<crc32>
///   <payload-bytes bytes of payload>
///   ...
///   END
///
/// Each section's payload is CRC32'd, so a torn or bit-flipped section is
/// detected before any state is restored from it; the byte-counted framing
/// lets a reader skip sections whose kind it does not understand.
Status WriteEngineState(const std::string& path, const SystemSnapshot& snap) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << kEngineHeader << "\n";
  for (const EngineStateSection& section : snap.engine_state) {
    out << "SECTION " << EscapeField(section.kind) << "|"
        << EscapeField(section.host) << "|" << section.query << "|"
        << section.version << "|" << section.payload.size() << "|"
        << Crc32(section.payload.data(), section.payload.size()) << "\n";
    out.write(section.payload.data(),
              static_cast<std::streamsize>(section.payload.size()));
    out << "\n";
  }
  out << "END\n";
  out.close();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Status ReadEngineState(const std::string& path, SystemSnapshot* snap) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("missing engine-state file: " + path);
  }
  std::error_code ec;
  uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status::Internal("cannot stat " + path + ": " + ec.message());
  std::string line;
  if (!std::getline(in, line) || line != kEngineHeader) {
    return Status::ParseError("bad engine-state header in " + path);
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "END") return Status::Ok();
    if (!StartsWith(line, "SECTION ")) {
      return Status::ParseError("bad engine-state line: " + line);
    }
    std::vector<std::string> fields = Split(line.substr(8), '|');
    if (fields.size() != 6) {
      return Status::ParseError("bad engine-state SECTION line: " + line);
    }
    EngineStateSection section;
    SASE_ASSIGN_OR_RETURN(section.kind, UnescapeField(fields[0]));
    SASE_ASSIGN_OR_RETURN(section.host, UnescapeField(fields[1]));
    SASE_ASSIGN_OR_RETURN(int64_t query, ParseI64(fields[2]));
    SASE_ASSIGN_OR_RETURN(uint64_t version, ParseU64(fields[3]));
    SASE_ASSIGN_OR_RETURN(uint64_t length, ParseU64(fields[4]));
    SASE_ASSIGN_OR_RETURN(uint64_t crc, ParseU64(fields[5]));
    section.query = query;
    if (version > std::numeric_limits<uint32_t>::max()) {
      return Status::ParseError("bad engine-state section version in: " + line);
    }
    section.version = static_cast<uint32_t>(version);
    std::string where = "engine-state section (" + section.kind + ", " +
                        section.host + ", query #" +
                        std::to_string(section.query) + ")";
    // The length field is untrusted bytes off disk: clamp it against the
    // file itself before allocating, so a corrupt header is a clean parse
    // error rather than a length_error/bad_alloc abort mid-recovery.
    uint64_t position =
        in.tellg() < 0 ? file_size : static_cast<uint64_t>(in.tellg());
    if (length > file_size - std::min(file_size, position)) {
      return Status::ParseError(where + " is truncated");
    }
    section.payload.resize(length);
    if (length > 0 &&
        !in.read(section.payload.data(), static_cast<std::streamsize>(length))) {
      return Status::ParseError(where + " is truncated");
    }
    char newline = 0;
    if (!in.get(newline) || newline != '\n') {
      return Status::ParseError(where + " has bad framing");
    }
    if (Crc32(section.payload.data(), section.payload.size()) != crc) {
      return Status::ParseError(where + " failed its CRC check");
    }
    snap->engine_state.push_back(std::move(section));
  }
  return Status::ParseError("engine-state file truncated (no END): " + path);
}

}  // namespace

Status WriteSnapshot(const std::string& dir, const SystemSnapshot& snap,
                     const db::Database& database) {
  std::error_code ec;
  std::string snap_dir = SnapshotDir(dir, snap.snapshot_id);
  std::filesystem::create_directories(snap_dir, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create snapshot directory " +
                                   snap_dir + ": " + ec.message());
  }
  SASE_RETURN_IF_ERROR(WriteState(snap_dir + "/state.sase", snap));
  SASE_RETURN_IF_ERROR(WriteEngineState(snap_dir + "/engine.sase", snap));
  SASE_RETURN_IF_ERROR(db::DumpToFile(database, snap_dir + "/db.sase"));
  SyncPath(snap_dir + "/state.sase");
  SyncPath(snap_dir + "/engine.sase");
  SyncPath(snap_dir + "/db.sase");

  // The manifest repoint is the commit: tmp + rename keeps the previous
  // checkpoint authoritative until the new one is fully on disk. The
  // `format` line is the version negotiation: a reader refuses a directory
  // written by a newer format instead of misreading it (absent = v1).
  std::string tmp = dir + "/MANIFEST.tmp";
  {
    std::ofstream out(tmp);
    if (!out.is_open()) {
      return Status::InvalidArgument("cannot open for writing: " + tmp);
    }
    out << kManifestHeader << "\n";
    out << "snapshot " << snap.snapshot_id << "\n";
    out << "format " << kSnapshotFormat << "\n";
    out.close();
    if (!out.good()) return Status::Internal("write failed: " + tmp);
  }
  SyncPath(tmp);
  std::filesystem::rename(tmp, dir + "/MANIFEST", ec);
  if (ec) {
    return Status::Internal("cannot commit manifest: " + ec.message());
  }
  SyncPath(dir);
  return Status::Ok();
}

Result<uint64_t> ReadManifest(const std::string& dir) {
  std::ifstream in(dir + "/MANIFEST");
  if (!in.is_open()) {
    return Status::NotFound("no checkpoint manifest in " + dir);
  }
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    return Status::ParseError("bad manifest header in " + dir);
  }
  Result<uint64_t> snapshot =
      Status::ParseError("manifest in " + dir + " names no snapshot");
  while (std::getline(in, line)) {
    if (StartsWith(line, "snapshot ")) {
      snapshot = ParseU64(line.substr(9));
      if (!snapshot.ok()) return snapshot.status();
    } else if (StartsWith(line, "format ")) {
      SASE_ASSIGN_OR_RETURN(uint64_t format, ParseU64(line.substr(7)));
      if (format > static_cast<uint64_t>(kSnapshotFormat)) {
        return Status::InvalidArgument(
            "checkpoint in " + dir + " uses snapshot format " +
            std::to_string(format) + "; this reader supports up to " +
            std::to_string(kSnapshotFormat));
      }
    }
  }
  return snapshot;
}

Result<SystemSnapshot> ReadSnapshot(const std::string& dir, uint64_t id,
                                    db::Database* database) {
  std::string snap_dir = SnapshotDir(dir, id);
  std::ifstream in(snap_dir + "/state.sase");
  if (!in.is_open()) {
    return Status::NotFound("missing snapshot state: " + snap_dir);
  }
  std::string line;
  if (!std::getline(in, line) ||
      (line != kStateHeaderV1 && line != kStateHeaderV2 &&
       line != kStateHeaderV3 && line != kStateHeaderV4)) {
    return Status::ParseError("bad snapshot header in " + snap_dir);
  }
  SystemSnapshot snap;
  snap.format = line == kStateHeaderV1   ? kSnapshotFormatV1
                : line == kStateHeaderV2 ? kSnapshotFormatV2
                : line == kStateHeaderV3 ? kSnapshotFormatV3
                                         : kSnapshotFormatV4;
  snap.snapshot_id = id;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "END") {
      saw_end = true;
      break;
    }
    size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Status::ParseError("bad snapshot line: " + line);
    }
    std::string tag = line.substr(0, space);
    std::vector<std::string> fields = Split(line.substr(space + 1), '|');
    auto field_u64 = [&fields](size_t i) { return ParseU64(fields[i]); };
    auto field_i64 = [&fields](size_t i) { return ParseI64(fields[i]); };

    if (tag == "SHARDS") {
      auto value = field_i64(0);
      if (!value.ok()) return value.status();
      snap.shard_count = static_cast<int>(value.value());
    } else if (tag == "KEY") {
      auto key = UnescapeField(fields[0]);
      if (!key.ok()) return key.status();
      snap.partition_key = std::move(key).value();
    } else if (tag == "DISPATCHED") {
      auto value = field_u64(0);
      if (!value.ok()) return value.status();
      snap.events_dispatched = value.value();
    } else if (tag == "DELIVERED") {
      if (fields.size() != 2) return Status::ParseError("bad DELIVERED line");
      auto runtime = field_u64(0);
      auto serial = field_u64(1);
      if (!runtime.ok()) return runtime.status();
      if (!serial.ok()) return serial.status();
      snap.delivered_runtime = runtime.value();
      snap.delivered_serial = serial.value();
    } else if (tag == "ACKED") {
      if (fields.size() != 2) return Status::ParseError("bad ACKED line");
      auto runtime = field_u64(0);
      auto serial = field_u64(1);
      if (!runtime.ok()) return runtime.status();
      if (!serial.ok()) return serial.status();
      snap.acked_runtime = runtime.value();
      snap.acked_serial = serial.value();
      snap.has_acked = true;
    } else if (tag == "ROUTED") {
      if (fields.size() != 3) return Status::ParseError("bad ROUTED line");
      auto stream = field_u64(1);
      if (!stream.ok()) return stream.status();
      snap.any_routed = fields[0] == "1";
      snap.routed_stream = static_cast<StreamId>(stream.value());
      snap.multi_routed = fields[2] == "1";
    } else if (tag == "CATALOG") {
      for (const std::string& field : fields) {
        auto name = UnescapeField(field);
        if (!name.ok()) return name.status();
        snap.catalog_types.push_back(std::move(name).value());
      }
    } else if (tag == "STREAM") {
      if (fields.size() != 5) return Status::ParseError("bad STREAM line");
      SnapshotStream stream;
      auto sid = field_u64(0);
      auto name = UnescapeField(fields[1]);
      auto clock = field_i64(2);
      auto seq = field_u64(3);
      auto events = field_u64(4);
      if (!sid.ok()) return sid.status();
      if (!name.ok()) return name.status();
      if (!clock.ok()) return clock.status();
      if (!seq.ok()) return seq.status();
      if (!events.ok()) return events.status();
      stream.id = static_cast<StreamId>(sid.value());
      stream.name = std::move(name).value();
      stream.clock = clock.value();
      stream.last_seq = seq.value();
      stream.events = events.value();
      snap.streams.push_back(std::move(stream));
    } else if (tag == "SPLIT") {
      if (fields.size() != 4) return Status::ParseError("bad SPLIT line");
      SnapshotSplit split;
      auto sid = field_u64(0);
      auto mode = field_i64(1);
      auto key = db::DecodeValue(fields[2]);
      auto attr = UnescapeField(fields[3]);
      if (!sid.ok()) return sid.status();
      if (!mode.ok()) return mode.status();
      if (!key.ok()) return key.status();
      if (!attr.ok()) return attr.status();
      split.stream = static_cast<StreamId>(sid.value());
      split.mode = static_cast<int>(mode.value());
      split.key = std::move(key).value();
      split.secondary_attr = std::move(attr).value();
      snap.splits.push_back(std::move(split));
    } else if (tag == "QUERY") {
      if (fields.size() != 9) return Status::ParseError("bad QUERY line");
      SnapshotQuery query;
      auto qid = field_i64(0);
      auto at = field_u64(3);
      auto name = UnescapeField(fields[7]);
      auto text = UnescapeField(fields[8]);
      if (!qid.ok()) return qid.status();
      if (!at.ok()) return at.status();
      if (!name.ok()) return name.status();
      if (!text.ok()) return text.status();
      query.id = qid.value();
      query.archiving = fields[1] == "A";
      query.runtime_hosted = fields[2] == "R";
      query.registered_at = at.value();
      query.options.push_window = fields[4] == "1";
      query.options.push_predicates = fields[5] == "1";
      query.options.use_partitioning = fields[6] == "1";
      query.name = std::move(name).value();
      query.text = std::move(text).value();
      snap.queries.push_back(std::move(query));
    } else if (tag == "WINDOW") {
      if (fields.size() < 6) return Status::ParseError("bad WINDOW line");
      auto sid = field_u64(0);
      auto global = field_u64(1);
      auto type = field_u64(2);
      auto ts = field_i64(3);
      auto seq = field_u64(4);
      auto count = field_u64(5);
      if (!sid.ok()) return sid.status();
      if (!global.ok()) return global.status();
      if (!type.ok()) return type.status();
      if (!ts.ok()) return ts.status();
      if (!seq.ok()) return seq.status();
      if (!count.ok()) return count.status();
      if (fields.size() != 6 + count.value()) {
        return Status::ParseError("WINDOW line value count mismatch");
      }
      std::vector<Value> values;
      values.reserve(count.value());
      for (uint64_t i = 0; i < count.value(); ++i) {
        auto value = db::DecodeValue(fields[6 + i]);
        if (!value.ok()) return value.status();
        values.push_back(std::move(value).value());
      }
      SnapshotWindowEvent entry;
      entry.stream = static_cast<StreamId>(sid.value());
      entry.global = global.value();
      entry.event = std::make_shared<Event>(
          static_cast<EventTypeId>(type.value()), ts.value(), seq.value(),
          std::move(values));
      snap.window.push_back(std::move(entry));
    } else {
      return Status::ParseError("unknown snapshot line: " + line);
    }
  }
  if (!saw_end) {
    return Status::ParseError("snapshot state truncated (no END): " + snap_dir);
  }
  if (snap.format >= kSnapshotFormatV2) {
    // A bad section is a hard error, not a fallback to window replay: the
    // caller must not restore half a system from a damaged checkpoint.
    SASE_RETURN_IF_ERROR(ReadEngineState(snap_dir + "/engine.sase", &snap));
  }
  if (database != nullptr) {
    SASE_RETURN_IF_ERROR(db::LoadFileInto(snap_dir + "/db.sase", database));
  }
  return snap;
}

std::string DbDumpPath(const std::string& dir, uint64_t id) {
  return SnapshotDir(dir, id) + "/db.sase";
}

void RemoveStaleSnapshots(const std::string& dir, uint64_t keep) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return;
  for (const auto& entry : it) {
    std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0) continue;
    uint64_t id = std::strtoull(name.substr(5).c_str(), nullptr, 10);
    if (id < keep) {
      std::filesystem::remove_all(entry.path(), ec);
    }
  }
}

}  // namespace checkpoint
}  // namespace sase
