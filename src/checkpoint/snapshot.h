#ifndef SASE_CHECKPOINT_SNAPSHOT_H_
#define SASE_CHECKPOINT_SNAPSHOT_H_

#include <string>
#include <vector>

#include "core/event.h"
#include "core/stream.h"
#include "db/database.h"
#include "engine/planner.h"
#include "engine/query_engine.h"
#include "util/status.h"

namespace sase {
namespace checkpoint {

/// One registered query as captured at a quiesce point. `registered_at` is
/// the global dispatch index the query was registered at — recovery
/// re-registers it between the same two events of the replayed in-flight
/// window, reproducing the serial construction history (the same contract
/// the runtime's elastic Resize replay uses).
struct SnapshotQuery {
  QueryId id = 0;
  bool archiving = false;       // archiving rule vs monitoring query
  bool runtime_hosted = false;  // sharded runtime vs serial engine
  uint64_t registered_at = 0;
  PlanOptions options;
  std::string name;
  std::string text;
};

/// Dispatch stamp of one interned input stream at the quiesce point.
struct SnapshotStream {
  StreamId id = kDefaultStream;
  std::string name;  // lowercased FROM name; empty = default input
  Timestamp clock = 0;
  SequenceNumber last_seq = 0;
  uint64_t events = 0;
};

/// One retained in-flight-window event, with its original global dispatch
/// index (the replay interleaving key across streams).
struct SnapshotWindowEvent {
  StreamId stream = kDefaultStream;
  uint64_t global = 0;
  EventPtr event;
};

/// One hot-key split-table entry (v4): key `key` of stream `stream` is
/// rerouted away from its key-hash shard — `mode` mirrors
/// Partitioner::SplitMode (0 = spread round-robin, 1 = sub-hash by
/// `(key, secondary_attr)`). A secondary split's sub-partition state lives
/// on the shard the sub-hash picks, so recovery must restore the table
/// before any routing or replay.
struct SnapshotSplit {
  StreamId stream = kDefaultStream;
  int mode = 0;
  Value key;
  std::string secondary_attr;  // empty for spread
};

/// Current snapshot format. v1 rebuilt engine state by muted replay of the
/// in-flight window (and therefore refused aggregates, WITHIN-less stateful
/// queries and stateful serial-engine queries); v2 adds direct
/// operator-state serialization in per-query framed sections (engine.sase),
/// covering the whole language surface; v3 adds the consumer-acked output
/// cursor (ACKED line) the exactly-once recovery gate resumes from; v4 adds
/// the hot-key split table (SPLIT lines) so a recovered runtime re-routes
/// split keys identically. The v4 reader still reads v1–v3 snapshots;
/// recovery falls back to window replay for v1, to the delivered-output
/// marks (at-least-once) for pre-cursor snapshots under AckMode::kConsumer,
/// and to an empty split table for pre-v4 snapshots.
constexpr int kSnapshotFormatV1 = 1;
constexpr int kSnapshotFormatV2 = 2;
constexpr int kSnapshotFormatV3 = 3;
constexpr int kSnapshotFormatV4 = 4;
constexpr int kSnapshotFormat = kSnapshotFormatV4;

/// One framed engine-state section (snapshot v2): the serialized operator
/// state of one query's plan on one hosting engine, or an engine-level
/// counter payload (`query == 0`). Sections are individually CRC'd and
/// versioned in the engine.sase file, so a reader can verify and skip
/// sections it does not understand.
struct EngineStateSection {
  /// Section kind: "plan" (QueryPlan::SaveState payload) or "engine"
  /// (QueryEngine::SerializeEngineState payload). Readers skip unknown
  /// kinds.
  std::string kind;
  /// Hosting engine: "serial", "broadcast", or "shard-<i>".
  std::string host;
  QueryId query = 0;  // 0 for engine-level sections
  uint32_t version = 1;
  std::string payload;
};

/// Everything outside the Event Database that a SaseSystem needs to resume:
/// registered queries in dispatch order, per-stream dispatch stamps and
/// clocks, the in-flight replay window, merger/dispatch watermarks, the
/// runtime shape, the delivered-output counters the recovery gate resumes
/// emission from, and (v2) the serialized engine state per query and host.
/// The Event Database itself rides along as a db::Dump file in the same
/// snapshot directory.
struct SystemSnapshot {
  uint64_t snapshot_id = 0;
  /// Format this snapshot was read from / will be written as.
  int format = kSnapshotFormat;
  int shard_count = 1;
  std::string partition_key;
  uint64_t events_dispatched = 0;
  uint64_t delivered_runtime = 0;
  uint64_t delivered_serial = 0;
  /// Consumer-acked output counters at the snapshot point (v3). `has_acked`
  /// distinguishes "acked 0|0" from "pre-cursor snapshot with no ACKED
  /// line" — the recovery gate falls back to the delivered marks only in
  /// the latter case.
  uint64_t acked_runtime = 0;
  uint64_t acked_serial = 0;
  bool has_acked = false;
  /// Dispatcher routing flags (see ShardedRuntime): restored verbatim so
  /// the recovered dispatcher claims merge progress exactly as the crashed
  /// one would have.
  bool any_routed = false;
  StreamId routed_stream = kDefaultStream;
  bool multi_routed = false;
  /// Event type names in EventTypeId order: the window events and journal
  /// records reference types by id, so recovery refuses a catalog mismatch.
  std::vector<std::string> catalog_types;
  std::vector<SnapshotStream> streams;
  std::vector<SnapshotQuery> queries;
  std::vector<SnapshotWindowEvent> window;
  /// v4: active hot-key splits in (stream, key) order (empty pre-v4).
  std::vector<SnapshotSplit> splits;
  /// v2: framed engine-state sections (empty when format == v1).
  std::vector<EngineStateSection> engine_state;
};

/// Writes `snap` (state file + Event Database dump) into
/// `<dir>/snap-<id>/` and then atomically repoints `<dir>/MANIFEST` at the
/// new snapshot (tmp file + rename), so a crash mid-checkpoint leaves the
/// previous checkpoint intact and authoritative.
Status WriteSnapshot(const std::string& dir, const SystemSnapshot& snap,
                     const db::Database& database);

/// Reads `<dir>/MANIFEST`; NotFound when the directory holds no checkpoint.
Result<uint64_t> ReadManifest(const std::string& dir);

/// Reads snapshot `id` from `dir`. When `database` is non-null the Event
/// Database dump is loaded into it (get-or-append per table, see
/// db::LoadInto); pass nullptr to read the state file alone and load the
/// dump later via DbDumpPath (the recovery bootstrap reads state before the
/// recovered system's database exists).
Result<SystemSnapshot> ReadSnapshot(const std::string& dir, uint64_t id,
                                    db::Database* database);

/// Path of snapshot `id`'s Event Database dump inside `dir`.
std::string DbDumpPath(const std::string& dir, uint64_t id);

/// Deletes snapshot directories older than `keep` (garbage collection after
/// a successful checkpoint).
void RemoveStaleSnapshots(const std::string& dir, uint64_t keep);

}  // namespace checkpoint
}  // namespace sase

#endif  // SASE_CHECKPOINT_SNAPSHOT_H_
