#include "cleaning/anomaly_filter.h"

#include <cctype>

namespace sase {
namespace {

bool AllHex(const std::string& s) {
  for (char c : s) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

void AnomalyFilter::OnReading(const RawReading& reading) {
  ++stats_.readings_in;
  if (!AllHex(reading.tag_id) || reading.tag_id.size() > config_.tag_id_length ||
      reading.reader_id < 0 ||
      (!config_.valid_readers.empty() &&
       config_.valid_readers.count(reading.reader_id) == 0)) {
    ++stats_.dropped_spurious;
    return;
  }
  if (reading.tag_id.size() < config_.tag_id_length) {
    ++stats_.dropped_truncated;
    return;
  }
  next_->OnReading(reading);
}

}  // namespace sase
