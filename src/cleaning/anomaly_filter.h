#ifndef SASE_CLEANING_ANOMALY_FILTER_H_
#define SASE_CLEANING_ANOMALY_FILTER_H_

#include <cstdint>
#include <set>

#include "cleaning/reading.h"

namespace sase {

/// Anomaly Filtering Layer: "removes spurious readings and readings that
/// contain truncated ids" (§3).
///
/// A reading is dropped when
///   - its tag id is shorter than the deployment's EPC length (truncated),
///   - its tag id contains non-hex characters or is overlong (spurious),
///   - its reader id is not one of the registered readers (spurious).
class AnomalyFilter : public ReadingSink {
 public:
  struct Config {
    size_t tag_id_length = 24;  // EPC Class 1 Gen 1 = 96 bits = 24 hex chars
    std::set<int> valid_readers;  // empty = accept any reader id >= 0
  };
  struct Stats {
    uint64_t readings_in = 0;
    uint64_t dropped_truncated = 0;
    uint64_t dropped_spurious = 0;
  };

  AnomalyFilter(Config config, ReadingSink* next)
      : config_(std::move(config)), next_(next) {}

  void OnReading(const RawReading& reading) override;
  void OnFlush() override { next_->OnFlush(); }

  const Stats& stats() const { return stats_; }

 private:
  Config config_;
  ReadingSink* next_;  // not owned
  Stats stats_;
};

}  // namespace sase

#endif  // SASE_CLEANING_ANOMALY_FILTER_H_
