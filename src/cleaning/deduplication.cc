#include "cleaning/deduplication.h"

namespace sase {

void Deduplication::OnReading(const RawReading& reading) {
  ++stats_.readings_in;
  auto area_it = config_.reader_to_area.find(reading.reader_id);
  if (area_it == config_.reader_to_area.end()) {
    ++stats_.dropped_unmapped_reader;
    return;
  }
  int area = area_it->second;

  auto& per_tag = last_emit_[reading.tag_id];
  auto it = per_tag.find(area);
  if (it != per_tag.end() && reading.raw_time - it->second <= config_.horizon &&
      reading.raw_time >= it->second) {
    ++stats_.dropped_duplicates;
    return;
  }
  per_tag[area] = reading.raw_time;

  RawReading out = reading;
  out.reader_id = area;  // downstream sees logical areas
  next_->OnReading(out);
}

}  // namespace sase
