#ifndef SASE_CLEANING_DEDUPLICATION_H_
#define SASE_CLEANING_DEDUPLICATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "cleaning/reading.h"

namespace sase {

/// Deduplication Layer: "removes duplicates, which can be caused either by
/// a redundant setup, where two readers monitor the same logical area, or
/// when an item resides in overlapping read ranges of two separate
/// readers" (§3).
///
/// Readers are mapped to logical areas; a reading is a duplicate when the
/// same (tag, area) pair was already reported within `horizon` logical time
/// units. The default horizon of 0 suppresses only simultaneous duplicates
/// (same tick via a redundant reader); shelf-presence polling at later
/// ticks passes through.
class Deduplication : public ReadingSink {
 public:
  struct Config {
    std::map<int, int> reader_to_area;  // reader id -> logical area id
    int64_t horizon = 0;
  };
  struct Stats {
    uint64_t readings_in = 0;
    uint64_t dropped_duplicates = 0;
    uint64_t dropped_unmapped_reader = 0;
  };

  Deduplication(Config config, ReadingSink* next)
      : config_(std::move(config)), next_(next) {}

  /// The emitted reading has `reader_id` rewritten to the *logical area*
  /// id, collapsing redundant readers — downstream layers reason about
  /// areas, matching Figure 2's "each reader occupies only one logical
  /// area".
  void OnReading(const RawReading& reading) override;
  void OnFlush() override { next_->OnFlush(); }

  const Stats& stats() const { return stats_; }

 private:
  Config config_;
  ReadingSink* next_;  // not owned
  // (tag, area) -> last emission time.
  std::unordered_map<std::string, std::unordered_map<int, int64_t>> last_emit_;
  Stats stats_;
};

}  // namespace sase

#endif  // SASE_CLEANING_DEDUPLICATION_H_
