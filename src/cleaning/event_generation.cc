#include "cleaning/event_generation.h"

#include "util/logging.h"

namespace sase {

EventGeneration::EventGeneration(Config config, const Catalog* catalog,
                                 OnsResolver ons, StreamSource* source)
    : config_(std::move(config)), catalog_(catalog), ons_(std::move(ons)),
      source_(source) {
  for (const auto& [area, type_name] : config_.area_to_event_type) {
    auto type_id = catalog_->FindType(type_name);
    if (type_id.ok()) {
      area_to_type_[area] = type_id.value();
    } else {
      SASE_LOG_WARN << "event generation: unknown event type '" << type_name
                    << "' for area " << area << "; readings there are dropped";
    }
  }
}

void EventGeneration::OnReading(const RawReading& reading) {
  ++stats_.readings_in;
  auto type_it = area_to_type_.find(reading.reader_id);
  if (type_it == area_to_type_.end()) {
    ++stats_.dropped_unmapped_area;
    return;
  }

  std::string product_name = "UNKNOWN";
  if (ons_) {
    auto info = ons_(reading.tag_id);
    if (info.has_value()) {
      product_name = info->product_name;
    } else if (config_.drop_unknown_tags) {
      ++stats_.dropped_unknown_tag;
      return;
    }
  }

  const EventSchema& schema = catalog_->schema(type_it->second);
  std::vector<Value> values(schema.attribute_count());
  AttrIndex tag_attr = schema.FindAttribute("TagId");
  AttrIndex area_attr = schema.FindAttribute("AreaId");
  AttrIndex product_attr = schema.FindAttribute("ProductName");
  if (tag_attr < 0 || area_attr < 0 || product_attr < 0) {
    ++stats_.build_errors;
    return;
  }
  values[static_cast<size_t>(tag_attr)] = Value(reading.tag_id);
  values[static_cast<size_t>(area_attr)] = Value(static_cast<int64_t>(reading.reader_id));
  values[static_cast<size_t>(product_attr)] = Value(product_name);
  // Container pairing (loading/unloading zones): only event types whose
  // schema declares ContainerId receive it.
  AttrIndex container_attr = schema.FindAttribute("ContainerId");
  if (container_attr >= 0 && !reading.container_id.empty()) {
    values[static_cast<size_t>(container_attr)] = Value(reading.container_id);
  }

  source_->Publish(type_it->second, reading.raw_time, std::move(values));
  ++stats_.events_out;
}

}  // namespace sase
