#ifndef SASE_CLEANING_EVENT_GENERATION_H_
#define SASE_CLEANING_EVENT_GENERATION_H_

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "cleaning/reading.h"
#include "core/catalog.h"
#include "core/stream.h"

namespace sase {

/// Product metadata resolved during event generation. "In an actual
/// real-world system, attributes (e.g., product name, expiration date) can
/// be retrieved from a tag's user-memory bank or from an Object Name
/// Service (ONS). In our system, we simulate an ONS with a local database
/// storing product metadata" (§3) — see db/ons.h for that database.
struct ProductInfo {
  std::string product_name;
  std::string expiration_date;
  bool saleable = true;
};

/// Callback resolving a tag id to product metadata (typically bound to
/// Ons::Lookup). Returning nullopt marks the tag unknown.
using OnsResolver = std::function<std::optional<ProductInfo>(const std::string&)>;

/// Event Generation Layer: "generates events according to a pre-defined
/// schema" (§3). Each cleaned reading (tag, logical area, tick) becomes a
/// typed event: the area's kind picks the event type (SHELF_READING,
/// COUNTER_READING, EXIT_READING, ...), and the ONS provides ProductName.
class EventGeneration : public ReadingSink {
 public:
  struct Config {
    /// Logical area id -> event type name. Areas absent here are dropped.
    std::map<int, std::string> area_to_event_type;
    /// Drop readings whose tag the ONS does not know (default keeps them
    /// with ProductName = "UNKNOWN").
    bool drop_unknown_tags = false;
  };
  struct Stats {
    uint64_t readings_in = 0;
    uint64_t events_out = 0;
    uint64_t dropped_unknown_tag = 0;
    uint64_t dropped_unmapped_area = 0;
    uint64_t build_errors = 0;
  };

  /// Events are published through `source` (which assigns sequence numbers
  /// and enforces stream order).
  EventGeneration(Config config, const Catalog* catalog, OnsResolver ons,
                  StreamSource* source);

  void OnReading(const RawReading& reading) override;
  void OnFlush() override { source_->Flush(); }

  const Stats& stats() const { return stats_; }

 private:
  Config config_;
  const Catalog* catalog_;
  OnsResolver ons_;
  StreamSource* source_;  // not owned
  // Resolved event type ids per area, cached at construction.
  std::map<int, EventTypeId> area_to_type_;
  Stats stats_;
};

}  // namespace sase

#endif  // SASE_CLEANING_EVENT_GENERATION_H_
