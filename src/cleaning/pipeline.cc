#include "cleaning/pipeline.h"

#include <sstream>

namespace sase {

CleaningPipeline::CleaningPipeline(Config config, const Catalog* catalog,
                                   OnsResolver ons, EventSink* output) {
  // Built back-to-front so each layer can point at its successor.
  source_ = std::make_unique<StreamSource>(output);
  generation_ = std::make_unique<EventGeneration>(
      std::move(config.generation), catalog, std::move(ons), source_.get());
  dedup_ = std::make_unique<Deduplication>(std::move(config.dedup),
                                           generation_.get());
  time_ = std::make_unique<TimeConversion>(config.time, dedup_.get());
  smoothing_ = std::make_unique<TemporalSmoothing>(config.smoothing, time_.get());
  anomaly_ = std::make_unique<AnomalyFilter>(std::move(config.anomaly),
                                             smoothing_.get());
}

std::string CleaningPipeline::StatsReport() const {
  std::ostringstream out;
  const auto& a = anomaly_->stats();
  out << "AnomalyFilter: in=" << a.readings_in
      << " spurious=" << a.dropped_spurious
      << " truncated=" << a.dropped_truncated << "\n";
  const auto& s = smoothing_->stats();
  out << "TemporalSmoothing: in=" << s.readings_in
      << " filled=" << s.readings_filled << "\n";
  const auto& t = time_->stats();
  out << "TimeConversion: in=" << t.readings_in << "\n";
  const auto& d = dedup_->stats();
  out << "Deduplication: in=" << d.readings_in
      << " duplicates=" << d.dropped_duplicates
      << " unmapped=" << d.dropped_unmapped_reader << "\n";
  const auto& g = generation_->stats();
  out << "EventGeneration: in=" << g.readings_in << " events=" << g.events_out
      << " unknown_tags=" << g.dropped_unknown_tag
      << " unmapped_areas=" << g.dropped_unmapped_area;
  return out.str();
}

}  // namespace sase
