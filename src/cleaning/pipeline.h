#ifndef SASE_CLEANING_PIPELINE_H_
#define SASE_CLEANING_PIPELINE_H_

#include <memory>
#include <string>

#include "cleaning/anomaly_filter.h"
#include "cleaning/deduplication.h"
#include "cleaning/event_generation.h"
#include "cleaning/temporal_smoothing.h"
#include "cleaning/time_conversion.h"
#include "core/catalog.h"
#include "core/stream.h"

namespace sase {

/// The Cleaning and Association Layer (Figure 1): raw readings flow through
///   Anomaly Filtering -> Temporal Smoothing -> Time Conversion ->
///   Deduplication -> Event Generation
/// and emerge as typed events on the output sink.
///
/// Ordering note: smoothing emits gap-filling readings retroactively, so a
/// filled reading may carry an earlier timestamp than an event already
/// published for another tag. The terminal StreamSource clamps such
/// timestamps forward to keep the event stream's order invariant; with the
/// demo's smoothing window of a few ticks the distortion is at most the
/// window length.
class CleaningPipeline : public ReadingSink {
 public:
  struct Config {
    AnomalyFilter::Config anomaly;
    TemporalSmoothing::Config smoothing;
    TimeConversion::Config time;
    Deduplication::Config dedup;
    EventGeneration::Config generation;
  };

  /// Cleaned events are delivered to `output` (typically a StreamBus that
  /// fans out to the QueryEngine and report channels).
  CleaningPipeline(Config config, const Catalog* catalog, OnsResolver ons,
                   EventSink* output);

  void OnReading(const RawReading& reading) override {
    anomaly_->OnReading(reading);
  }
  void OnFlush() override { anomaly_->OnFlush(); }

  const AnomalyFilter& anomaly_filter() const { return *anomaly_; }
  const TemporalSmoothing& smoothing() const { return *smoothing_; }
  const TimeConversion& time_conversion() const { return *time_; }
  const Deduplication& deduplication() const { return *dedup_; }
  const EventGeneration& event_generation() const { return *generation_; }

  /// Multi-line per-layer counters for the demo UI / tests.
  std::string StatsReport() const;

 private:
  std::unique_ptr<StreamSource> source_;
  std::unique_ptr<EventGeneration> generation_;
  std::unique_ptr<Deduplication> dedup_;
  std::unique_ptr<TimeConversion> time_;
  std::unique_ptr<TemporalSmoothing> smoothing_;
  std::unique_ptr<AnomalyFilter> anomaly_;
};

}  // namespace sase

#endif  // SASE_CLEANING_PIPELINE_H_
