#include "cleaning/reading.h"

#include <sstream>

namespace sase {

std::string RawReading::ToString() const {
  std::ostringstream out;
  out << "reading{tag=" << tag_id << ", reader=" << reader_id
      << ", t=" << raw_time;
  if (!container_id.empty()) out << ", container=" << container_id;
  if (synthesized) out << ", synthesized";
  out << "}";
  return out.str();
}

}  // namespace sase
