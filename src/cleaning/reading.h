#ifndef SASE_CLEANING_READING_H_
#define SASE_CLEANING_READING_H_

#include <cstdint>
#include <string>

#include "util/time_util.h"

namespace sase {

/// One raw RFID reading as delivered by a reader: "Each raw RFID reading
/// consists of the TagId and ReaderId" (§3). `raw_time` is the device's
/// clock in raw units (the Time Conversion Layer maps it to logical ticks);
/// `synthesized` marks readings created by the Temporal Smoothing Layer.
///
/// `container_id` is non-empty when the read range also covered the tag of
/// the container the item sits in (loading/unloading zones pair item tags
/// with container tags — the source of the paper's Containment Update
/// rule, §3).
struct RawReading {
  std::string tag_id;
  int reader_id = -1;
  int64_t raw_time = 0;
  bool synthesized = false;
  std::string container_id;

  std::string ToString() const;
};

/// Consumer interface for raw readings; each cleaning sub-layer is a
/// ReadingSink chained to the next.
class ReadingSink {
 public:
  virtual ~ReadingSink() = default;
  virtual void OnReading(const RawReading& reading) = 0;
  virtual void OnFlush() {}
};

}  // namespace sase

#endif  // SASE_CLEANING_READING_H_
