#include "cleaning/temporal_smoothing.h"

namespace sase {

void TemporalSmoothing::OnReading(const RawReading& reading) {
  ++stats_.readings_in;
  Key key{reading.tag_id, reading.reader_id};
  auto it = last_seen_.find(key);
  if (it != last_seen_.end()) {
    int64_t gap = reading.raw_time - it->second;
    if (gap > config_.sampling_interval && gap <= config_.window) {
      // Fill the missed scans between the two observations.
      for (int64_t t = it->second + config_.sampling_interval;
           t < reading.raw_time; t += config_.sampling_interval) {
        RawReading filled = reading;
        filled.raw_time = t;
        filled.synthesized = true;
        ++stats_.readings_filled;
        next_->OnReading(filled);
      }
    }
    it->second = reading.raw_time;
  } else {
    last_seen_.emplace(std::move(key), reading.raw_time);
  }
  next_->OnReading(reading);
}

}  // namespace sase
