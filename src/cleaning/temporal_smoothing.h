#ifndef SASE_CLEANING_TEMPORAL_SMOOTHING_H_
#define SASE_CLEANING_TEMPORAL_SMOOTHING_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "cleaning/reading.h"

namespace sase {

/// Temporal Smoothing Layer: "the system decides whether an object was
/// present at time t based not only on the reading at time t, but also on
/// the readings of this object in a window of size w before t. Using this
/// heuristic, a new reading may be created" (§3).
///
/// RFID readers are lossy: a tag sitting on a shelf is read at t0 and t2
/// but missed at t1. If consecutive readings of the same (tag, reader)
/// pair are at most `window` raw units apart, the gap is filled with
/// synthesized readings at the reader's sampling interval, so downstream
/// layers see continuous presence.
class TemporalSmoothing : public ReadingSink {
 public:
  struct Config {
    int64_t window = 5;            // max gap (raw time units) to bridge
    int64_t sampling_interval = 1; // reader scan period (raw time units)
  };
  struct Stats {
    uint64_t readings_in = 0;
    uint64_t readings_filled = 0;
  };

  TemporalSmoothing(Config config, ReadingSink* next)
      : config_(config), next_(next) {}

  void OnReading(const RawReading& reading) override;
  void OnFlush() override { next_->OnFlush(); }

  const Stats& stats() const { return stats_; }

 private:
  struct Key {
    std::string tag_id;
    int reader_id;
    bool operator==(const Key& other) const {
      return tag_id == other.tag_id && reader_id == other.reader_id;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return std::hash<std::string>()(key.tag_id) ^
             (std::hash<int>()(key.reader_id) * 0x9E3779B9u);
    }
  };

  Config config_;
  ReadingSink* next_;  // not owned
  std::unordered_map<Key, int64_t, KeyHash> last_seen_;
  Stats stats_;
};

}  // namespace sase

#endif  // SASE_CLEANING_TEMPORAL_SMOOTHING_H_
