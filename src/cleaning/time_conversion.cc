#include "cleaning/time_conversion.h"

// Header-only implementation; this translation unit anchors the module in
// the build so its interface is compiled standalone.
