#ifndef SASE_CLEANING_TIME_CONVERSION_H_
#define SASE_CLEANING_TIME_CONVERSION_H_

#include <cstdint>

#include "cleaning/reading.h"

namespace sase {

/// Time Conversion Layer: "a timestamp is appended to each reading based on
/// a logical time unit that is set as a system configuration parameter"
/// (§3).
///
/// Device clocks tick in raw units (the simulator uses milliseconds);
/// queries reason in logical ticks. The conversion is
///   tick = (raw_time - epoch) / raw_units_per_tick.
class TimeConversion : public ReadingSink {
 public:
  struct Config {
    int64_t epoch = 0;               // raw time corresponding to tick 0
    int64_t raw_units_per_tick = 1;  // logical time unit length
  };
  struct Stats {
    uint64_t readings_in = 0;
  };

  TimeConversion(Config config, ReadingSink* next)
      : config_(config), next_(next) {}

  void OnReading(const RawReading& reading) override {
    ++stats_.readings_in;
    RawReading converted = reading;
    converted.raw_time =
        (reading.raw_time - config_.epoch) / config_.raw_units_per_tick;
    next_->OnReading(converted);
  }
  void OnFlush() override { next_->OnFlush(); }

  const Stats& stats() const { return stats_; }

 private:
  Config config_;
  ReadingSink* next_;  // not owned
  Stats stats_;
};

}  // namespace sase

#endif  // SASE_CLEANING_TIME_CONVERSION_H_
