#ifndef SASE_CORE_BINDING_VEC_H_
#define SASE_CORE_BINDING_VEC_H_

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/event.h"

namespace sase {

/// Flat-buffer storage for per-match event bindings: one EventPtr per
/// pattern slot. Almost every query binds at most kInlineSlots variables, so
/// the common case lives entirely inside the containing Match/scratch object
/// — no heap allocation per match. Wider patterns spill to a vector, and the
/// spill capacity is retained across clear() so steady-state stays
/// allocation-free there too.
///
/// The API is the subset of std::vector the engine uses; elements are always
/// contiguous (data()/begin()/end() are raw pointers either way).
class BindingVec {
 public:
  static constexpr std::size_t kInlineSlots = 8;

  using value_type = EventPtr;
  using iterator = EventPtr*;
  using const_iterator = const EventPtr*;

  BindingVec() = default;

  BindingVec(const BindingVec& other) { *this = other; }
  BindingVec& operator=(const BindingVec& other) {
    if (this == &other) return *this;
    assign(other.data(), other.size());
    return *this;
  }

  BindingVec(BindingVec&& other) noexcept
      : size_(other.size_),
        spilled_(other.spilled_),
        inline_(std::move(other.inline_)),
        spill_(std::move(other.spill_)) {
    other.size_ = 0;
    other.spilled_ = false;
  }
  BindingVec& operator=(BindingVec&& other) noexcept {
    if (this == &other) return *this;
    size_ = other.size_;
    spilled_ = other.spilled_;
    inline_ = std::move(other.inline_);
    spill_ = std::move(other.spill_);
    other.size_ = 0;
    other.spilled_ = false;
    return *this;
  }

  BindingVec& operator=(const std::vector<EventPtr>& v) {
    assign(v.data(), v.size());
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  EventPtr* data() { return spilled_ ? spill_.data() : inline_.data(); }
  const EventPtr* data() const {
    return spilled_ ? spill_.data() : inline_.data();
  }

  EventPtr& operator[](std::size_t i) { return data()[i]; }
  const EventPtr& operator[](std::size_t i) const { return data()[i]; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  void clear() {
    if (spilled_) {
      spill_.clear();  // keeps capacity for the next wide match
      spilled_ = false;
    } else {
      for (std::size_t i = 0; i < size_; ++i) inline_[i].reset();
    }
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > kInlineSlots) Spill(n);
  }

  void push_back(EventPtr e) {
    if (!spilled_ && size_ < kInlineSlots) {
      inline_[size_++] = std::move(e);
      return;
    }
    if (!spilled_) Spill(size_ + 1);
    spill_.push_back(std::move(e));
    ++size_;
  }

  void resize(std::size_t n) {
    if (spilled_) {
      spill_.resize(n);
    } else if (n <= kInlineSlots) {
      for (std::size_t i = n; i < size_; ++i) inline_[i].reset();
    } else {
      Spill(n);
      spill_.resize(n);
    }
    size_ = n;
  }

 private:
  // Moves the inline elements into the spill vector; afterwards all elements
  // live in spill_.
  void Spill(std::size_t capacity_hint) {
    spill_.reserve(capacity_hint);
    for (std::size_t i = 0; i < size_; ++i) {
      spill_.push_back(std::move(inline_[i]));
      inline_[i].reset();
    }
    spilled_ = true;
  }

  void assign(const EventPtr* src, std::size_t n) {
    clear();
    if (n > kInlineSlots) Spill(n);
    if (spilled_) {
      spill_.assign(src, src + n);
    } else {
      for (std::size_t i = 0; i < n; ++i) inline_[i] = src[i];
    }
    size_ = n;
  }

  std::size_t size_ = 0;
  bool spilled_ = false;
  std::array<EventPtr, kInlineSlots> inline_;
  std::vector<EventPtr> spill_;
};

}  // namespace sase

#endif  // SASE_CORE_BINDING_VEC_H_
