#include "core/catalog.h"

#include "util/string_util.h"

namespace sase {

Result<EventTypeId> Catalog::RegisterType(const std::string& name,
                                          std::vector<Attribute> attributes) {
  std::string key = ToUpper(name);
  if (by_name_.count(key) > 0) {
    return Status::AlreadyExists("event type already registered: " + name);
  }
  for (size_t i = 0; i < attributes.size(); ++i) {
    for (size_t j = i + 1; j < attributes.size(); ++j) {
      if (EqualsIgnoreCase(attributes[i].name, attributes[j].name)) {
        return Status::InvalidArgument("duplicate attribute '" +
                                       attributes[i].name + "' in type " + name);
      }
    }
    if (EqualsIgnoreCase(attributes[i].name, "Timestamp") ||
        EqualsIgnoreCase(attributes[i].name, "ts")) {
      return Status::InvalidArgument(
          "attribute name '" + attributes[i].name +
          "' collides with the virtual timestamp attribute");
    }
  }
  EventTypeId id = static_cast<EventTypeId>(schemas_.size());
  schemas_.emplace_back(name, std::move(attributes));
  by_name_.emplace(std::move(key), id);
  return id;
}

Result<EventTypeId> Catalog::FindType(const std::string& name) const {
  auto it = by_name_.find(ToUpper(name));
  if (it == by_name_.end()) {
    return Status::NotFound("unknown event type: " + name);
  }
  return it->second;
}

bool Catalog::HasType(const std::string& name) const {
  return by_name_.count(ToUpper(name)) > 0;
}

const EventSchema& Catalog::schema(EventTypeId id) const {
  return schemas_.at(static_cast<size_t>(id));
}

Catalog Catalog::RetailDemo() {
  Catalog catalog;
  std::vector<Attribute> reading_attrs = {
      {"TagId", ValueType::kString},
      {"AreaId", ValueType::kInt},
      {"ProductName", ValueType::kString},
  };
  std::vector<Attribute> container_attrs = {
      {"TagId", ValueType::kString},
      {"AreaId", ValueType::kInt},
      {"ProductName", ValueType::kString},
      {"ContainerId", ValueType::kString},
  };
  // Registration of the demo types cannot fail (names are unique), so the
  // results are intentionally discarded.
  (void)catalog.RegisterType("SHELF_READING", reading_attrs);
  (void)catalog.RegisterType("COUNTER_READING", reading_attrs);
  (void)catalog.RegisterType("EXIT_READING", reading_attrs);
  (void)catalog.RegisterType("BACKROOM_READING", reading_attrs);
  (void)catalog.RegisterType("LOAD_READING", container_attrs);
  (void)catalog.RegisterType("UNLOAD_READING", container_attrs);
  return catalog;
}

}  // namespace sase
