#ifndef SASE_CORE_CATALOG_H_
#define SASE_CORE_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/schema.h"
#include "util/status.h"

namespace sase {

/// Registry of event types known to a SASE deployment.
///
/// The paper's Event Generation Layer "generates events according to a
/// pre-defined schema"; the Catalog is that pre-defined schema set. Queries
/// are analyzed against it, the cleaning layer emits events conforming to
/// it, and the engine dispatches on the compact EventTypeId it assigns.
class Catalog {
 public:
  Catalog() = default;

  /// Registers a new event type. Type names are case-insensitive and must
  /// be unique; attribute names must be unique within the schema.
  Result<EventTypeId> RegisterType(const std::string& name,
                                   std::vector<Attribute> attributes);

  /// Looks up a type id by (case-insensitive) name.
  Result<EventTypeId> FindType(const std::string& name) const;

  bool HasType(const std::string& name) const;

  /// Schema for a registered id. Precondition: id is valid.
  const EventSchema& schema(EventTypeId id) const;

  size_t type_count() const { return schemas_.size(); }

  /// Registers the retail-store demo schema used throughout the paper:
  ///   SHELF_READING, COUNTER_READING, EXIT_READING, BACKROOM_READING
  /// each with (TagId STRING, AreaId INT, ProductName STRING), and
  ///   LOAD_READING / UNLOAD_READING with an extra ContainerId STRING
  /// for the warehouse containment workloads.
  static Catalog RetailDemo();

 private:
  std::vector<EventSchema> schemas_;
  std::unordered_map<std::string, EventTypeId> by_name_;  // uppercased name
};

}  // namespace sase

#endif  // SASE_CORE_CATALOG_H_
