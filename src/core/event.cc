#include "core/event.h"

#include <sstream>

namespace sase {

const Value& Event::attribute(AttrIndex index) const {
  if (index == kTimestampAttr) {
    // The timestamp is materialized lazily per call; a thread_local scratch
    // Value avoids allocating in the common int case.
    thread_local Value ts_value;
    ts_value = Value(timestamp_);
    return ts_value;
  }
  return values_.at(static_cast<size_t>(index));
}

std::string Event::ToString(const Catalog& catalog) const {
  const EventSchema& schema = catalog.schema(type_);
  std::ostringstream out;
  out << schema.name() << "@" << timestamp_ << "{";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out << ", ";
    out << schema.attributes()[i].name << "=" << values_[i].ToString();
  }
  out << "}";
  return out.str();
}

EventBuilder::EventBuilder(const Catalog& catalog, const std::string& type_name)
    : catalog_(catalog) {
  auto id = catalog.FindType(type_name);
  if (!id.ok()) {
    error_ = id.status();
    return;
  }
  type_ = id.value();
  values_.resize(catalog.schema(type_).attribute_count());
}

EventBuilder& EventBuilder::Set(const std::string& name, Value value) {
  if (!error_.ok()) return *this;
  const EventSchema& schema = catalog_.schema(type_);
  AttrIndex index = schema.FindAttribute(name);
  if (index == kInvalidAttr) {
    error_ = Status::InvalidArgument("unknown attribute '" + name + "' for type " +
                                     schema.name());
    return *this;
  }
  if (index == kTimestampAttr) {
    error_ = Status::InvalidArgument("the timestamp is set via Build(), not Set()");
    return *this;
  }
  ValueType expected = schema.attribute_type(index);
  ValueType actual = value.type();
  bool numeric_ok = (expected == ValueType::kInt || expected == ValueType::kDouble) &&
                    (actual == ValueType::kInt || actual == ValueType::kDouble);
  if (actual != ValueType::kNull && actual != expected && !numeric_ok) {
    error_ = Status::InvalidArgument(
        "attribute '" + name + "' of " + schema.name() + " expects " +
        ValueTypeName(expected) + ", got " + ValueTypeName(actual));
    return *this;
  }
  values_[static_cast<size_t>(index)] = std::move(value);
  return *this;
}

Result<EventPtr> EventBuilder::Build(Timestamp timestamp, SequenceNumber seq) {
  if (!error_.ok()) return error_;
  return EventPtr(std::make_shared<Event>(type_, timestamp, seq, values_));
}

}  // namespace sase
