#ifndef SASE_CORE_EVENT_H_
#define SASE_CORE_EVENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/schema.h"
#include "core/value.h"
#include "util/time_util.h"

namespace sase {

/// Monotone arrival sequence number assigned by the stream source; used to
/// break timestamp ties deterministically.
using SequenceNumber = uint64_t;

/// An event instance: a typed tuple with a logical timestamp.
///
/// Events are immutable once published into a stream. Operators share them
/// via shared_ptr<const Event>; a match holds pointers to its constituent
/// events rather than copies.
class Event {
 public:
  Event(EventTypeId type, Timestamp timestamp, SequenceNumber seq,
        std::vector<Value> values)
      : type_(type), timestamp_(timestamp), seq_(seq),
        values_(std::move(values)) {}

  EventTypeId type() const { return type_; }
  Timestamp timestamp() const { return timestamp_; }
  SequenceNumber seq() const { return seq_; }

  /// Attribute access by schema position; kTimestampAttr yields the
  /// timestamp as an INT value.
  const Value& attribute(AttrIndex index) const;
  size_t attribute_count() const { return values_.size(); }

  /// Renders "TYPE@ts{attr=value, ...}" using the catalog for names.
  std::string ToString(const Catalog& catalog) const;

 private:
  EventTypeId type_;
  Timestamp timestamp_;
  SequenceNumber seq_;
  std::vector<Value> values_;
};

using EventPtr = std::shared_ptr<const Event>;

/// Convenience builder for tests, examples and the event generation layer.
///
///   EventBuilder b(catalog, "SHELF_READING");
///   EventPtr e = b.Set("TagId", "TAG1").Set("AreaId", 2).Build(ts, seq);
class EventBuilder {
 public:
  EventBuilder(const Catalog& catalog, const std::string& type_name);

  /// Sets an attribute by (case-insensitive) name. Unknown names or type
  /// mismatches are recorded and reported by Build().
  EventBuilder& Set(const std::string& name, Value value);

  /// Finalizes the event. Unset attributes are NULL.
  Result<EventPtr> Build(Timestamp timestamp, SequenceNumber seq);

 private:
  const Catalog& catalog_;
  EventTypeId type_ = kInvalidEventType;
  std::vector<Value> values_;
  Status error_ = Status::Ok();
};

/// Returns true if `a` precedes `b` in stream order (timestamp, then seq).
inline bool EarlierThan(const Event& a, const Event& b) {
  if (a.timestamp() != b.timestamp()) return a.timestamp() < b.timestamp();
  return a.seq() < b.seq();
}

}  // namespace sase

#endif  // SASE_CORE_EVENT_H_
