#include "core/schema.h"

#include <sstream>

#include "util/string_util.h"

namespace sase {

namespace {
const std::string kTimestampName = "Timestamp";
}

EventSchema::EventSchema(std::string name, std::vector<Attribute> attributes)
    : name_(std::move(name)), attributes_(std::move(attributes)) {}

AttrIndex EventSchema::FindAttribute(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (EqualsIgnoreCase(attributes_[i].name, name)) {
      return static_cast<AttrIndex>(i);
    }
  }
  if (EqualsIgnoreCase(name, "Timestamp") || EqualsIgnoreCase(name, "ts")) {
    return kTimestampAttr;
  }
  return kInvalidAttr;
}

ValueType EventSchema::attribute_type(AttrIndex index) const {
  if (index == kTimestampAttr) return ValueType::kInt;
  return attributes_.at(static_cast<size_t>(index)).type;
}

const std::string& EventSchema::attribute_name(AttrIndex index) const {
  if (index == kTimestampAttr) return kTimestampName;
  return attributes_.at(static_cast<size_t>(index)).name;
}

std::string EventSchema::ToString() const {
  std::ostringstream out;
  out << name_ << "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out << ", ";
    out << attributes_[i].name << " " << ValueTypeName(attributes_[i].type);
  }
  out << ")";
  return out.str();
}

}  // namespace sase
