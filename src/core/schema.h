#ifndef SASE_CORE_SCHEMA_H_
#define SASE_CORE_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/value.h"
#include "util/status.h"

namespace sase {

/// Identifier of a registered event type; assigned by the Catalog.
using EventTypeId = int32_t;
inline constexpr EventTypeId kInvalidEventType = -1;

/// One named, typed attribute in an event schema.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Index of an attribute within its schema. kTimestampAttr is the virtual
/// attribute every event exposes (its logical timestamp); the SASE language
/// addresses it as `x.Timestamp` / `x.ts`.
using AttrIndex = int32_t;
inline constexpr AttrIndex kInvalidAttr = -1;
inline constexpr AttrIndex kTimestampAttr = -2;

/// Schema of one event type, e.g.
///   SHELF_READING(TagId STRING, AreaId INT, ProductName STRING).
///
/// Attribute lookup is case-insensitive: the paper's own examples spell the
/// same attribute `TagId` in Q1 and `id`-style lowercase in Q2, so being
/// strict here would reject the paper's queries.
class EventSchema {
 public:
  EventSchema() = default;
  EventSchema(std::string name, std::vector<Attribute> attributes);

  const std::string& name() const { return name_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t attribute_count() const { return attributes_.size(); }

  /// Returns the positional index for `name`, kTimestampAttr for the
  /// virtual timestamp attribute, or kInvalidAttr when absent.
  AttrIndex FindAttribute(const std::string& name) const;

  /// Declared type of the attribute at `index` (kInt for the timestamp).
  ValueType attribute_type(AttrIndex index) const;

  /// Attribute name at `index` ("Timestamp" for the virtual attribute).
  const std::string& attribute_name(AttrIndex index) const;

  /// "TYPE(attr TYPE, ...)" rendering for logs and error messages.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
};

}  // namespace sase

#endif  // SASE_CORE_SCHEMA_H_
