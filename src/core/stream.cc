#include "core/stream.h"

namespace sase {

EventPtr StreamSource::Publish(EventTypeId type, Timestamp timestamp,
                               std::vector<Value> values) {
  if (timestamp < last_timestamp_) {
    timestamp = last_timestamp_;
    ++clamped_count_;
  }
  last_timestamp_ = timestamp;
  auto event =
      std::make_shared<Event>(type, timestamp, next_seq_++, std::move(values));
  sink_->OnEvent(event);
  return event;
}

void StreamSource::Publish(const EventPtr& event) {
  Timestamp timestamp = event->timestamp();
  if (timestamp < last_timestamp_) {
    timestamp = last_timestamp_;
    ++clamped_count_;
  }
  last_timestamp_ = timestamp;
  auto copy = std::make_shared<Event>(event->type(), timestamp, next_seq_++,
                                      [&] {
                                        std::vector<Value> values;
                                        values.reserve(event->attribute_count());
                                        for (size_t i = 0; i < event->attribute_count(); ++i) {
                                          values.push_back(
                                              event->attribute(static_cast<AttrIndex>(i)));
                                        }
                                        return values;
                                      }());
  sink_->OnEvent(copy);
}

}  // namespace sase
