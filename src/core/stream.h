#ifndef SASE_CORE_STREAM_H_
#define SASE_CORE_STREAM_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/event.h"

namespace sase {

/// Dense id of a named input stream, interned by the execution runtime's
/// Partitioner. Id 0 is always the default (unnamed) input — the stream
/// queries without a FROM clause read.
using StreamId = uint32_t;
constexpr StreamId kDefaultStream = 0;

/// Consumer of an event stream. The engine, the archiver and the report
/// channels all implement this; the cleaning pipeline and the simulator
/// produce into it. Push-based, single-threaded per stream, matching the
/// paper's pipelined dataflow.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Delivers one event. Events arrive in non-decreasing (timestamp, seq)
  /// order within a stream.
  virtual void OnEvent(const EventPtr& event) = 0;

  /// Signals end-of-stream; optional for unbounded streams.
  virtual void OnFlush() {}
};

/// Adapts a lambda to an EventSink.
class CallbackSink : public EventSink {
 public:
  explicit CallbackSink(std::function<void(const EventPtr&)> fn)
      : fn_(std::move(fn)) {}
  void OnEvent(const EventPtr& event) override { fn_(event); }

 private:
  std::function<void(const EventPtr&)> fn_;
};

/// Collects every delivered event; the workhorse of tests.
class VectorSink : public EventSink {
 public:
  void OnEvent(const EventPtr& event) override { events_.push_back(event); }
  void OnFlush() override { flushed_ = true; }

  const std::vector<EventPtr>& events() const { return events_; }
  bool flushed() const { return flushed_; }
  void Clear() {
    events_.clear();
    flushed_ = false;
  }

 private:
  std::vector<EventPtr> events_;
  bool flushed_ = false;
};

/// Fan-out node: forwards each event to every subscriber in subscription
/// order. This is the "event stream" wire between the cleaning layer and
/// the processing layer in Figure 1 (the processor and the archiver both
/// listen to it).
class StreamBus : public EventSink {
 public:
  /// Registers a sink; re-subscribing an already-registered sink is a
  /// no-op (the execution runtime attaches shard sinks dynamically and
  /// must never double-deliver).
  void Subscribe(EventSink* sink) {
    if (std::find(sinks_.begin(), sinks_.end(), sink) != sinks_.end()) return;
    sinks_.push_back(sink);
  }

  /// Detaches a sink; unknown sinks are ignored. Later subscribers keep
  /// their relative order.
  void Unsubscribe(EventSink* sink) {
    sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
                 sinks_.end());
  }

  void OnEvent(const EventPtr& event) override {
    for (EventSink* sink : sinks_) sink->OnEvent(event);
  }
  void OnFlush() override {
    for (EventSink* sink : sinks_) sink->OnFlush();
  }

  size_t subscriber_count() const { return sinks_.size(); }

 private:
  std::vector<EventSink*> sinks_;  // not owned
};

/// Assigns sequence numbers and enforces non-decreasing timestamps before
/// handing events to a downstream sink. Sources (simulator, generators,
/// tests) push through one of these so that stream order is a checked
/// invariant rather than a convention.
class StreamSource {
 public:
  explicit StreamSource(EventSink* sink) : sink_(sink) {}

  /// Publishes an event built from a type/timestamp/values triple.
  /// Timestamps must be non-decreasing; violations are clamped forward and
  /// counted (the cleaning layer's Time Conversion guarantees order in the
  /// full system, but raw test inputs may be sloppy).
  EventPtr Publish(EventTypeId type, Timestamp timestamp,
                   std::vector<Value> values);

  /// Publishes a pre-built event, reassigning its sequence number.
  void Publish(const EventPtr& event);

  void Flush() { sink_->OnFlush(); }

  SequenceNumber next_seq() const { return next_seq_; }
  int64_t clamped_count() const { return clamped_count_; }

 private:
  EventSink* sink_;  // not owned
  SequenceNumber next_seq_ = 0;
  Timestamp last_timestamp_ = 0;
  int64_t clamped_count_ = 0;
};

}  // namespace sase

#endif  // SASE_CORE_STREAM_H_
