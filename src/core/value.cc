#include "core/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace sase {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
    case ValueType::kBool: return "BOOL";
  }
  return "UNKNOWN";
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0: return ValueType::kNull;
    case 1: return ValueType::kInt;
    case 2: return ValueType::kDouble;
    case 3: return ValueType::kString;
    case 4: return ValueType::kBool;
  }
  return ValueType::kNull;
}

Result<double> Value::ToNumeric() const {
  switch (type()) {
    case ValueType::kInt: return static_cast<double>(AsInt());
    case ValueType::kDouble: return AsDouble();
    default:
      return Status::InvalidArgument(std::string("value is not numeric: ") +
                                     ToString());
  }
}

bool Value::Equals(const Value& other) const {
  ValueType a = type(), b = other.type();
  if (a == b) return rep_ == other.rep_;
  // Cross numeric comparison.
  if ((a == ValueType::kInt || a == ValueType::kDouble) &&
      (b == ValueType::kInt || b == ValueType::kDouble)) {
    return ToNumeric().value() == other.ToNumeric().value();
  }
  return false;
}

Result<int> Value::Compare(const Value& other) const {
  ValueType a = type(), b = other.type();
  if ((a == ValueType::kInt || a == ValueType::kDouble) &&
      (b == ValueType::kInt || b == ValueType::kDouble)) {
    double lhs = ToNumeric().value();
    double rhs = other.ToNumeric().value();
    if (lhs < rhs) return -1;
    if (lhs > rhs) return 1;
    return 0;
  }
  if (a == ValueType::kString && b == ValueType::kString) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a == ValueType::kBool && b == ValueType::kBool) {
    return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  }
  if (a == ValueType::kNull && b == ValueType::kNull) return 0;
  return Status::InvalidArgument(std::string("cannot compare ") +
                                 ValueTypeName(a) + " with " + ValueTypeName(b));
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B97F4A7C15ULL;
    case ValueType::kInt:
      // Hash ints through double so 1 and 1.0 collide, matching Equals.
      return std::hash<double>()(static_cast<double>(AsInt()));
    case ValueType::kDouble:
      return std::hash<double>()(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
    case ValueType::kBool:
      return std::hash<bool>()(AsBool());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream out;
      out << AsDouble();
      return out.str();
    }
    case ValueType::kString: return AsString();
    case ValueType::kBool: return AsBool() ? "TRUE" : "FALSE";
  }
  return "NULL";
}

}  // namespace sase
