#ifndef SASE_CORE_VALUE_H_
#define SASE_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/status.h"

namespace sase {

/// Attribute type tags for event schemas and database columns.
enum class ValueType { kNull = 0, kInt, kDouble, kString, kBool };

const char* ValueTypeName(ValueType type);

/// A dynamically typed attribute value.
///
/// Values appear on events (attribute vectors), in predicate evaluation, in
/// RETURN-clause outputs and in database rows, so the representation is a
/// small variant with value semantics. Numeric comparisons coerce between
/// int and double; all other cross-type comparisons are errors surfaced at
/// evaluation time (the analyzer rejects most of them statically).
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  Value(int64_t v) : rep_(v) {}                   // NOLINT(runtime/explicit)
  Value(int v) : rep_(static_cast<int64_t>(v)) {} // NOLINT(runtime/explicit)
  Value(double v) : rep_(v) {}                    // NOLINT(runtime/explicit)
  Value(bool v) : rep_(v) {}                      // NOLINT(runtime/explicit)
  Value(std::string v) : rep_(std::move(v)) {}    // NOLINT(runtime/explicit)
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }

  /// Typed accessors; callers must check type() first (std::get throws on
  /// mismatch, which the engine treats as an internal error).
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  bool AsBool() const { return std::get<bool>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric view: int and double both convert; other types are errors.
  Result<double> ToNumeric() const;

  /// Strict equality used for partitioning and GROUP-style semantics:
  /// null == null, numerics compare by value across int/double.
  bool Equals(const Value& other) const;

  /// Three-way comparison for ordered types. Returns
  /// negative/zero/positive, or an error for incomparable types.
  Result<int> Compare(const Value& other) const;

  /// Hash consistent with Equals (numeric values hash by double value).
  size_t Hash() const;

  /// Human-readable rendering ("NULL", 42, 3.5, "abc", TRUE).
  std::string ToString() const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> rep_;
};

/// Hash functor so Value can key unordered containers (PAIS partitions).
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace sase

#endif  // SASE_CORE_VALUE_H_
