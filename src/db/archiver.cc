#include "db/archiver.h"

#include "db/track_trace.h"

namespace sase {
namespace db {
namespace {

Table* EnsureTable(Database* database, const std::string& name,
                   std::vector<Column> columns, const std::string& index_col) {
  Table* table = database->GetTable(name);
  if (table == nullptr) {
    auto created = database->CreateTable(name, std::move(columns));
    table = created.value();
  }
  (void)table->CreateIndex(index_col);
  return table;
}

}  // namespace

Archiver::Archiver(Database* database) : database_(database) {
  location_ = EnsureTable(database, "location_history",
                          {{"TagId", ValueType::kString},
                           {"AreaId", ValueType::kInt},
                           {"TimeIn", ValueType::kInt},
                           {"TimeOut", ValueType::kInt}},
                          "TagId");
  containment_ = EnsureTable(database, "containment_history",
                             {{"TagId", ValueType::kString},
                              {"ContainerId", ValueType::kString},
                              {"TimeIn", ValueType::kInt},
                              {"TimeOut", ValueType::kInt}},
                             "TagId");
  areas_ = EnsureTable(database, "area_directory",
                       {{"AreaId", ValueType::kInt},
                        {"Description", ValueType::kString}},
                       "AreaId");
}

Status Archiver::UpdateHistory(Table* table, const std::string& tag_id,
                               const Value& new_value, Timestamp timestamp) {
  // Column layout is shared: 0=TagId, 1=value (AreaId/ContainerId),
  // 2=TimeIn, 3=TimeOut.
  auto ids = table->Lookup(0, Value(tag_id));
  if (!ids.ok()) return ids.status();
  for (RowId id : ids.value()) {
    const Row* row = table->Get(id);
    if (row == nullptr || !(*row)[3].is_null()) continue;  // not current
    if ((*row)[1].Equals(new_value)) {
      return Status::Ok();  // already current at this location/container
    }
    SASE_RETURN_IF_ERROR(table->Update(id, 3, Value(timestamp)));
  }
  auto inserted =
      table->Insert({Value(tag_id), new_value, Value(timestamp), Value()});
  if (!inserted.ok()) return inserted.status();
  return Status::Ok();
}

Status Archiver::UpdateLocation(const std::string& tag_id, int64_t area_id,
                                Timestamp timestamp) {
  ++location_updates_;
  return UpdateHistory(location_, tag_id, Value(area_id), timestamp);
}

Status Archiver::UpdateContainment(const std::string& tag_id,
                                   const std::string& container_id,
                                   Timestamp timestamp) {
  ++containment_updates_;
  return UpdateHistory(containment_, tag_id, Value(container_id), timestamp);
}

Status Archiver::CloseContainment(const std::string& tag_id,
                                  Timestamp timestamp) {
  auto ids = containment_->Lookup(0, Value(tag_id));
  if (!ids.ok()) return ids.status();
  for (RowId id : ids.value()) {
    const Row* row = containment_->Get(id);
    if (row == nullptr || !(*row)[3].is_null()) continue;
    SASE_RETURN_IF_ERROR(containment_->Update(id, 3, Value(timestamp)));
  }
  return Status::Ok();
}

std::string Archiver::RetrieveLocation(int64_t area_id) const {
  auto ids = areas_->Lookup(0, Value(area_id));
  if (ids.ok() && !ids.value().empty()) {
    const Row* row = areas_->Get(ids.value().front());
    if (row != nullptr && !(*row)[1].is_null()) return (*row)[1].AsString();
  }
  return "area " + std::to_string(area_id);
}

Status Archiver::DescribeArea(int64_t area_id, const std::string& description) {
  auto ids = areas_->Lookup(0, Value(area_id));
  if (ids.ok() && !ids.value().empty()) {
    return areas_->Update(ids.value().front(), 1, Value(description));
  }
  auto inserted = areas_->Insert({Value(area_id), Value(description)});
  if (!inserted.ok()) return inserted.status();
  return Status::Ok();
}

Status Archiver::RegisterFunctions(FunctionRegistry* registry) {
  SASE_RETURN_IF_ERROR(registry->Register(
      "_updateLocation", 3,
      [this](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].type() != ValueType::kString ||
            args[1].type() != ValueType::kInt ||
            args[2].type() != ValueType::kInt) {
          return Status::InvalidArgument(
              "_updateLocation expects (STRING tag, INT area, INT timestamp)");
        }
        Status status =
            UpdateLocation(args[0].AsString(), args[1].AsInt(), args[2].AsInt());
        if (!status.ok()) return status;
        return Value(true);
      }));
  SASE_RETURN_IF_ERROR(registry->Register(
      "_updateContainment", 3,
      [this](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].type() != ValueType::kString ||
            args[1].type() != ValueType::kString ||
            args[2].type() != ValueType::kInt) {
          return Status::InvalidArgument(
              "_updateContainment expects (STRING tag, STRING container, "
              "INT timestamp)");
        }
        Status status = UpdateContainment(args[0].AsString(), args[1].AsString(),
                                          args[2].AsInt());
        if (!status.ok()) return status;
        return Value(true);
      }));
  SASE_RETURN_IF_ERROR(registry->Register(
      "_retrieveLocation", 1,
      [this](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].type() != ValueType::kInt) {
          return Status::InvalidArgument("_retrieveLocation expects (INT area)");
        }
        return Value(RetrieveLocation(args[0].AsInt()));
      }));
  SASE_RETURN_IF_ERROR(registry->Register(
      "_closeContainment", 2,
      [this](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].type() != ValueType::kString ||
            args[1].type() != ValueType::kInt) {
          return Status::InvalidArgument(
              "_closeContainment expects (STRING tag, INT timestamp)");
        }
        Status status = CloseContainment(args[0].AsString(), args[1].AsInt());
        if (!status.ok()) return status;
        return Value(true);
      }));
  SASE_RETURN_IF_ERROR(registry->Register(
      "_currentLocation", 1,
      [this](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].type() != ValueType::kString) {
          return Status::InvalidArgument("_currentLocation expects (STRING tag)");
        }
        TrackTrace trace(database_);
        auto stay = trace.CurrentLocation(args[0].AsString());
        if (!stay.has_value()) return Value();
        return stay->where;
      }));
  SASE_RETURN_IF_ERROR(registry->Register(
      "_movementHistory", 1,
      [this](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].type() != ValueType::kString) {
          return Status::InvalidArgument("_movementHistory expects (STRING tag)");
        }
        TrackTrace trace(database_);
        std::string out;
        for (const auto& entry : trace.MovementHistory(args[0].AsString())) {
          if (!out.empty()) out += "; ";
          out += entry.ToString();
        }
        return Value(std::move(out));
      }));
  return Status::Ok();
}

}  // namespace db
}  // namespace sase
