#ifndef SASE_DB_ARCHIVER_H_
#define SASE_DB_ARCHIVER_H_

#include <string>

#include "db/database.h"
#include "engine/function_registry.h"
#include "util/time_util.h"

namespace sase {
namespace db {

/// The Event Database's archival rules and the built-in functions that
/// expose them to the SASE language.
///
/// "Our system supports two important rules: Location Update and
/// Containment Update. For location update, a tag's location information is
/// updated when we observe this tag in a different location with a
/// different timestamp. For containment updates, readings from unloading
/// and loading zones are aggregated into a containment relationship" (§3).
///
/// Schema (durations encoded as [TimeIn, TimeOut), TimeOut NULL = current):
///   location_history(TagId STRING, AreaId INT, TimeIn INT, TimeOut INT)
///   containment_history(TagId STRING, ContainerId STRING, TimeIn INT,
///                       TimeOut INT)
///   area_directory(AreaId INT, Description STRING)
/// `location_history` and `containment_history` are indexed on TagId;
/// `area_directory` on AreaId.
class Archiver {
 public:
  /// Creates the archival tables (idempotent) and their indexes.
  explicit Archiver(Database* database);

  /// Q2's `_updateLocation(TagId, AreaId, Timestamp)`: "first sets the
  /// TimeOut attribute of the current location using the y.Timestamp value,
  /// and then creates a tuple for the new location with the TimeIn
  /// attribute also set to the value of y.Timestamp." A no-op when the tag
  /// is already current in `area_id`.
  Status UpdateLocation(const std::string& tag_id, int64_t area_id,
                        Timestamp timestamp);

  /// Containment Update: closes the current containment (if different) and
  /// opens a new one.
  Status UpdateContainment(const std::string& tag_id,
                           const std::string& container_id,
                           Timestamp timestamp);

  /// Closes the current containment without opening a new one — the
  /// unloading half of "readings from unloading and loading zones are
  /// aggregated into a containment relationship" (§3). No-op when the tag
  /// is not currently contained.
  Status CloseContainment(const std::string& tag_id, Timestamp timestamp);

  /// `_retrieveLocation(AreaId)`: textual description of an area ("e.g.,
  /// the leftmost door on the south side of the store"). Unknown areas
  /// yield "area <id>".
  std::string RetrieveLocation(int64_t area_id) const;

  /// Registers/overwrites an area description.
  Status DescribeArea(int64_t area_id, const std::string& description);

  /// Installs the database built-ins into `registry` so RETURN clauses can
  /// call them. The Archiver must outlive the registry's users.
  ///   _updateLocation(tag, area, ts)      archival rule (Q2)
  ///   _updateContainment(tag, cont, ts)   archival rule
  ///   _closeContainment(tag, ts)          archival rule (unloading)
  ///   _retrieveLocation(area)             area description lookup (Q1)
  ///   _currentLocation(tag)               current AreaId or NULL
  ///   _movementHistory(tag)               rendered movement history — the
  ///       misplaced-inventory demo "triggers an Event Database lookup for
  ///       the movement history of the item" (§4)
  Status RegisterFunctions(FunctionRegistry* registry);

  Database* database() { return database_; }

  uint64_t location_updates() const { return location_updates_; }
  uint64_t containment_updates() const { return containment_updates_; }

 private:
  /// Shared close-and-reopen logic for the two history tables.
  Status UpdateHistory(Table* table, const std::string& tag_id,
                       const Value& new_value, Timestamp timestamp);

  Database* database_;
  Table* location_;
  Table* containment_;
  Table* areas_;
  uint64_t location_updates_ = 0;
  uint64_t containment_updates_ = 0;
};

}  // namespace db
}  // namespace sase

#endif  // SASE_DB_ARCHIVER_H_
