#include "db/database.h"

#include "util/string_util.h"

namespace sase {
namespace db {

Result<Table*> Database::CreateTable(const std::string& name,
                                     std::vector<Column> columns) {
  std::string key = ToUpper(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  if (columns.empty()) {
    return Status::InvalidArgument("table " + name + " needs at least one column");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (EqualsIgnoreCase(columns[i].name, columns[j].name)) {
        return Status::InvalidArgument("duplicate column '" + columns[i].name +
                                       "' in table " + name);
      }
    }
  }
  auto table = std::make_unique<Table>(name, std::move(columns));
  Table* ptr = table.get();
  tables_.emplace(std::move(key), std::move(table));
  return ptr;
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(ToUpper(name)) == 0) {
    return Status::NotFound("no table named " + name);
  }
  return Status::Ok();
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(ToUpper(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(ToUpper(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace db
}  // namespace sase
