#ifndef SASE_DB_DATABASE_H_
#define SASE_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/table.h"

namespace sase {
namespace db {

/// A named collection of tables — the Event Database of Figure 1 ("SASE
/// contains a persistence storage component to support querying over
/// historical data and to allow query results from the stream processor to
/// be joined with stored data", §3). The paper deploys MySQL; this is the
/// in-process substitution (see DESIGN.md).
class Database {
 public:
  Database() = default;

  /// Creates a table; names are case-insensitive and must be unique.
  Result<Table*> CreateTable(const std::string& name,
                             std::vector<Column> columns);

  Status DropTable(const std::string& name);

  /// nullptr when absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  size_t table_count() const { return tables_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;  // key: uppercased
};

}  // namespace db
}  // namespace sase

#endif  // SASE_DB_DATABASE_H_
