#include "db/dump.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"
#include "util/value_codec.h"

namespace sase {
namespace db {
namespace {

Result<ValueType> TypeFromName(const std::string& name) {
  if (name == "INT") return ValueType::kInt;
  if (name == "DOUBLE") return ValueType::kDouble;
  if (name == "STRING") return ValueType::kString;
  if (name == "BOOL") return ValueType::kBool;
  return Status::ParseError("unknown column type in dump: " + name);
}

}  // namespace

std::string EncodeValue(const Value& value) { return sase::EncodeValue(value); }

Result<Value> DecodeValue(const std::string& text) {
  return sase::DecodeValue(text);
}

Status Dump(const Database& database, std::ostream* out) {
  for (const std::string& name : database.TableNames()) {
    const Table* table = database.GetTable(name);
    *out << "TABLE " << name << "\n";
    const auto& columns = table->columns();
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) *out << "|";
      *out << EscapeField(columns[i].name) << ":" << ValueTypeName(columns[i].type);
    }
    *out << "\n";
    std::vector<std::string> indexed;
    for (size_t i = 0; i < columns.size(); ++i) {
      if (table->HasIndex(static_cast<int>(i))) indexed.push_back(columns[i].name);
    }
    if (!indexed.empty()) *out << "INDEX " << Join(indexed, ",") << "\n";
    table->Scan([&](RowId, const Row& row) {
      *out << "ROW ";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) *out << "|";
        *out << sase::EncodeValue(row[i]);
      }
      *out << "\n";
      return true;
    });
    *out << "END\n";
  }
  return out->good() ? Status::Ok() : Status::Internal("write failed");
}

Status DumpToFile(const Database& database, const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  return Dump(database, &file);
}

Status LoadInto(std::istream* in, Database* database) {
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    if (!StartsWith(line, "TABLE ")) {
      return Status::ParseError("expected TABLE header, got: " + line);
    }
    std::string name = line.substr(6);

    if (!std::getline(*in, line)) {
      return Status::ParseError("missing schema line for table " + name);
    }
    std::vector<Column> columns;
    for (const std::string& field : Split(line, '|')) {
      size_t colon = field.rfind(':');
      if (colon == std::string::npos) {
        return Status::ParseError("bad schema field: " + field);
      }
      auto col_name = UnescapeField(field.substr(0, colon));
      if (!col_name.ok()) return col_name.status();
      auto type = TypeFromName(field.substr(colon + 1));
      if (!type.ok()) return type.status();
      columns.push_back({std::move(col_name).value(), type.value()});
    }
    Table* table = database->GetTable(name);
    if (table == nullptr) {
      auto created = database->CreateTable(name, std::move(columns));
      if (!created.ok()) return created.status();
      table = created.value();
    } else {
      // Appending into a pre-created table: the schemas must agree column
      // by column, or the rows would land under the wrong attributes.
      const auto& existing = table->columns();
      bool match = existing.size() == columns.size();
      for (size_t i = 0; match && i < columns.size(); ++i) {
        match = existing[i].type == columns[i].type &&
                EqualsIgnoreCase(existing[i].name, columns[i].name);
      }
      if (!match) {
        return Status::ParseError("dump schema of table " + name +
                                  " does not match the existing table");
      }
    }

    while (std::getline(*in, line)) {
      if (line == "END") break;
      if (StartsWith(line, "INDEX ")) {
        for (const std::string& col : Split(line.substr(6), ',')) {
          // Idempotent for already-indexed columns; an unknown column means
          // the INDEX line itself is corrupt.
          SASE_RETURN_IF_ERROR(table->CreateIndex(col));
        }
        continue;
      }
      if (!StartsWith(line, "ROW ")) {
        return Status::ParseError("expected ROW/INDEX/END, got: " + line);
      }
      Row row;
      for (const std::string& field : Split(line.substr(4), '|')) {
        auto value = sase::DecodeValue(field);
        if (!value.ok()) return value.status();
        row.push_back(std::move(value).value());
      }
      auto inserted = table->Insert(std::move(row));
      if (!inserted.ok()) return inserted.status();
    }
  }
  return Status::Ok();
}

Status LoadFileInto(const std::string& path, Database* database) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  return LoadInto(&file, database);
}

Result<std::unique_ptr<Database>> Load(std::istream* in) {
  auto database = std::make_unique<Database>();
  SASE_RETURN_IF_ERROR(LoadInto(in, database.get()));
  return database;
}

Result<std::unique_ptr<Database>> LoadFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  return Load(&file);
}

}  // namespace db
}  // namespace sase
