#ifndef SASE_DB_DUMP_H_
#define SASE_DB_DUMP_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "db/database.h"

namespace sase {
namespace db {

/// Text serialization of a Database — the persistence face of the Event
/// Database substitution (the paper's MySQL survives restarts; an in-memory
/// engine needs explicit dump/load to support the same "pre-populated with
/// data collected in advance" workflow of §4).
///
/// Format (line oriented, UTF-8):
///   TABLE <name>
///   <col>:<TYPE>|<col>:<TYPE>|...
///   INDEX <col>[,<col>...]          -- optional, restored on load
///   ROW <v>|<v>|...                 -- values: N, I:<int>, D:<double>,
///                                      S:<escaped>, B:0/1
///   END
/// Strings escape '\' '|' and newline as \\ \p \n.
Status Dump(const Database& database, std::ostream* out);
Status DumpToFile(const Database& database, const std::string& path);

Result<std::unique_ptr<Database>> Load(std::istream* in);
Result<std::unique_ptr<Database>> LoadFromFile(const std::string& path);

}  // namespace db
}  // namespace sase

#endif  // SASE_DB_DUMP_H_
