#ifndef SASE_DB_DUMP_H_
#define SASE_DB_DUMP_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "db/database.h"

namespace sase {
namespace db {

/// Text serialization of a Database — the persistence face of the Event
/// Database substitution (the paper's MySQL survives restarts; an in-memory
/// engine needs explicit dump/load to support the same "pre-populated with
/// data collected in advance" workflow of §4).
///
/// Format (line oriented, UTF-8):
///   TABLE <name>
///   <col>:<TYPE>|<col>:<TYPE>|...
///   INDEX <col>[,<col>...]          -- optional, restored on load
///   ROW <v>|<v>|...                 -- values: N, I:<int>, D:<double>,
///                                      S:<escaped>, B:0/1
///   END
/// Strings escape '\' '|' and newline as \\ \p \n (util EscapeField).
Status Dump(const Database& database, std::ostream* out);
Status DumpToFile(const Database& database, const std::string& path);

Result<std::unique_ptr<Database>> Load(std::istream* in);
Result<std::unique_ptr<Database>> LoadFromFile(const std::string& path);

/// Restores a dump into an existing (not necessarily empty) database:
/// tables already present receive the dump's rows appended; absent tables
/// are created. The checkpoint recovery path loads the Event Database dump
/// into a freshly constructed system whose components create their tables
/// lazily, so get-or-append is the semantics recovery needs.
Status LoadInto(std::istream* in, Database* database);
Status LoadFileInto(const std::string& path, Database* database);

/// One dump field of a single Value: N, I:<int>, D:<double>, S:<escaped>,
/// B:0/1. Shared with the checkpoint snapshot, whose in-flight window
/// events serialize their attribute values in the same format. Thin
/// delegates to the hoisted codec in util/value_codec.h (which the engine's
/// operator-state serialization also uses), kept for source compatibility.
std::string EncodeValue(const Value& value);
Result<Value> DecodeValue(const std::string& text);

}  // namespace db
}  // namespace sase

#endif  // SASE_DB_DUMP_H_
