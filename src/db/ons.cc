#include "db/ons.h"

#include "util/logging.h"

namespace sase {
namespace db {

Ons::Ons(Database* database) {
  table_ = database->GetTable("products");
  if (table_ == nullptr) {
    auto created = database->CreateTable(
        "products", {{"TagId", ValueType::kString},
                     {"ProductName", ValueType::kString},
                     {"ExpirationDate", ValueType::kString},
                     {"Saleable", ValueType::kBool}});
    // Creation can only fail on a duplicate name, which the lookup above
    // excludes.
    table_ = created.value();
  }
  (void)table_->CreateIndex("TagId");
}

Status Ons::RegisterProduct(const std::string& tag_id, const ProductInfo& info) {
  // Replace any existing registration for the tag.
  auto existing = table_->Lookup(0, Value(tag_id));
  if (existing.ok()) {
    for (RowId id : existing.value()) table_->Erase(id);
  }
  auto inserted = table_->Insert({Value(tag_id), Value(info.product_name),
                                  Value(info.expiration_date),
                                  Value(info.saleable)});
  if (!inserted.ok()) return inserted.status();
  return Status::Ok();
}

std::optional<ProductInfo> Ons::Lookup(const std::string& tag_id) const {
  auto ids = table_->Lookup(0, Value(tag_id));
  if (!ids.ok() || ids.value().empty()) return std::nullopt;
  const Row* row = table_->Get(ids.value().front());
  if (row == nullptr) return std::nullopt;
  ProductInfo info;
  info.product_name = (*row)[1].is_null() ? "" : (*row)[1].AsString();
  info.expiration_date = (*row)[2].is_null() ? "" : (*row)[2].AsString();
  info.saleable = (*row)[3].is_null() ? true : (*row)[3].AsBool();
  return info;
}

OnsResolver Ons::Resolver() const {
  return [this](const std::string& tag_id) { return Lookup(tag_id); };
}

size_t Ons::product_count() const { return table_->row_count(); }

}  // namespace db
}  // namespace sase
