#ifndef SASE_DB_ONS_H_
#define SASE_DB_ONS_H_

#include <optional>
#include <string>

#include "cleaning/event_generation.h"
#include "db/database.h"

namespace sase {
namespace db {

/// Simulated Object Name Service. "In an actual real-world system,
/// attributes (e.g., product name, expiration date) can be retrieved from a
/// tag's user-memory bank or from an Object Name Service (ONS). In our
/// system, we simulate an ONS with a local database storing product
/// metadata associated with each item" (§3).
///
/// The metadata lives in a `products` table of the given Database
/// (TagId STRING, ProductName STRING, ExpirationDate STRING,
/// Saleable BOOL) with a hash index on TagId, so the Event Generation
/// Layer's per-reading lookups are point queries.
class Ons {
 public:
  /// Creates (or reuses) the `products` table in `database`.
  explicit Ons(Database* database);

  /// Registers or replaces the metadata for a tag.
  Status RegisterProduct(const std::string& tag_id, const ProductInfo& info);

  /// Point lookup by tag id; nullopt for unknown tags.
  std::optional<ProductInfo> Lookup(const std::string& tag_id) const;

  /// Adapter for the Event Generation Layer.
  OnsResolver Resolver() const;

  size_t product_count() const;

 private:
  Table* table_;  // owned by the database
};

}  // namespace db
}  // namespace sase

#endif  // SASE_DB_ONS_H_
