#ifndef SASE_DB_SQL_H_
#define SASE_DB_SQL_H_

#include <string>
#include <variant>
#include <vector>

#include "db/table.h"

namespace sase {
namespace db {

/// Comparison operator in a SQL WHERE condition.
enum class SqlOp { kEq, kNeq, kLt, kLe, kGt, kGe };

const char* SqlOpName(SqlOp op);

/// One conjunct of a WHERE clause: `column op literal` (or
/// `column IS [NOT] NULL` encoded as kEq/kNeq against a NULL value).
struct SqlCondition {
  std::string column;
  SqlOp op = SqlOp::kEq;
  Value value;
};

/// SELECT cols FROM table [WHERE conds] [ORDER BY col [ASC|DESC]] [LIMIT n]
struct SelectStatement {
  std::vector<std::string> columns;  // empty = '*'
  std::string table;
  std::vector<SqlCondition> where;
  std::string order_by;  // empty = RowId order
  bool descending = false;
  int64_t limit = -1;  // -1 = unlimited
};

/// INSERT INTO table [(cols)] VALUES (v, ...)
struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;  // empty = schema order
  std::vector<Value> values;
};

/// UPDATE table SET col = v [, ...] [WHERE conds]
struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  std::vector<SqlCondition> where;
};

/// DELETE FROM table [WHERE conds]
struct DeleteStatement {
  std::string table;
  std::vector<SqlCondition> where;
};

/// CREATE TABLE table (col TYPE, ...)
struct CreateTableStatement {
  std::string table;
  std::vector<Column> columns;
};

using SqlStatement = std::variant<SelectStatement, InsertStatement,
                                  UpdateStatement, DeleteStatement,
                                  CreateTableStatement>;

/// Result of executing a statement: a relation for SELECT, affected-row
/// counts for mutations.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t affected = 0;

  /// Plain-text table rendering (the "Database Report" window's format).
  std::string ToString() const;
};

}  // namespace db
}  // namespace sase

#endif  // SASE_DB_SQL_H_
