#include "db/sql_executor.h"

#include <algorithm>
#include <sstream>

#include "db/sql_parser.h"

namespace sase {
namespace db {
namespace {

/// Evaluates one condition against a row value.
bool ConditionHolds(const SqlCondition& condition, const Value& value) {
  if (condition.value.is_null()) {
    // IS NULL / IS NOT NULL semantics.
    bool is_null = value.is_null();
    return condition.op == SqlOp::kEq ? is_null : !is_null;
  }
  if (value.is_null()) return false;
  if (condition.op == SqlOp::kEq) return value.Equals(condition.value);
  if (condition.op == SqlOp::kNeq) return !value.Equals(condition.value);
  auto cmp = value.Compare(condition.value);
  if (!cmp.ok()) return false;
  switch (condition.op) {
    case SqlOp::kLt: return cmp.value() < 0;
    case SqlOp::kLe: return cmp.value() <= 0;
    case SqlOp::kGt: return cmp.value() > 0;
    case SqlOp::kGe: return cmp.value() >= 0;
    default: return false;
  }
}

}  // namespace

std::string ResultSet::ToString() const {
  std::ostringstream out;
  if (columns.empty()) {
    out << "(" << affected << " rows affected)";
    return out.str();
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out << " | ";
    out << columns[i];
  }
  out << "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << " | ";
      out << row[i].ToString();
    }
    out << "\n";
  }
  out << "(" << rows.size() << " rows)";
  return out.str();
}

Result<ResultSet> SqlExecutor::Execute(const std::string& text) {
  auto statement = SqlParser::Parse(text);
  if (!statement.ok()) return statement.status();
  return Execute(statement.value());
}

Result<ResultSet> SqlExecutor::Execute(const SqlStatement& statement) {
  ++statements_executed_;
  return std::visit(
      [this](const auto& stmt) -> Result<ResultSet> {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, SelectStatement>) {
          return ExecuteSelect(stmt);
        } else if constexpr (std::is_same_v<T, InsertStatement>) {
          return ExecuteInsert(stmt);
        } else if constexpr (std::is_same_v<T, UpdateStatement>) {
          return ExecuteUpdate(stmt);
        } else if constexpr (std::is_same_v<T, DeleteStatement>) {
          return ExecuteDelete(stmt);
        } else {
          return ExecuteCreate(stmt);
        }
      },
      statement);
}

Result<std::vector<RowId>> SqlExecutor::CollectMatches(
    Table* table, const std::vector<SqlCondition>& conditions) {
  // Resolve column indices once and validate names.
  std::vector<int> cols(conditions.size());
  for (size_t i = 0; i < conditions.size(); ++i) {
    cols[i] = table->FindColumn(conditions[i].column);
    if (cols[i] < 0) {
      return Status::NotFound("no column '" + conditions[i].column +
                              "' in table " + table->name());
    }
  }

  // Pick an indexed equality condition as the access path if one exists.
  int driver = -1;
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (conditions[i].op == SqlOp::kEq && !conditions[i].value.is_null() &&
        table->HasIndex(cols[i])) {
      driver = static_cast<int>(i);
      break;
    }
  }

  std::vector<RowId> matches;
  auto residual_check = [&](RowId id, const Row& row) {
    ++rows_examined_;
    for (size_t i = 0; i < conditions.size(); ++i) {
      if (static_cast<int>(i) == driver) continue;
      if (!ConditionHolds(conditions[i], row[static_cast<size_t>(cols[i])])) {
        return;
      }
    }
    matches.push_back(id);
  };

  if (driver >= 0) {
    ++index_lookups_;
    auto ids = table->Lookup(cols[static_cast<size_t>(driver)],
                             conditions[static_cast<size_t>(driver)].value);
    if (!ids.ok()) return ids.status();
    for (RowId id : ids.value()) {
      const Row* row = table->Get(id);
      if (row != nullptr) residual_check(id, *row);
    }
  } else {
    table->Scan([&](RowId id, const Row& row) {
      residual_check(id, row);
      return true;
    });
  }
  return matches;
}

Result<ResultSet> SqlExecutor::ExecuteSelect(const SelectStatement& stmt) {
  Table* table = database_->GetTable(stmt.table);
  if (table == nullptr) return Status::NotFound("no table named " + stmt.table);

  // Projection columns.
  std::vector<int> projection;
  ResultSet result;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < table->columns().size(); ++i) {
      projection.push_back(static_cast<int>(i));
      result.columns.push_back(table->columns()[i].name);
    }
  } else {
    for (const std::string& name : stmt.columns) {
      int col = table->FindColumn(name);
      if (col < 0) {
        return Status::NotFound("no column '" + name + "' in table " +
                                stmt.table);
      }
      projection.push_back(col);
      result.columns.push_back(table->columns()[static_cast<size_t>(col)].name);
    }
  }

  auto matches = CollectMatches(table, stmt.where);
  if (!matches.ok()) return matches.status();
  std::vector<RowId> ids = std::move(matches).value();

  if (!stmt.order_by.empty()) {
    int order_col = table->FindColumn(stmt.order_by);
    if (order_col < 0) {
      return Status::NotFound("no column '" + stmt.order_by + "' in table " +
                              stmt.table);
    }
    std::stable_sort(ids.begin(), ids.end(), [&](RowId a, RowId b) {
      const Value& va = (*table->Get(a))[static_cast<size_t>(order_col)];
      const Value& vb = (*table->Get(b))[static_cast<size_t>(order_col)];
      auto cmp = va.Compare(vb);
      int c = cmp.ok() ? cmp.value() : 0;
      return stmt.descending ? c > 0 : c < 0;
    });
  }

  int64_t limit = stmt.limit < 0 ? static_cast<int64_t>(ids.size()) : stmt.limit;
  for (RowId id : ids) {
    if (static_cast<int64_t>(result.rows.size()) >= limit) break;
    const Row& row = *table->Get(id);
    Row projected;
    projected.reserve(projection.size());
    for (int col : projection) projected.push_back(row[static_cast<size_t>(col)]);
    result.rows.push_back(std::move(projected));
  }
  return result;
}

Result<ResultSet> SqlExecutor::ExecuteInsert(const InsertStatement& stmt) {
  Table* table = database_->GetTable(stmt.table);
  if (table == nullptr) return Status::NotFound("no table named " + stmt.table);

  Row row(table->columns().size());
  if (stmt.columns.empty()) {
    if (stmt.values.size() != row.size()) {
      return Status::InvalidArgument("INSERT expects " +
                                     std::to_string(row.size()) + " values");
    }
    row = stmt.values;
  } else {
    if (stmt.columns.size() != stmt.values.size()) {
      return Status::InvalidArgument("INSERT column/value count mismatch");
    }
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      int col = table->FindColumn(stmt.columns[i]);
      if (col < 0) {
        return Status::NotFound("no column '" + stmt.columns[i] + "' in table " +
                                stmt.table);
      }
      row[static_cast<size_t>(col)] = stmt.values[i];
    }
  }
  auto id = table->Insert(std::move(row));
  if (!id.ok()) return id.status();
  ResultSet result;
  result.affected = 1;
  return result;
}

Result<ResultSet> SqlExecutor::ExecuteUpdate(const UpdateStatement& stmt) {
  Table* table = database_->GetTable(stmt.table);
  if (table == nullptr) return Status::NotFound("no table named " + stmt.table);

  std::vector<std::pair<int, Value>> sets;
  for (const auto& [name, value] : stmt.assignments) {
    int col = table->FindColumn(name);
    if (col < 0) {
      return Status::NotFound("no column '" + name + "' in table " + stmt.table);
    }
    sets.emplace_back(col, value);
  }

  auto matches = CollectMatches(table, stmt.where);
  if (!matches.ok()) return matches.status();
  for (RowId id : matches.value()) {
    for (const auto& [col, value] : sets) {
      SASE_RETURN_IF_ERROR(table->Update(id, col, value));
    }
  }
  ResultSet result;
  result.affected = static_cast<int64_t>(matches.value().size());
  return result;
}

Result<ResultSet> SqlExecutor::ExecuteDelete(const DeleteStatement& stmt) {
  Table* table = database_->GetTable(stmt.table);
  if (table == nullptr) return Status::NotFound("no table named " + stmt.table);
  auto matches = CollectMatches(table, stmt.where);
  if (!matches.ok()) return matches.status();
  for (RowId id : matches.value()) table->Erase(id);
  ResultSet result;
  result.affected = static_cast<int64_t>(matches.value().size());
  return result;
}

Result<ResultSet> SqlExecutor::ExecuteCreate(const CreateTableStatement& stmt) {
  auto table = database_->CreateTable(stmt.table, stmt.columns);
  if (!table.ok()) return table.status();
  ResultSet result;
  result.affected = 0;
  return result;
}

}  // namespace db
}  // namespace sase
