#ifndef SASE_DB_SQL_EXECUTOR_H_
#define SASE_DB_SQL_EXECUTOR_H_

#include <string>

#include "db/database.h"
#include "db/sql.h"

namespace sase {
namespace db {

/// Executes parsed SQL statements against a Database.
///
/// SELECT uses an index when the WHERE clause contains an equality
/// condition on an indexed column (the track-and-trace access path);
/// otherwise it scans. Mutations maintain indexes through the Table API.
class SqlExecutor {
 public:
  explicit SqlExecutor(Database* database) : database_(database) {}

  /// Parses and executes `text` in one call.
  Result<ResultSet> Execute(const std::string& text);

  Result<ResultSet> Execute(const SqlStatement& statement);

  /// Statements executed so far (for the Database Report channel).
  uint64_t statements_executed() const { return statements_executed_; }
  uint64_t rows_examined() const { return rows_examined_; }
  uint64_t index_lookups() const { return index_lookups_; }

 private:
  Result<ResultSet> ExecuteSelect(const SelectStatement& stmt);
  Result<ResultSet> ExecuteInsert(const InsertStatement& stmt);
  Result<ResultSet> ExecuteUpdate(const UpdateStatement& stmt);
  Result<ResultSet> ExecuteDelete(const DeleteStatement& stmt);
  Result<ResultSet> ExecuteCreate(const CreateTableStatement& stmt);

  /// Collects the RowIds satisfying `conditions`, via index when possible.
  Result<std::vector<RowId>> CollectMatches(
      Table* table, const std::vector<SqlCondition>& conditions);

  Database* database_;
  uint64_t statements_executed_ = 0;
  uint64_t rows_examined_ = 0;
  uint64_t index_lookups_ = 0;
};

}  // namespace db
}  // namespace sase

#endif  // SASE_DB_SQL_EXECUTOR_H_
