#include "db/sql_parser.h"

#include "query/lexer.h"
#include "util/string_util.h"

namespace sase {
namespace db {

const char* SqlOpName(SqlOp op) {
  switch (op) {
    case SqlOp::kEq: return "=";
    case SqlOp::kNeq: return "!=";
    case SqlOp::kLt: return "<";
    case SqlOp::kLe: return "<=";
    case SqlOp::kGt: return ">";
    case SqlOp::kGe: return ">=";
  }
  return "?";
}

bool SqlParser::CheckWord(const char* word) const {
  const Token& token = Current();
  return token.kind == TokenKind::kIdentifier &&
         EqualsIgnoreCase(token.text, word);
}

bool SqlParser::MatchKind(TokenKind kind) {
  if (!CheckKind(kind)) return false;
  ++pos_;
  return true;
}

bool SqlParser::MatchWord(const char* word) {
  if (!CheckWord(word)) return false;
  ++pos_;
  return true;
}

Status SqlParser::ExpectKind(TokenKind kind, const std::string& context) {
  if (MatchKind(kind)) return Status::Ok();
  return ErrorAtCurrent("expected " + std::string(TokenKindName(kind)) + " " +
                        context);
}

Status SqlParser::ExpectWord(const char* word, const std::string& context) {
  if (MatchWord(word)) return Status::Ok();
  return ErrorAtCurrent("expected " + std::string(word) + " " + context);
}

Status SqlParser::ErrorAtCurrent(const std::string& message) const {
  const Token& token = Current();
  return Status::ParseError("SQL: " + message + ", found " + token.Describe() +
                            " at line " + std::to_string(token.line) +
                            ", column " + std::to_string(token.column));
}

Result<std::string> SqlParser::ParseIdentifier(const std::string& what) {
  if (!CheckKind(TokenKind::kIdentifier)) {
    return ErrorAtCurrent("expected " + what);
  }
  std::string name = Current().text;
  ++pos_;
  return name;
}

Result<Value> SqlParser::ParseLiteral() {
  const Token& token = Current();
  bool negative = false;
  if (token.kind == TokenKind::kMinus) {
    negative = true;
    ++pos_;
  }
  const Token& lit = Current();
  switch (lit.kind) {
    case TokenKind::kInteger:
      ++pos_;
      return Value(negative ? -lit.int_value : lit.int_value);
    case TokenKind::kFloat:
      ++pos_;
      return Value(negative ? -lit.float_value : lit.float_value);
    case TokenKind::kString:
      if (negative) return ErrorAtCurrent("cannot negate a string literal");
      ++pos_;
      return Value(lit.text);
    case TokenKind::kTrue:
      ++pos_;
      return Value(true);
    case TokenKind::kFalse:
      ++pos_;
      return Value(false);
    case TokenKind::kNull:
      ++pos_;
      return Value();
    default:
      return ErrorAtCurrent("expected a literal");
  }
}

Status SqlParser::ParseWhere(std::vector<SqlCondition>* conditions) {
  while (true) {
    SqlCondition condition;
    auto column = ParseIdentifier("column name in WHERE");
    if (!column.ok()) return column.status();
    condition.column = std::move(column).value();

    // IS [NOT] NULL.
    if (MatchWord("IS")) {
      bool negated = MatchKind(TokenKind::kNot);
      SASE_RETURN_IF_ERROR(ExpectKind(TokenKind::kNull, "after IS"));
      condition.op = negated ? SqlOp::kNeq : SqlOp::kEq;
      condition.value = Value();
    } else {
      if (MatchKind(TokenKind::kEq)) {
        condition.op = SqlOp::kEq;
      } else if (MatchKind(TokenKind::kNeq)) {
        condition.op = SqlOp::kNeq;
      } else if (MatchKind(TokenKind::kLt)) {
        condition.op = SqlOp::kLt;
      } else if (MatchKind(TokenKind::kLe)) {
        condition.op = SqlOp::kLe;
      } else if (MatchKind(TokenKind::kGt)) {
        condition.op = SqlOp::kGt;
      } else if (MatchKind(TokenKind::kGe)) {
        condition.op = SqlOp::kGe;
      } else {
        return ErrorAtCurrent("expected a comparison operator");
      }
      auto value = ParseLiteral();
      if (!value.ok()) return value.status();
      condition.value = std::move(value).value();
    }
    conditions->push_back(std::move(condition));
    if (!MatchKind(TokenKind::kAnd)) return Status::Ok();
  }
}

Result<SqlStatement> SqlParser::Parse(const std::string& text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  SqlParser parser(std::move(tokens).value());
  auto statement = parser.ParseStatement();
  if (!statement.ok()) return statement;
  if (!parser.CheckKind(TokenKind::kEnd)) {
    return parser.ErrorAtCurrent("trailing input after statement");
  }
  return statement;
}

Result<SqlStatement> SqlParser::ParseStatement() {
  if (MatchWord("SELECT")) return ParseSelect();
  if (MatchWord("INSERT")) return ParseInsert();
  if (MatchWord("UPDATE")) return ParseUpdate();
  if (MatchWord("DELETE")) return ParseDelete();
  if (MatchWord("CREATE")) return ParseCreate();
  return ErrorAtCurrent("expected SELECT, INSERT, UPDATE, DELETE or CREATE");
}

Result<SqlStatement> SqlParser::ParseSelect() {
  SelectStatement stmt;
  if (!MatchKind(TokenKind::kStar)) {
    while (true) {
      auto column = ParseIdentifier("column name");
      if (!column.ok()) return column.status();
      stmt.columns.push_back(std::move(column).value());
      if (!MatchKind(TokenKind::kComma)) break;
    }
  }
  SASE_RETURN_IF_ERROR(ExpectKind(TokenKind::kFrom, "after select list"));
  auto table = ParseIdentifier("table name");
  if (!table.ok()) return table.status();
  stmt.table = std::move(table).value();

  if (MatchKind(TokenKind::kWhere)) {
    SASE_RETURN_IF_ERROR(ParseWhere(&stmt.where));
  }
  if (MatchWord("ORDER")) {
    SASE_RETURN_IF_ERROR(ExpectWord("BY", "after ORDER"));
    auto column = ParseIdentifier("ORDER BY column");
    if (!column.ok()) return column.status();
    stmt.order_by = std::move(column).value();
    if (MatchWord("DESC")) {
      stmt.descending = true;
    } else {
      (void)MatchWord("ASC");
    }
  }
  if (MatchWord("LIMIT")) {
    if (!CheckKind(TokenKind::kInteger)) {
      return ErrorAtCurrent("expected row count after LIMIT");
    }
    stmt.limit = Current().int_value;
    ++pos_;
  }
  return SqlStatement(std::move(stmt));
}

Result<SqlStatement> SqlParser::ParseInsert() {
  InsertStatement stmt;
  SASE_RETURN_IF_ERROR(ExpectKind(TokenKind::kInto, "after INSERT"));
  auto table = ParseIdentifier("table name");
  if (!table.ok()) return table.status();
  stmt.table = std::move(table).value();

  if (MatchKind(TokenKind::kLParen)) {
    while (true) {
      auto column = ParseIdentifier("column name");
      if (!column.ok()) return column.status();
      stmt.columns.push_back(std::move(column).value());
      if (!MatchKind(TokenKind::kComma)) break;
    }
    SASE_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen, "to close column list"));
  }
  SASE_RETURN_IF_ERROR(ExpectWord("VALUES", "in INSERT"));
  SASE_RETURN_IF_ERROR(ExpectKind(TokenKind::kLParen, "after VALUES"));
  while (true) {
    auto value = ParseLiteral();
    if (!value.ok()) return value.status();
    stmt.values.push_back(std::move(value).value());
    if (!MatchKind(TokenKind::kComma)) break;
  }
  SASE_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen, "to close VALUES"));
  return SqlStatement(std::move(stmt));
}

Result<SqlStatement> SqlParser::ParseUpdate() {
  UpdateStatement stmt;
  auto table = ParseIdentifier("table name");
  if (!table.ok()) return table.status();
  stmt.table = std::move(table).value();
  SASE_RETURN_IF_ERROR(ExpectWord("SET", "in UPDATE"));
  while (true) {
    auto column = ParseIdentifier("column name");
    if (!column.ok()) return column.status();
    SASE_RETURN_IF_ERROR(ExpectKind(TokenKind::kEq, "in assignment"));
    auto value = ParseLiteral();
    if (!value.ok()) return value.status();
    stmt.assignments.emplace_back(std::move(column).value(),
                                  std::move(value).value());
    if (!MatchKind(TokenKind::kComma)) break;
  }
  if (MatchKind(TokenKind::kWhere)) {
    SASE_RETURN_IF_ERROR(ParseWhere(&stmt.where));
  }
  return SqlStatement(std::move(stmt));
}

Result<SqlStatement> SqlParser::ParseDelete() {
  DeleteStatement stmt;
  SASE_RETURN_IF_ERROR(ExpectKind(TokenKind::kFrom, "after DELETE"));
  auto table = ParseIdentifier("table name");
  if (!table.ok()) return table.status();
  stmt.table = std::move(table).value();
  if (MatchKind(TokenKind::kWhere)) {
    SASE_RETURN_IF_ERROR(ParseWhere(&stmt.where));
  }
  return SqlStatement(std::move(stmt));
}

Result<SqlStatement> SqlParser::ParseCreate() {
  CreateTableStatement stmt;
  SASE_RETURN_IF_ERROR(ExpectWord("TABLE", "after CREATE"));
  auto table = ParseIdentifier("table name");
  if (!table.ok()) return table.status();
  stmt.table = std::move(table).value();
  SASE_RETURN_IF_ERROR(ExpectKind(TokenKind::kLParen, "to open column list"));
  while (true) {
    Column column;
    auto name = ParseIdentifier("column name");
    if (!name.ok()) return name.status();
    column.name = std::move(name).value();
    auto type = ParseIdentifier("column type");
    if (!type.ok()) return type.status();
    const std::string& type_name = type.value();
    if (EqualsIgnoreCase(type_name, "INT") ||
        EqualsIgnoreCase(type_name, "INTEGER") ||
        EqualsIgnoreCase(type_name, "BIGINT")) {
      column.type = ValueType::kInt;
    } else if (EqualsIgnoreCase(type_name, "DOUBLE") ||
               EqualsIgnoreCase(type_name, "FLOAT") ||
               EqualsIgnoreCase(type_name, "REAL")) {
      column.type = ValueType::kDouble;
    } else if (EqualsIgnoreCase(type_name, "STRING") ||
               EqualsIgnoreCase(type_name, "TEXT") ||
               EqualsIgnoreCase(type_name, "VARCHAR")) {
      column.type = ValueType::kString;
    } else if (EqualsIgnoreCase(type_name, "BOOL") ||
               EqualsIgnoreCase(type_name, "BOOLEAN")) {
      column.type = ValueType::kBool;
    } else {
      return Status::ParseError("SQL: unknown column type '" + type_name + "'");
    }
    stmt.columns.push_back(std::move(column));
    if (!MatchKind(TokenKind::kComma)) break;
  }
  SASE_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen, "to close column list"));
  return SqlStatement(std::move(stmt));
}

}  // namespace db
}  // namespace sase
