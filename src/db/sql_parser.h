#ifndef SASE_DB_SQL_PARSER_H_
#define SASE_DB_SQL_PARSER_H_

#include <string>
#include <vector>

#include "db/sql.h"
#include "query/token.h"
#include "util/status.h"

namespace sase {
namespace db {

/// Parser for the SQL subset served by the Event Database. The paper's UI
/// lets users "issue ... ad hoc queries on the event database"; this subset
/// covers the demo's track-and-trace and reporting statements:
///
///   SELECT col[, col...] | * FROM table
///     [WHERE col OP literal [AND ...]]
///     [ORDER BY col [ASC|DESC]] [LIMIT n]
///   INSERT INTO table [(col, ...)] VALUES (literal, ...)
///   UPDATE table SET col = literal [, ...] [WHERE ...]
///   DELETE FROM table [WHERE ...]
///   CREATE TABLE table (col TYPE [, ...])   -- TYPE in INT|DOUBLE|STRING|BOOL
///
/// Conditions support `IS NULL` / `IS NOT NULL`. The lexer is shared with
/// the SASE event language (SQL keywords outside SASE's set arrive as
/// identifiers and are matched case-insensitively here).
class SqlParser {
 public:
  static Result<SqlStatement> Parse(const std::string& text);

 private:
  explicit SqlParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Current() const { return tokens_[pos_]; }
  bool CheckKind(TokenKind kind) const { return Current().kind == kind; }
  bool CheckWord(const char* word) const;
  bool MatchKind(TokenKind kind);
  bool MatchWord(const char* word);
  Status ExpectKind(TokenKind kind, const std::string& context);
  Status ExpectWord(const char* word, const std::string& context);
  Status ErrorAtCurrent(const std::string& message) const;
  Result<std::string> ParseIdentifier(const std::string& what);
  Result<Value> ParseLiteral();
  Status ParseWhere(std::vector<SqlCondition>* conditions);

  Result<SqlStatement> ParseStatement();
  Result<SqlStatement> ParseSelect();
  Result<SqlStatement> ParseInsert();
  Result<SqlStatement> ParseUpdate();
  Result<SqlStatement> ParseDelete();
  Result<SqlStatement> ParseCreate();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace db
}  // namespace sase

#endif  // SASE_DB_SQL_PARSER_H_
