#include "db/table.h"

#include <algorithm>

#include "util/string_util.h"

namespace sase {
namespace db {

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

int Table::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Status Table::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "table " + name_ + " expects " + std::to_string(columns_.size()) +
        " values, got " + std::to_string(row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    ValueType expected = columns_[i].type;
    ValueType actual = row[i].type();
    bool numeric_ok =
        (expected == ValueType::kInt || expected == ValueType::kDouble) &&
        (actual == ValueType::kInt || actual == ValueType::kDouble);
    if (actual != expected && !numeric_ok) {
      return Status::InvalidArgument("column " + columns_[i].name + " of " +
                                     name_ + " expects " +
                                     ValueTypeName(expected) + ", got " +
                                     ValueTypeName(actual));
    }
  }
  return Status::Ok();
}

Result<RowId> Table::Insert(Row row) {
  SASE_RETURN_IF_ERROR(ValidateRow(row));
  RowId id = next_id_++;
  for (const auto& [column, index] : indexes_) {
    (void)index;
    IndexInsert(column, row[static_cast<size_t>(column)], id);
  }
  rows_.emplace(id, std::move(row));
  return id;
}

const Row* Table::Get(RowId id) const {
  auto it = rows_.find(id);
  return it == rows_.end() ? nullptr : &it->second;
}

Status Table::Update(RowId id, int column, Value value) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(id) + " not in " + name_);
  }
  if (column < 0 || static_cast<size_t>(column) >= columns_.size()) {
    return Status::InvalidArgument("bad column index");
  }
  Row probe = it->second;
  probe[static_cast<size_t>(column)] = value;
  SASE_RETURN_IF_ERROR(ValidateRow(probe));
  if (HasIndex(column)) {
    IndexErase(column, it->second[static_cast<size_t>(column)], id);
    IndexInsert(column, value, id);
  }
  it->second[static_cast<size_t>(column)] = std::move(value);
  return Status::Ok();
}

bool Table::Erase(RowId id) {
  auto it = rows_.find(id);
  if (it == rows_.end()) return false;
  for (const auto& [column, index] : indexes_) {
    (void)index;
    IndexErase(column, it->second[static_cast<size_t>(column)], id);
  }
  rows_.erase(it);
  return true;
}

void Table::Scan(const std::function<bool(RowId, const Row&)>& fn) const {
  for (const auto& [id, row] : rows_) {
    if (!fn(id, row)) return;
  }
}

Status Table::CreateIndex(const std::string& column) {
  int col = FindColumn(column);
  if (col < 0) {
    return Status::NotFound("no column '" + column + "' in " + name_);
  }
  if (HasIndex(col)) return Status::Ok();
  auto& index = indexes_[col];
  for (const auto& [id, row] : rows_) {
    index[row[static_cast<size_t>(col)]].push_back(id);
  }
  return Status::Ok();
}

bool Table::HasIndex(int column) const { return indexes_.count(column) > 0; }

Result<std::vector<RowId>> Table::Lookup(int column, const Value& value) const {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    return Status::InvalidArgument("no index on column " + std::to_string(column) +
                                   " of " + name_);
  }
  auto rows = it->second.find(value);
  if (rows == it->second.end()) return std::vector<RowId>{};
  return rows->second;
}

void Table::IndexInsert(int column, const Value& value, RowId id) {
  auto& ids = indexes_[column][value];
  ids.insert(std::upper_bound(ids.begin(), ids.end(), id), id);
}

void Table::IndexErase(int column, const Value& value, RowId id) {
  auto it = indexes_[column].find(value);
  if (it == indexes_[column].end()) return;
  auto& ids = it->second;
  auto pos = std::lower_bound(ids.begin(), ids.end(), id);
  if (pos != ids.end() && *pos == id) ids.erase(pos);
  if (ids.empty()) indexes_[column].erase(it);
}

}  // namespace db
}  // namespace sase
