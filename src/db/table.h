#ifndef SASE_DB_TABLE_H_
#define SASE_DB_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/value.h"
#include "util/status.h"

namespace sase {
namespace db {

/// Identifier of a row within its table; stable across updates, never
/// reused after deletion.
using RowId = int64_t;

/// One column of a table schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// A row is a value per column, in schema order.
using Row = std::vector<Value>;

/// An in-memory relational table with optional hash indexes.
///
/// This is the storage engine behind the Event Database (the paper uses
/// MySQL 5.0.22; see DESIGN.md for the substitution argument). Rows live in
/// an ordered map keyed by RowId, so scans are deterministic; secondary
/// indexes are hash maps from column value to row ids, maintained on every
/// mutation — the access path for track-and-trace point lookups.
class Table {
 public:
  Table(std::string name, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Column position by (case-insensitive) name; -1 when absent.
  int FindColumn(const std::string& name) const;

  /// Inserts a row. The value count must match the schema; values must be
  /// NULL or type-compatible (int/double coerce).
  Result<RowId> Insert(Row row);

  /// Point read; nullptr when the row does not exist.
  const Row* Get(RowId id) const;

  /// Overwrites one column of a row.
  Status Update(RowId id, int column, Value value);

  /// Deletes a row; false when absent.
  bool Erase(RowId id);

  /// Full scan in RowId order. Return false from the callback to stop.
  void Scan(const std::function<bool(RowId, const Row&)>& fn) const;

  /// Builds a hash index over `column` (idempotent).
  Status CreateIndex(const std::string& column);
  bool HasIndex(int column) const;

  /// Indexed lookup: row ids whose `column` equals `value`, in RowId
  /// order. Requires an index on the column.
  Result<std::vector<RowId>> Lookup(int column, const Value& value) const;

  size_t row_count() const { return rows_.size(); }

 private:
  Status ValidateRow(const Row& row) const;
  void IndexInsert(int column, const Value& value, RowId id);
  void IndexErase(int column, const Value& value, RowId id);

  std::string name_;
  std::vector<Column> columns_;
  std::map<RowId, Row> rows_;
  RowId next_id_ = 1;
  // column -> (value -> sorted row ids)
  std::unordered_map<int, std::unordered_map<Value, std::vector<RowId>, ValueHash>>
      indexes_;
};

}  // namespace db
}  // namespace sase

#endif  // SASE_DB_TABLE_H_
