#include "db/track_trace.h"

#include <algorithm>
#include <sstream>

namespace sase {
namespace db {

std::string MovementEntry::ToString() const {
  std::ostringstream out;
  out << (kind == Kind::kLocation ? "location " : "container ")
      << stay.where.ToString() << " [" << stay.time_in << ", ";
  if (stay.current()) {
    out << "now)";
  } else {
    out << stay.time_out << ")";
  }
  return out.str();
}

TrackTrace::TrackTrace(Database* database)
    : location_(database->GetTable("location_history")),
      containment_(database->GetTable("containment_history")) {}

std::vector<Stay> TrackTrace::History(const Table* table,
                                      const std::string& tag_id) const {
  std::vector<Stay> stays;
  if (table == nullptr) return stays;
  auto ids = table->Lookup(0, Value(tag_id));
  if (!ids.ok()) return stays;
  for (RowId id : ids.value()) {
    const Row* row = table->Get(id);
    if (row == nullptr) continue;
    Stay stay;
    stay.where = (*row)[1];
    stay.time_in = (*row)[2].is_null() ? 0 : (*row)[2].AsInt();
    stay.time_out = (*row)[3].is_null() ? -1 : (*row)[3].AsInt();
    stays.push_back(std::move(stay));
  }
  std::stable_sort(stays.begin(), stays.end(),
                   [](const Stay& a, const Stay& b) { return a.time_in < b.time_in; });
  return stays;
}

std::optional<Stay> TrackTrace::CurrentLocation(const std::string& tag_id) const {
  for (const Stay& stay : History(location_, tag_id)) {
    if (stay.current()) return stay;
  }
  return std::nullopt;
}

std::optional<Stay> TrackTrace::CurrentContainment(
    const std::string& tag_id) const {
  for (const Stay& stay : History(containment_, tag_id)) {
    if (stay.current()) return stay;
  }
  return std::nullopt;
}

std::vector<Stay> TrackTrace::LocationHistory(const std::string& tag_id) const {
  return History(location_, tag_id);
}

std::vector<Stay> TrackTrace::ContainmentHistory(
    const std::string& tag_id) const {
  return History(containment_, tag_id);
}

std::vector<MovementEntry> TrackTrace::MovementHistory(
    const std::string& tag_id) const {
  std::vector<MovementEntry> entries;
  for (const Stay& stay : History(location_, tag_id)) {
    entries.push_back({MovementEntry::Kind::kLocation, stay});
  }
  for (const Stay& stay : History(containment_, tag_id)) {
    entries.push_back({MovementEntry::Kind::kContainment, stay});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const MovementEntry& a, const MovementEntry& b) {
                     return a.stay.time_in < b.stay.time_in;
                   });
  return entries;
}

std::vector<std::string> TrackTrace::TagsInArea(int64_t area_id) const {
  std::vector<std::string> tags;
  if (location_ == nullptr) return tags;
  location_->Scan([&](RowId, const Row& row) {
    if (row[3].is_null() && !row[1].is_null() && row[1].Equals(Value(area_id)) &&
        !row[0].is_null()) {
      tags.push_back(row[0].AsString());
    }
    return true;
  });
  std::sort(tags.begin(), tags.end());
  return tags;
}

}  // namespace db
}  // namespace sase
