#ifndef SASE_DB_TRACK_TRACE_H_
#define SASE_DB_TRACK_TRACE_H_

#include <optional>
#include <string>
#include <vector>

#include "db/database.h"
#include "util/time_util.h"

namespace sase {
namespace db {

/// One stay of a tag in a location or container; TimeOut of -1 encodes
/// "still there" (NULL in the table).
struct Stay {
  Value where;  // AreaId (INT) or ContainerId (STRING)
  Timestamp time_in = 0;
  Timestamp time_out = -1;

  bool current() const { return time_out < 0; }
};

/// A combined movement-history entry for display: location and containment
/// changes merged in time order ("Movement history: find the location and
/// containment changes of an item", §4).
struct MovementEntry {
  enum class Kind { kLocation, kContainment } kind = Kind::kLocation;
  Stay stay;

  std::string ToString() const;
};

/// The demo's track-and-trace queries over the archival schema
/// (see db/archiver.h). Both run as indexed point lookups on TagId.
class TrackTrace {
 public:
  explicit TrackTrace(Database* database);

  /// "Current location: find the current location of an item."
  std::optional<Stay> CurrentLocation(const std::string& tag_id) const;

  /// Current container of an item, if any.
  std::optional<Stay> CurrentContainment(const std::string& tag_id) const;

  /// All location stays of an item in TimeIn order.
  std::vector<Stay> LocationHistory(const std::string& tag_id) const;

  /// All containment stays of an item in TimeIn order.
  std::vector<Stay> ContainmentHistory(const std::string& tag_id) const;

  /// "Movement history: find the location and containment changes of an
  /// item" — both histories merged in time order.
  std::vector<MovementEntry> MovementHistory(const std::string& tag_id) const;

  /// All tags currently in the given area (inventory view). Scans.
  std::vector<std::string> TagsInArea(int64_t area_id) const;

 private:
  std::vector<Stay> History(const Table* table, const std::string& tag_id) const;

  const Table* location_;
  const Table* containment_;
};

}  // namespace db
}  // namespace sase

#endif  // SASE_DB_TRACK_TRACE_H_
