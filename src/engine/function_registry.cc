#include "engine/function_registry.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace sase {

Status FunctionRegistry::Register(const std::string& name, int arity,
                                  BuiltinFunction fn) {
  std::string key = ToLower(name);
  if (functions_.count(key) > 0) {
    return Status::AlreadyExists("function already registered: " + name);
  }
  functions_.emplace(std::move(key), Entry{arity, std::move(fn)});
  return Status::Ok();
}

bool FunctionRegistry::Has(const std::string& name) const {
  return functions_.count(ToLower(name)) > 0;
}

Result<Value> FunctionRegistry::Invoke(const std::string& name,
                                       const std::vector<Value>& args) const {
  auto it = functions_.find(ToLower(name));
  if (it == functions_.end()) {
    return Status::NotFound("unknown function: " + name);
  }
  const Entry& entry = it->second;
  if (entry.arity >= 0 && static_cast<size_t>(entry.arity) != args.size()) {
    return Status::InvalidArgument(
        name + " expects " + std::to_string(entry.arity) + " arguments, got " +
        std::to_string(args.size()));
  }
  return entry.fn(args);
}

std::vector<std::string> FunctionRegistry::FunctionNames() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, entry] : functions_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void FunctionRegistry::RegisterCommon() {
  (void)Register("_concat", -1, [](const std::vector<Value>& args) -> Result<Value> {
    std::string out;
    for (const auto& arg : args) out += arg.ToString();
    return Value(std::move(out));
  });
  (void)Register("_abs", 1, [](const std::vector<Value>& args) -> Result<Value> {
    const Value& v = args[0];
    if (v.type() == ValueType::kInt) return Value(std::abs(v.AsInt()));
    if (v.type() == ValueType::kDouble) return Value(std::fabs(v.AsDouble()));
    return Status::InvalidArgument("_abs expects a numeric argument");
  });
  (void)Register("_length", 1, [](const std::vector<Value>& args) -> Result<Value> {
    if (args[0].type() != ValueType::kString) {
      return Status::InvalidArgument("_length expects a string argument");
    }
    return Value(static_cast<int64_t>(args[0].AsString().size()));
  });
  (void)Register("_upper", 1, [](const std::vector<Value>& args) -> Result<Value> {
    if (args[0].type() != ValueType::kString) {
      return Status::InvalidArgument("_upper expects a string argument");
    }
    return Value(ToUpper(args[0].AsString()));
  });
  (void)Register("_lower", 1, [](const std::vector<Value>& args) -> Result<Value> {
    if (args[0].type() != ValueType::kString) {
      return Status::InvalidArgument("_lower expects a string argument");
    }
    return Value(ToLower(args[0].AsString()));
  });
  (void)Register("_if", 3, [](const std::vector<Value>& args) -> Result<Value> {
    if (args[0].type() != ValueType::kBool) {
      return Status::InvalidArgument("_if expects a boolean condition");
    }
    return args[0].AsBool() ? args[1] : args[2];
  });
}

}  // namespace sase
