#ifndef SASE_ENGINE_FUNCTION_REGISTRY_H_
#define SASE_ENGINE_FUNCTION_REGISTRY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/value.h"
#include "util/status.h"

namespace sase {

/// Signature of a SASE built-in or user function callable from WHERE and
/// RETURN clauses.
using BuiltinFunction =
    std::function<Result<Value>(const std::vector<Value>& args)>;

/// Registry of functions callable from queries.
///
/// "Our language provides a set of built-in functions (all starting with
/// '_') for common database operations and can be extended to accommodate
/// other user functions." The database module registers
/// `_retrieveLocation`, `_updateLocation`, `_updateContainment`, ...;
/// RegisterCommon() adds pure helpers that need no database.
class FunctionRegistry {
 public:
  FunctionRegistry() = default;

  /// Registers `fn` under (case-insensitive) `name`. `arity` of -1 accepts
  /// any argument count; otherwise Invoke checks it before dispatch.
  Status Register(const std::string& name, int arity, BuiltinFunction fn);

  bool Has(const std::string& name) const;

  /// Calls the named function. Unknown names and arity mismatches are
  /// InvalidArgument errors surfaced to the query.
  Result<Value> Invoke(const std::string& name,
                       const std::vector<Value>& args) const;

  /// Names of all registered functions (sorted), for diagnostics.
  std::vector<std::string> FunctionNames() const;

  /// Registers database-independent helpers:
  ///   _concat(a, b, ...)  string concatenation
  ///   _abs(x)             absolute value
  ///   _length(s)          string length
  ///   _upper(s), _lower(s)
  ///   _if(cond, a, b)     conditional
  void RegisterCommon();

 private:
  struct Entry {
    int arity;
    BuiltinFunction fn;
  };
  std::unordered_map<std::string, Entry> functions_;  // key: lowercased name
};

}  // namespace sase

#endif  // SASE_ENGINE_FUNCTION_REGISTRY_H_
