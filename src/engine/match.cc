#include "engine/match.h"

#include <sstream>

#include "util/string_util.h"

namespace sase {

std::string Match::ToString(const Catalog& catalog) const {
  std::ostringstream out;
  out << "match[" << first_ts << ".." << last_ts << "]{";
  bool first = true;
  for (const auto& event : bindings) {
    if (event == nullptr) continue;
    if (!first) out << "; ";
    first = false;
    out << event->ToString(catalog);
  }
  out << "}";
  return out.str();
}

std::vector<SequenceNumber> Match::Key() const {
  std::vector<SequenceNumber> key;
  key.reserve(bindings.size());
  for (const auto& event : bindings) {
    // Slot order is stable, so a flat list of seqs (with a sentinel for
    // negated slots) identifies the match uniquely.
    key.push_back(event == nullptr ? static_cast<SequenceNumber>(-1)
                                   : event->seq());
  }
  return key;
}

std::string OutputRecord::ToString() const {
  std::ostringstream out;
  out << (stream.empty() ? "out" : stream) << "@" << timestamp << "{";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out << ", ";
    out << names[i] << "=" << values[i].ToString();
  }
  out << "}";
  return out.str();
}

Value OutputRecord::Get(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (EqualsIgnoreCase(names[i], name)) return values[i];
  }
  return Value();
}

}  // namespace sase
