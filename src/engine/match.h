#ifndef SASE_ENGINE_MATCH_H_
#define SASE_ENGINE_MATCH_H_

#include <functional>
#include <string>
#include <vector>

#include "core/binding_vec.h"
#include "core/catalog.h"
#include "core/event.h"
#include "core/value.h"

namespace sase {

/// A composite event produced by the event matching block (EVENT + WHERE +
/// WITHIN): one constituent event per pattern variable.
///
/// `bindings` is indexed by pattern slot; negated slots stay nullptr (a
/// match is precisely the *absence* of those events). Bindings are stored
/// flat (inline up to BindingVec::kInlineSlots) so constructing and copying
/// a match does not heap-allocate for typical pattern widths. The timestamps
/// of the first/last positive constituents are cached for window checks.
struct Match {
  BindingVec bindings;
  Timestamp first_ts = 0;
  Timestamp last_ts = 0;

  /// Renders the positive constituents for debugging/tests.
  std::string ToString(const Catalog& catalog) const;

  /// Canonical identity: the sequence numbers of bound events. Used by
  /// tests to compare engine output against the reference matcher.
  std::vector<SequenceNumber> Key() const;
};

using MatchCallback = std::function<void(const Match&)>;

/// Final output of a query: the composite event after the RETURN clause.
/// Attribute names come from aliases (or the expression text), the stream
/// name from INTO, and the timestamp from the last constituent event.
struct OutputRecord {
  std::string stream;
  Timestamp timestamp = 0;
  std::vector<std::string> names;
  std::vector<Value> values;

  /// Serial-order stamp, filled by the Transformation operator and consumed
  /// by the sharded runtime's OutputMerger (src/runtime/). `emit_ts/emit_seq`
  /// identify the constituent event whose arrival completed the match. For a
  /// query with tail negation (`deferred`) the record's serial emission point
  /// is not the completing event but the first stream event with timestamp
  /// strictly greater than `release_ts` (= first constituent ts + window), or
  /// end-of-stream if no such event arrives. The stamp does not participate
  /// in ToString()/Get() and is invisible to user-facing output.
  Timestamp emit_ts = 0;
  SequenceNumber emit_seq = 0;
  bool deferred = false;
  Timestamp release_ts = 0;

  /// Exactly-once delivery cursor, stamped just before the record reaches a
  /// sink: the host class (runtime-merged vs serial-synchronous delivery)
  /// and the 1-based position within that class's deterministic delivery
  /// order. Re-deliveries after crash recovery carry their ORIGINAL
  /// positions, so a sink can acknowledge (SaseSystem::AckOutput) or dedup
  /// (IdempotentSink) by the stamp. 0 = not delivered through a stamping
  /// path (e.g. a bare engine callback). Like the serial-order stamp, the
  /// cursor does not participate in ToString()/Get().
  bool cursor_runtime_hosted = false;
  uint64_t cursor_position = 0;

  /// "stream@ts{name=value, ...}".
  std::string ToString() const;

  /// Value lookup by (case-insensitive) column name; NULL when absent.
  Value Get(const std::string& name) const;
};

using OutputCallback = std::function<void(const OutputRecord&)>;

}  // namespace sase

#endif  // SASE_ENGINE_MATCH_H_
