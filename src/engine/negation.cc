#include "engine/negation.h"

#include <algorithm>

#include "util/logging.h"
#include "util/value_codec.h"

namespace sase {

Negation::Negation(std::vector<NegationSpec> specs,
                   std::vector<int> positive_slots, Ticks window,
                   bool use_partitioning, const FunctionRegistry* functions)
    : specs_(std::move(specs)), positive_slots_(std::move(positive_slots)),
      window_(window), use_partitioning_(use_partitioning),
      functions_(functions) {
  buffers_.resize(specs_.size());
  for (const auto& spec : specs_) {
    if (spec.next_positive < 0) any_tail_negation_ = true;
  }
  size_t max_slot = positive_slots_.empty() ? 0u : 0u;
  for (int slot : positive_slots_) {
    max_slot = std::max(max_slot, static_cast<size_t>(slot));
  }
  for (const auto& spec : specs_) {
    max_slot = std::max(max_slot, static_cast<size_t>(spec.slot));
  }
  scratch_.resize(max_slot + 1);
}

void Negation::OnEvent(const EventPtr& event) {
  // 1. Buffer the event if any spec is interested in its type.
  for (size_t i = 0; i < specs_.size(); ++i) {
    const NegationSpec& spec = specs_[i];
    if (spec.type_id != event->type()) continue;

    // Apply the single-variable filters once, at buffering time.
    bool pass = true;
    if (!spec.filters.empty()) {
      const size_t slots = scratch_.size();
      scratch_.clear();
      scratch_.resize(slots);  // all-null slots
      scratch_[static_cast<size_t>(spec.slot)] = event;
      EvalContext ctx{&scratch_, functions_};
      for (const auto& filter : spec.filters) {
        auto result = EvalPredicate(*filter, ctx);
        if (!result.ok()) {
          if (stats_.eval_errors == 0) {
            SASE_LOG_WARN << "negation filter error: "
                          << result.status().ToString();
          }
          ++stats_.eval_errors;
          pass = false;
          break;
        }
        if (!result.value()) {
          pass = false;
          break;
        }
      }
    }
    if (!pass) continue;

    Buffer& buffer = buffers_[i];
    if (SpecPartitioned(spec)) {
      buffer.by_key[event->attribute(spec.partition_attr)].push_back(event);
    } else {
      buffer.events.push_back(event);
    }
    ++stats_.events_buffered;
  }

  // 2. Advance the watermark: release deferred matches whose tail window
  // closed strictly before `now` (events at ts == now may still arrive).
  if (!pending_.empty()) ReleasePending(event->timestamp(), /*flush=*/false);

  // 3. Periodically drop buffered events that fell out of every possible
  // future interval.
  if (window_ >= 0 && ++events_since_prune_ >= kPruneInterval) {
    PruneBuffers(event->timestamp());
    events_since_prune_ = 0;
  }
}

void Negation::OnMatch(const Match& match) {
  CountIn();
  if (specs_.empty()) {
    Emit(match);
    return;
  }
  if (any_tail_negation_) {
    // The tail interval stays open until first.ts + W; park the match.
    // Head/middle specs are checked eagerly so hopeless matches don't
    // occupy memory until release.
    for (size_t i = 0; i < specs_.size(); ++i) {
      if (specs_[i].next_positive < 0) continue;
      if (HasViolation(specs_[i], buffers_[i], match)) {
        ++stats_.matches_rejected;
        return;
      }
    }
    ++stats_.matches_deferred;
    pending_.emplace(match.first_ts + window_, match);
    return;
  }
  if (CheckAll(match)) {
    Emit(match);
  } else {
    ++stats_.matches_rejected;
  }
}

void Negation::OnFlush() {
  ReleasePending(0, /*flush=*/true);
  Operator::OnFlush();
}

void Negation::OnWatermark(Timestamp now) {
  if (!pending_.empty()) ReleasePending(now, /*flush=*/false);
  // Watermarks prune the candidate buffers too: pruning only drops events
  // past the conservative 2W horizon (they can never violate a future
  // match), so output is unaffected while the state gauges decay on a
  // quiescent stream.
  PruneBuffers(now);
  events_since_prune_ = 0;
}

Negation::Footprint Negation::StateFootprint() const {
  Footprint fp;
  for (const Buffer& buffer : buffers_) {
    fp.buffered += buffer.events.size();
    fp.bytes += buffer.events.capacity() * sizeof(EventPtr);
    for (const auto& [key, events] : buffer.by_key) {
      fp.buffered += events.size();
      fp.bytes += sizeof(key) + events.capacity() * sizeof(EventPtr);
    }
  }
  fp.pending = pending_.size();
  fp.bytes += pending_.size() * sizeof(std::pair<Timestamp, Match>);
  return fp;
}

bool Negation::CheckAll(const Match& match) {
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (HasViolation(specs_[i], buffers_[i], match)) return false;
  }
  return true;
}

void Negation::ReleasePending(Timestamp now, bool flush) {
  while (!pending_.empty()) {
    auto it = pending_.begin();
    if (!flush && it->first >= now) break;
    Match match = std::move(it->second);
    pending_.erase(it);
    // Only the tail specs remain to check; head/middle were checked at
    // arrival. Re-checking them would be wrong anyway: their buffers may
    // have been pruned since.
    bool ok = true;
    for (size_t i = 0; i < specs_.size(); ++i) {
      if (specs_[i].next_positive >= 0) continue;
      if (HasViolation(specs_[i], buffers_[i], match)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      Emit(match);
    } else {
      ++stats_.matches_rejected;
    }
  }
}

bool Negation::HasViolation(const NegationSpec& spec, Buffer& buffer,
                            const Match& match) {
  // Determine the non-occurrence interval (lo, hi) and bound inclusivity.
  Timestamp lo, hi;
  bool lo_inclusive = false, hi_inclusive = false;
  if (spec.prev_positive >= 0) {
    lo = match.bindings[static_cast<size_t>(
                            positive_slots_[static_cast<size_t>(spec.prev_positive)])]
             ->timestamp();
  } else {
    lo = match.last_ts - window_;  // head negation: window lower bound
    lo_inclusive = true;
  }
  if (spec.next_positive >= 0) {
    hi = match.bindings[static_cast<size_t>(
                            positive_slots_[static_cast<size_t>(spec.next_positive)])]
             ->timestamp();
  } else {
    hi = match.first_ts + window_;  // tail negation: window upper bound
    hi_inclusive = true;
  }

  auto in_interval = [&](Timestamp t) {
    bool above = lo_inclusive ? t >= lo : t > lo;
    bool below = hi_inclusive ? t <= hi : t < hi;
    return above && below;
  };

  auto check_range = [&](const std::vector<EventPtr>& events) {
    // Events are time-sorted; binary search the interval start.
    auto first = std::lower_bound(
        events.begin(), events.end(), lo,
        [](const EventPtr& e, Timestamp t) { return e->timestamp() < t; });
    for (auto it = first; it != events.end(); ++it) {
      const EventPtr& candidate = *it;
      Timestamp t = candidate->timestamp();
      if (hi_inclusive ? t > hi : t >= hi) break;
      if (!in_interval(t)) continue;
      ++stats_.candidates_examined;
      if (spec.cross_preds.empty()) return true;
      // Bind the candidate alongside the match's positives and test the
      // parameterized predicates.
      scratch_ = match.bindings;
      if (scratch_.size() <= static_cast<size_t>(spec.slot)) {
        scratch_.resize(static_cast<size_t>(spec.slot) + 1);
      }
      scratch_[static_cast<size_t>(spec.slot)] = candidate;
      EvalContext ctx{&scratch_, functions_};
      bool all_pass = true;
      for (const auto& pred : spec.cross_preds) {
        auto result = EvalPredicate(*pred, ctx);
        if (!result.ok()) {
          if (stats_.eval_errors == 0) {
            SASE_LOG_WARN << "negation predicate error: "
                          << result.status().ToString();
          }
          ++stats_.eval_errors;
          all_pass = false;
          break;
        }
        if (!result.value()) {
          all_pass = false;
          break;
        }
      }
      if (all_pass) return true;
    }
    return false;
  };

  if (SpecPartitioned(spec)) {
    // Only candidates sharing the match's partition key can violate.
    const Value& key =
        match.bindings[static_cast<size_t>(spec.key_slot)]->attribute(spec.key_attr);
    auto it = buffer.by_key.find(key);
    if (it == buffer.by_key.end()) return false;
    return check_range(it->second);
  }
  return check_range(buffer.events);
}

void Negation::SaveState(StateWriter* w) const {
  w->Line("NS") << stats_.events_buffered << '|' << stats_.events_pruned
                << '|' << stats_.matches_rejected << '|'
                << stats_.matches_deferred << '|' << stats_.candidates_examined
                << '|' << stats_.eval_errors;
  w->EndLine();
  w->Line("NC") << matches_in() << '|' << matches_out();
  w->EndLine();
  for (size_t i = 0; i < buffers_.size(); ++i) {
    const Buffer& buffer = buffers_[i];
    w->Line("NB") << i;
    w->EndLine();
    for (const EventPtr& event : buffer.events) {
      std::string ref = w->Ref(event);
      w->Line("NV") << ref;
      w->EndLine();
    }
    for (const auto& [key, events] : buffer.by_key) {
      w->Line("NP") << EncodeValue(key);
      w->EndLine();
      for (const EventPtr& event : events) {
        std::string ref = w->Ref(event);
        w->Line("NV") << ref;
        w->EndLine();
      }
    }
  }
  // Parked deferrals in release order (multimap iteration order, which
  // restore reproduces: equal keys re-inserted in sequence keep it).
  for (const auto& [release_ts, match] : pending_) {
    std::vector<std::string> refs;
    refs.reserve(match.bindings.size());
    for (const EventPtr& binding : match.bindings) {
      refs.push_back(w->Ref(binding));
    }
    std::ostream& out = w->Line("ND");
    out << release_ts << '|' << match.first_ts << '|' << match.last_ts << '|'
        << refs.size();
    for (const std::string& ref : refs) out << '|' << ref;
    w->EndLine();
  }
}

Status Negation::LoadState(StateReader* r) {
  for (Buffer& buffer : buffers_) {
    buffer.events.clear();
    buffer.by_key.clear();
  }
  pending_.clear();
  events_since_prune_ = 0;
  Buffer* buffer = nullptr;
  std::vector<EventPtr>* target = nullptr;
  while (r->Next()) {
    const std::string& tag = r->tag();
    if (tag == "--") return Status::Ok();
    if (tag == "NS") {
      if (r->field_count() != 6) return r->Malformed("Negation stats");
      SASE_ASSIGN_OR_RETURN(stats_.events_buffered, r->U64(0));
      SASE_ASSIGN_OR_RETURN(stats_.events_pruned, r->U64(1));
      SASE_ASSIGN_OR_RETURN(stats_.matches_rejected, r->U64(2));
      SASE_ASSIGN_OR_RETURN(stats_.matches_deferred, r->U64(3));
      SASE_ASSIGN_OR_RETURN(stats_.candidates_examined, r->U64(4));
      SASE_ASSIGN_OR_RETURN(stats_.eval_errors, r->U64(5));
    } else if (tag == "NC") {
      SASE_ASSIGN_OR_RETURN(uint64_t in, r->U64(0));
      SASE_ASSIGN_OR_RETURN(uint64_t out, r->U64(1));
      RestoreCounters(in, out);
    } else if (tag == "NB") {
      SASE_ASSIGN_OR_RETURN(uint64_t index, r->U64(0));
      if (index >= buffers_.size()) {
        return r->Malformed("buffer index (negation shape)");
      }
      buffer = &buffers_[index];
      target = &buffer->events;
    } else if (tag == "NP") {
      if (buffer == nullptr) return r->Malformed("partition outside buffer");
      SASE_ASSIGN_OR_RETURN(Value key, r->Val(0));
      auto [it, inserted] = buffer->by_key.try_emplace(std::move(key));
      if (!inserted) return r->Malformed("duplicate negation partition");
      target = &it->second;
    } else if (tag == "NV") {
      if (target == nullptr) return r->Malformed("candidate outside buffer");
      SASE_ASSIGN_OR_RETURN(EventPtr event, r->Ev(0));
      if (event == nullptr) return r->Malformed("null negation candidate");
      target->push_back(std::move(event));
    } else if (tag == "ND") {
      SASE_ASSIGN_OR_RETURN(int64_t release_ts, r->I64(0));
      Match match;
      SASE_ASSIGN_OR_RETURN(match.first_ts, r->I64(1));
      SASE_ASSIGN_OR_RETURN(match.last_ts, r->I64(2));
      SASE_ASSIGN_OR_RETURN(uint64_t bindings, r->U64(3));
      if (r->field_count() != 4 + bindings) {
        return r->Malformed("deferral binding count");
      }
      match.bindings.reserve(bindings);
      for (uint64_t i = 0; i < bindings; ++i) {
        SASE_ASSIGN_OR_RETURN(EventPtr binding, r->Ev(4 + i));
        match.bindings.push_back(std::move(binding));
      }
      pending_.emplace(release_ts, std::move(match));
    } else {
      return r->Malformed("Negation tag");
    }
  }
  if (!r->status().ok()) return r->status();
  return Status::ParseError("Negation state truncated (no divider)");
}

void Negation::PruneBuffers(Timestamp now) {
  // A buffered event can only matter for intervals reaching back to
  // now - 2W (tail intervals extend W past a match whose own events span
  // at most W more). Use a conservative 2W + 1 horizon.
  if (window_ < 0) return;
  Timestamp lower = now - 2 * window_ - 1;
  auto prune_vec = [&](std::vector<EventPtr>& events) {
    size_t drop = 0;
    while (drop < events.size() && events[drop]->timestamp() < lower) ++drop;
    if (drop > 0) {
      events.erase(events.begin(), events.begin() + static_cast<ptrdiff_t>(drop));
      stats_.events_pruned += drop;
    }
  };
  for (Buffer& buffer : buffers_) {
    prune_vec(buffer.events);
    for (auto it = buffer.by_key.begin(); it != buffer.by_key.end();) {
      prune_vec(it->second);
      if (it->second.empty()) {
        it = buffer.by_key.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace sase
