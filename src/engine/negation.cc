#include "engine/negation.h"

#include <algorithm>

#include "util/logging.h"

namespace sase {

Negation::Negation(std::vector<NegationSpec> specs,
                   std::vector<int> positive_slots, Ticks window,
                   bool use_partitioning, const FunctionRegistry* functions)
    : specs_(std::move(specs)), positive_slots_(std::move(positive_slots)),
      window_(window), use_partitioning_(use_partitioning),
      functions_(functions) {
  buffers_.resize(specs_.size());
  for (const auto& spec : specs_) {
    if (spec.next_positive < 0) any_tail_negation_ = true;
  }
  size_t max_slot = positive_slots_.empty() ? 0u : 0u;
  for (int slot : positive_slots_) {
    max_slot = std::max(max_slot, static_cast<size_t>(slot));
  }
  for (const auto& spec : specs_) {
    max_slot = std::max(max_slot, static_cast<size_t>(spec.slot));
  }
  scratch_.resize(max_slot + 1);
}

void Negation::OnEvent(const EventPtr& event) {
  // 1. Buffer the event if any spec is interested in its type.
  for (size_t i = 0; i < specs_.size(); ++i) {
    const NegationSpec& spec = specs_[i];
    if (spec.type_id != event->type()) continue;

    // Apply the single-variable filters once, at buffering time.
    bool pass = true;
    if (!spec.filters.empty()) {
      scratch_.assign(scratch_.size(), nullptr);
      scratch_[static_cast<size_t>(spec.slot)] = event;
      EvalContext ctx{&scratch_, functions_};
      for (const auto& filter : spec.filters) {
        auto result = EvalPredicate(*filter, ctx);
        if (!result.ok()) {
          if (stats_.eval_errors == 0) {
            SASE_LOG_WARN << "negation filter error: "
                          << result.status().ToString();
          }
          ++stats_.eval_errors;
          pass = false;
          break;
        }
        if (!result.value()) {
          pass = false;
          break;
        }
      }
    }
    if (!pass) continue;

    Buffer& buffer = buffers_[i];
    if (SpecPartitioned(spec)) {
      buffer.by_key[event->attribute(spec.partition_attr)].push_back(event);
    } else {
      buffer.events.push_back(event);
    }
    ++stats_.events_buffered;
  }

  // 2. Advance the watermark: release deferred matches whose tail window
  // closed strictly before `now` (events at ts == now may still arrive).
  if (!pending_.empty()) ReleasePending(event->timestamp(), /*flush=*/false);

  // 3. Periodically drop buffered events that fell out of every possible
  // future interval.
  if (window_ >= 0 && ++events_since_prune_ >= kPruneInterval) {
    PruneBuffers(event->timestamp());
    events_since_prune_ = 0;
  }
}

void Negation::OnMatch(const Match& match) {
  CountIn();
  if (specs_.empty()) {
    Emit(match);
    return;
  }
  if (any_tail_negation_) {
    // The tail interval stays open until first.ts + W; park the match.
    // Head/middle specs are checked eagerly so hopeless matches don't
    // occupy memory until release.
    for (size_t i = 0; i < specs_.size(); ++i) {
      if (specs_[i].next_positive < 0) continue;
      if (HasViolation(specs_[i], buffers_[i], match)) {
        ++stats_.matches_rejected;
        return;
      }
    }
    ++stats_.matches_deferred;
    pending_.emplace(match.first_ts + window_, match);
    return;
  }
  if (CheckAll(match)) {
    Emit(match);
  } else {
    ++stats_.matches_rejected;
  }
}

void Negation::OnFlush() {
  ReleasePending(0, /*flush=*/true);
  Operator::OnFlush();
}

void Negation::OnWatermark(Timestamp now) {
  if (!pending_.empty()) ReleasePending(now, /*flush=*/false);
}

bool Negation::CheckAll(const Match& match) {
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (HasViolation(specs_[i], buffers_[i], match)) return false;
  }
  return true;
}

void Negation::ReleasePending(Timestamp now, bool flush) {
  while (!pending_.empty()) {
    auto it = pending_.begin();
    if (!flush && it->first >= now) break;
    Match match = std::move(it->second);
    pending_.erase(it);
    // Only the tail specs remain to check; head/middle were checked at
    // arrival. Re-checking them would be wrong anyway: their buffers may
    // have been pruned since.
    bool ok = true;
    for (size_t i = 0; i < specs_.size(); ++i) {
      if (specs_[i].next_positive >= 0) continue;
      if (HasViolation(specs_[i], buffers_[i], match)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      Emit(match);
    } else {
      ++stats_.matches_rejected;
    }
  }
}

bool Negation::HasViolation(const NegationSpec& spec, Buffer& buffer,
                            const Match& match) {
  // Determine the non-occurrence interval (lo, hi) and bound inclusivity.
  Timestamp lo, hi;
  bool lo_inclusive = false, hi_inclusive = false;
  if (spec.prev_positive >= 0) {
    lo = match.bindings[static_cast<size_t>(
                            positive_slots_[static_cast<size_t>(spec.prev_positive)])]
             ->timestamp();
  } else {
    lo = match.last_ts - window_;  // head negation: window lower bound
    lo_inclusive = true;
  }
  if (spec.next_positive >= 0) {
    hi = match.bindings[static_cast<size_t>(
                            positive_slots_[static_cast<size_t>(spec.next_positive)])]
             ->timestamp();
  } else {
    hi = match.first_ts + window_;  // tail negation: window upper bound
    hi_inclusive = true;
  }

  auto in_interval = [&](Timestamp t) {
    bool above = lo_inclusive ? t >= lo : t > lo;
    bool below = hi_inclusive ? t <= hi : t < hi;
    return above && below;
  };

  auto check_range = [&](const std::vector<EventPtr>& events) {
    // Events are time-sorted; binary search the interval start.
    auto first = std::lower_bound(
        events.begin(), events.end(), lo,
        [](const EventPtr& e, Timestamp t) { return e->timestamp() < t; });
    for (auto it = first; it != events.end(); ++it) {
      const EventPtr& candidate = *it;
      Timestamp t = candidate->timestamp();
      if (hi_inclusive ? t > hi : t >= hi) break;
      if (!in_interval(t)) continue;
      ++stats_.candidates_examined;
      if (spec.cross_preds.empty()) return true;
      // Bind the candidate alongside the match's positives and test the
      // parameterized predicates.
      scratch_ = match.bindings;
      if (scratch_.size() <= static_cast<size_t>(spec.slot)) {
        scratch_.resize(static_cast<size_t>(spec.slot) + 1);
      }
      scratch_[static_cast<size_t>(spec.slot)] = candidate;
      EvalContext ctx{&scratch_, functions_};
      bool all_pass = true;
      for (const auto& pred : spec.cross_preds) {
        auto result = EvalPredicate(*pred, ctx);
        if (!result.ok()) {
          if (stats_.eval_errors == 0) {
            SASE_LOG_WARN << "negation predicate error: "
                          << result.status().ToString();
          }
          ++stats_.eval_errors;
          all_pass = false;
          break;
        }
        if (!result.value()) {
          all_pass = false;
          break;
        }
      }
      if (all_pass) return true;
    }
    return false;
  };

  if (SpecPartitioned(spec)) {
    // Only candidates sharing the match's partition key can violate.
    const Value& key =
        match.bindings[static_cast<size_t>(spec.key_slot)]->attribute(spec.key_attr);
    auto it = buffer.by_key.find(key);
    if (it == buffer.by_key.end()) return false;
    return check_range(it->second);
  }
  return check_range(buffer.events);
}

void Negation::PruneBuffers(Timestamp now) {
  // A buffered event can only matter for intervals reaching back to
  // now - 2W (tail intervals extend W past a match whose own events span
  // at most W more). Use a conservative 2W + 1 horizon.
  if (window_ < 0) return;
  Timestamp lower = now - 2 * window_ - 1;
  auto prune_vec = [&](std::vector<EventPtr>& events) {
    size_t drop = 0;
    while (drop < events.size() && events[drop]->timestamp() < lower) ++drop;
    if (drop > 0) {
      events.erase(events.begin(), events.begin() + static_cast<ptrdiff_t>(drop));
      stats_.events_pruned += drop;
    }
  };
  for (Buffer& buffer : buffers_) {
    prune_vec(buffer.events);
    for (auto it = buffer.by_key.begin(); it != buffer.by_key.end();) {
      prune_vec(it->second);
      if (it->second.empty()) {
        it = buffer.by_key.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace sase
