#ifndef SASE_ENGINE_NEGATION_H_
#define SASE_ENGINE_NEGATION_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "engine/function_registry.h"
#include "engine/operator.h"
#include "engine/state_codec.h"
#include "query/analyzer.h"

namespace sase {

/// Enforces the `!`-components of the pattern: a match survives only if no
/// qualifying negated event occurred in the relevant interval.
///
/// Interval semantics (mirrored exactly by the ReferenceMatcher oracle):
///   - negation between positives x and z: candidates with
///     x.ts < t < z.ts (strict, matching strict sequence order);
///   - negation at the pattern head: t in [last.ts - W, first.ts);
///   - negation at the pattern tail: t in (last.ts, first.ts + W].
/// Head/tail negation requires a WITHIN window (enforced by the analyzer).
///
/// Tail negation cannot be decided when the match is constructed — a
/// qualifying event may still arrive until the window closes — so such
/// matches are parked and released once the stream time passes
/// `first.ts + W` (or at flush, which acts as an infinite watermark).
///
/// The operator taps the raw event stream to maintain, per negated
/// component, a time-ordered buffer of candidate events (pre-filtered by
/// the component's single-variable predicates). When the analyzer put the
/// negated variable into the partition equivalence class, the buffer is
/// hash-partitioned by that attribute and only the match's key partition is
/// consulted — the negation-side analogue of PAIS.
class Negation : public Operator {
 public:
  struct Stats {
    uint64_t events_buffered = 0;
    uint64_t events_pruned = 0;
    uint64_t matches_rejected = 0;
    uint64_t matches_deferred = 0;
    uint64_t candidates_examined = 0;
    uint64_t eval_errors = 0;
  };

  /// `specs` come from the analyzer (possibly adjusted by the planner when
  /// partitioning is disabled); `positive_slots` maps positive index ->
  /// slot; `window` in ticks (-1 = unbounded, only legal when every
  /// negation sits between positives).
  Negation(std::vector<NegationSpec> specs, std::vector<int> positive_slots,
           Ticks window, bool use_partitioning,
           const FunctionRegistry* functions);

  const char* name() const override { return "Negation"; }
  void OnEvent(const EventPtr& event) override;
  void OnMatch(const Match& match) override;
  void OnFlush() override;

  /// Advances stream time without an event: releases deferred matches whose
  /// tail window closed strictly before `now`, exactly as an event with that
  /// timestamp would, and prunes candidate buffers past the 2W horizon so a
  /// quiescent stream's state gauges decay. The sharded runtime sends
  /// watermarks so shards whose partitions go quiet still surface pending
  /// matches promptly.
  void OnWatermark(Timestamp now);

  const Stats& stats() const { return stats_; }

  /// Live operator-state footprint for the state-size gauges: candidate
  /// events held across all spec buffers, parked tail-negation deferrals,
  /// and the approximate heap bytes both occupy.
  struct Footprint {
    uint64_t buffered = 0;
    uint64_t pending = 0;
    uint64_t bytes = 0;
  };
  Footprint StateFootprint() const;

  /// Checkpoint state walker (snapshot v2): writes per-spec candidate
  /// buffers (plain and key-partitioned) and the parked tail-negation
  /// deferrals with their full binding vectors, plus counters, as codec
  /// lines. LoadState consumes lines until the "--" block divider.
  void SaveState(StateWriter* w) const;
  Status LoadState(StateReader* r);

 private:
  struct Buffer {
    // Unpartitioned candidates in arrival (= time) order.
    std::vector<EventPtr> events;
    // Partitioned candidates; used instead of `events` when the spec has a
    // partition attribute and partitioning is enabled.
    std::unordered_map<Value, std::vector<EventPtr>, ValueHash> by_key;
  };

  bool SpecPartitioned(const NegationSpec& spec) const {
    return use_partitioning_ && spec.partition_attr != kInvalidAttr;
  }

  /// True if some buffered event violates `spec` for `match`.
  bool HasViolation(const NegationSpec& spec, Buffer& buffer,
                    const Match& match);
  bool CheckAll(const Match& match);
  void ReleasePending(Timestamp now, bool flush);
  void PruneBuffers(Timestamp now);

  std::vector<NegationSpec> specs_;
  std::vector<int> positive_slots_;
  Ticks window_;
  bool use_partitioning_;
  const FunctionRegistry* functions_;

  std::vector<Buffer> buffers_;  // aligned with specs_
  bool any_tail_negation_ = false;

  // Matches awaiting their tail-negation window to close, keyed by release
  // time (= first.ts + W); released when stream time passes the key.
  std::multimap<Timestamp, Match> pending_;

  BindingVec scratch_;
  Stats stats_;
  uint64_t events_since_prune_ = 0;
  static constexpr uint64_t kPruneInterval = 1024;
};

}  // namespace sase

#endif  // SASE_ENGINE_NEGATION_H_
