#ifndef SASE_ENGINE_OPERATOR_H_
#define SASE_ENGINE_OPERATOR_H_

#include <cstdint>
#include <string>

#include "engine/match.h"

namespace sase {

/// Base class of the pipelined query-plan operators.
///
/// The paper implements queries as "a dataflow paradigm with pipelined
/// operators as in relational query processing": a native sequence operator
/// at the bottom feeding selection, window, negation and transformation.
/// Operators receive two flows:
///   - OnEvent: the raw input stream (SequenceScan consumes it to run the
///     NFA; Negation taps it to maintain its non-occurrence buffers; the
///     relational operators ignore it),
///   - OnMatch: composite events produced by the operator below.
/// Both flows are single-threaded and ordered; OnFlush signals stream end
/// (it releases matches deferred by tail negation).
class Operator {
 public:
  virtual ~Operator() = default;

  virtual const char* name() const = 0;

  virtual void OnEvent(const EventPtr& event) { (void)event; }
  virtual void OnMatch(const Match& match) = 0;
  virtual void OnFlush() {
    if (downstream_ != nullptr) downstream_->OnFlush();
  }

  void set_downstream(Operator* downstream) { downstream_ = downstream; }
  Operator* downstream() const { return downstream_; }

  /// Matches received / emitted, for plan statistics and the intermediate-
  /// result-set experiments.
  uint64_t matches_in() const { return matches_in_; }
  uint64_t matches_out() const { return matches_out_; }

  /// Checkpoint restore: continues the in/out counters of the checkpointed
  /// operator so plan statistics survive recovery.
  void RestoreCounters(uint64_t matches_in, uint64_t matches_out) {
    matches_in_ = matches_in;
    matches_out_ = matches_out;
  }

 protected:
  void CountIn() { ++matches_in_; }
  void Emit(const Match& match) {
    ++matches_out_;
    if (downstream_ != nullptr) downstream_->OnMatch(match);
  }

 private:
  Operator* downstream_ = nullptr;  // not owned
  uint64_t matches_in_ = 0;
  uint64_t matches_out_ = 0;
};

}  // namespace sase

#endif  // SASE_ENGINE_OPERATOR_H_
