#include "engine/planner.h"

#include <sstream>

#include "engine/shared_scan.h"
#include "util/string_util.h"

namespace sase {

std::string PlanOptions::ToString() const {
  std::ostringstream out;
  out << "push_window=" << (push_window ? "on" : "off")
      << " push_predicates=" << (push_predicates ? "on" : "off")
      << " partitioning=" << (use_partitioning ? "on" : "off");
  return out.str();
}

QueryPlan::QueryPlan(AnalyzedQuery query, PlanOptions options,
                     const Catalog* catalog, const FunctionRegistry* functions,
                     OutputCallback callback, bool shared_scan_mode)
    : query_(std::move(query)), options_(options),
      shared_scan_mode_(shared_scan_mode),
      nfa_(Nfa::Compile(query_,
                        options.push_predicates && !shared_scan_mode,
                        options.use_partitioning)) {
  if (!shared_scan_mode_) {
    Ticks scan_window = options_.push_window ? query_.window_ticks : -1;
    scan_ = std::make_unique<SequenceScan>(&nfa_, scan_window, functions,
                                           query_.slot_count());
  }

  // Residual predicates: the analyzer's residuals, plus whatever the
  // disabled optimizations hand back. A shared scan carries no edge
  // predicates regardless of push_predicates (they differ across members),
  // so shared mode always rehomes them here.
  std::vector<ExprPtr> residuals = query_.residual_predicates;
  if (!options_.push_predicates || shared_scan_mode_) {
    for (const auto& filters : query_.edge_filters) {
      residuals.insert(residuals.end(), filters.begin(), filters.end());
    }
  }
  if (!options_.use_partitioning) {
    residuals.insert(residuals.end(), query_.partition_subsumed.begin(),
                     query_.partition_subsumed.end());
  }
  selection_ = std::make_unique<Selection>(std::move(residuals), functions);

  window_ = std::make_unique<WindowFilter>(query_.window_ticks);

  std::vector<NegationSpec> specs = query_.negations;
  if (!options_.use_partitioning) {
    for (auto& spec : specs) {
      spec.cross_preds.insert(spec.cross_preds.end(),
                              spec.subsumed_cross.begin(),
                              spec.subsumed_cross.end());
      spec.partition_attr = kInvalidAttr;
    }
  }
  negation_ = std::make_unique<Negation>(std::move(specs),
                                         query_.positive_slots,
                                         query_.window_ticks,
                                         options_.use_partitioning, functions);

  transformation_ = std::make_unique<Transformation>(&query_, catalog,
                                                     functions,
                                                     std::move(callback));

  if (scan_ != nullptr) scan_->set_downstream(selection_.get());
  selection_->set_downstream(window_.get());
  window_->set_downstream(negation_.get());
  negation_->set_downstream(transformation_.get());
}

void QueryPlan::AttachSharedGroup(SharedScanGroup* group) {
  group_ = group;
  external_scan_ = group == nullptr ? nullptr : group->scan();
}

void QueryPlan::OnEvent(const EventPtr& event) {
  // Negation buffers must observe the event before any match produced from
  // it is checked; see engine/negation.h for the watermark argument.
  negation_->OnEvent(event);
  if (scan_ != nullptr) scan_->OnEvent(event);
}

void QueryPlan::OnSharedMatches(const EventPtr& event, const Match* matches,
                                size_t count) {
  // Same order as the dedicated path: negation observes the raw event
  // before any match constructed from it reaches the checks.
  negation_->OnEvent(event);
  if (count == 0) return;
  const size_t first_slot =
      static_cast<size_t>(query_.positive_slots.front());
  const Ticks window = query_.window_ticks;
  for (size_t i = 0; i < count; ++i) {
    const Match& match = matches[i];
    // The group scans at W_max; a dedicated scan at this member's window
    // would never have constructed a wider match, so drop it before the
    // tail (same `last - first <= W` test WindowFilter applies — this is
    // the pushdown equivalent for shared scans, and it keeps the member's
    // Selection from evaluating predicates on doomed matches).
    if (window >= 0 && match.last_ts - match.first_ts > window) continue;
    if (join_gated_) {
      const EventPtr& first = match.bindings[first_slot];
      if (first != nullptr && first->seq() <= join_gate_seq_) continue;
    }
    selection_->OnMatch(match);
  }
}

void QueryPlan::OnFlush() {
  // Dedicated mode flushes from the scan down; a shared-mode member owns
  // its pipeline only from Selection on (the group's scan has no
  // per-member tail to flush).
  if (scan_ != nullptr) {
    scan_->OnFlush();
  } else {
    selection_->OnFlush();
  }
}

void QueryPlan::OnWatermark(Timestamp now) {
  // Scan first (prunes window-expired instances, idempotent when members of
  // a shared group repeat it), then negation (releases deferrals, prunes
  // candidate buffers). Both only discard state that cannot affect any
  // future match, so watermark cadence never changes output.
  if (SequenceScan* scan = mutable_scan(); scan != nullptr) {
    scan->OnWatermark(now);
  }
  negation_->OnWatermark(now);
}

uint64_t QueryPlan::eval_error_count() const {
  uint64_t scan_errors =
      scan_ != nullptr ? scan_->stats().eval_errors : 0;  // shared scan is
  // filterless: it cannot raise eval errors for this member.
  return scan_errors + selection_->stats().eval_errors +
         negation_->stats().eval_errors + transformation_->stats().eval_errors;
}

std::string QueryPlan::SaveState() const {
  std::ostringstream out;
  StateWriter writer(&out);
  // Shape guard: NFA structure alone does not pin the query (WITHIN lives
  // in SequenceScan/WindowFilter, residual predicates in Selection), so
  // the payload also records the window span and plan options — a payload
  // can only restore into a plan compiled the same way.
  auto& line = writer.Line("NFA");
  line << EscapeField(nfa_.Signature()) << '|' << query_.window_ticks << '|'
       << EscapeField(options_.ToString());
  if (shared_scan_mode_) {
    // Shared-mode extras: join gate + the group's feed frontier, so a
    // restored engine re-gates late registrations exactly as the original
    // process would have. Older readers never see these (the signature of a
    // shared plan differs from its dedicated twin whenever predicates were
    // pushed; when it doesn't, the fields are simply absent from dedicated
    // payloads and field_count() gates the read).
    line << '|' << (join_gated_ ? 1 : 0) << '|' << join_gate_seq_ << '|'
         << (group_ != nullptr && group_->fed_any() ? 1 : 0) << '|'
         << (group_ != nullptr ? group_->last_seq() : 0);
  }
  writer.EndLine();
  // Fixed operator order, each block closed by a divider; the event table
  // (`E` lines) interleaves wherever an event is first referenced.
  sequence_scan().SaveState(&writer);
  writer.Line("--");
  writer.EndLine();
  negation_->SaveState(&writer);
  writer.Line("--");
  writer.EndLine();
  window_->SaveState(&writer);
  writer.Line("--");
  writer.EndLine();
  selection_->SaveState(&writer);
  writer.Line("--");
  writer.EndLine();
  transformation_->SaveState(&writer);
  writer.Line("--");
  writer.EndLine();
  return out.str();
}

Status QueryPlan::RestoreState(const std::string& payload) {
  std::istringstream in(payload);
  StateReader reader(&in);
  if (!reader.Next() || reader.tag() != "NFA") {
    SASE_RETURN_IF_ERROR(reader.status());
    return Status::ParseError("plan state payload has no NFA signature");
  }
  SASE_ASSIGN_OR_RETURN(std::string raw_sig, reader.Raw(0));
  SASE_ASSIGN_OR_RETURN(std::string signature, UnescapeField(raw_sig));
  SASE_ASSIGN_OR_RETURN(int64_t window, reader.I64(1));
  SASE_ASSIGN_OR_RETURN(std::string raw_options, reader.Raw(2));
  SASE_ASSIGN_OR_RETURN(std::string options, UnescapeField(raw_options));
  if (signature != nfa_.Signature() || window != query_.window_ticks ||
      options != options_.ToString()) {
    return Status::InvalidArgument(
        "plan state was captured on a differently compiled plan ('" +
        signature + "' window " + std::to_string(window) + " " + options +
        " vs '" + nfa_.Signature() + "' window " +
        std::to_string(query_.window_ticks) + " " + options_.ToString() + ")");
  }
  bool restored_fed = false;
  uint64_t restored_last_seq = 0;
  if (shared_scan_mode_ && reader.field_count() > 3) {
    SASE_ASSIGN_OR_RETURN(uint64_t gated, reader.U64(3));
    SASE_ASSIGN_OR_RETURN(join_gate_seq_, reader.U64(4));
    join_gated_ = gated != 0;
    if (reader.field_count() > 5) {
      SASE_ASSIGN_OR_RETURN(uint64_t fed, reader.U64(5));
      SASE_ASSIGN_OR_RETURN(restored_last_seq, reader.U64(6));
      restored_fed = fed != 0;
    }
  }
  SASE_RETURN_IF_ERROR(mutable_scan()->LoadState(&reader));
  if (group_ != nullptr) {
    group_->NoteRestored(restored_fed, restored_last_seq);
  }
  SASE_RETURN_IF_ERROR(negation_->LoadState(&reader));
  SASE_RETURN_IF_ERROR(window_->LoadState(&reader));
  SASE_RETURN_IF_ERROR(selection_->LoadState(&reader));
  SASE_RETURN_IF_ERROR(transformation_->LoadState(&reader));
  if (reader.Next()) {
    return Status::ParseError("trailing data after plan state: '" +
                              reader.tag() + "'");
  }
  return reader.status();
}

std::string QueryPlan::Explain(const Catalog& catalog) const {
  std::ostringstream out;
  out << "=== plan (" << options_.ToString() << ") ===\n";
  out << query_.Explain() << "\n";
  out << "--- NFA ---\n" << nfa_.ToString(catalog) << "\n";
  out << "--- operators ---\n";
  const Operator* ops[] = {&sequence_scan(), selection_.get(), window_.get(),
                           negation_.get(), transformation_.get()};
  for (const Operator* op : ops) {
    out << op->name() << ": in=" << op->matches_in()
        << " out=" << op->matches_out() << "\n";
  }
  return out.str();
}

std::unique_ptr<QueryPlan> Planner::Build(AnalyzedQuery query,
                                          PlanOptions options,
                                          const Catalog* catalog,
                                          const FunctionRegistry* functions,
                                          OutputCallback callback,
                                          bool shared_scan_mode) {
  return std::make_unique<QueryPlan>(std::move(query), options, catalog,
                                     functions, std::move(callback),
                                     shared_scan_mode);
}

}  // namespace sase
