#include "engine/planner.h"

#include <sstream>

#include "util/string_util.h"

namespace sase {

std::string PlanOptions::ToString() const {
  std::ostringstream out;
  out << "push_window=" << (push_window ? "on" : "off")
      << " push_predicates=" << (push_predicates ? "on" : "off")
      << " partitioning=" << (use_partitioning ? "on" : "off");
  return out.str();
}

QueryPlan::QueryPlan(AnalyzedQuery query, PlanOptions options,
                     const Catalog* catalog, const FunctionRegistry* functions,
                     OutputCallback callback)
    : query_(std::move(query)), options_(options),
      nfa_(Nfa::Compile(query_, options.push_predicates,
                        options.use_partitioning)) {
  Ticks scan_window = options_.push_window ? query_.window_ticks : -1;
  scan_ = std::make_unique<SequenceScan>(&nfa_, scan_window, functions,
                                         query_.slot_count());

  // Residual predicates: the analyzer's residuals, plus whatever the
  // disabled optimizations hand back.
  std::vector<ExprPtr> residuals = query_.residual_predicates;
  if (!options_.push_predicates) {
    for (const auto& filters : query_.edge_filters) {
      residuals.insert(residuals.end(), filters.begin(), filters.end());
    }
  }
  if (!options_.use_partitioning) {
    residuals.insert(residuals.end(), query_.partition_subsumed.begin(),
                     query_.partition_subsumed.end());
  }
  selection_ = std::make_unique<Selection>(std::move(residuals), functions);

  window_ = std::make_unique<WindowFilter>(query_.window_ticks);

  std::vector<NegationSpec> specs = query_.negations;
  if (!options_.use_partitioning) {
    for (auto& spec : specs) {
      spec.cross_preds.insert(spec.cross_preds.end(),
                              spec.subsumed_cross.begin(),
                              spec.subsumed_cross.end());
      spec.partition_attr = kInvalidAttr;
    }
  }
  negation_ = std::make_unique<Negation>(std::move(specs),
                                         query_.positive_slots,
                                         query_.window_ticks,
                                         options_.use_partitioning, functions);

  transformation_ = std::make_unique<Transformation>(&query_, catalog,
                                                     functions,
                                                     std::move(callback));

  scan_->set_downstream(selection_.get());
  selection_->set_downstream(window_.get());
  window_->set_downstream(negation_.get());
  negation_->set_downstream(transformation_.get());
}

void QueryPlan::OnEvent(const EventPtr& event) {
  // Negation buffers must observe the event before any match produced from
  // it is checked; see engine/negation.h for the watermark argument.
  negation_->OnEvent(event);
  scan_->OnEvent(event);
}

void QueryPlan::OnFlush() { scan_->OnFlush(); }

void QueryPlan::OnWatermark(Timestamp now) { negation_->OnWatermark(now); }

uint64_t QueryPlan::eval_error_count() const {
  return scan_->stats().eval_errors + selection_->stats().eval_errors +
         negation_->stats().eval_errors + transformation_->stats().eval_errors;
}

std::string QueryPlan::SaveState() const {
  std::ostringstream out;
  StateWriter writer(&out);
  // Shape guard: NFA structure alone does not pin the query (WITHIN lives
  // in SequenceScan/WindowFilter, residual predicates in Selection), so
  // the payload also records the window span and plan options — a payload
  // can only restore into a plan compiled the same way.
  writer.Line("NFA") << EscapeField(nfa_.Signature()) << '|'
                     << query_.window_ticks << '|'
                     << EscapeField(options_.ToString());
  writer.EndLine();
  // Fixed operator order, each block closed by a divider; the event table
  // (`E` lines) interleaves wherever an event is first referenced.
  scan_->SaveState(&writer);
  writer.Line("--");
  writer.EndLine();
  negation_->SaveState(&writer);
  writer.Line("--");
  writer.EndLine();
  window_->SaveState(&writer);
  writer.Line("--");
  writer.EndLine();
  selection_->SaveState(&writer);
  writer.Line("--");
  writer.EndLine();
  transformation_->SaveState(&writer);
  writer.Line("--");
  writer.EndLine();
  return out.str();
}

Status QueryPlan::RestoreState(const std::string& payload) {
  std::istringstream in(payload);
  StateReader reader(&in);
  if (!reader.Next() || reader.tag() != "NFA") {
    SASE_RETURN_IF_ERROR(reader.status());
    return Status::ParseError("plan state payload has no NFA signature");
  }
  SASE_ASSIGN_OR_RETURN(std::string raw_sig, reader.Raw(0));
  SASE_ASSIGN_OR_RETURN(std::string signature, UnescapeField(raw_sig));
  SASE_ASSIGN_OR_RETURN(int64_t window, reader.I64(1));
  SASE_ASSIGN_OR_RETURN(std::string raw_options, reader.Raw(2));
  SASE_ASSIGN_OR_RETURN(std::string options, UnescapeField(raw_options));
  if (signature != nfa_.Signature() || window != query_.window_ticks ||
      options != options_.ToString()) {
    return Status::InvalidArgument(
        "plan state was captured on a differently compiled plan ('" +
        signature + "' window " + std::to_string(window) + " " + options +
        " vs '" + nfa_.Signature() + "' window " +
        std::to_string(query_.window_ticks) + " " + options_.ToString() + ")");
  }
  SASE_RETURN_IF_ERROR(scan_->LoadState(&reader));
  SASE_RETURN_IF_ERROR(negation_->LoadState(&reader));
  SASE_RETURN_IF_ERROR(window_->LoadState(&reader));
  SASE_RETURN_IF_ERROR(selection_->LoadState(&reader));
  SASE_RETURN_IF_ERROR(transformation_->LoadState(&reader));
  if (reader.Next()) {
    return Status::ParseError("trailing data after plan state: '" +
                              reader.tag() + "'");
  }
  return reader.status();
}

std::string QueryPlan::Explain(const Catalog& catalog) const {
  std::ostringstream out;
  out << "=== plan (" << options_.ToString() << ") ===\n";
  out << query_.Explain() << "\n";
  out << "--- NFA ---\n" << nfa_.ToString(catalog) << "\n";
  out << "--- operators ---\n";
  const Operator* ops[] = {scan_.get(), selection_.get(), window_.get(),
                           negation_.get(), transformation_.get()};
  for (const Operator* op : ops) {
    out << op->name() << ": in=" << op->matches_in()
        << " out=" << op->matches_out() << "\n";
  }
  return out.str();
}

std::unique_ptr<QueryPlan> Planner::Build(AnalyzedQuery query,
                                          PlanOptions options,
                                          const Catalog* catalog,
                                          const FunctionRegistry* functions,
                                          OutputCallback callback) {
  return std::make_unique<QueryPlan>(std::move(query), options, catalog,
                                     functions, std::move(callback));
}

}  // namespace sase
