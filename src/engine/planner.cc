#include "engine/planner.h"

#include <sstream>

namespace sase {

std::string PlanOptions::ToString() const {
  std::ostringstream out;
  out << "push_window=" << (push_window ? "on" : "off")
      << " push_predicates=" << (push_predicates ? "on" : "off")
      << " partitioning=" << (use_partitioning ? "on" : "off");
  return out.str();
}

QueryPlan::QueryPlan(AnalyzedQuery query, PlanOptions options,
                     const Catalog* catalog, const FunctionRegistry* functions,
                     OutputCallback callback)
    : query_(std::move(query)), options_(options),
      nfa_(Nfa::Compile(query_, options.push_predicates,
                        options.use_partitioning)) {
  Ticks scan_window = options_.push_window ? query_.window_ticks : -1;
  scan_ = std::make_unique<SequenceScan>(&nfa_, scan_window, functions,
                                         query_.slot_count());

  // Residual predicates: the analyzer's residuals, plus whatever the
  // disabled optimizations hand back.
  std::vector<ExprPtr> residuals = query_.residual_predicates;
  if (!options_.push_predicates) {
    for (const auto& filters : query_.edge_filters) {
      residuals.insert(residuals.end(), filters.begin(), filters.end());
    }
  }
  if (!options_.use_partitioning) {
    residuals.insert(residuals.end(), query_.partition_subsumed.begin(),
                     query_.partition_subsumed.end());
  }
  selection_ = std::make_unique<Selection>(std::move(residuals), functions);

  window_ = std::make_unique<WindowFilter>(query_.window_ticks);

  std::vector<NegationSpec> specs = query_.negations;
  if (!options_.use_partitioning) {
    for (auto& spec : specs) {
      spec.cross_preds.insert(spec.cross_preds.end(),
                              spec.subsumed_cross.begin(),
                              spec.subsumed_cross.end());
      spec.partition_attr = kInvalidAttr;
    }
  }
  negation_ = std::make_unique<Negation>(std::move(specs),
                                         query_.positive_slots,
                                         query_.window_ticks,
                                         options_.use_partitioning, functions);

  transformation_ = std::make_unique<Transformation>(&query_, catalog,
                                                     functions,
                                                     std::move(callback));

  scan_->set_downstream(selection_.get());
  selection_->set_downstream(window_.get());
  window_->set_downstream(negation_.get());
  negation_->set_downstream(transformation_.get());
}

void QueryPlan::OnEvent(const EventPtr& event) {
  // Negation buffers must observe the event before any match produced from
  // it is checked; see engine/negation.h for the watermark argument.
  negation_->OnEvent(event);
  scan_->OnEvent(event);
}

void QueryPlan::OnFlush() { scan_->OnFlush(); }

void QueryPlan::OnWatermark(Timestamp now) { negation_->OnWatermark(now); }

uint64_t QueryPlan::eval_error_count() const {
  return scan_->stats().eval_errors + selection_->stats().eval_errors +
         negation_->stats().eval_errors + transformation_->stats().eval_errors;
}

std::string QueryPlan::Explain(const Catalog& catalog) const {
  std::ostringstream out;
  out << "=== plan (" << options_.ToString() << ") ===\n";
  out << query_.Explain() << "\n";
  out << "--- NFA ---\n" << nfa_.ToString(catalog) << "\n";
  out << "--- operators ---\n";
  const Operator* ops[] = {scan_.get(), selection_.get(), window_.get(),
                           negation_.get(), transformation_.get()};
  for (const Operator* op : ops) {
    out << op->name() << ": in=" << op->matches_in()
        << " out=" << op->matches_out() << "\n";
  }
  return out.str();
}

std::unique_ptr<QueryPlan> Planner::Build(AnalyzedQuery query,
                                          PlanOptions options,
                                          const Catalog* catalog,
                                          const FunctionRegistry* functions,
                                          OutputCallback callback) {
  return std::make_unique<QueryPlan>(std::move(query), options, catalog,
                                     functions, std::move(callback));
}

}  // namespace sase
