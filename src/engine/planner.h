#ifndef SASE_ENGINE_PLANNER_H_
#define SASE_ENGINE_PLANNER_H_

#include <memory>
#include <string>

#include "engine/negation.h"
#include "engine/selection.h"
#include "engine/sequence_scan.h"
#include "engine/transformation.h"
#include "engine/window_filter.h"
#include "nfa/nfa.h"
#include "query/analyzer.h"

namespace sase {

/// Plan-level optimization switches. The defaults are the paper's
/// optimized plan; the ablation benches flip them individually to measure
/// what each pushdown contributes.
struct PlanOptions {
  /// Push WITHIN into SequenceScan (stack pruning + bounded construction).
  bool push_window = true;
  /// Evaluate single-variable predicates on NFA edges instead of Selection.
  bool push_predicates = true;
  /// Partition stacks and negation buffers by the equivalence-class key.
  bool use_partitioning = true;

  std::string ToString() const;
};

class SharedScanGroup;

/// An executable query: the operator pipeline
///   SequenceScan -> Selection -> WindowFilter -> Negation -> Transformation
/// wired per the paper's dataflow ("native sequence operators ... pipelining
/// the event sequences to subsequent operators such as selection, window,
/// negation"). The plan owns the analyzed query and all operators.
///
/// ## Shared-scan mode (multi-query NFA sharing)
/// With `shared_scan_mode`, the plan owns no SequenceScan: the engine
/// attaches a SharedScanGroup whose one automaton serves every structurally
/// identical member (src/engine/shared_scan.h). The plan compiles its NFA
/// without edge predicates (so its signature matches the group's shape) and
/// rehomes those predicates into Selection residuals; events arrive through
/// OnSharedMatches, which lets Negation observe the raw event and then runs
/// the group's buffered matches through the member's own
/// Selection -> WindowFilter -> Negation -> Transformation tail. Output is
/// byte-identical to a dedicated plan.
class QueryPlan {
 public:
  QueryPlan(AnalyzedQuery query, PlanOptions options, const Catalog* catalog,
            const FunctionRegistry* functions, OutputCallback callback,
            bool shared_scan_mode = false);

  /// Feeds one stream event through the plan (negation buffers first, then
  /// the sequence scan; resulting matches flow synchronously to the top).
  void OnEvent(const EventPtr& event);

  // --- shared-scan mode (see class comment) ---

  bool shared_scan_mode() const { return shared_scan_mode_; }

  /// Binds this member to its group. The group's scan serves
  /// sequence_scan()/SaveState/RestoreState from then on.
  void AttachSharedGroup(SharedScanGroup* group);
  SharedScanGroup* shared_group() const { return group_; }

  /// Join gate for members registered after the group consumed events: a
  /// match whose first bound event has seq <= `gate_seq` predates this
  /// member and is dropped (a dedicated plan, starting empty, could never
  /// have produced it).
  void SetJoinGate(bool gated, uint64_t gate_seq) {
    join_gated_ = gated;
    join_gate_seq_ = gate_seq;
  }

  /// Shared-mode event delivery: Negation observes the raw event, then the
  /// group's matches (constructed once for every member) flow through this
  /// member's tail, minus anything the join gate drops.
  void OnSharedMatches(const EventPtr& event, const Match* matches,
                       size_t count);

  /// Signals end-of-stream; releases matches deferred by tail negation.
  void OnFlush();

  /// Advances stream time without an event (see Negation::OnWatermark).
  void OnWatermark(Timestamp now);

  const AnalyzedQuery& query() const { return query_; }
  const PlanOptions& options() const { return options_; }
  const Nfa& nfa() const { return nfa_; }

  /// The scan feeding this plan: its own in dedicated mode, the group's in
  /// shared-scan mode (only valid there after AttachSharedGroup).
  const SequenceScan& sequence_scan() const {
    return external_scan_ != nullptr ? *external_scan_ : *scan_;
  }
  const Selection& selection() const { return *selection_; }
  const WindowFilter& window_filter() const { return *window_; }
  const Negation& negation() const { return *negation_; }
  const Transformation& transformation() const { return *transformation_; }

  /// Records produced by the RETURN clause so far.
  uint64_t output_count() const { return transformation_->stats().records_emitted; }

  /// Total evaluation errors across all operators (0 on a healthy run).
  uint64_t eval_error_count() const;

  /// Multi-line description: analysis summary, NFA, options, operator
  /// in/out counters.
  std::string Explain(const Catalog& catalog) const;

  /// Serializes the plan's live operator state — active instance stacks,
  /// negation buffers and parked deferrals, running-aggregate accumulators,
  /// operator counters — as one snapshot-v2 payload (docs/recovery.md).
  /// The payload opens with the NFA's structural signature; RestoreState
  /// refuses a payload whose signature does not match this plan, so state
  /// can only be restored into a plan compiled from the same query under
  /// the same options.
  std::string SaveState() const;
  Status RestoreState(const std::string& payload);

 private:
  SequenceScan* mutable_scan() {
    return external_scan_ != nullptr ? external_scan_ : scan_.get();
  }

  AnalyzedQuery query_;
  PlanOptions options_;
  bool shared_scan_mode_ = false;
  Nfa nfa_;
  std::unique_ptr<SequenceScan> scan_;  // null in shared-scan mode
  std::unique_ptr<Selection> selection_;
  std::unique_ptr<WindowFilter> window_;
  std::unique_ptr<Negation> negation_;
  std::unique_ptr<Transformation> transformation_;

  // Shared-scan mode wiring (see class comment).
  SharedScanGroup* group_ = nullptr;     // not owned (engine's)
  SequenceScan* external_scan_ = nullptr;  // = group_->scan()
  bool join_gated_ = false;
  uint64_t join_gate_seq_ = 0;
};

/// Builds executable plans from analyzed queries.
class Planner {
 public:
  /// Compiles `query` under `options`. When an optimization is disabled the
  /// planner rehomes the affected predicates (pushed-down edge filters and
  /// partition-subsumed equivalence tests become Selection residuals) so
  /// every configuration computes identical results.
  static std::unique_ptr<QueryPlan> Build(AnalyzedQuery query,
                                          PlanOptions options,
                                          const Catalog* catalog,
                                          const FunctionRegistry* functions,
                                          OutputCallback callback,
                                          bool shared_scan_mode = false);
};

}  // namespace sase

#endif  // SASE_ENGINE_PLANNER_H_
