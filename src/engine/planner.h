#ifndef SASE_ENGINE_PLANNER_H_
#define SASE_ENGINE_PLANNER_H_

#include <memory>
#include <string>

#include "engine/negation.h"
#include "engine/selection.h"
#include "engine/sequence_scan.h"
#include "engine/transformation.h"
#include "engine/window_filter.h"
#include "nfa/nfa.h"
#include "query/analyzer.h"

namespace sase {

/// Plan-level optimization switches. The defaults are the paper's
/// optimized plan; the ablation benches flip them individually to measure
/// what each pushdown contributes.
struct PlanOptions {
  /// Push WITHIN into SequenceScan (stack pruning + bounded construction).
  bool push_window = true;
  /// Evaluate single-variable predicates on NFA edges instead of Selection.
  bool push_predicates = true;
  /// Partition stacks and negation buffers by the equivalence-class key.
  bool use_partitioning = true;

  std::string ToString() const;
};

/// An executable query: the operator pipeline
///   SequenceScan -> Selection -> WindowFilter -> Negation -> Transformation
/// wired per the paper's dataflow ("native sequence operators ... pipelining
/// the event sequences to subsequent operators such as selection, window,
/// negation"). The plan owns the analyzed query and all operators.
class QueryPlan {
 public:
  QueryPlan(AnalyzedQuery query, PlanOptions options, const Catalog* catalog,
            const FunctionRegistry* functions, OutputCallback callback);

  /// Feeds one stream event through the plan (negation buffers first, then
  /// the sequence scan; resulting matches flow synchronously to the top).
  void OnEvent(const EventPtr& event);

  /// Signals end-of-stream; releases matches deferred by tail negation.
  void OnFlush();

  /// Advances stream time without an event (see Negation::OnWatermark).
  void OnWatermark(Timestamp now);

  const AnalyzedQuery& query() const { return query_; }
  const PlanOptions& options() const { return options_; }
  const Nfa& nfa() const { return nfa_; }

  const SequenceScan& sequence_scan() const { return *scan_; }
  const Selection& selection() const { return *selection_; }
  const WindowFilter& window_filter() const { return *window_; }
  const Negation& negation() const { return *negation_; }
  const Transformation& transformation() const { return *transformation_; }

  /// Records produced by the RETURN clause so far.
  uint64_t output_count() const { return transformation_->stats().records_emitted; }

  /// Total evaluation errors across all operators (0 on a healthy run).
  uint64_t eval_error_count() const;

  /// Multi-line description: analysis summary, NFA, options, operator
  /// in/out counters.
  std::string Explain(const Catalog& catalog) const;

  /// Serializes the plan's live operator state — active instance stacks,
  /// negation buffers and parked deferrals, running-aggregate accumulators,
  /// operator counters — as one snapshot-v2 payload (docs/recovery.md).
  /// The payload opens with the NFA's structural signature; RestoreState
  /// refuses a payload whose signature does not match this plan, so state
  /// can only be restored into a plan compiled from the same query under
  /// the same options.
  std::string SaveState() const;
  Status RestoreState(const std::string& payload);

 private:
  AnalyzedQuery query_;
  PlanOptions options_;
  Nfa nfa_;
  std::unique_ptr<SequenceScan> scan_;
  std::unique_ptr<Selection> selection_;
  std::unique_ptr<WindowFilter> window_;
  std::unique_ptr<Negation> negation_;
  std::unique_ptr<Transformation> transformation_;
};

/// Builds executable plans from analyzed queries.
class Planner {
 public:
  /// Compiles `query` under `options`. When an optimization is disabled the
  /// planner rehomes the affected predicates (pushed-down edge filters and
  /// partition-subsumed equivalence tests become Selection residuals) so
  /// every configuration computes identical results.
  static std::unique_ptr<QueryPlan> Build(AnalyzedQuery query,
                                          PlanOptions options,
                                          const Catalog* catalog,
                                          const FunctionRegistry* functions,
                                          OutputCallback callback);
};

}  // namespace sase

#endif  // SASE_ENGINE_PLANNER_H_
