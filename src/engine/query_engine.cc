#include "engine/query_engine.h"

#include <algorithm>
#include <sstream>

#include "obs/report.h"
#include "obs/trace.h"
#include "query/analyzer.h"
#include "util/string_util.h"

namespace sase {

QueryEngine::QueryEngine(const Catalog* catalog, TimeConfig time_config)
    : catalog_(catalog), time_config_(time_config) {
  functions_.RegisterCommon();
}

Result<QueryId> QueryEngine::Register(const std::string& text,
                                      OutputCallback callback,
                                      PlanOptions options) {
  auto parsed = Parser::Parse(text);
  if (!parsed.ok()) return parsed.status();
  return RegisterParsed(next_id_, text, std::move(parsed).value(),
                        std::move(callback), options);
}

Result<QueryId> QueryEngine::Register(ParsedQuery parsed,
                                      OutputCallback callback,
                                      PlanOptions options) {
  return RegisterParsed(next_id_, std::string(), std::move(parsed),
                        std::move(callback), options);
}

Result<QueryId> QueryEngine::RegisterAs(QueryId id, const std::string& text,
                                        OutputCallback callback,
                                        PlanOptions options) {
  if (plans_.count(id) > 0) {
    return Status::AlreadyExists("query id " + std::to_string(id) +
                                 " is already registered");
  }
  auto parsed = Parser::Parse(text);
  if (!parsed.ok()) return parsed.status();
  return RegisterParsed(id, text, std::move(parsed).value(),
                        std::move(callback), options);
}

Result<QueryId> QueryEngine::RegisterParsed(QueryId id, std::string text,
                                            ParsedQuery parsed,
                                            OutputCallback callback,
                                            PlanOptions options) {
  std::string stream = ToLower(parsed.from_stream);
  Analyzer analyzer(catalog_, time_config_);
  auto analyzed_or = analyzer.Analyze(std::move(parsed));
  if (!analyzed_or.ok()) return analyzed_or.status();
  AnalyzedQuery analyzed = std::move(analyzed_or).value();

  std::string group_key;
  if (sharing_enabled_) {
    group_key = SharedScanGroup::GroupKey(analyzed, options, stream);
  }
  const Ticks window_ticks = analyzed.window_ticks;
  auto plan = Planner::Build(std::move(analyzed), options, catalog_,
                             &functions_, std::move(callback),
                             /*shared_scan_mode=*/sharing_enabled_);
  if (sharing_enabled_) {
    auto& group = share_groups_[group_key];
    if (group == nullptr) {
      group = std::make_unique<SharedScanGroup>(plan->query(), options,
                                                &functions_);
    }
    plan->AttachSharedGroup(group.get());
    // A member joining after the group consumed events must not see matches
    // a dedicated (empty) plan could never have produced.
    plan->SetJoinGate(group->fed_any(), group->last_seq());
    group->AddMember(window_ticks);
  }
  auto [it, inserted] = plans_.emplace(
      id, Entry{std::move(plan), std::move(stream), std::move(text), nullptr});
  reader_cache_valid_ = false;
  if (inserted) {
    Entry& entry = it->second;
    entry.id = id;
    entry.group = entry.plan->shared_group();
    entry.group_key = std::move(group_key);
    if (metrics_ != nullptr) ResolveEntryMetrics(id, entry);
  }
  next_id_ = std::max(next_id_, id + 1);
  return id;
}

std::string QueryEngine::QueryMetricName(const std::string& what,
                                         QueryId id) const {
  return "sase_query_" + what + "{host=\"" + host_label_ + "\",query=\"" +
         std::to_string(id) + "\"}";
}

void QueryEngine::ResolveEntryMetrics(QueryId id, Entry& entry) {
  entry.op_latency =
      metrics_ == nullptr
          ? nullptr
          : metrics_->GetHistogram(QueryMetricName("op_latency_ns", id));
}

void QueryEngine::AttachMetrics(obs::MetricsRegistry* metrics,
                                std::string host_label) {
  metrics_ = metrics;
  host_label_ = std::move(host_label);
  for (auto& [id, entry] : plans_) ResolveEntryMetrics(id, entry);
}

void QueryEngine::ScrapeMetrics() const {
  if (metrics_ == nullptr) return;
  metrics_->GetCounter("sase_engine_events_total{host=\"" + host_label_ +
                       "\"}")
      ->Set(events_processed_);
  for (const auto& [id, entry] : plans_) {
    const QueryPlan& plan = *entry.plan;
    const SequenceScan::Stats& scan = plan.sequence_scan().stats();
    metrics_->GetCounter(QueryMetricName("events_seen_total", id))
        ->Set(scan.events_seen);
    metrics_->GetCounter(QueryMetricName("sequences_total", id))
        ->Set(plan.sequence_scan().matches_out());
    metrics_->GetCounter(QueryMetricName("matches_total", id))
        ->Set(plan.negation().matches_out());
    metrics_->GetCounter(QueryMetricName("outputs_total", id))
        ->Set(plan.output_count());
    metrics_->GetCounter(QueryMetricName("errors_total", id))
        ->Set(plan.eval_error_count());
    metrics_->GetGauge(QueryMetricName("scan_instances", id))
        ->Set(static_cast<int64_t>(scan.instances_alive));
    const Negation::Stats& negation = plan.negation().stats();
    metrics_->GetGauge(QueryMetricName("negation_buffer", id))
        ->Set(static_cast<int64_t>(negation.events_buffered -
                                   negation.events_pruned));
    // State-size gauges: walked from the live operator state (the same
    // structures SerializeState snapshots), not maintained counters — so
    // they cannot drift from what a checkpoint would actually write. In
    // shared-scan mode the scan footprint is the group's automaton,
    // mirrored per member (like scan_instances above).
    const SequenceScan::Footprint scan_fp =
        plan.sequence_scan().StateFootprint();
    metrics_->GetGauge(QueryMetricName("scan_state_bytes", id))
        ->Set(static_cast<int64_t>(scan_fp.bytes));
    metrics_->GetGauge(QueryMetricName("scan_partitions", id))
        ->Set(static_cast<int64_t>(scan_fp.partitions));
    const Negation::Footprint neg_fp = plan.negation().StateFootprint();
    metrics_->GetGauge(QueryMetricName("negation_pending", id))
        ->Set(static_cast<int64_t>(neg_fp.pending));
    metrics_->GetGauge(QueryMetricName("negation_state_bytes", id))
        ->Set(static_cast<int64_t>(neg_fp.bytes));
    metrics_->GetGauge(QueryMetricName("transform_accumulators", id))
        ->Set(static_cast<int64_t>(plan.transformation().accumulator_count()));
    metrics_->GetGauge(QueryMetricName("shared_group_members", id))
        ->Set(entry.group == nullptr
                  ? 0
                  : static_cast<int64_t>(entry.group->member_count()));
    metrics_->GetCounter(QueryMetricName("slow_events_total", id))
        ->Set(entry.slow_events);
  }
  std::string host = "{host=\"" + host_label_ + "\"}";
  metrics_->GetCounter("sase_engine_shared_scan_hits_total" + host)
      ->Set(shared_scan_hits());
  metrics_->GetGauge("sase_engine_shared_scan_groups" + host)
      ->Set(static_cast<int64_t>(share_groups_.size()));
  metrics_->GetGauge("sase_engine_shared_scan_arena_bytes" + host)
      ->Set(static_cast<int64_t>(shared_arena_bytes()));
}

void QueryEngine::ConfigureSlowQueryLog(uint64_t threshold_ns,
                                        size_t capacity) {
  slow_threshold_ns_ = capacity == 0 ? 0 : threshold_ns;
  slow_log_capacity_ = slow_threshold_ns_ == 0 ? 0 : capacity;
  slow_log_.clear();
  slow_pos_ = 0;
}

std::vector<QueryEngine::SlowQuerySample> QueryEngine::SlowSamples() const {
  // slow_pos_ is the oldest slot once the ring has wrapped.
  std::vector<SlowQuerySample> samples;
  samples.reserve(slow_log_.size());
  if (slow_log_.size() == slow_log_capacity_) {
    samples.insert(samples.end(), slow_log_.begin() + slow_pos_,
                   slow_log_.end());
    samples.insert(samples.end(), slow_log_.begin(),
                   slow_log_.begin() + slow_pos_);
  } else {
    samples = slow_log_;
  }
  return samples;
}

void QueryEngine::NoteSlow(Entry& entry, const Event& event,
                           uint64_t duration_ns, uint64_t at_ns) {
  ++entry.slow_events;
  SlowQuerySample sample{entry.id, event.seq(), event.timestamp(), duration_ns,
                         at_ns};
  if (slow_log_.size() < slow_log_capacity_) {
    slow_log_.push_back(sample);
  } else {
    slow_log_[slow_pos_] = sample;
    slow_pos_ = (slow_pos_ + 1) % slow_log_capacity_;
  }
}

Status QueryEngine::Unregister(QueryId id) {
  auto it = plans_.find(id);
  if (it == plans_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  if (it->second.group != nullptr) {
    it->second.group->RemoveMember();
    if (it->second.group->member_count() == 0) {
      share_groups_.erase(it->second.group_key);
    }
  }
  plans_.erase(it);
  reader_cache_valid_ = false;
  return Status::Ok();
}

uint64_t QueryEngine::shared_scan_hits() const {
  uint64_t hits = 0;
  for (const auto& [key, group] : share_groups_) hits += group->shared_hits();
  return hits;
}

uint64_t QueryEngine::shared_arena_bytes() const {
  uint64_t bytes = 0;
  for (const auto& [key, group] : share_groups_) {
    bytes += group->arena_bytes();
  }
  return bytes;
}

const QueryPlan* QueryEngine::plan(QueryId id) const {
  auto it = plans_.find(id);
  return it == plans_.end() ? nullptr : it->second.plan.get();
}

const std::string& QueryEngine::query_text(QueryId id) const {
  static const std::string kEmpty;
  auto it = plans_.find(id);
  return it == plans_.end() ? kEmpty : it->second.text;
}

std::vector<QueryEngine::RegisteredQuery> QueryEngine::RegisteredQueries()
    const {
  std::vector<RegisteredQuery> queries;
  queries.reserve(plans_.size());
  for (const auto& [id, entry] : plans_) {
    queries.push_back(
        RegisteredQuery{id, entry.text, entry.stream, entry.plan->options()});
  }
  return queries;
}

Result<std::string> QueryEngine::SerializeState(QueryId id) const {
  auto it = plans_.find(id);
  if (it == plans_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return it->second.plan->SaveState();
}

Status QueryEngine::RestoreState(QueryId id, const std::string& payload) {
  auto it = plans_.find(id);
  if (it == plans_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return it->second.plan->RestoreState(payload);
}

std::string QueryEngine::SerializeEngineState() const {
  return "EP " + std::to_string(events_processed_) + "\n";
}

Status QueryEngine::RestoreEngineState(const std::string& payload) {
  std::istringstream in(payload);
  StateReader reader(&in);
  bool saw_counters = false;
  while (reader.Next()) {
    if (reader.tag() != "EP") return reader.Malformed("engine state tag");
    SASE_ASSIGN_OR_RETURN(events_processed_, reader.U64(0));
    saw_counters = true;
  }
  SASE_RETURN_IF_ERROR(reader.status());
  if (!saw_counters) {
    // An EP-less payload would silently leave the counter at zero — the
    // exact reset the restore completeness checks exist to prevent.
    return Status::ParseError("engine-state payload carries no EP line");
  }
  return Status::Ok();
}

void QueryEngine::OnEvent(const EventPtr& event) {
  static const std::string kDefault;
  ++events_processed_;
  ++scan_epoch_;
  const std::vector<Entry*>& readers = Readers(kDefault);
  if (metrics_ == nullptr) {
    for (Entry* entry : readers) DeliverEvent(*entry, event);
    return;
  }
  for (Entry* entry : readers) DeliverTimed(*entry, event);
}

void QueryEngine::OnStreamEvent(const std::string& stream,
                                const EventPtr& event) {
  ++events_processed_;
  ++scan_epoch_;
  std::string key = ToLower(stream);
  const std::vector<Entry*>& readers = Readers(key);
  if (metrics_ == nullptr) {
    for (Entry* entry : readers) DeliverEvent(*entry, event);
    return;
  }
  for (Entry* entry : readers) DeliverTimed(*entry, event);
}

void QueryEngine::OnStreamEvents(const std::string& stream,
                                 const std::vector<EventPtr>& events) {
  events_processed_ += events.size();
  std::string key = ToLower(stream);
  // Resolve the reader set once; per event the serial iteration order
  // (plans in id order) is preserved. The instrumented variant times each
  // plan's operator-chain wall time per event; detached, the loop is the
  // exact pre-instrumentation code path.
  const std::vector<Entry*>& readers = Readers(key);
  if (readers.empty()) return;
  if (metrics_ == nullptr) {
    for (const EventPtr& event : events) {
      ++scan_epoch_;
      for (Entry* entry : readers) DeliverEvent(*entry, event);
    }
    return;
  }
  for (const EventPtr& event : events) {
    ++scan_epoch_;
    for (Entry* entry : readers) DeliverTimed(*entry, event);
  }
}

void QueryEngine::OnEvents(const std::vector<EventPtr>& events) {
  static const std::string kDefault;
  events_processed_ += events.size();
  const std::vector<Entry*>& readers = Readers(kDefault);
  if (readers.empty()) return;
  if (metrics_ == nullptr) {
    for (const EventPtr& event : events) {
      ++scan_epoch_;
      for (Entry* entry : readers) DeliverEvent(*entry, event);
    }
    return;
  }
  for (const EventPtr& event : events) {
    ++scan_epoch_;
    for (Entry* entry : readers) DeliverTimed(*entry, event);
  }
}

void QueryEngine::OnFlush() {
  for (auto& [id, entry] : plans_) {
    entry.plan->OnFlush();
  }
}

void QueryEngine::OnWatermark(Timestamp now) {
  for (auto& [id, entry] : plans_) {
    if (entry.stream.empty()) entry.plan->OnWatermark(now);
  }
}

void QueryEngine::OnStreamWatermark(const std::string& stream, Timestamp now) {
  std::string key = ToLower(stream);
  for (auto& [id, entry] : plans_) {
    if (entry.stream == key) entry.plan->OnWatermark(now);
  }
}

QueryEngine::EngineStats QueryEngine::Stats() const {
  EngineStats stats;
  stats.queries = plans_.size();
  stats.events_processed = events_processed_;
  for (const auto& [id, entry] : plans_) {
    stats.matches_scanned += entry.plan->sequence_scan().matches_out();
    stats.outputs += entry.plan->output_count();
    stats.eval_errors += entry.plan->eval_error_count();
  }
  return stats;
}

std::string QueryEngine::StatsReport() const {
  std::string out = obs::ReportLine()
                        .Kv("queries", plans_.size())
                        .Kv("events", events_processed_)
                        .Str();
  for (const auto& [id, entry] : plans_) {
    const QueryPlan& plan = *entry.plan;
    out += obs::ReportLine("#" + std::to_string(id))
               .Text("[" + (entry.stream.empty() ? "default" : entry.stream) +
                     "]")
               .Text(plan.options().ToString())
               .Kv("scanned", plan.sequence_scan().stats().events_seen)
               .Kv("sequences", plan.sequence_scan().matches_out())
               .Kv("selected", plan.selection().matches_out())
               .Kv("windowed", plan.window_filter().matches_out())
               .Kv("survived_negation", plan.negation().matches_out())
               .Kv("outputs", plan.output_count())
               .Kv("errors", plan.eval_error_count())
               .Str();
  }
  return out;
}

}  // namespace sase
