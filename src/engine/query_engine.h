#ifndef SASE_ENGINE_QUERY_ENGINE_H_
#define SASE_ENGINE_QUERY_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/stream.h"
#include "engine/planner.h"
#include "engine/shared_scan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "util/time_util.h"

namespace sase {

/// Handle identifying a registered continuous query.
using QueryId = int64_t;

/// The Complex Event Processor (Figure 1, §3): hosts continuous
/// long-running queries over the event stream.
///
/// "For each monitoring task ... the user writes a query and registers it
/// as a continuous query with the complex event processor. The event
/// processor immediately starts executing the query ... and returns a
/// result (e.g., a notification) to the user every time the query is
/// satisfied. Such processing continues until the query is deleted by the
/// user." Archiving rules are registered the same way — their RETURN
/// clauses call `_updateLocation` / `_updateContainment`, and hybrid
/// stream+database queries call retrieval functions such as
/// `_retrieveLocation`.
///
/// The engine is an EventSink: subscribe it to the cleaning pipeline's
/// output bus (or feed it directly in tests).
class QueryEngine : public EventSink {
 public:
  explicit QueryEngine(const Catalog* catalog, TimeConfig time_config = {});

  /// The function registry shared by every query; database modules install
  /// their built-ins here before queries are registered.
  FunctionRegistry* functions() { return &functions_; }
  const Catalog& catalog() const { return *catalog_; }
  const TimeConfig& time_config() const { return time_config_; }

  /// Parses, analyzes and compiles `text`, then starts executing it against
  /// the stream. Every output record is delivered to `callback`.
  Result<QueryId> Register(const std::string& text, OutputCallback callback,
                           PlanOptions options = {});

  /// Registers an already-parsed query (used by tests that build ASTs).
  Result<QueryId> Register(ParsedQuery parsed, OutputCallback callback,
                           PlanOptions options = {});

  /// Registers under a caller-chosen id instead of an auto-assigned one.
  /// The sharded runtime mirrors one logical query into every shard engine
  /// under the same id, so per-query stats can be aggregated across shards
  /// without an id translation table. Fails with kAlreadyExists when the id
  /// is taken.
  Result<QueryId> RegisterAs(QueryId id, const std::string& text,
                             OutputCallback callback, PlanOptions options = {});

  /// Deletes a continuous query; subsequent events no longer feed it.
  Status Unregister(QueryId id);

  // --- multi-query NFA sharing ---
  //
  // With sharing enabled, queries whose scan structure is identical modulo
  // predicate constants (same filterless NFA, stream, options, slot count
  // and window boundedness — see SharedScanGroup::GroupKey) are compiled
  // onto ONE shared automaton; each query keeps its own
  // Selection -> Window -> Negation -> Transformation tail, so output is
  // byte-identical to dedicated plans. The toggle applies to registrations
  // made while it is on; flipping it does not recompile live queries.

  void set_scan_sharing(bool enabled) { sharing_enabled_ = enabled; }
  bool scan_sharing() const { return sharing_enabled_; }

  /// Events served from a group's buffered matches instead of re-running
  /// the scan (summed over live groups).
  uint64_t shared_scan_hits() const;
  size_t shared_group_count() const { return share_groups_.size(); }
  /// Heap bytes reserved by the groups' match-buffer arenas.
  uint64_t shared_arena_bytes() const;

  /// Delivers an event to the named input stream: only queries registered
  /// with `FROM <stream>` (case-insensitive) receive it. The unnamed
  /// OnEvent() below feeds the default stream — queries without a FROM
  /// clause ("If it is omitted, the query refers to a default system
  /// input", §2.1.1).
  void OnStreamEvent(const std::string& stream, const EventPtr& event);

  /// Batch form of OnStreamEvent: identical semantics (each event visits
  /// the stream's plans in id order), but the stream name is resolved once
  /// for the whole batch — the sharded runtime's workers deliver their
  /// single-stream batches through this.
  void OnStreamEvents(const std::string& stream,
                      const std::vector<EventPtr>& events);

  /// Batch form of OnEvent for the default input, the unnamed counterpart
  /// of OnStreamEvents: resolves the default-stream reader set once.
  ///
  /// Replay contract: the engine is a deterministic function of its call
  /// sequence (Register*/OnEvent/OnStreamEvent/OnWatermark), so re-issuing
  /// a suffix of that sequence into a fresh engine rebuilds its live state
  /// exactly. The sharded runtime's elastic Resize relies on this — it
  /// replays the in-flight window (events younger than the largest WITHIN
  /// span, with registrations interleaved at their original positions)
  /// into fresh engines instead of serializing NFA/negation state.
  void OnEvents(const std::vector<EventPtr>& events);

  /// Access to a live plan (stats, explain); nullptr if unknown.
  const QueryPlan* plan(QueryId id) const;

  /// Registration text of a live query ("" when unknown or registered from
  /// a pre-parsed AST). The engine retains every text-registered query's
  /// source so the checkpoint subsystem can serialize registrations and
  /// re-register them on recovery — the engine's replay contract (see
  /// OnEvents) makes re-registration + replay equivalent to serializing
  /// plan state.
  const std::string& query_text(QueryId id) const;

  /// One live query as the checkpoint subsystem sees it.
  struct RegisteredQuery {
    QueryId id = 0;
    std::string text;    // "" when registered from a pre-parsed AST
    std::string stream;  // lowercased FROM name; "" = default input
    PlanOptions options;
  };
  /// Every live query in id (= registration) order.
  std::vector<RegisteredQuery> RegisteredQueries() const;

  // --- direct operator-state serialization (checkpoint snapshot v2) ---
  //
  // SerializeState captures one live plan's full operator state (active
  // instance stacks, negation buffers + parked deferrals, running-aggregate
  // accumulators, counters) as a text payload; RestoreState loads such a
  // payload into a freshly registered plan of the same query text and
  // options — the payload's NFA signature guards against a mismatch. This
  // lifts the window-replay restriction: aggregates, stateful queries
  // without WITHIN and serial-engine (hybrid) queries all checkpoint via
  // these instead of refusing (see docs/recovery.md).

  /// Serialized operator state of query `id`; NotFound for unknown ids.
  Result<std::string> SerializeState(QueryId id) const;

  /// Restores a SerializeState payload into query `id`'s plan, replacing
  /// its operator state wholesale. No partial restore: on any decode or
  /// shape error the engine is left unusable for `id` only if the payload
  /// matched its NFA signature — callers treat any error as fatal to the
  /// recovery attempt.
  Status RestoreState(QueryId id, const std::string& payload);

  /// Engine-level counters as a payload (events_processed), and their
  /// restore — keeps Stats()/StatsReport() continuous across recovery.
  std::string SerializeEngineState() const;
  Status RestoreEngineState(const std::string& payload);

  /// Advances stream time on every default-stream plan without delivering
  /// an event; releases tail-negation deferrals (see Negation::OnWatermark).
  void OnWatermark(Timestamp now);

  /// Advances stream time on every plan reading the named input stream
  /// (case-insensitive) — the OnStreamEvent counterpart of OnWatermark. The
  /// sharded runtime broadcasts one clock per stream so quiet shards release
  /// named-stream tail-negation deferrals too.
  void OnStreamWatermark(const std::string& stream, Timestamp now);

  size_t query_count() const { return plans_.size(); }
  uint64_t events_processed() const { return events_processed_; }

  /// Aggregate operator counters across every registered plan; the sharded
  /// runtime sums these over its per-shard engines for a fleet-wide view.
  struct EngineStats {
    uint64_t queries = 0;
    uint64_t events_processed = 0;
    uint64_t matches_scanned = 0;
    uint64_t outputs = 0;
    uint64_t eval_errors = 0;

    EngineStats& operator+=(const EngineStats& other) {
      queries += other.queries;
      events_processed += other.events_processed;
      matches_scanned += other.matches_scanned;
      outputs += other.outputs;
      eval_errors += other.eval_errors;
      return *this;
    }
  };
  EngineStats Stats() const;

  /// One slow-query offender: a single per-event operator pass that took at
  /// least the configured threshold. `at_ns` is the MonotonicNs capture
  /// time, so logs merged across engines (serial + every shard) sort by
  /// recency without a shared clock.
  struct SlowQuerySample {
    QueryId query = 0;
    SequenceNumber seq = 0;
    Timestamp timestamp = 0;
    uint64_t duration_ns = 0;
    uint64_t at_ns = 0;
  };

  /// Arms the slow-query log: instrumented operator passes taking
  /// >= `threshold_ns` bump `sase_query_slow_events_total` and push a
  /// sample into a last-`capacity` ring. Requires an attached registry to
  /// observe anything (timing happens on the instrumented path only);
  /// threshold 0 disarms. Reconfiguring clears the ring.
  void ConfigureSlowQueryLog(uint64_t threshold_ns, size_t capacity);
  uint64_t slow_query_threshold_ns() const { return slow_threshold_ns_; }

  /// Ring contents, oldest first. Cheap (copies at most `capacity` samples).
  std::vector<SlowQuerySample> SlowSamples() const;

  /// Host label passed to AttachMetrics ("" while detached).
  const std::string& host_label() const { return host_label_; }

  /// Attaches a metrics registry under a host label ("serial", "shard-0",
  /// "broadcast"): the event path starts timing per-query operator wall time
  /// into `sase_query_op_latency_ns{host=...,query=...}` (wait-free
  /// recording), and ScrapeMetrics() mirrors the per-query truth counters.
  /// Detached (the default) the event path is the exact pre-instrumentation
  /// loop behind one null check. nullptr detaches.
  void AttachMetrics(obs::MetricsRegistry* metrics, std::string host_label);

  /// Mirrors the per-query operator counters and occupancy gauges (events
  /// seen, sequences, outputs, errors, live scan instances, negation buffer
  /// occupancy) into the attached registry. Counters are Set() from the
  /// plans' own stats — the registry shows the same truth StatsReport()
  /// prints, including across state restore. No-op when detached.
  void ScrapeMetrics() const;

  /// One line per registered query: id, input stream, plan options and the
  /// operator in/out counters — the processor-level view the demo UI's
  /// status panes summarize.
  std::string StatsReport() const;

  // EventSink:
  void OnEvent(const EventPtr& event) override;
  void OnFlush() override;

 private:
  struct Entry {
    std::unique_ptr<QueryPlan> plan;
    std::string stream;  // lowercased FROM name; empty = default input
    std::string text;    // registration source; "" for pre-parsed queries
    /// Operator wall-time histogram; non-null only while a registry is
    /// attached (resolved once per registration/attach, recorded wait-free).
    obs::HistogramMetric* op_latency = nullptr;
    QueryId id = 0;  // own key in plans_, for the slow-log cold path
    uint64_t slow_events = 0;  // passes at/over the slow-query threshold
    /// Shared-scan group serving this plan (engine-owned); null when the
    /// plan runs a dedicated scan.
    SharedScanGroup* group = nullptr;
    std::string group_key;  // key into share_groups_; "" when dedicated
  };

  /// One event into one plan, via the shared group when attached. The
  /// per-event scan epoch makes the first member reached feed the group's
  /// scan and every later member reuse its buffered matches.
  void DeliverEvent(Entry& entry, const EventPtr& event) {
    if (entry.group != nullptr) {
      entry.group->EnsureScanned(scan_epoch_, event);
      entry.plan->OnSharedMatches(event, entry.group->matches(),
                                  entry.group->match_count());
    } else {
      entry.plan->OnEvent(event);
    }
  }

  /// Instrumented delivery: times one plan's pass over one event into its
  /// op-latency histogram, diverting threshold breaches to the slow-query
  /// log's cold path. Callers have already checked metrics_ != nullptr.
  void DeliverTimed(Entry& entry, const EventPtr& event) {
    uint64_t start = obs::MonotonicNs();
    DeliverEvent(entry, event);
    uint64_t duration = obs::MonotonicNs() - start;
    entry.op_latency->Record(static_cast<int64_t>(duration));
    if (slow_threshold_ns_ != 0 && duration >= slow_threshold_ns_) {
      NoteSlow(entry, *event, duration, start + duration);
    }
  }

  /// Slow-log cold path: bumps the per-query counter and overwrites the
  /// oldest ring slot.
  void NoteSlow(Entry& entry, const Event& event, uint64_t duration_ns,
                uint64_t at_ns);

  /// Shared tail of every Register flavor: analyze, plan, install under
  /// `id` (advancing next_id_ past it). No id is consumed on failure.
  Result<QueryId> RegisterParsed(QueryId id, std::string text,
                                 ParsedQuery parsed, OutputCallback callback,
                                 PlanOptions options);

  /// `sase_query_<what>{host=...,query=<id>}` under this engine's host label.
  std::string QueryMetricName(const std::string& what, QueryId id) const;
  void ResolveEntryMetrics(QueryId id, Entry& entry);

  /// Readers of `key` in id order, cached across events (streams arrive in
  /// runs, so one slot suffices). map nodes are stable, so the Entry
  /// pointers survive unrelated register/unregister; any registration
  /// change invalidates the cache outright.
  const std::vector<Entry*>& Readers(const std::string& key) {
    if (!reader_cache_valid_ || reader_cache_stream_ != key) {
      reader_cache_.clear();
      for (auto& [id, entry] : plans_) {
        if (entry.stream == key) reader_cache_.push_back(&entry);
      }
      reader_cache_stream_ = key;
      reader_cache_valid_ = true;
    }
    return reader_cache_;
  }

  const Catalog* catalog_;
  TimeConfig time_config_;
  FunctionRegistry functions_;
  std::map<QueryId, Entry> plans_;
  /// Live shared-scan groups by GroupKey; a group dies with its last member.
  std::map<std::string, std::unique_ptr<SharedScanGroup>> share_groups_;
  bool sharing_enabled_ = false;
  /// Bumped once per delivered event; lets a group detect "already scanned
  /// this event for an earlier member".
  uint64_t scan_epoch_ = 0;
  QueryId next_id_ = 1;
  uint64_t events_processed_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::string host_label_;
  uint64_t slow_threshold_ns_ = 0;  // 0 = slow-query log disarmed
  std::vector<SlowQuerySample> slow_log_;  // ring of the last N offenders
  size_t slow_log_capacity_ = 0;
  size_t slow_pos_ = 0;  // next ring slot to overwrite
  std::vector<Entry*> reader_cache_;
  std::string reader_cache_stream_;
  bool reader_cache_valid_ = false;
};

}  // namespace sase

#endif  // SASE_ENGINE_QUERY_ENGINE_H_
