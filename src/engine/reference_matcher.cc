#include "engine/reference_matcher.h"

#include <algorithm>

namespace sase {

ReferenceMatcher::ReferenceMatcher(const AnalyzedQuery* query,
                                   const FunctionRegistry* functions)
    : query_(query), functions_(functions) {
  // Re-split the original WHERE clause rather than trusting the analyzer's
  // classification: the oracle must not share the code under test.
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(query_->parsed.where, &conjuncts);

  negation_checks_.reserve(query_->negations.size());
  for (const auto& spec : query_->negations) {
    negation_checks_.push_back(NegationCheck{&spec, {}});
  }

  for (const auto& conjunct : conjuncts) {
    std::set<int> slots;
    conjunct->CollectSlots(&slots);
    const NegationSpec* owner = nullptr;
    for (int slot : slots) {
      if (query_->vars[static_cast<size_t>(slot)].negated) {
        for (auto& check : negation_checks_) {
          if (check.spec->slot == slot) {
            owner = check.spec;
            check.predicates.push_back(conjunct);
            break;
          }
        }
        break;
      }
    }
    if (owner == nullptr) positive_conjuncts_.push_back(conjunct);
  }
}

Result<std::vector<Match>> ReferenceMatcher::FindMatches(
    const std::vector<EventPtr>& events) const {
  std::vector<Match> out;
  BindingVec bindings;
  bindings.resize(query_->slot_count());
  Status status = Recurse(events, 0, 0, &bindings, &out);
  if (!status.ok()) return status;
  return out;
}

Status ReferenceMatcher::Recurse(const std::vector<EventPtr>& events,
                                 size_t positive_index, size_t start,
                                 BindingVec* bindings,
                                 std::vector<Match>* out) const {
  const auto& positives = query_->positive_slots;
  if (positive_index == positives.size()) {
    // Full positive binding: window, predicates, then negation.
    const EventPtr& first = (*bindings)[static_cast<size_t>(positives.front())];
    const EventPtr& last = (*bindings)[static_cast<size_t>(positives.back())];
    if (query_->window_ticks >= 0 &&
        last->timestamp() - first->timestamp() > query_->window_ticks) {
      return Status::Ok();
    }
    auto preds = CheckPositivePredicates(*bindings);
    if (!preds.ok()) return preds.status();
    if (!preds.value()) return Status::Ok();
    for (const auto& check : negation_checks_) {
      auto violated = ViolatesNegation(check, events, bindings);
      if (!violated.ok()) return violated.status();
      if (violated.value()) return Status::Ok();
    }
    Match match;
    match.bindings = *bindings;
    match.first_ts = first->timestamp();
    match.last_ts = last->timestamp();
    out->push_back(std::move(match));
    return Status::Ok();
  }

  int slot = positives[positive_index];
  EventTypeId wanted = query_->vars[static_cast<size_t>(slot)].type_id;
  Timestamp prev_ts = 0;
  bool has_prev = positive_index > 0;
  if (has_prev) {
    prev_ts = (*bindings)[static_cast<size_t>(positives[positive_index - 1])]
                  ->timestamp();
  }
  Timestamp first_ts = 0;
  if (positive_index > 0) {
    first_ts =
        (*bindings)[static_cast<size_t>(positives.front())]->timestamp();
  }

  for (size_t i = start; i < events.size(); ++i) {
    const EventPtr& event = events[i];
    // Window pruning: events are in stream order, so once this component
    // exceeds first.ts + W every later event does too.
    if (positive_index > 0 && query_->window_ticks >= 0 &&
        event->timestamp() - first_ts > query_->window_ticks) {
      break;
    }
    if (event->type() != wanted) continue;
    if (has_prev && event->timestamp() <= prev_ts) continue;  // strict order
    (*bindings)[static_cast<size_t>(slot)] = event;
    SASE_RETURN_IF_ERROR(Recurse(events, positive_index + 1, i + 1, bindings, out));
    (*bindings)[static_cast<size_t>(slot)] = nullptr;
  }
  return Status::Ok();
}

Result<bool> ReferenceMatcher::CheckPositivePredicates(
    const BindingVec& bindings) const {
  EvalContext ctx{&bindings, functions_};
  for (const auto& conjunct : positive_conjuncts_) {
    auto result = EvalPredicate(*conjunct, ctx);
    if (!result.ok()) return result.status();
    if (!result.value()) return false;
  }
  return true;
}

Result<bool> ReferenceMatcher::ViolatesNegation(
    const NegationCheck& check, const std::vector<EventPtr>& events,
    BindingVec* bindings) const {
  const NegationSpec& spec = *check.spec;
  const auto& positives = query_->positive_slots;
  const EventPtr& first = (*bindings)[static_cast<size_t>(positives.front())];
  const EventPtr& last = (*bindings)[static_cast<size_t>(positives.back())];

  Timestamp lo, hi;
  bool lo_inclusive = false, hi_inclusive = false;
  if (spec.prev_positive >= 0) {
    lo = (*bindings)[static_cast<size_t>(
                         positives[static_cast<size_t>(spec.prev_positive)])]
             ->timestamp();
  } else {
    lo = last->timestamp() - query_->window_ticks;
    lo_inclusive = true;
  }
  if (spec.next_positive >= 0) {
    hi = (*bindings)[static_cast<size_t>(
                         positives[static_cast<size_t>(spec.next_positive)])]
             ->timestamp();
  } else {
    hi = first->timestamp() + query_->window_ticks;
    hi_inclusive = true;
  }

  for (const EventPtr& candidate : events) {
    if (candidate->type() != spec.type_id) continue;
    Timestamp t = candidate->timestamp();
    bool above = lo_inclusive ? t >= lo : t > lo;
    bool below = hi_inclusive ? t <= hi : t < hi;
    if (!above || !below) continue;
    (*bindings)[static_cast<size_t>(spec.slot)] = candidate;
    EvalContext ctx{bindings, functions_};
    bool all_pass = true;
    for (const auto& pred : check.predicates) {
      auto result = EvalPredicate(*pred, ctx);
      if (!result.ok()) {
        (*bindings)[static_cast<size_t>(spec.slot)] = nullptr;
        return result.status();
      }
      if (!result.value()) {
        all_pass = false;
        break;
      }
    }
    (*bindings)[static_cast<size_t>(spec.slot)] = nullptr;
    if (all_pass) return true;
  }
  return false;
}

}  // namespace sase
