#ifndef SASE_ENGINE_REFERENCE_MATCHER_H_
#define SASE_ENGINE_REFERENCE_MATCHER_H_

#include <vector>

#include "engine/function_registry.h"
#include "engine/match.h"
#include "query/analyzer.h"

namespace sase {

/// Brute-force oracle for the event matching block (EVENT + WHERE +
/// WITHIN): enumerates every combination of buffered events that satisfies
/// the pattern and checks predicates, windows and negation directly from
/// their definitions.
///
/// This is deliberately an *independent implementation* of the SASE
/// semantics — no NFA, no stacks, no pushdown — used two ways:
///  1. as the correctness oracle in property tests (engine output must
///     equal reference output on randomized streams), and
///  2. as the naive baseline in the benchmarks, standing in for the
///     non-incremental evaluation the paper's optimized operators beat.
///
/// Complexity is O(n^k) in the worst case (n events, k positive
/// components), window-pruned. Use on bounded streams only.
class ReferenceMatcher {
 public:
  /// `query` and `functions` must outlive the matcher.
  ReferenceMatcher(const AnalyzedQuery* query, const FunctionRegistry* functions);

  /// Returns all matches over `events` (which must be in stream order),
  /// in lexicographic order of constituent positions. Evaluation errors
  /// abort with a status (the oracle is strict where the engine is lenient).
  Result<std::vector<Match>> FindMatches(const std::vector<EventPtr>& events) const;

 private:
  struct NegationCheck {
    const NegationSpec* spec;
    std::vector<ExprPtr> predicates;  // every WHERE conjunct touching it
  };

  Status Recurse(const std::vector<EventPtr>& events, size_t positive_index,
                 size_t start, BindingVec* bindings,
                 std::vector<Match>* out) const;
  Result<bool> CheckPositivePredicates(const BindingVec& bindings) const;
  Result<bool> ViolatesNegation(const NegationCheck& check,
                                const std::vector<EventPtr>& events,
                                BindingVec* bindings) const;

  const AnalyzedQuery* query_;
  const FunctionRegistry* functions_;
  std::vector<ExprPtr> positive_conjuncts_;
  std::vector<NegationCheck> negation_checks_;
};

}  // namespace sase

#endif  // SASE_ENGINE_REFERENCE_MATCHER_H_
