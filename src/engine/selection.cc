#include "engine/selection.h"

#include "util/logging.h"

namespace sase {
namespace {

bool CompareInt(int64_t lhs, BinaryOp op, int64_t rhs) {
  switch (op) {
    case BinaryOp::kEq: return lhs == rhs;
    case BinaryOp::kNeq: return lhs != rhs;
    case BinaryOp::kLt: return lhs < rhs;
    case BinaryOp::kLe: return lhs <= rhs;
    case BinaryOp::kGt: return lhs > rhs;
    case BinaryOp::kGe: return lhs >= rhs;
    default: return false;  // unreachable: CompileFast only admits comparisons
  }
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

}  // namespace

Selection::FastPred Selection::CompileFast(const Expr& predicate) {
  FastPred fast;
  if (predicate.kind() != ExprKind::kBinary) return fast;
  const auto& node = static_cast<const BinaryExpr&>(predicate);
  if (!IsComparison(node.op())) return fast;
  if (node.left()->kind() != ExprKind::kVarAttr ||
      node.right()->kind() != ExprKind::kLiteral) {
    return fast;
  }
  const auto& var = static_cast<const VarAttrExpr&>(*node.left());
  const auto& lit = static_cast<const LiteralExpr&>(*node.right());
  if (!var.resolved() || var.attr_index() == kInvalidAttr ||
      lit.value().type() != ValueType::kInt) {
    return fast;
  }
  fast.slot = var.slot();
  fast.attr = var.attr_index();
  fast.op = node.op();
  fast.rhs = lit.value().AsInt();
  return fast;
}

Selection::Selection(std::vector<ExprPtr> predicates,
                     const FunctionRegistry* functions)
    : predicates_(std::move(predicates)), functions_(functions) {
  fast_.reserve(predicates_.size());
  for (const auto& predicate : predicates_) {
    fast_.push_back(CompileFast(*predicate));
  }
}

void Selection::OnMatch(const Match& match) {
  CountIn();
  EvalContext ctx{&match.bindings, functions_};
  for (size_t i = 0; i < predicates_.size(); ++i) {
    const FastPred& fast = fast_[i];
    if (fast.slot >= 0) {
      const EventPtr& event = match.bindings[static_cast<size_t>(fast.slot)];
      if (event != nullptr) {
        const Value& value = event->attribute(fast.attr);
        if (value.type() == ValueType::kInt) {
          if (!CompareInt(value.AsInt(), fast.op, fast.rhs)) return;
          continue;
        }
      }
    }
    auto result = EvalPredicate(*predicates_[i], ctx);
    if (!result.ok()) {
      if (stats_.eval_errors == 0) {
        SASE_LOG_WARN << "selection error: " << result.status().ToString();
      }
      ++stats_.eval_errors;
      return;
    }
    if (!result.value()) return;
  }
  Emit(match);
}

}  // namespace sase
