#include "engine/selection.h"

#include "util/logging.h"

namespace sase {

void Selection::OnMatch(const Match& match) {
  CountIn();
  EvalContext ctx{&match.bindings, functions_};
  for (const auto& predicate : predicates_) {
    auto result = EvalPredicate(*predicate, ctx);
    if (!result.ok()) {
      if (stats_.eval_errors == 0) {
        SASE_LOG_WARN << "selection error: " << result.status().ToString();
      }
      ++stats_.eval_errors;
      return;
    }
    if (!result.value()) return;
  }
  Emit(match);
}

}  // namespace sase
