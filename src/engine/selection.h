#ifndef SASE_ENGINE_SELECTION_H_
#define SASE_ENGINE_SELECTION_H_

#include <vector>

#include "engine/function_registry.h"
#include "engine/operator.h"
#include "query/expr.h"

namespace sase {

/// Relational selection over composite events: evaluates the WHERE
/// conjuncts that were not pushed into the sequence operator (cross-
/// variable predicates outside the partition class, plus everything the
/// planner demoted when running with pushdown disabled).
class Selection : public Operator {
 public:
  struct Stats {
    uint64_t eval_errors = 0;
  };

  Selection(std::vector<ExprPtr> predicates, const FunctionRegistry* functions)
      : predicates_(std::move(predicates)), functions_(functions) {}

  const char* name() const override { return "Selection"; }
  void OnMatch(const Match& match) override;

  const Stats& stats() const { return stats_; }
  size_t predicate_count() const { return predicates_.size(); }

 private:
  std::vector<ExprPtr> predicates_;
  const FunctionRegistry* functions_;
  Stats stats_;
};

}  // namespace sase

#endif  // SASE_ENGINE_SELECTION_H_
