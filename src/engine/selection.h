#ifndef SASE_ENGINE_SELECTION_H_
#define SASE_ENGINE_SELECTION_H_

#include <vector>

#include "engine/function_registry.h"
#include "engine/operator.h"
#include "engine/state_codec.h"
#include "query/expr.h"

namespace sase {

/// Relational selection over composite events: evaluates the WHERE
/// conjuncts that were not pushed into the sequence operator (cross-
/// variable predicates outside the partition class, plus everything the
/// planner demoted when running with pushdown disabled).
class Selection : public Operator {
 public:
  struct Stats {
    uint64_t eval_errors = 0;
  };

  Selection(std::vector<ExprPtr> predicates, const FunctionRegistry* functions);

  const char* name() const override { return "Selection"; }
  void OnMatch(const Match& match) override;

  const Stats& stats() const { return stats_; }
  size_t predicate_count() const { return predicates_.size(); }

  /// Checkpoint state walker (snapshot v2): Selection holds no cross-event
  /// state, only counters. LoadState consumes until the "--" divider.
  void SaveState(StateWriter* w) const {
    w->Line("LS") << matches_in() << '|' << matches_out() << '|'
                  << stats_.eval_errors;
    w->EndLine();
  }
  Status LoadState(StateReader* r) {
    while (r->Next()) {
      if (r->tag() == "--") return Status::Ok();
      if (r->tag() != "LS") return r->Malformed("Selection tag");
      SASE_ASSIGN_OR_RETURN(uint64_t in, r->U64(0));
      SASE_ASSIGN_OR_RETURN(uint64_t out, r->U64(1));
      SASE_ASSIGN_OR_RETURN(stats_.eval_errors, r->U64(2));
      RestoreCounters(in, out);
    }
    if (!r->status().ok()) return r->status();
    return Status::ParseError("Selection state truncated (no divider)");
  }

 private:
  /// Compiled form of a `var.attr <cmp> int-literal` conjunct — the dominant
  /// residual shape once shared scans rehome edge filters here. Evaluating
  /// it is two loads and a compare instead of a virtual Eval() tree walk
  /// with Value temporaries. `slot < 0` marks "no fast form; use the tree".
  /// The fast path only fires when the binding is present and the attribute
  /// is an int (same outcome the tree produces for that case); anything
  /// else — unbound slot, NULL or non-int attribute — falls back to the
  /// tree so errors and NULL-comparison semantics stay byte-identical.
  struct FastPred {
    int slot = -1;
    AttrIndex attr = kInvalidAttr;
    BinaryOp op = BinaryOp::kEq;
    int64_t rhs = 0;
  };
  static FastPred CompileFast(const Expr& predicate);

  std::vector<ExprPtr> predicates_;
  std::vector<FastPred> fast_;  // parallel to predicates_
  const FunctionRegistry* functions_;
  Stats stats_;
};

}  // namespace sase

#endif  // SASE_ENGINE_SELECTION_H_
