#include "engine/sequence_scan.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/value_codec.h"

namespace sase {

SequenceScan::SequenceScan(const Nfa* nfa, Ticks window,
                           const FunctionRegistry* functions, size_t slot_count)
    : nfa_(nfa), window_(window), functions_(functions) {
  scratch_.resize(slot_count);
  unpartitioned_.stacks.resize(nfa_->edge_count());
}

void SequenceScan::OnMatch(const Match& match) {
  // SequenceScan is the plan source; nothing feeds matches into it in a
  // normal plan. Forward defensively so a miswired plan stays visible.
  CountIn();
  Emit(match);
}

void SequenceScan::OnEvent(const EventPtr& event) {
  ++stats_.events_seen;
  const std::vector<int>& states = nfa_->StatesForType(event->type());
  if (!states.empty()) {
    if (!nfa_->partitioned()) {
      if (window_ >= 0) {
        stats_.instances_pruned +=
            PruneStacks(&unpartitioned_, event->timestamp() - window_);
      }
      // Descending state order: a state's push must observe the previous
      // stack as it was before this event touched it.
      for (auto it = states.rbegin(); it != states.rend(); ++it) {
        Process(&unpartitioned_, *it, event);
      }
    } else {
      // PAIS: each candidate state may key the event by a different
      // attribute (x.K1 = y.K2 partitions type-A events by K1 and type-B
      // events by K2), so the partition is resolved per state.
      for (auto it = states.rbegin(); it != states.rend(); ++it) {
        int state = *it;
        const NfaEdge& edge = nfa_->edge(static_cast<size_t>(state));
        const Value& key = event->attribute(edge.partition_attr);
        auto [part_it, inserted] = partitions_.try_emplace(key);
        if (inserted) {
          ++stats_.partitions_created;
          part_it->second.stacks.resize(nfa_->edge_count());
        }
        Partition* partition = &part_it->second;
        if (window_ >= 0) {
          stats_.instances_pruned +=
              PruneStacks(partition, event->timestamp() - window_);
        }
        Process(partition, state, event);
      }
    }
  }
  if (window_ >= 0 && ++events_since_sweep_ >= kSweepInterval) {
    SweepPartitions(event->timestamp());
    events_since_sweep_ = 0;
  }
}

bool SequenceScan::EdgeFiltersPass(const NfaEdge& edge, const EventPtr& event) {
  if (edge.filters.empty()) return true;
  scratch_[static_cast<size_t>(edge.slot)] = event;
  EvalContext ctx{&scratch_, functions_};
  bool pass = true;
  for (const auto& filter : edge.filters) {
    auto result = EvalPredicate(*filter, ctx);
    if (!result.ok()) {
      // Evaluation errors fail the predicate; the query keeps running. The
      // count is surfaced through stats so tests can assert clean runs.
      if (stats_.eval_errors == 0) {
        SASE_LOG_WARN << "edge filter error: " << result.status().ToString();
      }
      ++stats_.eval_errors;
      pass = false;
      break;
    }
    if (!result.value()) {
      pass = false;
      break;
    }
  }
  scratch_[static_cast<size_t>(edge.slot)] = nullptr;
  return pass;
}

void SequenceScan::Process(Partition* partition, int state,
                           const EventPtr& event) {
  const NfaEdge& edge = nfa_->edge(static_cast<size_t>(state));
  if (!EdgeFiltersPass(edge, event)) return;

  uint64_t prev_abs = kNoPrev;
  if (state > 0) {
    // Newest instance in the previous stack with a strictly smaller
    // timestamp. Stacks are time-sorted, so binary search the boundary.
    const Stack& prev = partition->stacks[static_cast<size_t>(state) - 1];
    if (prev.items.empty()) return;
    auto it = std::lower_bound(
        prev.items.begin(), prev.items.end(), event->timestamp(),
        [](const Instance& inst, Timestamp ts) {
          return inst.event->timestamp() < ts;
        });
    if (it == prev.items.begin()) return;  // no predecessor precedes event
    prev_abs = prev.base + static_cast<uint64_t>(it - prev.items.begin()) - 1;
  }

  Stack& stack = partition->stacks[static_cast<size_t>(state)];
  stack.items.push_back(Instance{event, prev_abs});
  ++stats_.instances_pushed;
  ++stats_.instances_alive;
  stats_.peak_instances = std::max(stats_.peak_instances, stats_.instances_alive);

  if (static_cast<size_t>(state) + 1 == nfa_->edge_count() ||
      nfa_->edge_count() == 1) {
    // Reached the accepting state: construct every sequence ending here.
    Construct(partition, stack.items.back());
  }
}

void SequenceScan::Construct(Partition* partition, const Instance& final_instance) {
  const int last_level = static_cast<int>(nfa_->edge_count()) - 1;
  const NfaEdge& last_edge = nfa_->edge(static_cast<size_t>(last_level));
  scratch_[static_cast<size_t>(last_edge.slot)] = final_instance.event;

  if (last_level == 0) {
    EmitCurrent();
  } else {
    Timestamp window_lo = window_ >= 0
                              ? final_instance.event->timestamp() - window_
                              : std::numeric_limits<Timestamp>::min();
    ConstructLevel(partition, last_level - 1, final_instance.prev_abs, window_lo);
  }
  scratch_[static_cast<size_t>(last_edge.slot)] = nullptr;
}

void SequenceScan::ConstructLevel(Partition* partition, int level,
                                  uint64_t max_abs, Timestamp window_lo) {
  if (max_abs == kNoPrev) return;
  const Stack& stack = partition->stacks[static_cast<size_t>(level)];
  if (stack.items.empty() || max_abs < stack.base) return;
  uint64_t hi = std::min(max_abs, stack.size_abs() - 1);
  const NfaEdge& edge = nfa_->edge(static_cast<size_t>(level));

  for (uint64_t abs = hi;; --abs) {
    const Instance& inst = stack.at_abs(abs);
    // Stacks are time-sorted: once below the window's lower bound, every
    // remaining (older) instance is below it too.
    if (inst.event->timestamp() < window_lo) break;
    scratch_[static_cast<size_t>(edge.slot)] = inst.event;
    if (level == 0) {
      EmitCurrent();
    } else {
      ConstructLevel(partition, level - 1, inst.prev_abs, window_lo);
    }
    scratch_[static_cast<size_t>(edge.slot)] = nullptr;
    if (abs == stack.base) break;
  }
}

void SequenceScan::EmitCurrent() {
  Match match;
  match.bindings = scratch_;
  const NfaEdge& first_edge = nfa_->edge(0);
  const NfaEdge& last_edge = nfa_->edge(nfa_->edge_count() - 1);
  match.first_ts =
      scratch_[static_cast<size_t>(first_edge.slot)]->timestamp();
  match.last_ts = scratch_[static_cast<size_t>(last_edge.slot)]->timestamp();
  ++stats_.matches_emitted;
  Emit(match);
}

uint64_t SequenceScan::PruneStacks(Partition* partition, Timestamp lower_bound) {
  uint64_t pruned = 0;
  for (Stack& stack : partition->stacks) {
    size_t drop = 0;
    while (drop < stack.items.size() &&
           stack.items[drop].event->timestamp() < lower_bound) {
      ++drop;
    }
    if (drop > 0) {
      stack.items.erase(stack.items.begin(),
                        stack.items.begin() + static_cast<ptrdiff_t>(drop));
      stack.base += drop;
      pruned += drop;
    }
  }
  stats_.instances_alive -= pruned;
  return pruned;
}

void SequenceScan::SaveState(StateWriter* w) const {
  w->Line("SS") << stats_.events_seen << '|' << stats_.instances_pushed << '|'
                << stats_.instances_pruned << '|' << stats_.matches_emitted
                << '|' << stats_.partitions_created << '|'
                << stats_.instances_alive << '|' << stats_.peak_instances
                << '|' << stats_.eval_errors;
  w->EndLine();
  w->Line("SC") << matches_in() << '|' << matches_out();
  w->EndLine();
  auto save_partition = [&](const std::string& key, const Partition& part) {
    w->Line("SP") << key << '|' << part.stacks.size();
    w->EndLine();
    for (const Stack& stack : part.stacks) {
      w->Line("SK") << stack.base << '|' << stack.items.size();
      w->EndLine();
      for (const Instance& inst : stack.items) {
        // Ref before Line: a first reference emits the event-table line.
        std::string ref = w->Ref(inst.event);
        w->Line("SI") << ref << '|' << inst.prev_abs;
        w->EndLine();
      }
    }
  };
  save_partition("-", unpartitioned_);
  for (const auto& [key, part] : partitions_) {
    save_partition(EncodeValue(key), part);
  }
}

Status SequenceScan::LoadState(StateReader* r) {
  unpartitioned_ = Partition{};
  unpartitioned_.stacks.resize(nfa_->edge_count());
  partitions_.clear();
  events_since_sweep_ = 0;
  Partition* part = nullptr;
  size_t next_stack = 0;
  Stack* stack = nullptr;
  while (r->Next()) {
    const std::string& tag = r->tag();
    if (tag == "--") return Status::Ok();
    if (tag == "SS") {
      if (r->field_count() != 8) return r->Malformed("SequenceScan stats");
      SASE_ASSIGN_OR_RETURN(stats_.events_seen, r->U64(0));
      SASE_ASSIGN_OR_RETURN(stats_.instances_pushed, r->U64(1));
      SASE_ASSIGN_OR_RETURN(stats_.instances_pruned, r->U64(2));
      SASE_ASSIGN_OR_RETURN(stats_.matches_emitted, r->U64(3));
      SASE_ASSIGN_OR_RETURN(stats_.partitions_created, r->U64(4));
      SASE_ASSIGN_OR_RETURN(stats_.instances_alive, r->U64(5));
      SASE_ASSIGN_OR_RETURN(stats_.peak_instances, r->U64(6));
      SASE_ASSIGN_OR_RETURN(stats_.eval_errors, r->U64(7));
    } else if (tag == "SC") {
      SASE_ASSIGN_OR_RETURN(uint64_t in, r->U64(0));
      SASE_ASSIGN_OR_RETURN(uint64_t out, r->U64(1));
      RestoreCounters(in, out);
    } else if (tag == "SP") {
      SASE_ASSIGN_OR_RETURN(std::string key, r->Raw(0));
      SASE_ASSIGN_OR_RETURN(uint64_t stacks, r->U64(1));
      if (stacks != nfa_->edge_count()) {
        return r->Malformed("stack count (NFA shape)");
      }
      if (key == "-") {
        part = &unpartitioned_;
      } else {
        SASE_ASSIGN_OR_RETURN(Value value, r->Val(0));
        auto [it, inserted] = partitions_.try_emplace(std::move(value));
        if (!inserted) return r->Malformed("duplicate partition");
        part = &it->second;
        part->stacks.resize(nfa_->edge_count());
      }
      next_stack = 0;
      stack = nullptr;
    } else if (tag == "SK") {
      if (part == nullptr || next_stack >= part->stacks.size()) {
        return r->Malformed("stack outside partition");
      }
      stack = &part->stacks[next_stack++];
      SASE_ASSIGN_OR_RETURN(stack->base, r->U64(0));
      SASE_ASSIGN_OR_RETURN(uint64_t items, r->U64(1));
      stack->items.clear();
      // The count is advisory (instances arrive as SI lines); clamp the
      // reserve so a corrupt payload cannot force an allocation abort.
      stack->items.reserve(std::min<uint64_t>(items, 4096));
    } else if (tag == "SI") {
      if (stack == nullptr) return r->Malformed("instance outside stack");
      SASE_ASSIGN_OR_RETURN(EventPtr event, r->Ev(0));
      SASE_ASSIGN_OR_RETURN(uint64_t prev, r->U64(1));
      if (event == nullptr) return r->Malformed("null stack instance");
      stack->items.push_back(Instance{std::move(event), prev});
    } else {
      return r->Malformed("SequenceScan tag");
    }
  }
  if (!r->status().ok()) return r->status();
  return Status::ParseError("SequenceScan state truncated (no divider)");
}

SequenceScan::Footprint SequenceScan::StateFootprint() const {
  Footprint fp;
  // Bytes count only stream-driven storage: live instances, the vector
  // capacity retained for them, and the dynamic per-key partition shells.
  // The fixed unpartitioned stack frame every scan owns at construction is
  // operator overhead, not state — excluding it lets the gauge reach zero
  // once pruning drains a quiescent stream.
  auto add_items = [&fp](const Partition& partition) {
    for (const Stack& stack : partition.stacks) {
      fp.instances += stack.items.size();
      fp.bytes += stack.items.capacity() * sizeof(Instance);
    }
  };
  add_items(unpartitioned_);
  fp.partitions = partitions_.size();
  for (const auto& [key, partition] : partitions_) {
    fp.bytes += sizeof(key) + partition.stacks.capacity() * sizeof(Stack);
    add_items(partition);
  }
  return fp;
}

void SequenceScan::OnWatermark(Timestamp now) {
  if (window_ < 0) return;
  stats_.instances_pruned += PruneStacks(&unpartitioned_, now - window_);
  SweepPartitions(now);
  events_since_sweep_ = 0;
}

void SequenceScan::SweepPartitions(Timestamp now) {
  if (!nfa_->partitioned() || window_ < 0) return;
  Timestamp lower = now - window_;
  for (auto it = partitions_.begin(); it != partitions_.end();) {
    stats_.instances_pruned += PruneStacks(&it->second, lower);
    bool empty = true;
    for (const Stack& stack : it->second.stacks) {
      if (!stack.items.empty()) {
        empty = false;
        break;
      }
    }
    if (empty) {
      it = partitions_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sase
