#ifndef SASE_ENGINE_SEQUENCE_SCAN_H_
#define SASE_ENGINE_SEQUENCE_SCAN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/function_registry.h"
#include "engine/operator.h"
#include "engine/state_codec.h"
#include "nfa/nfa.h"

namespace sase {

/// The native sequence operator (the paper's "Sequence Scan and
/// Construction"): runs the compiled NFA over the event stream and emits
/// every event sequence that satisfies the pattern's type/order
/// constraints, the pushed-down edge predicates, the partition equivalence
/// and (when pushed down) the sliding window.
///
/// ## Active Instance Stacks (AIS)
/// One stack per NFA state holds the events accepted by that state's edge,
/// in arrival (= timestamp) order. Each pushed instance records the
/// absolute index of the most recent instance in the *previous* stack whose
/// timestamp is strictly smaller — the newest viable predecessor. When an
/// event lands in the final stack, *sequence construction* walks these
/// back-pointers: at each level every instance with index <= the recorded
/// pointer is a valid predecessor, so a depth-first descent enumerates all
/// matches without re-checking timestamps (stacks are time-sorted).
///
/// ## Partitioned Active Instance Stacks (PAIS)
/// When the WHERE clause carries an equivalence test across all pattern
/// variables (e.g. `x.TagId = y.TagId = z.TagId`), stacks are partitioned
/// by that attribute's value: each key gets its own stack set, so
/// construction touches only sequences that already satisfy the
/// equivalence. This is the paper's "indexing relevant events ... across
/// value-based partitions".
///
/// ## Window pushdown
/// With `WITHIN W` pushed down, an instance whose timestamp is older than
/// `now - W` can never begin (or be part of) a sequence ending at or after
/// `now`; stacks are pruned on arrival and construction stops descending at
/// the window's lower bound. This is the paper's "sequence index in
/// temporal order" for large sliding windows.
class SequenceScan : public Operator {
 public:
  struct Stats {
    uint64_t events_seen = 0;
    uint64_t instances_pushed = 0;
    uint64_t instances_pruned = 0;
    uint64_t matches_emitted = 0;
    uint64_t partitions_created = 0;
    uint64_t instances_alive = 0;
    uint64_t peak_instances = 0;
    uint64_t eval_errors = 0;
  };

  /// `window` in ticks; pass -1 to disable window pushdown (the
  /// WindowFilter operator then enforces WITHIN). `slot_count` is the total
  /// number of pattern variables (positive + negated).
  SequenceScan(const Nfa* nfa, Ticks window, const FunctionRegistry* functions,
               size_t slot_count);

  const char* name() const override { return "SequenceScan"; }
  void OnEvent(const EventPtr& event) override;
  void OnMatch(const Match& match) override;  // pass-through (source operator)

  const Stats& stats() const { return stats_; }

  /// Live operator-state footprint for the state-size gauges: partial-match
  /// instances currently stacked, value partitions holding them, and the
  /// approximate heap bytes the stacks reserve (capacity, not size — the
  /// reserved memory is what an operator actually pays for).
  struct Footprint {
    uint64_t instances = 0;
    uint64_t partitions = 0;
    uint64_t bytes = 0;
  };
  Footprint StateFootprint() const;

  /// Advances stream time without an event: prunes instances the pushdown
  /// window already excludes (they cannot join any sequence ending at or
  /// after `now`, so output is unaffected) and sweeps empty partitions.
  /// Lets a quiescent stream's state gauges decay to ~0 once the window
  /// passes instead of waiting for the next arrival. No-op without window
  /// pushdown.
  void OnWatermark(Timestamp now);

  /// Current pushdown window in ticks (-1 = disabled). A shared scan
  /// (multi-query sharing, src/engine/shared_scan.h) widens its window to
  /// the maximum over member queries; widening is always safe because the
  /// WindowFilter/Selection tail of each member still enforces the exact
  /// per-query span.
  Ticks window() const { return window_; }
  void set_window(Ticks window) { window_ = window; }

  /// Checkpoint state walker (snapshot v2): writes every partition's active
  /// instance stacks — bases, events, back-pointers — plus counters, as
  /// codec lines. LoadState consumes lines until the "--" block divider,
  /// replacing the operator's state wholesale; the hosting plan must have
  /// been compiled from the same query/options (validated via the NFA
  /// signature at the plan level).
  void SaveState(StateWriter* w) const;
  Status LoadState(StateReader* r);

 private:
  // An accepted event at some NFA state. `prev_abs` is the absolute index
  // (stable under pruning) of its newest viable predecessor in the previous
  // stack, or kNoPrev for the first state.
  static constexpr uint64_t kNoPrev = ~uint64_t{0};
  struct Instance {
    EventPtr event;
    uint64_t prev_abs;
  };

  // A stack with a stable absolute index space: element i of `items` has
  // absolute index base + i. Pruning pops from the front and advances base.
  struct Stack {
    std::vector<Instance> items;
    uint64_t base = 0;

    uint64_t size_abs() const { return base + items.size(); }
    const Instance& at_abs(uint64_t abs) const { return items[abs - base]; }
  };

  // One stack per NFA state; a single Partition serves the whole stream
  // unless the NFA is partitioned.
  struct Partition {
    std::vector<Stack> stacks;
  };

  void Process(Partition* partition, int state, const EventPtr& event);
  bool EdgeFiltersPass(const NfaEdge& edge, const EventPtr& event);
  void Construct(Partition* partition, const Instance& final_instance);
  void ConstructLevel(Partition* partition, int level, uint64_t max_abs,
                      Timestamp window_lo);
  uint64_t PruneStacks(Partition* partition, Timestamp lower_bound);
  void SweepPartitions(Timestamp now);
  void EmitCurrent();

  const Nfa* nfa_;
  Ticks window_;
  const FunctionRegistry* functions_;

  Partition unpartitioned_;
  std::unordered_map<Value, Partition, ValueHash> partitions_;

  BindingVec scratch_;  // flat binding buffer reused across matches
  Stats stats_;
  uint64_t events_since_sweep_ = 0;
  static constexpr uint64_t kSweepInterval = 4096;
};

}  // namespace sase

#endif  // SASE_ENGINE_SEQUENCE_SCAN_H_
