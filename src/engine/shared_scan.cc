#include "engine/shared_scan.h"

#include <sstream>

namespace sase {

SharedScanGroup::SharedScanGroup(const AnalyzedQuery& query,
                                 const PlanOptions& options,
                                 const FunctionRegistry* functions)
    : nfa_(Nfa::Compile(query, /*push_edge_filters=*/false,
                        options.use_partitioning)),
      collector_(&arena_),
      scan_(&nfa_, options.push_window ? query.window_ticks : -1, functions,
            query.slot_count()) {
  scan_.set_downstream(&collector_);
}

std::string SharedScanGroup::GroupKey(const AnalyzedQuery& query,
                                      const PlanOptions& options,
                                      const std::string& stream) {
  // The filterless signature captures edge types, slots, the partition
  // attribute and the partitioned flag — predicate constants are the
  // members' business. slot_count disambiguates patterns whose positive
  // structure matches but whose negated tails widen the binding vector, and
  // the boundedness flag keeps WITHIN-less queries out of W_max groups.
  Nfa shape = Nfa::Compile(query, /*push_edge_filters=*/false,
                           options.use_partitioning);
  std::ostringstream key;
  key << shape.Signature() << '#' << stream << '#' << options.ToString()
      << '#' << query.slot_count() << '#'
      << (query.window_ticks < 0 ? "unbounded" : "bounded");
  return key.str();
}

void SharedScanGroup::AddMember(Ticks window_ticks) {
  ++members_;
  if (scan_.window() >= 0 && window_ticks > scan_.window()) {
    scan_.set_window(window_ticks);
  }
}

bool SharedScanGroup::EnsureScanned(uint64_t epoch, const EventPtr& event) {
  if (scanned_any_ && scanned_epoch_ == epoch) {
    ++shared_hits_;
    return false;
  }
  scanned_any_ = true;
  scanned_epoch_ = epoch;
  BeginEpoch();
  scan_.OnEvent(event);
  fed_any_ = true;
  last_seq_ = event->seq();
  return true;
}

void SharedScanGroup::BeginEpoch() {
  collector_.matches.clear();
  if (++epochs_since_reset_ < kArenaResetInterval) return;
  epochs_since_reset_ = 0;
  // Release the buffer into the arena (deallocate is a no-op), THEN reset
  // the epoch so capacity re-grows to what the workload actually needs.
  {
    std::vector<Match, ArenaAllocator<Match>> drained{
        ArenaAllocator<Match>(&arena_)};
    collector_.matches.swap(drained);
  }
  arena_.Reset();
}

void SharedScanGroup::NoteRestored(bool fed_any, uint64_t last_seq) {
  scanned_any_ = false;  // the next event must reach the restored scan
  fed_any_ = fed_any;
  if (fed_any) last_seq_ = last_seq;
}

}  // namespace sase
