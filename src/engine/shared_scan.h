#ifndef SASE_ENGINE_SHARED_SCAN_H_
#define SASE_ENGINE_SHARED_SCAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/operator.h"
#include "engine/planner.h"
#include "util/arena.h"

namespace sase {

/// One shared compiled NFA serving every registered query with the same
/// scan structure — the SASE multi-query optimization (one automaton, many
/// predicate/transform tails).
///
/// ## What can share
/// Two plans share a group when their FILTERLESS NFAs are structurally
/// identical (same edge types, slots and partition attributes — constants
/// in predicates don't matter because edge predicates are not pushed into a
/// shared scan; they are rehomed into each member's Selection residuals),
/// they read the same input stream, were compiled under the same
/// PlanOptions, bind the same number of slots, and agree on window
/// boundedness. The group's scan runs at W_max = max member window: wider
/// than any member needs, which only over-approximates — each member's
/// WindowFilter still enforces its exact WITHIN span, and its Selection
/// evaluates the rehomed edge predicates — so member output is byte-
/// identical to a dedicated plan (the differential harness asserts this
/// across sharing ON/OFF, shard counts and kill-recover).
///
/// ## Per-event protocol
/// The engine stamps every delivered event with a scan epoch; the first
/// member reached in registration order feeds the scan (EnsureScanned),
/// which buffers the constructed matches in an epoch-reset arena; every
/// further member in the same epoch reuses the buffer — that reuse is the
/// `shared_hits` counter, and it is where the 64-structurally-identical-
/// queries workload stops paying 64x scan cost.
///
/// ## Join gate
/// A member registered after the group has consumed events would otherwise
/// see matches built from pre-registration events still alive in the shared
/// stacks — something a dedicated (empty) plan can never produce. The
/// engine gates such members at the last event sequence number the group
/// consumed; QueryPlan::OnSharedMatches drops any match whose first bound
/// event is at or before the gate.
class SharedScanGroup {
 public:
  /// Compiles the group's filterless automaton from the first member's
  /// analyzed query. Subsequent members are structurally identical by key,
  /// so any member's query yields the same automaton.
  SharedScanGroup(const AnalyzedQuery& query, const PlanOptions& options,
                  const FunctionRegistry* functions);

  /// Group identity for `query` on `stream` under `options`. Plans with
  /// equal keys produce byte-identical shared scans.
  static std::string GroupKey(const AnalyzedQuery& query,
                              const PlanOptions& options,
                              const std::string& stream);

  /// Membership refcounting; AddMember widens the scan window to cover the
  /// new member's WITHIN span (never narrows — see window() contract in
  /// SequenceScan).
  void AddMember(Ticks window_ticks);
  void RemoveMember() { --members_; }
  std::size_t member_count() const { return members_; }

  /// Feeds `event` through the shared scan unless this epoch already
  /// scanned it; returns true when the scan ran (false = shared hit).
  bool EnsureScanned(uint64_t epoch, const EventPtr& event);

  /// Matches constructed in the current epoch (valid until the next
  /// EnsureScanned that feeds the scan).
  const Match* matches() const { return collector_.matches.data(); }
  std::size_t match_count() const { return collector_.matches.size(); }

  SequenceScan* scan() { return &scan_; }
  const SequenceScan& scan() const { return scan_; }

  /// Has the scan consumed any event (live or restored), and the sequence
  /// number of the newest one — the join gate for late members.
  bool fed_any() const { return fed_any_; }
  uint64_t last_seq() const { return last_seq_; }

  /// Called after a member's checkpoint payload restored the shared scan's
  /// state: re-arms the epoch bookkeeping and adopts the saved feed
  /// frontier so post-restore registrations gate exactly as they would
  /// have in the original process.
  void NoteRestored(bool fed_any, uint64_t last_seq);

  /// Epochs served from the buffer without re-running the scan.
  uint64_t shared_hits() const { return shared_hits_; }
  /// Heap bytes reserved by the match-buffer arena.
  uint64_t arena_bytes() const { return arena_.bytes_reserved(); }

 private:
  struct Collector : public Operator {
    explicit Collector(Arena* arena)
        : matches(ArenaAllocator<Match>(arena)) {}
    const char* name() const override { return "SharedScanCollector"; }
    void OnMatch(const Match& match) override {
      CountIn();
      matches.push_back(match);
    }
    void OnFlush() override {}  // members flush their own tails

    std::vector<Match, ArenaAllocator<Match>> matches;
  };

  /// Clears the match buffer for a new epoch; periodically rebuilds it on
  /// a fresh arena epoch so retained capacity tracks the workload.
  void BeginEpoch();

  Nfa nfa_;
  Arena arena_;
  Collector collector_;
  SequenceScan scan_;

  std::size_t members_ = 0;
  uint64_t scanned_epoch_ = 0;
  bool scanned_any_ = false;
  bool fed_any_ = false;
  uint64_t last_seq_ = 0;
  uint64_t shared_hits_ = 0;
  uint64_t epochs_since_reset_ = 0;
  static constexpr uint64_t kArenaResetInterval = 4096;
};

}  // namespace sase

#endif  // SASE_ENGINE_SHARED_SCAN_H_
