#include "engine/state_codec.h"

#include <cstdlib>
#include <ostream>
#include <istream>

#include "util/string_util.h"
#include "util/value_codec.h"

namespace sase {

/// Next()-local variant of SASE_ASSIGN_OR_RETURN: a decode failure poisons
/// the reader (status_) and ends iteration instead of returning a Status.
#define SASE_ASSIGN_OR_RETURN_FALSE(lhs, rexpr)                      \
  auto SASE_STATUS_CONCAT_(_sase_result_, __LINE__) = (rexpr);       \
  if (!SASE_STATUS_CONCAT_(_sase_result_, __LINE__).ok()) {          \
    status_ = SASE_STATUS_CONCAT_(_sase_result_, __LINE__).status(); \
    return false;                                                    \
  }                                                                  \
  lhs = std::move(SASE_STATUS_CONCAT_(_sase_result_, __LINE__)).value()

std::ostream& StateWriter::Line(const char* tag) {
  *out_ << tag << ' ';
  return *out_;
}

void StateWriter::EndLine() { *out_ << '\n'; }

std::string StateWriter::Ref(const EventPtr& event) {
  if (event == nullptr) return "~";
  auto [it, inserted] = refs_.emplace(event.get(), refs_.size());
  if (inserted) {
    std::ostream& out = Line("E");
    out << event->type() << '|' << event->timestamp() << '|' << event->seq()
        << '|' << event->attribute_count();
    for (size_t i = 0; i < event->attribute_count(); ++i) {
      out << '|' << EncodeValue(event->attribute(static_cast<AttrIndex>(i)));
    }
    EndLine();
  }
  return std::to_string(it->second);
}

bool StateReader::Next() {
  while (std::getline(*in_, line_)) {
    if (line_.empty()) continue;
    size_t space = line_.find(' ');
    tag_ = line_.substr(0, space);
    fields_ = space == std::string::npos
                  ? std::vector<std::string>{}
                  : Split(line_.substr(space + 1), '|');
    if (tag_ != "E") return true;

    // Event-table line: decode and append; malformed tables poison the
    // reader (the caller sees EOF and a non-OK status()).
    if (fields_.size() < 4) {
      status_ = Malformed("event table");
      return false;
    }
    SASE_ASSIGN_OR_RETURN_FALSE(uint64_t type, U64(0));
    SASE_ASSIGN_OR_RETURN_FALSE(int64_t ts, I64(1));
    SASE_ASSIGN_OR_RETURN_FALSE(uint64_t seq, U64(2));
    SASE_ASSIGN_OR_RETURN_FALSE(uint64_t count, U64(3));
    if (fields_.size() != 4 + count) {
      status_ = Malformed("event table (value count)");
      return false;
    }
    std::vector<Value> values;
    values.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      SASE_ASSIGN_OR_RETURN_FALSE(Value value, Val(4 + i));
      values.push_back(std::move(value));
    }
    events_.push_back(std::make_shared<Event>(static_cast<EventTypeId>(type),
                                              ts, seq, std::move(values)));
  }
  return false;
}

Status StateReader::Field(size_t i, const std::string** out) const {
  if (i >= fields_.size()) return Malformed("field count");
  *out = &fields_[i];
  return Status::Ok();
}

Result<uint64_t> StateReader::U64(size_t i) const {
  const std::string* field = nullptr;
  SASE_RETURN_IF_ERROR(Field(i, &field));
  auto value = ParseU64(*field);
  if (!value.ok()) return Malformed("number");
  return value;
}

Result<int64_t> StateReader::I64(size_t i) const {
  const std::string* field = nullptr;
  SASE_RETURN_IF_ERROR(Field(i, &field));
  auto value = ParseI64(*field);
  if (!value.ok()) return Malformed("number");
  return value;
}

Result<Value> StateReader::Val(size_t i) const {
  const std::string* field = nullptr;
  SASE_RETURN_IF_ERROR(Field(i, &field));
  return DecodeValue(*field);
}

Result<EventPtr> StateReader::Ev(size_t i) const {
  const std::string* field = nullptr;
  SASE_RETURN_IF_ERROR(Field(i, &field));
  if (*field == "~") return EventPtr();
  auto index = ParseU64(*field);
  if (!index.ok() || index.value() >= events_.size()) {
    return Malformed("event reference");
  }
  return events_[index.value()];
}

Result<std::string> StateReader::Raw(size_t i) const {
  const std::string* field = nullptr;
  SASE_RETURN_IF_ERROR(Field(i, &field));
  return *field;
}

Status StateReader::Malformed(const std::string& what) const {
  return Status::ParseError("bad " + what + " in state line: '" + line_ + "'");
}

}  // namespace sase
