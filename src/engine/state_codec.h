#ifndef SASE_ENGINE_STATE_CODEC_H_
#define SASE_ENGINE_STATE_CODEC_H_

#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/event.h"
#include "util/status.h"

namespace sase {

/// Line-oriented writer for operator-state serialization (checkpoint
/// snapshot v2, see docs/recovery.md). State is a sequence of
/// `TAG f0|f1|...` lines using the shared field grammar of the database
/// dump (util EscapeField / EncodeValue).
///
/// Events are written once into a per-payload event table (`E` lines) and
/// referenced by index everywhere else, so an event shared by several
/// stacks, negation buffers and parked matches round-trips as one shared
/// object.
class StateWriter {
 public:
  explicit StateWriter(std::ostream* out) : out_(out) {}

  /// Begins a line: writes `tag` + space, returns the stream for the
  /// '|'-separated fields. Finish with EndLine().
  std::ostream& Line(const char* tag);
  void EndLine();

  /// Field text referencing `event` through the event table ("~" for
  /// null); emits the event's `E` line on first reference.
  std::string Ref(const EventPtr& event);

 private:
  std::ostream* out_;
  std::unordered_map<const Event*, uint64_t> refs_;
};

/// Reader counterpart: iterates the `TAG fields` lines of one payload,
/// decoding event-table lines transparently and handing every other line
/// to the caller as (tag, fields).
class StateReader {
 public:
  explicit StateReader(std::istream* in) : in_(in) {}

  /// Advances to the next non-event-table line. Returns false at end of
  /// input or on a malformed event-table line (check status()).
  bool Next();

  const std::string& tag() const { return tag_; }
  size_t field_count() const { return fields_.size(); }

  // Typed field accessors; out-of-range or malformed fields are errors.
  Result<uint64_t> U64(size_t i) const;
  Result<int64_t> I64(size_t i) const;
  Result<Value> Val(size_t i) const;      // util DecodeValue grammar
  Result<EventPtr> Ev(size_t i) const;    // event-table reference; "~" = null
  Result<std::string> Raw(size_t i) const;  // field text, undecoded

  /// First event-table decode failure, if any (Next() returned false).
  const Status& status() const { return status_; }

  /// Error helper: "bad <what> line: <current line>".
  Status Malformed(const std::string& what) const;

 private:
  Status Field(size_t i, const std::string** out) const;

  std::istream* in_;
  std::string line_;
  std::string tag_;
  std::vector<std::string> fields_;
  std::vector<EventPtr> events_;
  Status status_;
};

}  // namespace sase

#endif  // SASE_ENGINE_STATE_CODEC_H_
