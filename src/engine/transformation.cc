#include "engine/transformation.h"

#include "util/logging.h"
#include "util/value_codec.h"

namespace sase {
namespace {

/// Collects every AggregateExpr node in the tree (pre-order).
void CollectAggregates(const Expr& expr, std::vector<const AggregateExpr*>* out) {
  switch (expr.kind()) {
    case ExprKind::kAggregate:
      out->push_back(static_cast<const AggregateExpr*>(&expr));
      return;
    case ExprKind::kBinary: {
      const auto& node = static_cast<const BinaryExpr&>(expr);
      CollectAggregates(*node.left(), out);
      CollectAggregates(*node.right(), out);
      return;
    }
    case ExprKind::kUnary:
      CollectAggregates(*static_cast<const UnaryExpr&>(expr).operand(), out);
      return;
    case ExprKind::kCall:
      for (const auto& arg : static_cast<const CallExpr&>(expr).args()) {
        CollectAggregates(*arg, out);
      }
      return;
    default:
      return;
  }
}

}  // namespace

Transformation::Transformation(const AnalyzedQuery* query,
                               const Catalog* catalog,
                               const FunctionRegistry* functions,
                               OutputCallback callback)
    : query_(query), catalog_(catalog), functions_(functions),
      callback_(std::move(callback)) {
  for (const auto& spec : query_->negations) {
    if (spec.next_positive < 0) tail_negation_ = true;
  }
  const auto& items = query_->parsed.return_items;
  if (items.empty()) {
    // Default projection: every attribute of every positive variable.
    for (int slot : query_->positive_slots) {
      const VarInfo& var = query_->vars[static_cast<size_t>(slot)];
      const EventSchema& schema = catalog_->schema(var.type_id);
      for (const auto& attr : schema.attributes()) {
        column_names_.push_back(var.name + "_" + attr.name);
      }
      column_names_.push_back(var.name + "_Timestamp");
    }
  } else {
    for (const auto& item : items) {
      column_names_.push_back(item.alias.empty() ? item.expr->ToString()
                                                 : item.alias);
      std::vector<const AggregateExpr*> aggs;
      CollectAggregates(*item.expr, &aggs);
      for (const auto* node : aggs) {
        AggregateState state;
        state.node = node;
        aggregates_.push_back(state);
      }
    }
  }
}

Result<Value> Transformation::Fold(AggregateState* state, const EvalContext& ctx) {
  const AggregateExpr& node = *state->node;
  Value v;
  if (node.arg() != nullptr) {
    auto result = node.arg()->Eval(ctx);
    if (!result.ok()) return result.status();
    v = std::move(result).value();
  }
  switch (node.agg()) {
    case AggregateKind::kCount:
      // COUNT(*) counts matches; COUNT(e) counts non-NULL values.
      if (node.arg() == nullptr || !v.is_null()) ++state->count;
      return Value(state->count);
    case AggregateKind::kSum:
    case AggregateKind::kAvg: {
      if (!v.is_null()) {
        auto num = v.ToNumeric();
        if (!num.ok()) return num.status();
        state->sum += num.value();
        if (v.type() == ValueType::kInt) {
          state->int_sum += v.AsInt();
        } else {
          state->all_int = false;
        }
        ++state->count;
      }
      if (node.agg() == AggregateKind::kSum) {
        if (state->count == 0) return Value();
        return state->all_int ? Value(state->int_sum) : Value(state->sum);
      }
      if (state->count == 0) return Value();
      return Value(state->sum / static_cast<double>(state->count));
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      if (!v.is_null()) {
        Value& best =
            node.agg() == AggregateKind::kMin ? state->min : state->max;
        if (best.is_null()) {
          best = v;
        } else {
          auto cmp = v.Compare(best);
          if (!cmp.ok()) return cmp.status();
          bool better = node.agg() == AggregateKind::kMin ? cmp.value() < 0
                                                          : cmp.value() > 0;
          if (better) best = v;
        }
      }
      return node.agg() == AggregateKind::kMin ? state->min : state->max;
    }
  }
  return Status::Internal("unhandled aggregate kind");
}

Result<Value> Transformation::EvalItem(const Expr& expr, const EvalContext& ctx) {
  if (!expr.ContainsAggregate()) return expr.Eval(ctx);
  switch (expr.kind()) {
    case ExprKind::kAggregate: {
      for (auto& state : aggregates_) {
        if (state.node == &expr) return Fold(&state, ctx);
      }
      return Status::Internal("aggregate state not found for " + expr.ToString());
    }
    case ExprKind::kBinary: {
      const auto& node = static_cast<const BinaryExpr&>(expr);
      auto lhs = EvalItem(*node.left(), ctx);
      if (!lhs.ok()) return lhs.status();
      auto rhs = EvalItem(*node.right(), ctx);
      if (!rhs.ok()) return rhs.status();
      // Rebuild a transient literal expression pair and reuse the binary
      // evaluation path via a temporary tree would allocate; instead apply
      // the operation through a scratch BinaryExpr on literals.
      BinaryExpr scratch(node.op(),
                         std::make_shared<LiteralExpr>(std::move(lhs).value()),
                         std::make_shared<LiteralExpr>(std::move(rhs).value()));
      return scratch.Eval(ctx);
    }
    case ExprKind::kUnary: {
      const auto& node = static_cast<const UnaryExpr&>(expr);
      auto operand = EvalItem(*node.operand(), ctx);
      if (!operand.ok()) return operand.status();
      UnaryExpr scratch(node.op(),
                        std::make_shared<LiteralExpr>(std::move(operand).value()));
      return scratch.Eval(ctx);
    }
    case ExprKind::kCall: {
      const auto& node = static_cast<const CallExpr&>(expr);
      std::vector<Value> args;
      args.reserve(node.args().size());
      for (const auto& arg : node.args()) {
        auto v = EvalItem(*arg, ctx);
        if (!v.ok()) return v.status();
        args.push_back(std::move(v).value());
      }
      if (ctx.functions == nullptr) {
        return Status::InvalidArgument("no function registry for " + node.name());
      }
      return ctx.functions->Invoke(node.name(), args);
    }
    default:
      return expr.Eval(ctx);
  }
}

void Transformation::SaveState(StateWriter* w) const {
  w->Line("TS") << stats_.records_emitted << '|' << stats_.eval_errors;
  w->EndLine();
  w->Line("TC") << matches_in() << '|' << matches_out();
  w->EndLine();
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    const AggregateState& state = aggregates_[i];
    // The double accumulator rides as a Value: EncodeValue writes 17
    // significant digits, so SUM/AVG continue bit-exact after recovery.
    w->Line("TA") << i << '|' << state.count << '|'
                  << EncodeValue(Value(state.sum)) << '|'
                  << (state.all_int ? 1 : 0) << '|' << state.int_sum << '|'
                  << EncodeValue(state.min) << '|' << EncodeValue(state.max);
    w->EndLine();
  }
}

Status Transformation::LoadState(StateReader* r) {
  while (r->Next()) {
    const std::string& tag = r->tag();
    if (tag == "--") return Status::Ok();
    if (tag == "TS") {
      SASE_ASSIGN_OR_RETURN(stats_.records_emitted, r->U64(0));
      SASE_ASSIGN_OR_RETURN(stats_.eval_errors, r->U64(1));
    } else if (tag == "TC") {
      SASE_ASSIGN_OR_RETURN(uint64_t in, r->U64(0));
      SASE_ASSIGN_OR_RETURN(uint64_t out, r->U64(1));
      RestoreCounters(in, out);
    } else if (tag == "TA") {
      if (r->field_count() != 7) return r->Malformed("aggregate state");
      SASE_ASSIGN_OR_RETURN(uint64_t index, r->U64(0));
      if (index >= aggregates_.size()) {
        return r->Malformed("aggregate index (RETURN shape)");
      }
      AggregateState& state = aggregates_[index];
      SASE_ASSIGN_OR_RETURN(state.count, r->I64(1));
      SASE_ASSIGN_OR_RETURN(Value sum, r->Val(2));
      if (sum.type() != ValueType::kDouble) {
        return r->Malformed("aggregate sum");
      }
      state.sum = sum.AsDouble();
      SASE_ASSIGN_OR_RETURN(uint64_t all_int, r->U64(3));
      state.all_int = all_int != 0;
      SASE_ASSIGN_OR_RETURN(state.int_sum, r->I64(4));
      SASE_ASSIGN_OR_RETURN(state.min, r->Val(5));
      SASE_ASSIGN_OR_RETURN(state.max, r->Val(6));
    } else {
      return r->Malformed("Transformation tag");
    }
  }
  if (!r->status().ok()) return r->status();
  return Status::ParseError("Transformation state truncated (no divider)");
}

void Transformation::OnMatch(const Match& match) {
  CountIn();
  OutputRecord record;
  record.stream = query_->parsed.output_name.empty() ? "out"
                                                     : query_->parsed.output_name;
  record.timestamp = match.last_ts;
  record.names = column_names_;

  // Serial-order stamp (see match.h): the completing constituent is the
  // last positive variable's binding — the event whose arrival produced
  // this match in the sequence scan.
  record.emit_ts = match.last_ts;
  if (!query_->positive_slots.empty()) {
    const EventPtr& completing =
        match.bindings[static_cast<size_t>(query_->positive_slots.back())];
    if (completing != nullptr) {
      record.emit_ts = completing->timestamp();
      record.emit_seq = completing->seq();
    }
  }
  record.deferred = tail_negation_;
  if (tail_negation_) record.release_ts = match.first_ts + query_->window_ticks;

  EvalContext ctx{&match.bindings, functions_};
  const auto& items = query_->parsed.return_items;
  record.values.reserve(column_names_.size());
  if (items.empty()) {
    for (int slot : query_->positive_slots) {
      const EventPtr& event = match.bindings[static_cast<size_t>(slot)];
      const EventSchema& schema =
          catalog_->schema(query_->vars[static_cast<size_t>(slot)].type_id);
      for (size_t i = 0; i < schema.attribute_count(); ++i) {
        record.values.push_back(event->attribute(static_cast<AttrIndex>(i)));
      }
      record.values.push_back(Value(event->timestamp()));
    }
  } else {
    for (const auto& item : items) {
      auto value = EvalItem(*item.expr, ctx);
      if (!value.ok()) {
        if (stats_.eval_errors == 0) {
          SASE_LOG_WARN << "RETURN evaluation error: "
                        << value.status().ToString();
        }
        ++stats_.eval_errors;
        record.values.push_back(Value());
        continue;
      }
      record.values.push_back(std::move(value).value());
    }
  }

  ++stats_.records_emitted;
  Emit(match);  // keep the match flowing for operators stacked above (none
                // in standard plans) and for the out-count statistics
  if (callback_) callback_(record);
}

}  // namespace sase
