#ifndef SASE_ENGINE_TRANSFORMATION_H_
#define SASE_ENGINE_TRANSFORMATION_H_

#include <string>
#include <vector>

#include "core/catalog.h"
#include "engine/function_registry.h"
#include "engine/operator.h"
#include "engine/state_codec.h"
#include "query/analyzer.h"

namespace sase {

/// Terminal operator implementing the RETURN clause: "transforms the stream
/// of composite events for final output. It can select a subset of
/// attributes and compute aggregate values like the SELECT clause of SQL.
/// It can also name the output stream ... It can further invoke database
/// operations for retrieval and update."
///
/// - Plain expressions are evaluated per match (this is where the built-in
///   `_retrieveLocation` / `_updateLocation` database functions fire).
/// - Aggregates (COUNT/SUM/AVG/MIN/MAX) are *running* aggregates over the
///   stream of composite events: each incoming match updates the state and
///   the emitted record carries the aggregate's current value.
/// - With an empty RETURN clause the default projection emits every
///   attribute of every positive variable as `var_Attr` columns plus the
///   per-variable timestamps.
class Transformation : public Operator {
 public:
  struct Stats {
    uint64_t records_emitted = 0;
    uint64_t eval_errors = 0;
  };

  /// `query` must outlive the operator (the plan owns both).
  Transformation(const AnalyzedQuery* query, const Catalog* catalog,
                 const FunctionRegistry* functions, OutputCallback callback);

  const char* name() const override { return "Transformation"; }
  void OnMatch(const Match& match) override;

  const Stats& stats() const { return stats_; }

  /// Running-aggregate accumulators held (one per AggregateExpr node in the
  /// RETURN clause) — the operator's state-size gauge. Constant per query
  /// text, but nonzero only for aggregating queries, so the fleet-wide sum
  /// tells an operator how much fold state recovery must rebuild.
  size_t accumulator_count() const { return aggregates_.size(); }

  /// Checkpoint state walker (snapshot v2): writes the running-aggregate
  /// fold accumulators (COUNT/SUM/AVG/MIN/MAX state, by collection index —
  /// the same query text collects the same AggregateExpr pre-order) plus
  /// counters. LoadState consumes lines until the "--" block divider.
  void SaveState(StateWriter* w) const;
  Status LoadState(StateReader* r);

 private:
  struct AggregateState {
    const AggregateExpr* node = nullptr;
    int64_t count = 0;
    double sum = 0;
    bool all_int = true;
    int64_t int_sum = 0;
    Value min, max;
  };

  /// Updates `state` with this match's value and returns the running
  /// aggregate result.
  Result<Value> Fold(AggregateState* state, const EvalContext& ctx);

  /// Evaluates an item expression, dispatching aggregate subtrees to their
  /// folded state. Aggregates may appear nested in arithmetic
  /// (e.g. SUM(x.Qty) / COUNT(*)), so evaluation walks the tree.
  Result<Value> EvalItem(const Expr& expr, const EvalContext& ctx);

  const AnalyzedQuery* query_;
  const Catalog* catalog_;
  const FunctionRegistry* functions_;
  OutputCallback callback_;
  bool tail_negation_ = false;  // emission deferred past first_ts + window

  std::vector<std::string> column_names_;
  std::vector<AggregateState> aggregates_;  // one per AggregateExpr node
  Stats stats_;
};

}  // namespace sase

#endif  // SASE_ENGINE_TRANSFORMATION_H_
