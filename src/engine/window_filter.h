#ifndef SASE_ENGINE_WINDOW_FILTER_H_
#define SASE_ENGINE_WINDOW_FILTER_H_

#include "engine/operator.h"
#include "util/time_util.h"

namespace sase {

/// Enforces the WITHIN clause over composite events:
/// `last.ts - first.ts <= W`.
///
/// In the default plan the window is pushed into SequenceScan and this
/// operator sees only conforming matches (it still verifies — the check is
/// two comparisons). With `PlanOptions::push_window = false` it is the sole
/// enforcement point, which the window-scaling ablation (bench E1) uses to
/// measure what the pushdown buys.
class WindowFilter : public Operator {
 public:
  explicit WindowFilter(Ticks window) : window_(window) {}

  const char* name() const override { return "WindowFilter"; }

  void OnMatch(const Match& match) override {
    CountIn();
    if (window_ >= 0 && match.last_ts - match.first_ts > window_) return;
    Emit(match);
  }

  Ticks window() const { return window_; }

 private:
  Ticks window_;
};

}  // namespace sase

#endif  // SASE_ENGINE_WINDOW_FILTER_H_
