#ifndef SASE_ENGINE_WINDOW_FILTER_H_
#define SASE_ENGINE_WINDOW_FILTER_H_

#include "engine/operator.h"
#include "engine/state_codec.h"
#include "util/time_util.h"

namespace sase {

/// Enforces the WITHIN clause over composite events:
/// `last.ts - first.ts <= W`.
///
/// In the default plan the window is pushed into SequenceScan and this
/// operator sees only conforming matches (it still verifies — the check is
/// two comparisons). With `PlanOptions::push_window = false` it is the sole
/// enforcement point, which the window-scaling ablation (bench E1) uses to
/// measure what the pushdown buys.
class WindowFilter : public Operator {
 public:
  explicit WindowFilter(Ticks window) : window_(window) {}

  const char* name() const override { return "WindowFilter"; }

  void OnMatch(const Match& match) override {
    CountIn();
    if (window_ >= 0 && match.last_ts - match.first_ts > window_) return;
    Emit(match);
  }

  Ticks window() const { return window_; }

  /// Checkpoint state walker (snapshot v2): stateless apart from counters.
  /// LoadState consumes until the "--" divider.
  void SaveState(StateWriter* w) const {
    w->Line("WC") << matches_in() << '|' << matches_out();
    w->EndLine();
  }
  Status LoadState(StateReader* r) {
    while (r->Next()) {
      if (r->tag() == "--") return Status::Ok();
      if (r->tag() != "WC") return r->Malformed("WindowFilter tag");
      SASE_ASSIGN_OR_RETURN(uint64_t in, r->U64(0));
      SASE_ASSIGN_OR_RETURN(uint64_t out, r->U64(1));
      RestoreCounters(in, out);
    }
    if (!r->status().ok()) return r->status();
    return Status::ParseError("WindowFilter state truncated (no divider)");
  }

 private:
  Ticks window_;
};

}  // namespace sase

#endif  // SASE_ENGINE_WINDOW_FILTER_H_
