#include "nfa/nfa.h"

#include <sstream>

namespace sase {

const std::vector<int> Nfa::kNoStates;

Nfa Nfa::Compile(const AnalyzedQuery& query, bool push_edge_filters,
                 bool use_partitioning) {
  Nfa nfa;
  const size_t positives = query.positive_slots.size();
  nfa.edges_.reserve(positives);
  for (size_t i = 0; i < positives; ++i) {
    NfaEdge edge;
    edge.slot = query.positive_slots[i];
    edge.type = query.vars[static_cast<size_t>(edge.slot)].type_id;
    if (push_edge_filters) {
      edge.filters = query.edge_filters[i];
    }
    if (use_partitioning && query.partitioned()) {
      edge.partition_attr = query.partition_attrs[i];
    }
    nfa.edges_.push_back(std::move(edge));
  }
  nfa.partitioned_ = use_partitioning && query.partitioned();

  for (size_t i = 0; i < nfa.edges_.size(); ++i) {
    EventTypeId type = nfa.edges_[i].type;
    if (static_cast<size_t>(type) >= nfa.states_by_type_.size()) {
      nfa.states_by_type_.resize(static_cast<size_t>(type) + 1);
    }
    nfa.states_by_type_[static_cast<size_t>(type)].push_back(static_cast<int>(i));
  }
  return nfa;
}

const std::vector<int>& Nfa::StatesForType(EventTypeId type) const {
  if (type < 0 || static_cast<size_t>(type) >= states_by_type_.size()) {
    return kNoStates;
  }
  return states_by_type_[static_cast<size_t>(type)];
}

std::string Nfa::ToString(const Catalog& catalog) const {
  std::ostringstream out;
  for (size_t i = 0; i < edges_.size(); ++i) {
    const NfaEdge& edge = edges_[i];
    out << "S" << i << " --" << catalog.schema(edge.type).name();
    if (edge.partition_attr != kInvalidAttr) {
      out << "[key=" << catalog.schema(edge.type).attribute_name(edge.partition_attr)
          << "]";
    }
    for (const auto& filter : edge.filters) {
      out << " if " << filter->ToString();
    }
    out << "--> S" << i + 1 << "\n";
  }
  out << "accepting: S" << edges_.size();
  return out.str();
}

std::string Nfa::Signature() const {
  std::ostringstream out;
  out << (partitioned_ ? "P" : "U");
  for (const NfaEdge& edge : edges_) {
    out << ";" << edge.type << ":" << edge.slot << ":" << edge.partition_attr
        << ":" << edge.filters.size();
  }
  return out.str();
}

}  // namespace sase
