#ifndef SASE_NFA_NFA_H_
#define SASE_NFA_NFA_H_

#include <string>
#include <vector>

#include "core/event.h"
#include "query/analyzer.h"

namespace sase {

/// One NFA transition: state i --(type, filters)--> state i+1.
///
/// `slot` is the binding slot of the pattern variable this edge binds;
/// `filters` are the single-variable predicates pushed onto the edge (empty
/// when predicate pushdown is disabled).
struct NfaEdge {
  EventTypeId type = kInvalidEventType;
  int slot = -1;
  AttrIndex partition_attr = kInvalidAttr;  // PAIS key attr; kInvalidAttr = none
  std::vector<ExprPtr> filters;
};

/// The NFA compiled from the positive components of a SEQ pattern.
///
/// The paper's sequence operators are "based on a Non-deterministic Finite
/// Automata based model which can read query-specific event sequences
/// efficiently from continuously arriving events". The structure here is a
/// left-deep chain: state 0 is the start, state `edge_count()` is
/// accepting, and edge i consumes the i-th positive pattern component.
/// Non-determinism arises because a single event may simultaneously extend
/// many partial runs; the runtime tracks those runs in Active Instance
/// Stacks (see engine/sequence_scan.h) rather than cloning automata.
class Nfa {
 public:
  /// Compiles the positive components of `query`. When `push_edge_filters`
  /// is false, edges carry type constraints only. When `use_partitioning`
  /// is false, edges carry no partition attribute.
  static Nfa Compile(const AnalyzedQuery& query, bool push_edge_filters,
                     bool use_partitioning);

  size_t edge_count() const { return edges_.size(); }
  size_t state_count() const { return edges_.size() + 1; }
  const NfaEdge& edge(size_t i) const { return edges_[i]; }
  bool partitioned() const { return partitioned_; }

  /// States whose outgoing edge consumes events of `type` (an event can
  /// feed several edges when a pattern repeats a type, as in Q2's
  /// SEQ(SHELF_READING x, SHELF_READING y)).
  const std::vector<int>& StatesForType(EventTypeId type) const;

  /// Graphviz-ish rendering for explain output and tests.
  std::string ToString(const Catalog& catalog) const;

  /// Compact structural fingerprint: edge types, binding slots, partition
  /// attributes, per-edge filter counts and the partitioned flag. Two plans
  /// compiled from the same analyzed query under the same options share a
  /// signature. The checkpoint subsystem stamps serialized operator state
  /// with it and refuses to restore a section into a differently shaped
  /// automaton (the stack layout is positional, so a mismatch would corrupt
  /// silently instead of failing loudly).
  std::string Signature() const;

 private:
  std::vector<NfaEdge> edges_;
  bool partitioned_ = false;
  // type id -> list of source states; dense vector indexed by type.
  std::vector<std::vector<int>> states_by_type_;
  static const std::vector<int> kNoStates;
};

}  // namespace sase

#endif  // SASE_NFA_NFA_H_
