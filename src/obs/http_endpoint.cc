#include "obs/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sase {
namespace obs {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

/// Writes all of `data` to `fd`, tolerating short writes and retrying
/// interrupted ones. MSG_NOSIGNAL: a peer that disconnects mid-response
/// (curl timeout, aborted scrape) must surface as EPIPE here, not as a
/// process-killing SIGPIPE on the serve thread. Hard errors abandon the
/// response — the peer gets a truncated reply, which a scraper treats as a
/// failed scrape; there is nothing better to do on a dead socket.
void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

}  // namespace

void HttpEndpoint::Handle(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

Status HttpEndpoint::Start(int port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("http endpoint already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal("bind(127.0.0.1:" + std::to_string(port) +
                            ") failed");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&HttpEndpoint::AcceptLoop, this);
  return Status::Ok();
}

void HttpEndpoint::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() unblocks the accept(2) the thread is parked in; close()
  // releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
}

void HttpEndpoint::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      continue;  // EINTR and transient accept errors
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpEndpoint::ServeConnection(int fd) {
  // Read until the header terminator; 8 KiB is generous for "GET /path".
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  size_t line_end = request.find("\r\n");
  std::string line = request.substr(0, line_end);  // "GET /path HTTP/1.1"
  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  Response response;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = Response{405, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    if (method != "GET" && method != "HEAD") {
      response = Response{405, "text/plain; charset=utf-8",
                          "only GET is served here\n"};
    } else {
      auto it = handlers_.find(path);
      if (it == handlers_.end()) {
        response = Response{404, "text/plain; charset=utf-8",
                            "unknown path; try /metrics /healthz /statusz\n"};
      } else {
        response = it->second();
      }
    }
    if (method == "HEAD") response.body.clear();
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) +
                    "\r\nContent-Type: " + response.content_type +
                    "\r\nContent-Length: " + std::to_string(response.body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += response.body;
  WriteAll(fd, out);
}

}  // namespace obs
}  // namespace sase
