#ifndef SASE_OBS_HTTP_ENDPOINT_H_
#define SASE_OBS_HTTP_ENDPOINT_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "util/status.h"

namespace sase {
namespace obs {

/// Minimal embedded HTTP/1.1 server for the observability endpoints:
/// /metrics (Prometheus text), /healthz and /statusz. Raw POSIX sockets,
/// one blocking accept thread, one request per connection
/// (`Connection: close`) — deliberately no keep-alive, no TLS, no request
/// body handling, because a scrape endpoint needs none of it. Binds to
/// loopback only: this is a node-local introspection port, not a public
/// listener; the DSCEP-style distributed milestone fronts it per node.
///
/// Handlers run on the accept thread, concurrently with the dispatcher —
/// register only thread-safe work (MetricsRegistry::RenderPrometheus is;
/// ShardedRuntime::Healthy is; anything touching dispatcher-only state must
/// hand back a cached copy under a mutex, which is how SaseSystem serves
/// /statusz).
class HttpEndpoint {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  using Handler = std::function<Response()>;

  HttpEndpoint() = default;
  ~HttpEndpoint() { Stop(); }

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Registers `handler` for exact path `path` (query strings are stripped
  /// before lookup; unknown paths get 404). Call before Start.
  void Handle(const std::string& path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral; read it back
  /// via port()) and starts the accept thread. Fails when the socket cannot
  /// be bound (port taken, no loopback) — never aborts.
  Status Start(int port);

  /// Stops accepting, closes the listen socket, joins the accept thread.
  /// Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound port (the resolved one under ephemeral binding); 0 before Start.
  int port() const { return port_; }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, Handler> handlers_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
};

}  // namespace obs
}  // namespace sase

#endif  // SASE_OBS_HTTP_ENDPOINT_H_
