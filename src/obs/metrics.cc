#include "obs/metrics.h"

#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

namespace sase {
namespace obs {
namespace {

/// Family = metric name up to the label block.
std::string FamilyOf(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Inserts a family suffix before the label block: ("m{a="1"}", "_sum") ->
/// "m_sum{a="1"}". Prometheus histograms expose their series under
/// suffixed family names.
std::string WithSuffix(const std::string& name, const std::string& suffix) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

}  // namespace

size_t Counter::Slot() {
  static thread_local const size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
  return slot;
}

void HistogramMetric::Record(int64_t value) {
  static thread_local const size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
  if (value < 0) value = 0;
  Cell& cell = cells_[slot];
  cell.buckets[Histogram::BucketIndex(value)].fetch_add(
      1, std::memory_order_relaxed);
  uint64_t seen =
      cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(static_cast<uint64_t>(value), std::memory_order_relaxed);
  if (seen == 0) {
    // First sample in this cell seeds both extrema; racing recorders on the
    // same cell still converge through the CAS loops below.
    cell.min.store(value, std::memory_order_relaxed);
    cell.max.store(value, std::memory_order_relaxed);
  }
  int64_t cur = cell.min.load(std::memory_order_relaxed);
  while (value < cur &&
         !cell.min.compare_exchange_weak(cur, value,
                                         std::memory_order_relaxed)) {
  }
  cur = cell.max.load(std::memory_order_relaxed);
  while (value > cur &&
         !cell.max.compare_exchange_weak(cur, value,
                                         std::memory_order_relaxed)) {
  }
}

Histogram HistogramMetric::Aggregate() const {
  Histogram total;
  uint64_t raw[Histogram::kNumBuckets];
  for (const Cell& cell : cells_) {
    uint64_t count = cell.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      raw[i] = cell.buckets[i].load(std::memory_order_relaxed);
    }
    total.MergeBuckets(
        raw, Histogram::kNumBuckets, count,
        cell.min.load(std::memory_order_relaxed),
        cell.max.load(std::memory_order_relaxed),
        static_cast<double>(cell.sum.load(std::memory_order_relaxed)));
  }
  return total;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>();
  return slot.get();
}

std::string SpliceLabel(const std::string& name, const std::string& label) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return name + "{" + label + "}";
  std::string out = name;
  out.insert(out.size() - 1, "," + label);
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;

  // The maps are name-ordered, so all samples of one family are contiguous
  // and the `# TYPE` line can be emitted on each family switch.
  std::string family;
  for (const auto& [name, counter] : counters_) {
    if (FamilyOf(name) != family) {
      family = FamilyOf(name);
      out << "# TYPE " << family << " counter\n";
    }
    out << name << " " << counter->Value() << "\n";
  }
  family.clear();
  for (const auto& [name, gauge] : gauges_) {
    if (FamilyOf(name) != family) {
      family = FamilyOf(name);
      out << "# TYPE " << family << " gauge\n";
    }
    out << name << " " << gauge->Value() << "\n";
  }
  family.clear();
  for (const auto& [name, metric] : histograms_) {
    if (FamilyOf(name) != family) {
      family = FamilyOf(name);
      out << "# TYPE " << family << " histogram\n";
    }
    Histogram h = metric->Aggregate();
    const std::vector<uint64_t>& buckets = h.buckets();
    size_t last = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] > 0) last = i;
    }
    const std::string bucket_name = WithSuffix(name, "_bucket");
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= last && h.count() > 0; ++i) {
      cumulative += buckets[i];
      out << SpliceLabel(bucket_name,
                         "le=\"" +
                             std::to_string(Histogram::BucketUpperBound(i)) +
                             "\"")
          << " " << cumulative << "\n";
    }
    out << SpliceLabel(bucket_name, "le=\"+Inf\"") << " " << h.count() << "\n";
    out << WithSuffix(name, "_sum") << " "
        << static_cast<uint64_t>(h.mean() * static_cast<double>(h.count()))
        << "\n";
    out << WithSuffix(name, "_count") << " " << h.count() << "\n";
  }
  return out.str();
}

Status MetricsRegistry::WritePrometheus(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open metrics file " + path);
  }
  out << RenderPrometheus();
  out.close();
  if (!out) return Status::Internal("cannot write metrics file " + path);
  return Status::Ok();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, metric] : histograms_) names.push_back(name);
  return names;
}

}  // namespace obs
}  // namespace sase
