#ifndef SASE_OBS_METRICS_H_
#define SASE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/status.h"

namespace sase {
namespace obs {

/// Observability knobs, carried on SystemConfig (and by pointer on
/// RuntimeConfig). See docs/observability.md for the full catalog and
/// walkthrough.
struct ObsConfig {
  /// Construct a MetricsRegistry and wire the hot-path instrumentation
  /// (per-query operator timing, ring-wait and dispatch->merge latency,
  /// journal append/fsync latency). Off = the engines run the exact
  /// pre-instrumentation code path (a null-pointer branch per batch).
  bool metrics_enabled = true;
  /// Event-lifecycle tracing: sample one ingested event in N (0 = off).
  /// Sampled events accumulate spans across partition -> ring -> operator ->
  /// merge -> emit, dumped as Chrome trace-event JSON (Perfetto-loadable).
  uint64_t trace_sample_every = 0;
  /// When non-empty, SaseSystem dumps the collected trace here at
  /// destruction (console `.trace dump <path>` dumps on demand either way).
  std::string trace_path;
  /// Embedded HTTP endpoint (src/obs/http_endpoint.h) serving /metrics,
  /// /healthz and /statusz on loopback. 0 (default) = no endpoint; -1 = an
  /// ephemeral kernel-assigned port (tests; read it back via
  /// SaseSystem::http_port()); > 0 = that fixed port. Requires
  /// metrics_enabled.
  int http_port = 0;
  /// Slow-query log: an instrumented per-event operator pass taking at
  /// least this long bumps `sase_query_slow_events_total` and lands in a
  /// per-engine ring of the last `slow_query_log_size` offender samples
  /// (HTTP /statusz, console `.slowlog`). 0 disables. Only observed with
  /// metrics_enabled (timing happens on the instrumented path).
  uint64_t slow_query_threshold_ns = 1000000;
  size_t slow_query_log_size = 32;
  /// Space-saving sketch slots per stream for hot-key accounting
  /// (`sase_partition_hotkey_*`); 0 disables. Memory is O(slots) per
  /// stream; the count overestimate shrinks as slots grow.
  size_t hotkey_sketch_size = 16;
};

/// Monotonic counter. The hot path (`Add`) is wait-free: each recording
/// thread increments one of a small set of cache-line-padded relaxed
/// atomics, picked by hashed thread id, so shard workers never contend on a
/// shared line. `Set` overwrites the absolute base value — used by scrape
/// code that mirrors an externally-tracked truth counter (engine stats,
/// merger counts) into the registry; such counters are never Add()ed.
class Counter {
 public:
  static constexpr size_t kStripes = 8;

  void Add(uint64_t n = 1) {
    cells_[Slot()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sets the scrape-mirrored base; Value() = base + striped increments.
  void Set(uint64_t v) { base_.store(v, std::memory_order_relaxed); }

  uint64_t Value() const {
    uint64_t total = base_.load(std::memory_order_relaxed);
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  static size_t Slot();

  Cell cells_[kStripes];
  std::atomic<uint64_t> base_{0};
};

/// Point-in-time value (queue depth, buffer occupancy, shard count).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed latency histogram with a wait-free `Record`: per-thread
/// striped cells of relaxed atomic bucket counts (the same bucket
/// boundaries as sase::Histogram), aggregated into a Histogram only at
/// scrape time. min/max are maintained with relaxed CAS loops — cheap
/// because a freshly-seen extremum is rare after warmup.
class HistogramMetric {
 public:
  static constexpr size_t kStripes = 8;

  void Record(int64_t value);

  /// Folds every cell into one summarizable histogram (scrape time).
  Histogram Aggregate() const;

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> buckets[Histogram::kNumBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<int64_t> min{0};
    std::atomic<int64_t> max{0};
  };

  Cell cells_[kStripes];
};

/// Name -> metric registry with Prometheus text rendering. Metric names
/// follow Prometheus conventions and may carry inline labels:
///
///   sase_runtime_events_dispatched_total
///   sase_shard_events_total{shard="3"}
///   sase_query_op_latency_ns{host="runtime",query="7"}
///
/// The family (name up to '{') groups the `# TYPE` line. Get* returns a
/// stable pointer — instrumented code resolves its handles once (behind a
/// mutex) and records through them wait-free forever after.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  HistogramMetric* GetHistogram(const std::string& name);

  /// Prometheus text exposition format: `# TYPE` per family, one sample
  /// line per counter/gauge, cumulative `_bucket{le=...}` + `_sum` +
  /// `_count` per histogram. Deterministic order (sorted by name).
  std::string RenderPrometheus() const;

  /// RenderPrometheus straight to a file.
  Status WritePrometheus(const std::string& path) const;

  /// Registered metric names (with labels), for tests and the doc-catalog
  /// check.
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// Splices an extra label into a possibly-already-labeled metric name:
/// ("m", le="5") -> m{le="5"}; ("m{a="1"}", le="5") -> m{a="1",le="5"}.
std::string SpliceLabel(const std::string& name, const std::string& label);

}  // namespace obs
}  // namespace sase

#endif  // SASE_OBS_METRICS_H_
