#include "obs/report.h"

namespace sase {
namespace obs {

std::string ReportLine::Str() const {
  std::string out;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += " ";
    out += parts_[i];
  }
  out += "\n";
  return out;
}

}  // namespace obs
}  // namespace sase
