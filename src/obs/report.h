#ifndef SASE_OBS_REPORT_H_
#define SASE_OBS_REPORT_H_

#include <sstream>
#include <string>
#include <vector>

namespace sase {
namespace obs {

/// Renders one `key=value` token. The stats reports (engine, runtime,
/// checkpoint) and their tests agree on this exact shape; keep every report
/// line going through here (or ReportLine below) so the format lives once.
/// The machine-readable twin of these reports is the MetricsRegistry —
/// ScrapeMetrics() mirrors the same counters and RenderPrometheus() exports
/// them; the `key=value` lines are the human-readable rendering only.
template <typename T>
std::string Kv(const std::string& key, const T& value) {
  std::ostringstream out;
  out << key << "=" << value;
  return out.str();
}

/// Builds one space-joined report line: a leading head token ("runtime",
/// "checkpoint:", "#7"), then `key=value` pairs and free-text tokens in call
/// order, terminated by '\n'.
///
///   ReportLine("resizes:").Kv("total", 3).Kv("up", 2).Kv("down", 1).Str()
///     -> "resizes: total=3 up=2 down=1\n"
class ReportLine {
 public:
  ReportLine() = default;
  explicit ReportLine(std::string head) { parts_.push_back(std::move(head)); }

  template <typename T>
  ReportLine& Kv(const std::string& key, const T& value) {
    parts_.push_back(obs::Kv(key, value));
    return *this;
  }

  /// Appends a raw token (parenthesized groups, trailing units).
  ReportLine& Text(std::string raw) {
    parts_.push_back(std::move(raw));
    return *this;
  }

  /// Space-joined tokens plus a trailing newline.
  std::string Str() const;

 private:
  std::vector<std::string> parts_;
};

}  // namespace obs
}  // namespace sase

#endif  // SASE_OBS_REPORT_H_
