#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>

namespace sase {
namespace obs {

uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TraceCollector::AddSpan(uint64_t trace_id, const char* name,
                             std::string lane, uint64_t start_ns,
                             uint64_t end_ns, uint64_t global) {
  if (trace_id == 0) return;
  TraceSpan span;
  span.trace_id = trace_id;
  span.name = name;
  span.lane = std::move(lane);
  span.start_ns = start_ns;
  span.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  span.global = global;
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
}

size_t TraceCollector::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<TraceSpan> TraceCollector::Spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

std::string TraceCollector::ToJson() const {
  std::vector<TraceSpan> spans = Spans();
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return a.start_ns < b.start_ns;
            });
  // Normalize to the earliest span so the dump starts near t=0 (the raw
  // timestamps are MonotonicNs — arbitrary-epoch monotonic nanoseconds).
  const uint64_t origin = spans.empty() ? 0 : spans.front().start_ns;

  // Chrome trace tids must be integers; assign one per lane and name it
  // with a thread_name metadata event so Perfetto shows the lane labels.
  std::map<std::string, int> lanes;
  for (const TraceSpan& span : spans) {
    lanes.emplace(span.lane, static_cast<int>(lanes.size()) + 1);
  }

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [lane, tid] : lanes) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << lane << "\"}}";
  }
  out.setf(std::ios::fixed);
  out.precision(3);
  for (const TraceSpan& span : spans) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << span.name << "\",\"cat\":\"sase\",\"ph\":\"X\""
        << ",\"ts\":" << static_cast<double>(span.start_ns - origin) / 1000.0
        << ",\"dur\":" << static_cast<double>(span.dur_ns) / 1000.0
        << ",\"pid\":1,\"tid\":" << lanes[span.lane]
        << ",\"args\":{\"trace\":" << span.trace_id;
    if (span.global > 0) out << ",\"global\":" << span.global;
    out << "}}";
  }
  out << "]}";
  return out.str();
}

Status TraceCollector::DumpJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open trace file " + path);
  }
  out << ToJson();
  out.close();
  if (!out) return Status::Internal("cannot write trace file " + path);
  return Status::Ok();
}

}  // namespace obs
}  // namespace sase
