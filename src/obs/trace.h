#ifndef SASE_OBS_TRACE_H_
#define SASE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace sase {
namespace obs {

/// One completed span of a sampled event's lifecycle. `lane` is the
/// logical thread the span ran on ("dispatcher", "shard-3", "merge"...);
/// the JSON dump maps lanes to Chrome trace tids.
struct TraceSpan {
  uint64_t trace_id = 0;
  const char* name = "";  // static strings only ("ingest", "operator"...)
  std::string lane;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  /// Global dispatch index of the traced event (0 = not applicable).
  uint64_t global = 0;
};

/// The shared observability clock: monotonic nanoseconds. Every span
/// endpoint and latency sample (ring wait, journal append, ...) reads this
/// one clock, so timestamps from different threads and layers compare.
uint64_t MonotonicNs();

/// Sampled event-lifecycle tracer. The ingest point calls MaybeSample()
/// once per published event; one in `sample_every` events gets a fresh
/// trace id, which instrumentation sites propagate (the dispatcher's
/// "current" slot for synchronous bus fan-out, EventBatch::traced across
/// the ring) and stamp spans against from any thread. Disabled
/// (sample_every == 0) the only cost at the ingest point is one relaxed
/// load; every other site is behind the same check.
///
/// The collected spans dump as Chrome trace-event JSON ("ph":"X" complete
/// events, microsecond timestamps), loadable in Perfetto / chrome://tracing.
class TraceCollector {
 public:
  TraceCollector() = default;

  /// Sets the sampling rate: one ingested event in `n` is traced; 0 turns
  /// tracing off. Safe to flip mid-stream (console `.trace on/off`).
  void SetSampling(uint64_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  bool enabled() const {
    return sample_every_.load(std::memory_order_relaxed) > 0;
  }
  uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Ingest-point sampling decision (single ingest thread): returns a fresh
  /// nonzero trace id for one event in `sample_every`, 0 otherwise.
  uint64_t MaybeSample() {
    uint64_t n = sample_every_.load(std::memory_order_relaxed);
    if (n == 0) return 0;
    if (++ingest_counter_ % n != 0) return 0;
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// The trace clock == MonotonicNs(); ToJson normalizes to the earliest
  /// span, so dumps always start near t=0.
  uint64_t NowNs() const { return MonotonicNs(); }

  /// Marks that an upstream ingest tap (SaseSystem's bus head) owns the
  /// sampling decision; a standalone ShardedRuntime self-samples at dispatch
  /// only while this is unset, so embedded use never double-counts.
  void SetExternalSampler(bool v) { external_sampler_ = v; }
  bool external_sampler() const { return external_sampler_; }

  /// The trace id of the event currently fanning out on the ingest thread;
  /// bus subscribers run synchronously, so a slot (not a stack) suffices.
  void SetCurrent(uint64_t id) { current_ = id; }
  uint64_t current() const { return current_; }

  /// Records one completed span (any thread).
  void AddSpan(uint64_t trace_id, const char* name, std::string lane,
               uint64_t start_ns, uint64_t end_ns, uint64_t global = 0);

  size_t span_count() const;
  std::vector<TraceSpan> Spans() const;
  void Clear();

  /// Chrome trace-event JSON of every collected span.
  std::string ToJson() const;
  Status DumpJson(const std::string& path) const;

 private:
  std::atomic<uint64_t> sample_every_{0};
  std::atomic<uint64_t> next_id_{0};
  uint64_t ingest_counter_ = 0;    // ingest thread only
  uint64_t current_ = 0;           // ingest thread only
  bool external_sampler_ = false;  // set once at wiring time

  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
};

}  // namespace obs
}  // namespace sase

#endif  // SASE_OBS_TRACE_H_
