#include "query/analyzer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "util/string_util.h"

namespace sase {
namespace {

/// Union-find over (slot, attr) pairs used to discover the equivalence
/// classes induced by `x.A = y.B`-style conjuncts.
class UnionFind {
 public:
  int Find(int x) {
    EnsureSize(x);
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[static_cast<size_t>(a)] = b;
  }

 private:
  void EnsureSize(int x) {
    while (parent_.size() <= static_cast<size_t>(x)) {
      parent_.push_back(static_cast<int>(parent_.size()));
    }
  }
  std::vector<int> parent_;
};

/// Recursively resolves every VarAttrExpr in `expr` against the variable
/// table, and rejects constructs that are invalid in the given clause.
Status ResolveExpr(const ExprPtr& expr, const Catalog& catalog,
                   const std::vector<VarInfo>& vars, bool allow_aggregates) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return Status::Ok();
    case ExprKind::kVarAttr: {
      auto* node = static_cast<VarAttrExpr*>(expr.get());
      int slot = -1;
      for (size_t i = 0; i < vars.size(); ++i) {
        if (vars[i].name == node->var()) {
          slot = static_cast<int>(i);
          break;
        }
      }
      if (slot < 0) {
        return Status::SemanticError("unknown pattern variable '" + node->var() +
                                     "' in " + node->ToString());
      }
      const EventSchema& schema = catalog.schema(vars[static_cast<size_t>(slot)].type_id);
      AttrIndex attr = schema.FindAttribute(node->attr());
      if (attr == kInvalidAttr) {
        return Status::SemanticError("event type " + schema.name() +
                                     " has no attribute '" + node->attr() + "'");
      }
      node->Resolve(slot, attr, schema.attribute_type(attr));
      return Status::Ok();
    }
    case ExprKind::kBinary: {
      auto* node = static_cast<BinaryExpr*>(expr.get());
      SASE_RETURN_IF_ERROR(ResolveExpr(node->left(), catalog, vars, allow_aggregates));
      return ResolveExpr(node->right(), catalog, vars, allow_aggregates);
    }
    case ExprKind::kUnary: {
      auto* node = static_cast<UnaryExpr*>(expr.get());
      return ResolveExpr(node->operand(), catalog, vars, allow_aggregates);
    }
    case ExprKind::kCall: {
      auto* node = static_cast<CallExpr*>(expr.get());
      for (const auto& arg : node->args()) {
        SASE_RETURN_IF_ERROR(ResolveExpr(arg, catalog, vars, allow_aggregates));
      }
      return Status::Ok();
    }
    case ExprKind::kAggregate: {
      if (!allow_aggregates) {
        return Status::SemanticError("aggregate " + expr->ToString() +
                                     " is not allowed in the WHERE clause");
      }
      auto* node = static_cast<AggregateExpr*>(expr.get());
      if (node->arg() != nullptr) {
        SASE_RETURN_IF_ERROR(ResolveExpr(node->arg(), catalog, vars,
                                         /*allow_aggregates=*/false));
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unhandled expression kind");
}

/// Best-effort static type of an expression; nullopt when unknown (e.g.
/// function calls).
std::optional<ValueType> StaticType(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value().type();
    case ExprKind::kVarAttr:
      return static_cast<const VarAttrExpr&>(expr).value_type();
    case ExprKind::kBinary: {
      const auto& node = static_cast<const BinaryExpr&>(expr);
      switch (node.op()) {
        case BinaryOp::kEq: case BinaryOp::kNeq: case BinaryOp::kLt:
        case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
        case BinaryOp::kAnd: case BinaryOp::kOr:
          return ValueType::kBool;
        default: {
          auto l = StaticType(*node.left());
          auto r = StaticType(*node.right());
          if (l == ValueType::kDouble || r == ValueType::kDouble) {
            return ValueType::kDouble;
          }
          if (l == ValueType::kString && node.op() == BinaryOp::kAdd) {
            return ValueType::kString;
          }
          if (l == ValueType::kInt && r == ValueType::kInt) return ValueType::kInt;
          return std::nullopt;
        }
      }
    }
    case ExprKind::kUnary: {
      const auto& node = static_cast<const UnaryExpr&>(expr);
      if (node.op() == UnaryOp::kNot) return ValueType::kBool;
      return StaticType(*node.operand());
    }
    case ExprKind::kCall:
      return std::nullopt;
    case ExprKind::kAggregate: {
      const auto& node = static_cast<const AggregateExpr&>(expr);
      if (node.agg() == AggregateKind::kCount) return ValueType::kInt;
      if (node.agg() == AggregateKind::kAvg) return ValueType::kDouble;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

/// Checks comparisons for statically incompatible operand types.
Status TypeCheck(const Expr& expr) {
  if (expr.kind() == ExprKind::kBinary) {
    const auto& node = static_cast<const BinaryExpr&>(expr);
    SASE_RETURN_IF_ERROR(TypeCheck(*node.left()));
    SASE_RETURN_IF_ERROR(TypeCheck(*node.right()));
    auto l = StaticType(*node.left());
    auto r = StaticType(*node.right());
    if (!l.has_value() || !r.has_value()) return Status::Ok();
    bool l_num = *l == ValueType::kInt || *l == ValueType::kDouble;
    bool r_num = *r == ValueType::kInt || *r == ValueType::kDouble;
    switch (node.op()) {
      case BinaryOp::kEq: case BinaryOp::kNeq: case BinaryOp::kLt:
      case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
        if (*l == ValueType::kNull || *r == ValueType::kNull) return Status::Ok();
        if (*l != *r && !(l_num && r_num)) {
          return Status::SemanticError("cannot compare " +
                                       std::string(ValueTypeName(*l)) + " with " +
                                       ValueTypeName(*r) + " in " + node.ToString());
        }
        return Status::Ok();
      case BinaryOp::kAnd: case BinaryOp::kOr:
        if (*l != ValueType::kBool || *r != ValueType::kBool) {
          return Status::SemanticError("logical operator expects BOOL operands in " +
                                       node.ToString());
        }
        return Status::Ok();
      default:
        if (node.op() == BinaryOp::kAdd && *l == ValueType::kString &&
            *r == ValueType::kString) {
          return Status::Ok();
        }
        if (!l_num || !r_num) {
          return Status::SemanticError("arithmetic expects numeric operands in " +
                                       node.ToString());
        }
        return Status::Ok();
    }
  }
  if (expr.kind() == ExprKind::kUnary) {
    return TypeCheck(*static_cast<const UnaryExpr&>(expr).operand());
  }
  if (expr.kind() == ExprKind::kCall) {
    for (const auto& arg : static_cast<const CallExpr&>(expr).args()) {
      SASE_RETURN_IF_ERROR(TypeCheck(*arg));
    }
  }
  if (expr.kind() == ExprKind::kAggregate) {
    const auto& node = static_cast<const AggregateExpr&>(expr);
    if (node.arg() != nullptr) return TypeCheck(*node.arg());
  }
  return Status::Ok();
}

/// True if `expr` is `a.X = b.Y` with both sides variable attributes of
/// *different* slots; fills the endpoints.
bool IsVarEquality(const Expr& expr, int* slot_a, AttrIndex* attr_a,
                   int* slot_b, AttrIndex* attr_b) {
  if (expr.kind() != ExprKind::kBinary) return false;
  const auto& node = static_cast<const BinaryExpr&>(expr);
  if (node.op() != BinaryOp::kEq) return false;
  if (node.left()->kind() != ExprKind::kVarAttr ||
      node.right()->kind() != ExprKind::kVarAttr) {
    return false;
  }
  const auto& lhs = static_cast<const VarAttrExpr&>(*node.left());
  const auto& rhs = static_cast<const VarAttrExpr&>(*node.right());
  if (lhs.slot() == rhs.slot()) return false;
  if (lhs.attr_index() == kTimestampAttr || rhs.attr_index() == kTimestampAttr) {
    return false;  // timestamps are handled by the sequence order itself
  }
  *slot_a = lhs.slot();
  *attr_a = lhs.attr_index();
  *slot_b = rhs.slot();
  *attr_b = rhs.attr_index();
  return true;
}

}  // namespace

std::string AnalyzedQuery::Explain() const {
  std::ostringstream out;
  out << "pattern:";
  for (const auto& comp : parsed.pattern) {
    out << " " << (comp.negated ? "!" : "") << comp.type_name << "(" << comp.variable
        << ")";
  }
  out << "\nwindow: ";
  if (window_ticks < 0) {
    out << "none";
  } else {
    out << window_ticks << " ticks";
  }
  out << "\npartitioned: " << (partitioned() ? "yes" : "no");
  if (partitioned()) {
    out << " [key:";
    for (size_t i = 0; i < partition_attrs.size(); ++i) {
      int slot = positive_slots[i];
      out << " " << vars[static_cast<size_t>(slot)].name << "#"
          << partition_attrs[i];
    }
    out << "]";
  }
  if (!covering_attrs.empty()) {
    out << "\ncovering attrs:";
    for (const std::string& attr : covering_attrs) out << " " << attr;
  }
  out << "\npredicates:";
  if (classification.empty()) out << " (none)";
  for (const auto& [text, cls] : classification) {
    const char* name = "";
    switch (cls) {
      case PredicateClass::kEdgeFilter: name = "edge-filter"; break;
      case PredicateClass::kNegationFilter: name = "negation-filter"; break;
      case PredicateClass::kNegationCross: name = "negation-cross"; break;
      case PredicateClass::kPartition: name = "partition"; break;
      case PredicateClass::kResidual: name = "residual"; break;
    }
    out << "\n  " << text << " -> " << name;
  }
  out << "\nnegations: " << negations.size();
  out << "\naggregates: " << (has_aggregates ? "yes" : "no");
  return out.str();
}

Result<AnalyzedQuery> Analyzer::Analyze(ParsedQuery query) const {
  AnalyzedQuery out;

  // --- Resolve pattern components against the catalog. ---
  for (auto& comp : query.pattern) {
    auto type_id = catalog_->FindType(comp.type_name);
    if (!type_id.ok()) return type_id.status();
    comp.type_id = type_id.value();
  }

  out.vars.resize(query.pattern.size());
  int positive_index = 0;
  for (size_t slot = 0; slot < query.pattern.size(); ++slot) {
    const auto& comp = query.pattern[slot];
    VarInfo& info = out.vars[slot];
    info.name = comp.variable;
    info.type_id = comp.type_id;
    info.negated = comp.negated;
    if (!comp.negated) {
      info.positive_index = positive_index++;
      out.positive_slots.push_back(static_cast<int>(slot));
    }
  }

  // --- Window. ---
  if (query.window.present) {
    if (query.window.unit.empty()) {
      out.window_ticks = query.window.count;
    } else {
      auto ticks =
          DurationToTicks(query.window.count, query.window.unit, time_config_);
      if (!ticks.ok()) return ticks.status();
      out.window_ticks = ticks.value();
    }
    if (out.window_ticks <= 0) {
      return Status::SemanticError("window must be positive");
    }
  }

  // Head/tail negation needs a window to bound the non-occurrence interval.
  for (size_t slot = 0; slot < query.pattern.size(); ++slot) {
    if (!query.pattern[slot].negated) continue;
    bool at_head = true, at_tail = true;
    for (size_t j = 0; j < slot; ++j) {
      if (!query.pattern[j].negated) at_head = false;
    }
    for (size_t j = slot + 1; j < query.pattern.size(); ++j) {
      if (!query.pattern[j].negated) at_tail = false;
    }
    if ((at_head || at_tail) && out.window_ticks < 0) {
      return Status::SemanticError(
          "negation at the pattern " + std::string(at_head ? "head" : "tail") +
          " requires a WITHIN window to bound the non-occurrence interval");
    }
  }

  // --- Resolve WHERE and RETURN expressions. ---
  if (query.where != nullptr) {
    SASE_RETURN_IF_ERROR(ResolveExpr(query.where, *catalog_, out.vars,
                                     /*allow_aggregates=*/false));
    SASE_RETURN_IF_ERROR(TypeCheck(*query.where));
    auto where_type = StaticType(*query.where);
    if (where_type.has_value() && *where_type != ValueType::kBool) {
      return Status::SemanticError("WHERE clause must be a boolean expression");
    }
  }
  for (auto& item : query.return_items) {
    SASE_RETURN_IF_ERROR(ResolveExpr(item.expr, *catalog_, out.vars,
                                     /*allow_aggregates=*/true));
    SASE_RETURN_IF_ERROR(TypeCheck(*item.expr));
    if (item.expr->ContainsAggregate()) out.has_aggregates = true;
    // RETURN may not reference negated variables: a match contains no event
    // for them.
    std::set<int> slots;
    item.expr->CollectSlots(&slots);
    for (int slot : slots) {
      if (out.vars[static_cast<size_t>(slot)].negated) {
        return Status::SemanticError(
            "RETURN item " + item.expr->ToString() +
            " references negated variable '" +
            out.vars[static_cast<size_t>(slot)].name + "'");
      }
    }
  }

  // --- Classify WHERE conjuncts. ---
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(query.where, &conjuncts);

  const size_t positive_count = out.positive_slots.size();
  out.edge_filters.assign(positive_count, {});

  // slot -> index among negations (filled lazily below).
  std::map<int, size_t> negation_of_slot;
  for (size_t slot = 0; slot < query.pattern.size(); ++slot) {
    if (!query.pattern[slot].negated) continue;
    NegationSpec spec;
    spec.slot = static_cast<int>(slot);
    spec.type_id = query.pattern[slot].type_id;
    // Find the neighbouring positive components.
    spec.prev_positive = -1;
    for (int j = static_cast<int>(slot) - 1; j >= 0; --j) {
      if (!query.pattern[static_cast<size_t>(j)].negated) {
        spec.prev_positive = out.vars[static_cast<size_t>(j)].positive_index;
        break;
      }
    }
    spec.next_positive = -1;
    for (size_t j = slot + 1; j < query.pattern.size(); ++j) {
      if (!query.pattern[j].negated) {
        spec.next_positive = out.vars[j].positive_index;
        break;
      }
    }
    negation_of_slot[static_cast<int>(slot)] = out.negations.size();
    out.negations.push_back(std::move(spec));
  }

  // Union-find over (slot, attr) nodes for partition detection. Node ids
  // are dense: slot * (max_attrs + 1) + attr (attr >= 0 only).
  size_t max_attrs = 1;
  for (const auto& comp : query.pattern) {
    max_attrs = std::max(max_attrs, catalog_->schema(comp.type_id).attribute_count());
  }
  auto node_id = [max_attrs](int slot, AttrIndex attr) {
    return slot * static_cast<int>(max_attrs + 1) + attr;
  };
  UnionFind uf;
  struct EqEdge {
    ExprPtr conjunct;
    int slot_a, slot_b;
    AttrIndex attr_a, attr_b;
  };
  std::vector<EqEdge> eq_edges;

  // First pass: classify everything except the equality conjuncts, which
  // may later be subsumed by partitioning.
  struct PendingConjunct {
    ExprPtr expr;
    PredicateClass cls;
    int target = -1;  // positive index or negation index, depending on cls
  };
  std::vector<PendingConjunct> pending;

  for (const auto& conjunct : conjuncts) {
    std::set<int> slots;
    conjunct->CollectSlots(&slots);

    int negated_count = 0;
    int negated_slot = -1;
    for (int slot : slots) {
      if (out.vars[static_cast<size_t>(slot)].negated) {
        ++negated_count;
        negated_slot = slot;
      }
    }
    if (negated_count > 1) {
      return Status::SemanticError(
          "predicate " + conjunct->ToString() +
          " references more than one negated variable; joins across "
          "non-occurrences are not supported");
    }

    int sa, sb;
    AttrIndex aa, ab;
    if (IsVarEquality(*conjunct, &sa, &aa, &sb, &ab)) {
      uf.Union(node_id(sa, aa), node_id(sb, ab));
      eq_edges.push_back({conjunct, sa, sb, aa, ab});
      continue;  // classified after partition detection
    }

    PendingConjunct p;
    p.expr = conjunct;
    if (slots.empty()) {
      p.cls = PredicateClass::kResidual;
    } else if (negated_count == 1 && slots.size() == 1) {
      p.cls = PredicateClass::kNegationFilter;
      p.target = static_cast<int>(negation_of_slot[negated_slot]);
    } else if (negated_count == 1) {
      p.cls = PredicateClass::kNegationCross;
      p.target = static_cast<int>(negation_of_slot[negated_slot]);
    } else if (slots.size() == 1) {
      p.cls = PredicateClass::kEdgeFilter;
      p.target = out.vars[static_cast<size_t>(*slots.begin())].positive_index;
    } else {
      p.cls = PredicateClass::kResidual;
    }
    pending.push_back(std::move(p));
  }

  // --- Partition detection: find an equivalence class with one attribute
  // per positive variable. ---
  // class root -> (slot -> attr)
  std::map<int, std::map<int, AttrIndex>> classes;
  for (const auto& edge : eq_edges) {
    for (const auto& [slot, attr] :
         {std::pair<int, AttrIndex>{edge.slot_a, edge.attr_a},
          std::pair<int, AttrIndex>{edge.slot_b, edge.attr_b}}) {
      int root = uf.Find(node_id(slot, attr));
      auto& members = classes[root];
      if (members.count(slot) == 0) members[slot] = attr;
    }
  }

  int partition_root = -1;
  for (const auto& [root, members] : classes) {
    bool covers_all = true;
    for (int slot : out.positive_slots) {
      if (members.count(slot) == 0) {
        covers_all = false;
        break;
      }
    }
    if (covers_all) {
      partition_root = root;
      break;
    }
  }

  // Covering attributes: an equivalence class spanning every component —
  // positive AND negated — names an attribute whose value is constant across
  // any match (and any suppressing non-occurrence), so partitioning the
  // stream by it cannot change this query's results. The shard key's class
  // qualifies when it also covers the negations; any further class is a
  // secondary sub-partition candidate for hot-key mitigation.
  for (const auto& [root, members] : classes) {
    bool covers_every_component = true;
    for (int slot : out.positive_slots) {
      if (members.count(slot) == 0) {
        covers_every_component = false;
        break;
      }
    }
    for (const NegationSpec& spec : out.negations) {
      if (members.count(spec.slot) == 0) {
        covers_every_component = false;
        break;
      }
    }
    if (!covers_every_component) continue;
    int first_slot = out.positive_slots[0];
    AttrIndex attr = members.at(first_slot);
    if (attr < 0) continue;  // the virtual timestamp is not a partition key
    const std::string& name =
        catalog_->schema(out.vars[static_cast<size_t>(first_slot)].type_id)
            .attribute_name(attr);
    // The routing layer resolves a covering attribute by NAME per event
    // type (Partitioner::SecondaryIndex), whereas the class holds per-slot
    // indices — IsVarEquality admits differently-named members (a.x = b.y)
    // and a component's schema may bind the same spelling to an unrelated
    // attribute. Publish the name only when every member slot's schema
    // resolves it back to that slot's own class member; otherwise routing
    // by it would scatter events that must co-locate for a match (or a
    // negation suppression) across shards.
    bool name_resolves_class = true;
    for (const auto& [slot, member_attr] : members) {
      const EventSchema& schema =
          catalog_->schema(out.vars[static_cast<size_t>(slot)].type_id);
      if (member_attr < 0 || schema.FindAttribute(name) != member_attr) {
        name_resolves_class = false;
        break;
      }
    }
    if (!name_resolves_class) continue;
    out.covering_attrs.push_back(name);
  }

  if (partition_root >= 0) {
    const auto& members = classes[partition_root];
    out.partition_attrs.resize(positive_count);
    for (size_t i = 0; i < positive_count; ++i) {
      out.partition_attrs[i] = members.at(out.positive_slots[i]);
    }
    // Negated variables in the same class get partitioned negation checks,
    // keyed off the first positive component's attribute.
    for (auto& spec : out.negations) {
      auto it = members.find(spec.slot);
      if (it != members.end()) {
        spec.partition_attr = it->second;
        spec.key_slot = out.positive_slots[0];
        spec.key_attr = out.partition_attrs[0];
      }
    }
  }

  // Classify the equality conjuncts now that the partition class is known.
  for (const auto& edge : eq_edges) {
    int root = uf.Find(node_id(edge.slot_a, edge.attr_a));
    bool subsumed = partition_root >= 0 && root == partition_root;
    bool involves_negated = out.vars[static_cast<size_t>(edge.slot_a)].negated ||
                            out.vars[static_cast<size_t>(edge.slot_b)].negated;
    if (subsumed) {
      out.classification.emplace_back(edge.conjunct->ToString(),
                                      PredicateClass::kPartition);
      if (involves_negated) {
        int negated_slot = out.vars[static_cast<size_t>(edge.slot_a)].negated
                               ? edge.slot_a
                               : edge.slot_b;
        out.negations[negation_of_slot[negated_slot]].subsumed_cross.push_back(
            edge.conjunct);
      } else {
        out.partition_subsumed.push_back(edge.conjunct);
      }
      continue;  // enforced by the partition key (incl. negation key check)
    }
    PendingConjunct p;
    p.expr = edge.conjunct;
    if (involves_negated) {
      int negated_slot = out.vars[static_cast<size_t>(edge.slot_a)].negated
                             ? edge.slot_a
                             : edge.slot_b;
      p.cls = PredicateClass::kNegationCross;
      p.target = static_cast<int>(negation_of_slot[negated_slot]);
    } else {
      p.cls = PredicateClass::kResidual;
    }
    pending.push_back(std::move(p));
  }

  // --- Distribute the classified conjuncts. ---
  for (auto& p : pending) {
    out.classification.emplace_back(p.expr->ToString(), p.cls);
    switch (p.cls) {
      case PredicateClass::kEdgeFilter:
        out.edge_filters[static_cast<size_t>(p.target)].push_back(p.expr);
        break;
      case PredicateClass::kNegationFilter:
        out.negations[static_cast<size_t>(p.target)].filters.push_back(p.expr);
        break;
      case PredicateClass::kNegationCross:
        out.negations[static_cast<size_t>(p.target)].cross_preds.push_back(p.expr);
        break;
      case PredicateClass::kPartition:
        break;  // not reachable: partition conjuncts classified above
      case PredicateClass::kResidual:
        out.residual_predicates.push_back(p.expr);
        break;
    }
  }

  out.parsed = std::move(query);
  return out;
}

}  // namespace sase
