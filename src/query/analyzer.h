#ifndef SASE_QUERY_ANALYZER_H_
#define SASE_QUERY_ANALYZER_H_

#include <string>
#include <vector>

#include "core/catalog.h"
#include "query/ast.h"
#include "util/time_util.h"

namespace sase {

/// Where a WHERE conjunct ended up after classification. Exposed for tests
/// and for the plan explain output.
enum class PredicateClass {
  kEdgeFilter,      // single positive variable → NFA edge
  kNegationFilter,  // single negated variable → negation check
  kNegationCross,   // one negated + positive variables → negation check
  kPartition,       // equivalence test subsumed by value partitioning
  kResidual,        // everything else → Selection operator
};

/// Description of one negated pattern component after analysis.
///
/// `prev_positive` / `next_positive` are indices into the *positive
/// ordering* (not pattern slots); -1 means the negation sits at the pattern
/// head / tail respectively, in which case the WITHIN window bounds the
/// non-occurrence interval.
struct NegationSpec {
  int slot = -1;
  EventTypeId type_id = kInvalidEventType;
  int prev_positive = -1;
  int next_positive = -1;
  std::vector<ExprPtr> filters;      // reference only the negated variable
  std::vector<ExprPtr> cross_preds;  // reference the negated + positive vars
  /// When the negated variable participates in the partition equivalence
  /// class: its attribute, and the positive slot/attribute to take the key
  /// value from. kInvalidAttr when not partitioned.
  AttrIndex partition_attr = kInvalidAttr;
  int key_slot = -1;
  AttrIndex key_attr = kInvalidAttr;
  /// Equality conjuncts subsumed by the partitioned negation check; the
  /// planner re-adds them to cross_preds when partitioning is disabled.
  std::vector<ExprPtr> subsumed_cross;
};

/// Per-variable metadata, indexed by pattern slot.
struct VarInfo {
  std::string name;
  EventTypeId type_id = kInvalidEventType;
  bool negated = false;
  int positive_index = -1;  // position among positive components, or -1
};

/// A fully resolved, classified query ready for planning.
///
/// The analyzer implements the paper's predicate classification: it decides
/// which predicates can be pushed into the sequence operator (single-
/// variable "edge" filters and the equivalence tests that become the PAIS
/// partition key) and which remain for the relational operators above it.
struct AnalyzedQuery {
  ParsedQuery parsed;  // pattern/expressions resolved in place

  std::vector<VarInfo> vars;        // indexed by slot
  std::vector<int> positive_slots;  // slot of i-th positive component

  /// Window in ticks; -1 when the query has no WITHIN clause.
  Ticks window_ticks = -1;

  /// Edge filters per positive component (aligned with positive_slots).
  std::vector<std::vector<ExprPtr>> edge_filters;

  /// Value-partition key: attribute per positive component (aligned with
  /// positive_slots); empty when no covering equivalence class exists.
  std::vector<AttrIndex> partition_attrs;

  std::vector<NegationSpec> negations;

  /// Cross-variable predicates not absorbed by partitioning; evaluated by
  /// the Selection operator.
  std::vector<ExprPtr> residual_predicates;

  /// Positive-variable equality conjuncts subsumed by the partition key.
  /// When a plan runs with partitioning disabled these must be evaluated as
  /// residual predicates instead.
  std::vector<ExprPtr> partition_subsumed;

  /// Attribute names (schema spelling of the first positive component) of
  /// every equivalence class that covers ALL components — positive and
  /// negated — AND whose name resolves, on every member slot's schema, back
  /// to that slot's own class member. Each names an attribute the stream
  /// could be partitioned by without changing this query's results: a match
  /// only ever combines (and is only ever suppressed by) events agreeing on
  /// it, and because routing looks the name up per event type, the
  /// round-trip requirement guarantees every component routes by its class
  /// member (a class equating differently-named attributes is excluded).
  /// The runtime's hot-key mitigation uses the entries beyond the shard key
  /// as secondary sub-partition candidates. Ordered by equivalence-class
  /// discovery, so the order is deterministic for a given query text.
  std::vector<std::string> covering_attrs;

  bool has_aggregates = false;

  /// Classification journal: (conjunct text, class) in WHERE order.
  std::vector<std::pair<std::string, PredicateClass>> classification;

  size_t slot_count() const { return vars.size(); }
  bool partitioned() const { return !partition_attrs.empty(); }

  /// Human-readable analysis summary (used by `ExplainPlan`).
  std::string Explain() const;
};

/// Resolves and validates a parsed query against a catalog.
class Analyzer {
 public:
  Analyzer(const Catalog* catalog, TimeConfig time_config)
      : catalog_(catalog), time_config_(time_config) {}

  /// Performs name resolution, type checking, predicate classification and
  /// partition-key detection. On success the returned AnalyzedQuery owns a
  /// copy of the AST with every VarAttrExpr resolved.
  Result<AnalyzedQuery> Analyze(ParsedQuery query) const;

 private:
  const Catalog* catalog_;
  TimeConfig time_config_;
};

}  // namespace sase

#endif  // SASE_QUERY_ANALYZER_H_
