#include "query/ast.h"

#include <sstream>

namespace sase {

std::string ParsedQuery::ToString() const {
  std::ostringstream out;
  if (!from_stream.empty()) out << "FROM " << from_stream << "\n";
  out << "EVENT ";
  if (pattern.size() == 1 && !pattern[0].negated) {
    out << pattern[0].type_name << " " << pattern[0].variable;
  } else {
    out << "SEQ(";
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (i > 0) out << ", ";
      if (pattern[i].negated) {
        out << "!(" << pattern[i].type_name << " " << pattern[i].variable << ")";
      } else {
        out << pattern[i].type_name << " " << pattern[i].variable;
      }
    }
    out << ")";
  }
  if (where != nullptr) out << "\nWHERE " << where->ToString();
  if (window.present) {
    out << "\nWITHIN " << window.count;
    if (!window.unit.empty()) out << " " << window.unit;
  }
  if (!return_items.empty()) {
    out << "\nRETURN ";
    for (size_t i = 0; i < return_items.size(); ++i) {
      if (i > 0) out << ", ";
      out << return_items[i].expr->ToString();
      if (!return_items[i].alias.empty()) out << " AS " << return_items[i].alias;
    }
    if (!output_name.empty()) out << " INTO " << output_name;
  }
  return out.str();
}

size_t ParsedQuery::positive_count() const {
  size_t n = 0;
  for (const auto& c : pattern) {
    if (!c.negated) ++n;
  }
  return n;
}

}  // namespace sase
