#ifndef SASE_QUERY_AST_H_
#define SASE_QUERY_AST_H_

#include <string>
#include <vector>

#include "core/schema.h"
#include "query/expr.h"

namespace sase {

/// One component of a SEQ pattern: an event type bound to a variable,
/// optionally negated. In `SEQ(SHELF_READING x, !(COUNTER_READING y),
/// EXIT_READING z)` the middle component has negated == true.
struct PatternComponent {
  std::string type_name;
  std::string variable;
  bool negated = false;

  // Filled by the analyzer.
  EventTypeId type_id = kInvalidEventType;
};

/// One projection in the RETURN clause: an expression with an optional
/// output name (`x.TagId AS Tag`).
struct ReturnItem {
  ExprPtr expr;
  std::string alias;
};

/// Raw window specification as written: `WITHIN 12 hours` keeps
/// (12, "hours"); `WITHIN 500` keeps (500, ""). The analyzer converts it to
/// ticks under the deployment's TimeConfig.
struct WindowSpec {
  bool present = false;
  int64_t count = 0;
  std::string unit;
};

/// Abstract syntax of one SASE query:
///   [FROM s] EVENT <pattern> [WHERE q] [WITHIN w] [RETURN items [INTO name]]
struct ParsedQuery {
  std::string from_stream;                 // empty → default input
  std::vector<PatternComponent> pattern;   // at least one component
  ExprPtr where;                           // may be null
  WindowSpec window;
  std::vector<ReturnItem> return_items;    // empty → return all variables
  std::string output_name;                 // INTO <name>; empty → anonymous

  std::string text;  // original source text, kept for diagnostics

  /// Unparses the query back to (canonicalized) SASE syntax.
  std::string ToString() const;

  /// Count of positive (non-negated) components.
  size_t positive_count() const;
};

}  // namespace sase

#endif  // SASE_QUERY_AST_H_
