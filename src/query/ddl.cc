#include "query/ddl.h"

#include <vector>

#include "query/lexer.h"
#include "util/string_util.h"

namespace sase {
namespace {

Result<ValueType> TypeFromName(const std::string& name) {
  if (EqualsIgnoreCase(name, "INT") || EqualsIgnoreCase(name, "INTEGER") ||
      EqualsIgnoreCase(name, "BIGINT")) {
    return ValueType::kInt;
  }
  if (EqualsIgnoreCase(name, "DOUBLE") || EqualsIgnoreCase(name, "FLOAT") ||
      EqualsIgnoreCase(name, "REAL")) {
    return ValueType::kDouble;
  }
  if (EqualsIgnoreCase(name, "STRING") || EqualsIgnoreCase(name, "TEXT") ||
      EqualsIgnoreCase(name, "VARCHAR")) {
    return ValueType::kString;
  }
  if (EqualsIgnoreCase(name, "BOOL") || EqualsIgnoreCase(name, "BOOLEAN")) {
    return ValueType::kBool;
  }
  return Status::ParseError("unknown attribute type: '" + name + "'");
}

}  // namespace

Result<int> DeclareEventTypes(Catalog* catalog, const std::string& text) {
  // The shared lexer has no ';' token; statement separators are stripped
  // up front (they are pure decoration in this grammar).
  std::string stripped = text;
  for (char& c : stripped) {
    if (c == ';') c = ' ';
  }
  Lexer lexer(stripped);
  auto tokens_or = lexer.Tokenize();
  if (!tokens_or.ok()) return tokens_or.status();
  const std::vector<Token>& tokens = tokens_or.value();

  size_t pos = 0;
  int declared = 0;
  auto error_at = [&tokens, &pos](const std::string& message) {
    const Token& token = tokens[pos];
    return Status::ParseError(message + ", found " + token.Describe() +
                              " at line " + std::to_string(token.line));
  };

  while (tokens[pos].kind != TokenKind::kEnd) {
    if (tokens[pos].kind != TokenKind::kEvent) {
      return error_at("expected EVENT to begin a declaration");
    }
    ++pos;
    if (tokens[pos].kind != TokenKind::kIdentifier ||
        !EqualsIgnoreCase(tokens[pos].text, "TYPE")) {
      return error_at("expected TYPE after EVENT");
    }
    ++pos;
    if (tokens[pos].kind != TokenKind::kIdentifier) {
      return error_at("expected event type name");
    }
    std::string name = tokens[pos].text;
    ++pos;
    if (tokens[pos].kind != TokenKind::kLParen) {
      return error_at("expected '(' after type name");
    }
    ++pos;

    std::vector<Attribute> attributes;
    while (true) {
      if (tokens[pos].kind != TokenKind::kIdentifier) {
        return error_at("expected attribute name");
      }
      std::string attr_name = tokens[pos].text;
      ++pos;
      if (tokens[pos].kind != TokenKind::kIdentifier) {
        return error_at("expected attribute type after '" + attr_name + "'");
      }
      auto type = TypeFromName(tokens[pos].text);
      if (!type.ok()) return type.status();
      ++pos;
      attributes.push_back({std::move(attr_name), type.value()});
      if (tokens[pos].kind == TokenKind::kComma) {
        ++pos;
        continue;
      }
      break;
    }
    if (tokens[pos].kind != TokenKind::kRParen) {
      return error_at("expected ')' to close attribute list");
    }
    ++pos;
    auto registered = catalog->RegisterType(name, std::move(attributes));
    if (!registered.ok()) return registered.status();
    ++declared;
  }
  return declared;
}

}  // namespace sase
