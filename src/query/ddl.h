#ifndef SASE_QUERY_DDL_H_
#define SASE_QUERY_DDL_H_

#include <string>

#include "core/catalog.h"
#include "util/status.h"

namespace sase {

/// Textual event-type declarations — the deployment-facing face of the
/// paper's "pre-defined schema" (§3): instead of registering types through
/// C++ calls, a deployment can ship a schema file.
///
/// Syntax (keywords case-insensitive, `--` comments allowed):
///
///   EVENT TYPE SHELF_READING (TagId STRING, AreaId INT, ProductName STRING);
///   EVENT TYPE COUNTER_READING (TagId STRING, AreaId INT);
///
/// Types: INT | DOUBLE | STRING | BOOL (with the same aliases as the SQL
/// layer: INTEGER/BIGINT, FLOAT/REAL, TEXT/VARCHAR, BOOLEAN). Trailing
/// semicolons are optional; multiple declarations may appear in one call.
///
/// Returns the number of types registered. Fails atomically per
/// declaration: a bad declaration stops parsing, but earlier ones stay
/// registered (the count tells how many).
Result<int> DeclareEventTypes(Catalog* catalog, const std::string& text);

}  // namespace sase

#endif  // SASE_QUERY_DDL_H_
