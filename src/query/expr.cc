#include "query/expr.h"

#include <cmath>
#include <sstream>

#include "engine/function_registry.h"

namespace sase {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNeq: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount: return "COUNT";
    case AggregateKind::kSum: return "SUM";
    case AggregateKind::kAvg: return "AVG";
    case AggregateKind::kMin: return "MIN";
    case AggregateKind::kMax: return "MAX";
  }
  return "?";
}

bool Expr::ContainsAggregate() const { return kind_ == ExprKind::kAggregate; }

Result<Value> LiteralExpr::Eval(const EvalContext& ctx) const {
  (void)ctx;
  return value_;
}

std::string LiteralExpr::ToString() const {
  if (value_.type() == ValueType::kString) return "'" + value_.AsString() + "'";
  return value_.ToString();
}

Result<Value> VarAttrExpr::Eval(const EvalContext& ctx) const {
  if (slot_ < 0) {
    return Status::Internal("unresolved variable reference: " + ToString());
  }
  if (ctx.bindings == nullptr ||
      static_cast<size_t>(slot_) >= ctx.bindings->size() ||
      (*ctx.bindings)[static_cast<size_t>(slot_)] == nullptr) {
    return Status::Internal("variable '" + var_ + "' is not bound");
  }
  return (*ctx.bindings)[static_cast<size_t>(slot_)]->attribute(attr_index_);
}

std::string VarAttrExpr::ToString() const { return var_ + "." + attr_; }

namespace {

Result<Value> EvalComparison(BinaryOp op, const Value& lhs, const Value& rhs) {
  // NULL never satisfies a comparison (and never fails != asymmetrically):
  // any comparison with NULL is FALSE.
  if (lhs.is_null() || rhs.is_null()) return Value(false);
  if (op == BinaryOp::kEq) return Value(lhs.Equals(rhs));
  if (op == BinaryOp::kNeq) return Value(!lhs.Equals(rhs));
  auto cmp = lhs.Compare(rhs);
  if (!cmp.ok()) return cmp.status();
  int c = cmp.value();
  switch (op) {
    case BinaryOp::kLt: return Value(c < 0);
    case BinaryOp::kLe: return Value(c <= 0);
    case BinaryOp::kGt: return Value(c > 0);
    case BinaryOp::kGe: return Value(c >= 0);
    default: return Status::Internal("not a comparison op");
  }
}

Result<Value> EvalArithmetic(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value();
  // String concatenation via '+'.
  if (op == BinaryOp::kAdd && lhs.type() == ValueType::kString &&
      rhs.type() == ValueType::kString) {
    return Value(lhs.AsString() + rhs.AsString());
  }
  auto ln = lhs.ToNumeric();
  if (!ln.ok()) return ln.status();
  auto rn = rhs.ToNumeric();
  if (!rn.ok()) return rn.status();
  bool both_int =
      lhs.type() == ValueType::kInt && rhs.type() == ValueType::kInt;
  double l = ln.value(), r = rn.value();
  switch (op) {
    case BinaryOp::kAdd:
      return both_int ? Value(lhs.AsInt() + rhs.AsInt()) : Value(l + r);
    case BinaryOp::kSub:
      return both_int ? Value(lhs.AsInt() - rhs.AsInt()) : Value(l - r);
    case BinaryOp::kMul:
      return both_int ? Value(lhs.AsInt() * rhs.AsInt()) : Value(l * r);
    case BinaryOp::kDiv:
      if (r == 0) return Status::InvalidArgument("division by zero");
      return both_int ? Value(lhs.AsInt() / rhs.AsInt()) : Value(l / r);
    case BinaryOp::kMod:
      if (r == 0) return Status::InvalidArgument("modulo by zero");
      if (both_int) return Value(lhs.AsInt() % rhs.AsInt());
      return Value(std::fmod(l, r));
    default:
      return Status::Internal("not an arithmetic op");
  }
}

Result<bool> AsBoolOperand(const Value& v) {
  if (v.is_null()) return false;
  if (v.type() != ValueType::kBool) {
    return Status::InvalidArgument("logical operator expects BOOL, got " +
                                   std::string(ValueTypeName(v.type())));
  }
  return v.AsBool();
}

}  // namespace

Result<Value> BinaryExpr::Eval(const EvalContext& ctx) const {
  // Short-circuit the logical connectives.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    auto lv = left_->Eval(ctx);
    if (!lv.ok()) return lv.status();
    auto lb = AsBoolOperand(lv.value());
    if (!lb.ok()) return lb.status();
    if (op_ == BinaryOp::kAnd && !lb.value()) return Value(false);
    if (op_ == BinaryOp::kOr && lb.value()) return Value(true);
    auto rv = right_->Eval(ctx);
    if (!rv.ok()) return rv.status();
    auto rb = AsBoolOperand(rv.value());
    if (!rb.ok()) return rb.status();
    return Value(rb.value());
  }

  auto lv = left_->Eval(ctx);
  if (!lv.ok()) return lv.status();
  auto rv = right_->Eval(ctx);
  if (!rv.ok()) return rv.status();

  switch (op_) {
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return EvalComparison(op_, lv.value(), rv.value());
    default:
      return EvalArithmetic(op_, lv.value(), rv.value());
  }
}

std::string BinaryExpr::ToString() const {
  std::ostringstream out;
  out << "(" << left_->ToString() << " " << BinaryOpName(op_) << " "
      << right_->ToString() << ")";
  return out.str();
}

Result<Value> UnaryExpr::Eval(const EvalContext& ctx) const {
  auto v = operand_->Eval(ctx);
  if (!v.ok()) return v.status();
  if (op_ == UnaryOp::kNot) {
    auto b = AsBoolOperand(v.value());
    if (!b.ok()) return b.status();
    return Value(!b.value());
  }
  // Unary minus.
  const Value& val = v.value();
  if (val.type() == ValueType::kInt) return Value(-val.AsInt());
  if (val.type() == ValueType::kDouble) return Value(-val.AsDouble());
  return Status::InvalidArgument("unary '-' expects a numeric operand");
}

std::string UnaryExpr::ToString() const {
  return std::string(op_ == UnaryOp::kNot ? "NOT " : "-") + operand_->ToString();
}

Result<Value> CallExpr::Eval(const EvalContext& ctx) const {
  if (ctx.functions == nullptr) {
    return Status::InvalidArgument("no function registry available for call to " +
                                   name_);
  }
  std::vector<Value> arg_values;
  arg_values.reserve(args_.size());
  for (const auto& arg : args_) {
    auto v = arg->Eval(ctx);
    if (!v.ok()) return v.status();
    arg_values.push_back(std::move(v).value());
  }
  return ctx.functions->Invoke(name_, arg_values);
}

std::string CallExpr::ToString() const {
  std::ostringstream out;
  out << name_ << "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out << ", ";
    out << args_[i]->ToString();
  }
  out << ")";
  return out.str();
}

Result<Value> AggregateExpr::Eval(const EvalContext& ctx) const {
  (void)ctx;
  return Status::Internal(
      "aggregate " + ToString() +
      " has no per-match value; it must be computed by Transformation");
}

std::string AggregateExpr::ToString() const {
  std::ostringstream out;
  out << AggregateKindName(agg_) << "(" << (arg_ ? arg_->ToString() : "*") << ")";
  return out.str();
}

void FlattenConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* conjuncts) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kBinary) {
    auto* bin = static_cast<BinaryExpr*>(expr.get());
    if (bin->op() == BinaryOp::kAnd) {
      FlattenConjuncts(bin->left(), conjuncts);
      FlattenConjuncts(bin->right(), conjuncts);
      return;
    }
  }
  conjuncts->push_back(expr);
}

Result<bool> EvalPredicate(const Expr& expr, const EvalContext& ctx) {
  auto v = expr.Eval(ctx);
  if (!v.ok()) return v.status();
  const Value& val = v.value();
  if (val.is_null()) return false;
  if (val.type() != ValueType::kBool) {
    return Status::InvalidArgument("predicate must evaluate to BOOL, got " +
                                   std::string(ValueTypeName(val.type())) +
                                   " from " + expr.ToString());
  }
  return val.AsBool();
}

}  // namespace sase
