#ifndef SASE_QUERY_EXPR_H_
#define SASE_QUERY_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/binding_vec.h"
#include "core/event.h"
#include "core/value.h"
#include "util/status.h"

namespace sase {

class FunctionRegistry;

/// Evaluation context for an expression: one event binding per pattern
/// variable slot (positive and negated components each own a slot). Slots
/// for unbound variables hold nullptr; referencing one is an evaluation
/// error, which the analyzer prevents for well-formed queries.
struct EvalContext {
  const BindingVec* bindings = nullptr;
  const FunctionRegistry* functions = nullptr;
};

enum class ExprKind {
  kLiteral,    // 42, 'abc', TRUE
  kVarAttr,    // x.TagId
  kBinary,     // a = b, a + b, a AND b
  kUnary,      // -a, NOT a
  kCall,       // _retrieveLocation(z.AreaId)
  kAggregate,  // COUNT(*), SUM(x.Qty) — only valid in RETURN items
};

enum class BinaryOp {
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr,
};

enum class UnaryOp { kNeg, kNot };

enum class AggregateKind { kCount, kSum, kAvg, kMin, kMax };

const char* BinaryOpName(BinaryOp op);
const char* AggregateKindName(AggregateKind kind);

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Base class of the expression tree used by WHERE and RETURN clauses.
///
/// Expressions are built by the parser with symbolic variable/attribute
/// names and then *resolved in place* by the analyzer, which fills variable
/// slots and attribute indices. Eval() is only legal on resolved trees.
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }

  /// Evaluates the resolved expression under `ctx`.
  virtual Result<Value> Eval(const EvalContext& ctx) const = 0;

  /// Unparses the expression for plan explain output and tests.
  virtual std::string ToString() const = 0;

  /// Adds every variable slot referenced by this subtree to `slots`.
  virtual void CollectSlots(std::set<int>* slots) const = 0;

  /// True if any node in the subtree is an aggregate.
  virtual bool ContainsAggregate() const;

 private:
  ExprKind kind_;
};

/// A constant literal.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Result<Value> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectSlots(std::set<int>* slots) const override { (void)slots; }

 private:
  Value value_;
};

/// `x.TagId`: attribute access on a pattern variable.
class VarAttrExpr : public Expr {
 public:
  VarAttrExpr(std::string var, std::string attr)
      : Expr(ExprKind::kVarAttr), var_(std::move(var)), attr_(std::move(attr)) {}

  const std::string& var() const { return var_; }
  const std::string& attr() const { return attr_; }

  /// Filled by the analyzer.
  void Resolve(int slot, AttrIndex attr_index, ValueType type) {
    slot_ = slot;
    attr_index_ = attr_index;
    value_type_ = type;
  }
  bool resolved() const { return slot_ >= 0; }
  int slot() const { return slot_; }
  AttrIndex attr_index() const { return attr_index_; }
  ValueType value_type() const { return value_type_; }

  Result<Value> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectSlots(std::set<int>* slots) const override {
    if (slot_ >= 0) slots->insert(slot_);
  }

 private:
  std::string var_;
  std::string attr_;
  int slot_ = -1;
  AttrIndex attr_index_ = kInvalidAttr;
  ValueType value_type_ = ValueType::kNull;
};

/// Binary operator node. Comparison of incomparable types is a runtime
/// error; comparisons involving NULL evaluate to FALSE (SQL-ish semantics
/// without three-valued logic).
class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kBinary), op_(op), left_(std::move(left)),
        right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  Result<Value> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectSlots(std::set<int>* slots) const override {
    left_->CollectSlots(slots);
    right_->CollectSlots(slots);
  }
  bool ContainsAggregate() const override {
    return left_->ContainsAggregate() || right_->ContainsAggregate();
  }

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// Unary minus / NOT.
class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const ExprPtr& operand() const { return operand_; }

  Result<Value> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectSlots(std::set<int>* slots) const override {
    operand_->CollectSlots(slots);
  }
  bool ContainsAggregate() const override { return operand_->ContainsAggregate(); }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

/// Function invocation, e.g. `_retrieveLocation(z.AreaId)`. Built-in
/// database functions start with '_' by the paper's convention; the
/// registry also accepts user functions.
class CallExpr : public Expr {
 public:
  CallExpr(std::string name, std::vector<ExprPtr> args)
      : Expr(ExprKind::kCall), name_(std::move(name)), args_(std::move(args)) {}

  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }

  Result<Value> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectSlots(std::set<int>* slots) const override {
    for (const auto& a : args_) a->CollectSlots(slots);
  }
  bool ContainsAggregate() const override {
    for (const auto& a : args_) {
      if (a->ContainsAggregate()) return true;
    }
    return false;
  }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

/// Aggregate over the stream of composite events produced by the match
/// block: COUNT(*), SUM(e), AVG(e), MIN(e), MAX(e). The Transformation
/// operator maintains the running state; Eval() on the node itself is an
/// error (it has no per-match value).
class AggregateExpr : public Expr {
 public:
  AggregateExpr(AggregateKind agg, ExprPtr arg /* null for COUNT(*) */)
      : Expr(ExprKind::kAggregate), agg_(agg), arg_(std::move(arg)) {}

  AggregateKind agg() const { return agg_; }
  const ExprPtr& arg() const { return arg_; }

  Result<Value> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectSlots(std::set<int>* slots) const override {
    if (arg_) arg_->CollectSlots(slots);
  }
  bool ContainsAggregate() const override { return true; }

 private:
  AggregateKind agg_;
  ExprPtr arg_;
};

/// Splits a WHERE tree into top-level AND conjuncts (in evaluation order).
void FlattenConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* conjuncts);

/// Evaluates `expr` and coerces to a predicate outcome: TRUE passes,
/// FALSE/NULL fail. Non-bool results are errors.
Result<bool> EvalPredicate(const Expr& expr, const EvalContext& ctx);

}  // namespace sase

#endif  // SASE_QUERY_EXPR_H_
