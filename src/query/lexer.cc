#include "query/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "util/string_util.h"

namespace sase {
namespace {

const std::unordered_map<std::string, TokenKind>& KeywordTable() {
  static const auto* table = new std::unordered_map<std::string, TokenKind>{
      {"FROM", TokenKind::kFrom},     {"EVENT", TokenKind::kEvent},
      {"WHERE", TokenKind::kWhere},   {"WITHIN", TokenKind::kWithin},
      {"RETURN", TokenKind::kReturn}, {"SEQ", TokenKind::kSeq},
      {"ANY", TokenKind::kAny},       {"AND", TokenKind::kAnd},
      {"OR", TokenKind::kOr},         {"NOT", TokenKind::kNot},
      {"AS", TokenKind::kAs},         {"INTO", TokenKind::kInto},
      {"TRUE", TokenKind::kTrue},     {"FALSE", TokenKind::kFalse},
      {"NULL", TokenKind::kNull},
  };
  return *table;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Lexer::Lexer(std::string input) : input_(std::move(input)) {}

char Lexer::Peek(size_t offset) const {
  if (pos_ + offset >= input_.size()) return '\0';
  return input_[pos_ + offset];
}

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::Match(char expected) {
  if (AtEnd() || Peek() != expected) return false;
  Advance();
  return true;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else {
      break;
    }
  }
}

Token Lexer::MakeToken(TokenKind kind, std::string text) {
  Token token;
  token.kind = kind;
  token.text = std::move(text);
  token.line = token_line_;
  token.column = token_column_;
  return token;
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    SkipWhitespaceAndComments();
    token_line_ = line_;
    token_column_ = column_;
    if (AtEnd()) {
      tokens.push_back(MakeToken(TokenKind::kEnd, ""));
      return tokens;
    }
    auto token = NextToken();
    if (!token.ok()) return token.status();
    tokens.push_back(std::move(token).value());
  }
}

Result<Token> Lexer::NextToken() {
  char c = Peek();
  if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber();
  if (IsIdentStart(c)) return LexIdentifierOrKeyword();
  if (c == '\'' || c == '"') return LexString(c);

  // UTF-8 logical connectives used in the paper: ∧ (E2 88 A7), ∨ (E2 88 A8),
  // ¬ (C2 AC).
  if (static_cast<unsigned char>(c) == 0xE2 &&
      static_cast<unsigned char>(Peek(1)) == 0x88) {
    unsigned char third = static_cast<unsigned char>(Peek(2));
    if (third == 0xA7 || third == 0xA8) {
      Advance(); Advance(); Advance();
      return MakeToken(third == 0xA7 ? TokenKind::kAnd : TokenKind::kOr,
                       third == 0xA7 ? "∧" : "∨");
    }
  }
  if (static_cast<unsigned char>(c) == 0xC2 &&
      static_cast<unsigned char>(Peek(1)) == 0xAC) {
    Advance(); Advance();
    return MakeToken(TokenKind::kNot, "¬");
  }

  Advance();
  switch (c) {
    case '(': return MakeToken(TokenKind::kLParen, "(");
    case ')': return MakeToken(TokenKind::kRParen, ")");
    case ',': return MakeToken(TokenKind::kComma, ",");
    case '.': return MakeToken(TokenKind::kDot, ".");
    case '*': return MakeToken(TokenKind::kStar, "*");
    case '+': return MakeToken(TokenKind::kPlus, "+");
    case '-': return MakeToken(TokenKind::kMinus, "-");
    case '/': return MakeToken(TokenKind::kSlash, "/");
    case '%': return MakeToken(TokenKind::kPercent, "%");
    case '=': return MakeToken(TokenKind::kEq, "=");
    case '!':
      if (Match('=')) return MakeToken(TokenKind::kNeq, "!=");
      return MakeToken(TokenKind::kBang, "!");
    case '<':
      if (Match('=')) return MakeToken(TokenKind::kLe, "<=");
      if (Match('>')) return MakeToken(TokenKind::kNeq, "<>");
      return MakeToken(TokenKind::kLt, "<");
    case '>':
      if (Match('=')) return MakeToken(TokenKind::kGe, ">=");
      return MakeToken(TokenKind::kGt, ">");
    case '&':
      if (Match('&')) return MakeToken(TokenKind::kAnd, "&&");
      break;
    case '|':
      if (Match('|')) return MakeToken(TokenKind::kOr, "||");
      break;
    default:
      break;
  }
  return Status::ParseError("unexpected character '" + std::string(1, c) +
                            "' at line " + std::to_string(token_line_) +
                            ", column " + std::to_string(token_column_));
}

Result<Token> Lexer::LexNumber() {
  std::string text;
  bool is_float = false;
  while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
    text.push_back(Advance());
  }
  if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
    is_float = true;
    text.push_back(Advance());  // '.'
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      text.push_back(Advance());
    }
  }
  Token token = MakeToken(is_float ? TokenKind::kFloat : TokenKind::kInteger, text);
  if (is_float) {
    token.float_value = std::strtod(text.c_str(), nullptr);
  } else {
    token.int_value = std::strtoll(text.c_str(), nullptr, 10);
  }
  return token;
}

Result<Token> Lexer::LexString(char quote) {
  Advance();  // opening quote
  std::string text;
  while (!AtEnd() && Peek() != quote) {
    char c = Advance();
    if (c == '\\' && !AtEnd()) {
      char next = Advance();
      switch (next) {
        case 'n': text.push_back('\n'); break;
        case 't': text.push_back('\t'); break;
        case '\\': text.push_back('\\'); break;
        case '\'': text.push_back('\''); break;
        case '"': text.push_back('"'); break;
        default: text.push_back(next); break;
      }
    } else {
      text.push_back(c);
    }
  }
  if (AtEnd()) {
    return Status::ParseError("unterminated string literal at line " +
                              std::to_string(token_line_));
  }
  Advance();  // closing quote
  return MakeToken(TokenKind::kString, text);
}

Token Lexer::LexIdentifierOrKeyword() {
  std::string text;
  while (!AtEnd() && IsIdentBody(Peek())) text.push_back(Advance());
  auto it = KeywordTable().find(ToUpper(text));
  if (it != KeywordTable().end()) return MakeToken(it->second, text);
  return MakeToken(TokenKind::kIdentifier, text);
}

}  // namespace sase
