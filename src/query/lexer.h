#ifndef SASE_QUERY_LEXER_H_
#define SASE_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "query/token.h"
#include "util/status.h"

namespace sase {

/// Hand-written lexer for the SASE event language.
///
/// Handles:
///  - case-insensitive keywords,
///  - identifiers that may start with '_' (built-in functions such as
///    `_retrieveLocation` start with an underscore by convention),
///  - integer/float/string literals (single or double quoted),
///  - the paper's `∧` (U+2227) and `¬` (U+00AC) connectives, `&&`/`||`,
///  - `--` line comments.
class Lexer {
 public:
  explicit Lexer(std::string input);

  /// Tokenizes the whole input. On error returns ParseError with
  /// line/column context.
  Result<std::vector<Token>> Tokenize();

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t offset = 0) const;
  char Advance();
  bool Match(char expected);
  void SkipWhitespaceAndComments();

  Result<Token> NextToken();
  Token MakeToken(TokenKind kind, std::string text);
  Result<Token> LexNumber();
  Result<Token> LexString(char quote);
  Token LexIdentifierOrKeyword();

  std::string input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

}  // namespace sase

#endif  // SASE_QUERY_LEXER_H_
