#include "query/parser.h"

#include <unordered_map>

#include "query/lexer.h"
#include "util/string_util.h"

namespace sase {
namespace {

/// Aggregate function names recognized in call position.
bool LookupAggregate(const std::string& name, AggregateKind* kind) {
  static const std::unordered_map<std::string, AggregateKind> kAggregates = {
      {"COUNT", AggregateKind::kCount}, {"SUM", AggregateKind::kSum},
      {"AVG", AggregateKind::kAvg},     {"MIN", AggregateKind::kMin},
      {"MAX", AggregateKind::kMax},
  };
  auto it = kAggregates.find(ToUpper(name));
  if (it == kAggregates.end()) return false;
  *kind = it->second;
  return true;
}

}  // namespace

bool Parser::MatchToken(TokenKind kind) {
  if (!Check(kind)) return false;
  ++pos_;
  return true;
}

Status Parser::Expect(TokenKind kind, const std::string& context) {
  if (MatchToken(kind)) return Status::Ok();
  return ErrorAtCurrent("expected " + std::string(TokenKindName(kind)) + " " +
                        context);
}

Status Parser::ErrorAtCurrent(const std::string& message) const {
  const Token& token = Current();
  return Status::ParseError(message + ", found " + token.Describe() +
                            " at line " + std::to_string(token.line) +
                            ", column " + std::to_string(token.column));
}

Result<ParsedQuery> Parser::Parse(const std::string& text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  auto query = parser.ParseQuery();
  if (!query.ok()) return query.status();
  ParsedQuery result = std::move(query).value();
  result.text = text;
  return result;
}

Result<ExprPtr> Parser::ParseExpression(const std::string& text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  auto expr = parser.ParseExpr();
  if (!expr.ok()) return expr.status();
  if (!parser.Check(TokenKind::kEnd)) {
    return parser.ErrorAtCurrent("trailing input after expression");
  }
  return expr;
}

Result<ParsedQuery> Parser::ParseQuery() {
  ParsedQuery query;

  if (MatchToken(TokenKind::kFrom)) {
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorAtCurrent("expected stream name after FROM");
    }
    query.from_stream = Current().text;
    ++pos_;
  }

  SASE_RETURN_IF_ERROR(Expect(TokenKind::kEvent, "to begin the event pattern"));
  SASE_RETURN_IF_ERROR(ParsePattern(&query));

  if (MatchToken(TokenKind::kWhere)) {
    auto where = ParseExpr();
    if (!where.ok()) return where.status();
    query.where = std::move(where).value();
  }

  if (MatchToken(TokenKind::kWithin)) {
    SASE_RETURN_IF_ERROR(ParseWindow(&query));
  }

  if (MatchToken(TokenKind::kReturn)) {
    SASE_RETURN_IF_ERROR(ParseReturn(&query));
  }

  if (!Check(TokenKind::kEnd)) {
    return ErrorAtCurrent("unexpected trailing input after query");
  }
  return query;
}

Status Parser::ParsePattern(ParsedQuery* query) {
  if (MatchToken(TokenKind::kSeq)) {
    SASE_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after SEQ"));
    SASE_RETURN_IF_ERROR(ParseComponent(query));
    while (MatchToken(TokenKind::kComma)) {
      SASE_RETURN_IF_ERROR(ParseComponent(query));
    }
    SASE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close SEQ pattern"));
  } else {
    // Single-event pattern: `EVENT SHELF_READING x`. ANY is accepted as a
    // synonym prefix for readability: `EVENT ANY(SHELF_READING x)`.
    if (MatchToken(TokenKind::kAny)) {
      SASE_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after ANY"));
      SASE_RETURN_IF_ERROR(ParseComponent(query));
      SASE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close ANY pattern"));
    } else {
      SASE_RETURN_IF_ERROR(ParseComponent(query));
    }
  }

  // Structural validation that does not need the catalog.
  if (query->positive_count() == 0) {
    return Status::ParseError(
        "pattern must contain at least one non-negated component");
  }
  std::vector<std::string> seen;
  for (const auto& comp : query->pattern) {
    for (const auto& name : seen) {
      if (EqualsIgnoreCase(name, comp.variable)) {
        return Status::ParseError("duplicate pattern variable '" +
                                  comp.variable + "'");
      }
    }
    seen.push_back(comp.variable);
  }
  return Status::Ok();
}

Status Parser::ParseComponent(ParsedQuery* query) {
  PatternComponent comp;
  if (MatchToken(TokenKind::kBang)) {
    comp.negated = true;
    SASE_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after '!'"));
  }
  if (!Check(TokenKind::kIdentifier)) {
    return ErrorAtCurrent("expected event type name in pattern");
  }
  comp.type_name = Current().text;
  ++pos_;
  if (!Check(TokenKind::kIdentifier)) {
    return ErrorAtCurrent("expected variable name after event type '" +
                          comp.type_name + "'");
  }
  comp.variable = Current().text;
  ++pos_;
  if (comp.negated) {
    SASE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close negated component"));
  }
  query->pattern.push_back(std::move(comp));
  return Status::Ok();
}

Status Parser::ParseWindow(ParsedQuery* query) {
  if (!Check(TokenKind::kInteger)) {
    return ErrorAtCurrent("expected window length after WITHIN");
  }
  query->window.present = true;
  query->window.count = Current().int_value;
  ++pos_;
  if (Check(TokenKind::kIdentifier)) {
    query->window.unit = Current().text;
    ++pos_;
  }
  return Status::Ok();
}

Status Parser::ParseReturn(ParsedQuery* query) {
  while (true) {
    ReturnItem item;
    auto expr = ParseExpr();
    if (!expr.ok()) return expr.status();
    item.expr = std::move(expr).value();
    if (MatchToken(TokenKind::kAs)) {
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAtCurrent("expected alias after AS");
      }
      item.alias = Current().text;
      ++pos_;
    }
    query->return_items.push_back(std::move(item));
    if (!MatchToken(TokenKind::kComma)) break;
  }
  if (MatchToken(TokenKind::kInto)) {
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorAtCurrent("expected output stream name after INTO");
    }
    query->output_name = Current().text;
    ++pos_;
  }
  return Status::Ok();
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  auto left = ParseAnd();
  if (!left.ok()) return left;
  ExprPtr expr = std::move(left).value();
  while (MatchToken(TokenKind::kOr)) {
    auto right = ParseAnd();
    if (!right.ok()) return right;
    expr = std::make_shared<BinaryExpr>(BinaryOp::kOr, expr,
                                        std::move(right).value());
  }
  return expr;
}

Result<ExprPtr> Parser::ParseAnd() {
  auto left = ParseNot();
  if (!left.ok()) return left;
  ExprPtr expr = std::move(left).value();
  while (MatchToken(TokenKind::kAnd)) {
    auto right = ParseNot();
    if (!right.ok()) return right;
    expr = std::make_shared<BinaryExpr>(BinaryOp::kAnd, expr,
                                        std::move(right).value());
  }
  return expr;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchToken(TokenKind::kNot)) {
    auto operand = ParseNot();
    if (!operand.ok()) return operand;
    return ExprPtr(
        std::make_shared<UnaryExpr>(UnaryOp::kNot, std::move(operand).value()));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  auto left = ParseAdditive();
  if (!left.ok()) return left;
  ExprPtr expr = std::move(left).value();

  BinaryOp op;
  if (MatchToken(TokenKind::kEq)) {
    op = BinaryOp::kEq;
  } else if (MatchToken(TokenKind::kNeq)) {
    op = BinaryOp::kNeq;
  } else if (MatchToken(TokenKind::kLt)) {
    op = BinaryOp::kLt;
  } else if (MatchToken(TokenKind::kLe)) {
    op = BinaryOp::kLe;
  } else if (MatchToken(TokenKind::kGt)) {
    op = BinaryOp::kGt;
  } else if (MatchToken(TokenKind::kGe)) {
    op = BinaryOp::kGe;
  } else {
    return expr;
  }
  auto right = ParseAdditive();
  if (!right.ok()) return right;
  return ExprPtr(
      std::make_shared<BinaryExpr>(op, expr, std::move(right).value()));
}

Result<ExprPtr> Parser::ParseAdditive() {
  auto left = ParseMultiplicative();
  if (!left.ok()) return left;
  ExprPtr expr = std::move(left).value();
  while (true) {
    BinaryOp op;
    if (MatchToken(TokenKind::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (MatchToken(TokenKind::kMinus)) {
      op = BinaryOp::kSub;
    } else {
      return expr;
    }
    auto right = ParseMultiplicative();
    if (!right.ok()) return right;
    expr = std::make_shared<BinaryExpr>(op, expr, std::move(right).value());
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  auto left = ParseUnary();
  if (!left.ok()) return left;
  ExprPtr expr = std::move(left).value();
  while (true) {
    BinaryOp op;
    if (MatchToken(TokenKind::kStar)) {
      op = BinaryOp::kMul;
    } else if (MatchToken(TokenKind::kSlash)) {
      op = BinaryOp::kDiv;
    } else if (MatchToken(TokenKind::kPercent)) {
      op = BinaryOp::kMod;
    } else {
      return expr;
    }
    auto right = ParseUnary();
    if (!right.ok()) return right;
    expr = std::make_shared<BinaryExpr>(op, expr, std::move(right).value());
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchToken(TokenKind::kMinus)) {
    auto operand = ParseUnary();
    if (!operand.ok()) return operand;
    return ExprPtr(
        std::make_shared<UnaryExpr>(UnaryOp::kNeg, std::move(operand).value()));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  if (Check(TokenKind::kInteger)) {
    int64_t v = Current().int_value;
    ++pos_;
    return ExprPtr(std::make_shared<LiteralExpr>(Value(v)));
  }
  if (Check(TokenKind::kFloat)) {
    double v = Current().float_value;
    ++pos_;
    return ExprPtr(std::make_shared<LiteralExpr>(Value(v)));
  }
  if (Check(TokenKind::kString)) {
    std::string v = Current().text;
    ++pos_;
    return ExprPtr(std::make_shared<LiteralExpr>(Value(std::move(v))));
  }
  if (MatchToken(TokenKind::kTrue)) {
    return ExprPtr(std::make_shared<LiteralExpr>(Value(true)));
  }
  if (MatchToken(TokenKind::kFalse)) {
    return ExprPtr(std::make_shared<LiteralExpr>(Value(false)));
  }
  if (MatchToken(TokenKind::kNull)) {
    return ExprPtr(std::make_shared<LiteralExpr>(Value()));
  }
  if (MatchToken(TokenKind::kLParen)) {
    auto inner = ParseExpr();
    if (!inner.ok()) return inner;
    SASE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close parenthesized expression"));
    return inner;
  }

  if (Check(TokenKind::kIdentifier)) {
    std::string name = Current().text;
    ++pos_;

    // Function call or aggregate.
    if (MatchToken(TokenKind::kLParen)) {
      AggregateKind agg_kind = AggregateKind::kCount;
      bool is_aggregate = LookupAggregate(name, &agg_kind);

      // COUNT(*) — and only COUNT — accepts the star form.
      if (is_aggregate && agg_kind == AggregateKind::kCount &&
          MatchToken(TokenKind::kStar)) {
        SASE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close COUNT(*)"));
        return ExprPtr(
            std::make_shared<AggregateExpr>(AggregateKind::kCount, nullptr));
      }

      std::vector<ExprPtr> args;
      if (!Check(TokenKind::kRParen)) {
        while (true) {
          auto arg = ParseExpr();
          if (!arg.ok()) return arg;
          args.push_back(std::move(arg).value());
          if (!MatchToken(TokenKind::kComma)) break;
        }
      }
      SASE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close argument list"));

      if (is_aggregate) {
        if (args.size() != 1) {
          return Status::ParseError(ToUpper(name) +
                                    " expects exactly one argument");
        }
        return ExprPtr(
            std::make_shared<AggregateExpr>(agg_kind, std::move(args[0])));
      }
      return ExprPtr(std::make_shared<CallExpr>(name, std::move(args)));
    }

    // Variable attribute access.
    if (MatchToken(TokenKind::kDot)) {
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAtCurrent("expected attribute name after '" + name + ".'");
      }
      std::string attr = Current().text;
      ++pos_;
      return ExprPtr(std::make_shared<VarAttrExpr>(name, attr));
    }

    return ErrorAtCurrent("bare identifier '" + name +
                          "' — expected 'var.attribute' or a function call");
  }

  return ErrorAtCurrent("expected an expression");
}

}  // namespace sase
