#ifndef SASE_QUERY_PARSER_H_
#define SASE_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "query/ast.h"
#include "query/token.h"
#include "util/status.h"

namespace sase {

/// Recursive-descent parser for the SASE event language.
///
/// Grammar (keywords case-insensitive):
///
///   query       := [FROM ident] EVENT pattern [WHERE expr]
///                  [WITHIN duration] [RETURN items [INTO ident]]
///   pattern     := SEQ '(' component (',' component)* ')' | component
///   component   := type_name var | '!' '(' type_name var ')'
///   duration    := INTEGER [ident]          -- "12 hours", "500"
///   items       := item (',' item)*
///   item        := expr [AS ident]
///   expr        := or ;  or := and (OR and)* ;  and := not (AND not)*
///   not         := [NOT] cmp
///   cmp         := add [('='|'!='|'<>'|'<'|'<='|'>'|'>=') add]
///   add         := mul (('+'|'-') mul)* ;  mul := unary (('*'|'/'|'%') unary)*
///   unary       := ['-'] primary
///   primary     := literal | TRUE | FALSE | NULL | ident '.' ident
///                | ident '(' [expr (',' expr)*] ')'     -- call / aggregate
///                | COUNT '(' '*' ')' | '(' expr ')'
///
/// Aggregate names (COUNT, SUM, AVG, MIN, MAX) are recognized in call
/// position and produce AggregateExpr nodes; all other calls are
/// CallExpr looked up in the FunctionRegistry at run time.
class Parser {
 public:
  /// Parses one complete query. The returned AST is unresolved; pass it to
  /// Analyzer::Analyze before execution.
  static Result<ParsedQuery> Parse(const std::string& text);

  /// Parses a standalone expression (used by tests and the DB layer).
  static Result<ExprPtr> ParseExpression(const std::string& text);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Current() const { return tokens_[pos_]; }
  const Token& Previous() const { return tokens_[pos_ - 1]; }
  bool Check(TokenKind kind) const { return Current().kind == kind; }
  bool MatchToken(TokenKind kind);
  Status Expect(TokenKind kind, const std::string& context);
  Status ErrorAtCurrent(const std::string& message) const;

  Result<ParsedQuery> ParseQuery();
  Status ParsePattern(ParsedQuery* query);
  Status ParseComponent(ParsedQuery* query);
  Status ParseWindow(ParsedQuery* query);
  Status ParseReturn(ParsedQuery* query);

  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace sase

#endif  // SASE_QUERY_PARSER_H_
