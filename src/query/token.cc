#include "query/token.h"

namespace sase {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kFrom: return "FROM";
    case TokenKind::kEvent: return "EVENT";
    case TokenKind::kWhere: return "WHERE";
    case TokenKind::kWithin: return "WITHIN";
    case TokenKind::kReturn: return "RETURN";
    case TokenKind::kSeq: return "SEQ";
    case TokenKind::kAny: return "ANY";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kNot: return "NOT";
    case TokenKind::kAs: return "AS";
    case TokenKind::kInto: return "INTO";
    case TokenKind::kTrue: return "TRUE";
    case TokenKind::kFalse: return "FALSE";
    case TokenKind::kNull: return "NULL";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
  }
  return "unknown";
}

std::string Token::Describe() const {
  std::string out = TokenKindName(kind);
  if (kind == TokenKind::kIdentifier || kind == TokenKind::kInteger ||
      kind == TokenKind::kFloat || kind == TokenKind::kString) {
    out += " '" + text + "'";
  }
  return out;
}

}  // namespace sase
