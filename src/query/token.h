#ifndef SASE_QUERY_TOKEN_H_
#define SASE_QUERY_TOKEN_H_

#include <cstdint>
#include <string>

namespace sase {

/// Token kinds of the SASE event language.
///
/// Keywords are recognized case-insensitively. The logical-and connective
/// accepts the paper's own spelling `∧` (U+2227) in addition to `AND` and
/// `&&`.
enum class TokenKind {
  kEnd = 0,
  // Literals and identifiers.
  kIdentifier,   // SHELF_READING, x, TagId, _retrieveLocation
  kInteger,      // 12
  kFloat,        // 3.5
  kString,       // 'abc' or "abc"
  // Keywords.
  kFrom, kEvent, kWhere, kWithin, kReturn, kSeq, kAny,
  kAnd, kOr, kNot, kAs, kInto, kTrue, kFalse, kNull,
  // Punctuation and operators.
  kLParen, kRParen, kComma, kDot, kBang, kStar,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kSlash, kPercent,
};

const char* TokenKindName(TokenKind kind);

/// A lexed token with its source location (1-based line/column) for error
/// messages that point at the offending text.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // raw text (string literals are unquoted)
  int64_t int_value = 0;  // valid when kind == kInteger
  double float_value = 0; // valid when kind == kFloat
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

}  // namespace sase

#endif  // SASE_QUERY_TOKEN_H_
