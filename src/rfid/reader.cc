#include "rfid/reader.h"

namespace sase {

void Reader::Scan(int64_t raw_time, const std::vector<const TagInfo*>& present,
                  Random* rng, std::vector<RawReading>* out) const {
  std::vector<PresentTag> wrapped;
  wrapped.reserve(present.size());
  for (const TagInfo* tag : present) wrapped.push_back(PresentTag{tag, ""});
  Scan(raw_time, wrapped, rng, out);
}

void Reader::Scan(int64_t raw_time, const std::vector<PresentTag>& present,
                  Random* rng, std::vector<RawReading>* out) const {
  for (const PresentTag& item : present) {
    const TagInfo* tag = item.tag;
    if (rng->Bernoulli(noise_.miss_rate)) continue;  // lossy read

    RawReading reading;
    reading.reader_id = spec_.id;
    reading.raw_time = raw_time;
    reading.container_id = item.container;
    if (rng->Bernoulli(noise_.truncation_rate)) {
      // Truncated id: the reader saw only a prefix of the EPC.
      size_t keep = static_cast<size_t>(rng->Uniform(4, static_cast<int64_t>(kEpcLength) - 1));
      reading.tag_id = tag->epc.substr(0, keep);
    } else {
      reading.tag_id = tag->epc;
    }
    out->push_back(reading);

    if (rng->Bernoulli(noise_.duplicate_rate)) {
      out->push_back(out->back());  // overlapping-range duplicate
    }
  }

  if (rng->Bernoulli(noise_.spurious_rate)) {
    // Phantom read: garbage id that no tag owns (includes a non-hex char so
    // the Anomaly Filter can always identify it).
    RawReading phantom;
    phantom.reader_id = spec_.id;
    phantom.raw_time = raw_time;
    phantom.tag_id = "Z" + rng->HexString(static_cast<int>(kEpcLength) - 1);
    out->push_back(phantom);
  }
}

}  // namespace sase
