#ifndef SASE_RFID_READER_H_
#define SASE_RFID_READER_H_

#include <vector>

#include "cleaning/reading.h"
#include "rfid/store_layout.h"
#include "rfid/tag.h"
#include "util/random.h"

namespace sase {

/// Imperfection model of a physical RFID reader. "RFID readings are known
/// to be inaccurate and lossy" (§3); these rates drive the error modes
/// each cleaning sub-layer exists to repair:
///   miss_rate       -> repaired by Temporal Smoothing
///   truncation_rate -> dropped by Anomaly Filtering
///   spurious_rate   -> dropped by Anomaly Filtering
///   duplicate_rate  -> collapsed by Deduplication
struct NoiseModel {
  double miss_rate = 0.05;        // tag present but not read this scan
  double truncation_rate = 0.01;  // reading emitted with a truncated id
  double spurious_rate = 0.005;   // phantom reading with a garbage id
  double duplicate_rate = 0.02;   // extra copy of a reading in the same scan

  /// A perfect reader; useful for deterministic tests.
  static NoiseModel Perfect() { return NoiseModel{0, 0, 0, 0}; }
};

/// A tag visible to a reader during one scan; `container` is the id of the
/// container whose tag shares the read range (empty when none) — the
/// pairing that feeds the Containment Update rule.
struct PresentTag {
  const TagInfo* tag = nullptr;
  std::string container;
};

/// A simulated reader ("Mercury 4 Agile RFID Reader from ThingMagic" in the
/// paper's demo, §3). Each Scan() models one polling round: every tag in
/// the reader's range yields a reading, subject to the noise model.
class Reader {
 public:
  Reader(ReaderSpec spec, NoiseModel noise) : spec_(spec), noise_(noise) {}

  const ReaderSpec& spec() const { return spec_; }

  /// Scans the given tags at `raw_time`, appending readings to `out`.
  /// `rng` drives the noise; pass a deterministic seed for reproducibility.
  void Scan(int64_t raw_time, const std::vector<PresentTag>& present,
            Random* rng, std::vector<RawReading>* out) const;

  /// Convenience overload for container-less populations.
  void Scan(int64_t raw_time, const std::vector<const TagInfo*>& present,
            Random* rng, std::vector<RawReading>* out) const;

 private:
  ReaderSpec spec_;
  NoiseModel noise_;
};

}  // namespace sase

#endif  // SASE_RFID_READER_H_
