#include "rfid/simulator.h"

#include "util/logging.h"

namespace sase {

RetailSimulator::RetailSimulator(StoreLayout layout, NoiseModel noise,
                                 uint64_t seed, int64_t raw_units_per_tick)
    : layout_(std::move(layout)), rng_(seed),
      raw_units_per_tick_(raw_units_per_tick) {
  for (const ReaderSpec& spec : layout_.readers()) {
    readers_.emplace_back(spec, noise);
  }
}

void RetailSimulator::AddItem(TagInfo tag) {
  std::string epc = tag.epc;
  items_[epc] = Item{std::move(tag), -1};
}

bool RetailSimulator::HasItem(const std::string& epc) const {
  return items_.count(epc) > 0;
}

int RetailSimulator::ItemArea(const std::string& epc) const {
  auto it = items_.find(epc);
  return it == items_.end() ? -1 : it->second.area_id;
}

void RetailSimulator::Place(const std::string& epc, int area_id) {
  auto it = items_.find(epc);
  if (it == items_.end()) {
    SASE_LOG_WARN << "simulator: Place on unknown item " << epc;
    return;
  }
  it->second.area_id = area_id;
}

void RetailSimulator::Move(const std::string& epc, int area_id) {
  Place(epc, area_id);
}

void RetailSimulator::Remove(const std::string& epc) {
  auto it = items_.find(epc);
  if (it != items_.end()) it->second.area_id = -1;
}

void RetailSimulator::AssignContainer(const std::string& epc,
                                      const std::string& container_id) {
  auto it = items_.find(epc);
  if (it == items_.end()) {
    SASE_LOG_WARN << "simulator: AssignContainer on unknown item " << epc;
    return;
  }
  it->second.container_id = container_id;
}

void RetailSimulator::ClearContainer(const std::string& epc) {
  auto it = items_.find(epc);
  if (it != items_.end()) it->second.container_id.clear();
}

std::string RetailSimulator::ItemContainer(const std::string& epc) const {
  auto it = items_.find(epc);
  return it == items_.end() ? "" : it->second.container_id;
}

void RetailSimulator::Schedule(ScriptedAction action) {
  script_.emplace(action.at_tick, std::move(action));
}

void RetailSimulator::Schedule(int64_t at_tick, ActionKind kind,
                               const std::string& epc, int area_id) {
  Schedule(ScriptedAction{at_tick, kind, epc, area_id});
}

void RetailSimulator::ApplyDueActions() {
  auto end = script_.upper_bound(tick_);
  for (auto it = script_.begin(); it != end; ++it) {
    const ScriptedAction& action = it->second;
    switch (action.kind) {
      case ActionKind::kPlace:
        Place(action.epc, action.area_id);
        break;
      case ActionKind::kMove:
        Move(action.epc, action.area_id);
        break;
      case ActionKind::kRemove:
        Remove(action.epc);
        break;
      case ActionKind::kAssignContainer:
        AssignContainer(action.epc, action.container_id);
        break;
      case ActionKind::kClearContainer:
        ClearContainer(action.epc);
        break;
    }
  }
  script_.erase(script_.begin(), end);
}

void RetailSimulator::Step() {
  ApplyDueActions();

  // Group the items present in each area, then let each reader scan its
  // area's population.
  std::map<int, std::vector<PresentTag>> by_area;
  for (const auto& [epc, item] : items_) {
    if (item.area_id >= 0) {
      by_area[item.area_id].push_back(PresentTag{&item.tag, item.container_id});
    }
  }

  std::vector<RawReading> readings;
  int64_t raw_time = tick_ * raw_units_per_tick_;
  for (const Reader& reader : readers_) {
    auto it = by_area.find(reader.spec().area_id);
    if (it == by_area.end()) continue;
    reader.Scan(raw_time, it->second, &rng_, &readings);
  }
  readings_emitted_ += readings.size();
  if (sink_ != nullptr) {
    for (const RawReading& reading : readings) sink_->OnReading(reading);
  }
  ++tick_;
}

void RetailSimulator::RunUntil(int64_t until_tick) {
  while (tick_ <= until_tick) Step();
}

}  // namespace sase
