#ifndef SASE_RFID_SIMULATOR_H_
#define SASE_RFID_SIMULATOR_H_

#include <map>
#include <string>
#include <vector>

#include "cleaning/reading.h"
#include "rfid/reader.h"
#include "rfid/store_layout.h"
#include "rfid/tag.h"
#include "util/random.h"

namespace sase {

/// What a scripted action does to an item.
enum class ActionKind {
  kPlace,            // item appears in an area (stocking, entering the store)
  kMove,             // item moves to another area (pick up, misplace, ...)
  kRemove,           // item leaves the store (walked out the exit)
  kAssignContainer,  // item is put into a container (loading zones)
  kClearContainer,   // item is taken out of its container
};

/// One scheduled action: at tick `at_tick`, apply `kind` to item `epc`
/// (target `area_id` for place/move, `container_id` for container ops).
struct ScriptedAction {
  int64_t at_tick = 0;
  ActionKind kind = ActionKind::kPlace;
  std::string epc;
  int area_id = -1;
  std::string container_id;
};

/// Discrete-event simulation of the demo's physical layer: a store layout,
/// readers polling once per tick, and items moved around by scripted
/// actions ("the actual behavior (e.g. shoplifting or misplaced inventory)
/// is simulated live in our retail store", §4).
///
/// Raw readings (with reader noise applied) are pushed to the attached
/// ReadingSink — normally the CleaningPipeline.
class RetailSimulator {
 public:
  /// `raw_units_per_tick` sets the device-clock granularity (the Time
  /// Conversion Layer divides it back out).
  RetailSimulator(StoreLayout layout, NoiseModel noise, uint64_t seed,
                  int64_t raw_units_per_tick = 1000);

  const StoreLayout& layout() const { return layout_; }
  int64_t now() const { return tick_; }
  int64_t raw_units_per_tick() const { return raw_units_per_tick_; }

  void set_sink(ReadingSink* sink) { sink_ = sink; }

  /// Registers an item (not yet placed anywhere).
  void AddItem(TagInfo tag);
  bool HasItem(const std::string& epc) const;
  /// Current area of the item, or -1 if absent/removed.
  int ItemArea(const std::string& epc) const;
  size_t item_count() const { return items_.size(); }

  /// Immediate (unscripted) state changes.
  void Place(const std::string& epc, int area_id);
  void Move(const std::string& epc, int area_id);
  void Remove(const std::string& epc);
  void AssignContainer(const std::string& epc, const std::string& container_id);
  void ClearContainer(const std::string& epc);
  /// Container the item currently sits in ("" when none/unknown).
  std::string ItemContainer(const std::string& epc) const;

  /// Queues an action for execution when the simulation reaches its tick.
  void Schedule(ScriptedAction action);
  void Schedule(int64_t at_tick, ActionKind kind, const std::string& epc,
                int area_id = -1);

  /// Advances one tick: applies due actions, then every reader scans its
  /// area and the resulting readings are pushed to the sink.
  void Step();

  /// Runs until (and including) `until_tick`.
  void RunUntil(int64_t until_tick);

  uint64_t readings_emitted() const { return readings_emitted_; }

 private:
  struct Item {
    TagInfo tag;
    int area_id = -1;  // -1 = not in the store
    std::string container_id;
  };

  void ApplyDueActions();

  StoreLayout layout_;
  std::vector<Reader> readers_;
  Random rng_;
  int64_t raw_units_per_tick_;
  ReadingSink* sink_ = nullptr;  // not owned

  std::map<std::string, Item> items_;  // keyed by EPC
  std::multimap<int64_t, ScriptedAction> script_;
  int64_t tick_ = 0;
  uint64_t readings_emitted_ = 0;
};

}  // namespace sase

#endif  // SASE_RFID_SIMULATOR_H_
