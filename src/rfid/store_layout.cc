#include "rfid/store_layout.h"

namespace sase {

const char* AreaKindName(AreaKind kind) {
  switch (kind) {
    case AreaKind::kShelf: return "shelf";
    case AreaKind::kCounter: return "counter";
    case AreaKind::kExit: return "exit";
    case AreaKind::kBackroom: return "backroom";
    case AreaKind::kLoadingZone: return "loading-zone";
  }
  return "unknown";
}

const char* EventTypeForAreaKind(AreaKind kind) {
  switch (kind) {
    case AreaKind::kShelf: return "SHELF_READING";
    case AreaKind::kCounter: return "COUNTER_READING";
    case AreaKind::kExit: return "EXIT_READING";
    case AreaKind::kBackroom: return "BACKROOM_READING";
    case AreaKind::kLoadingZone: return "LOAD_READING";
  }
  return "SHELF_READING";
}

int StoreLayout::AddArea(std::string name, AreaKind kind) {
  Area area;
  area.id = static_cast<int>(areas_.size());
  area.name = std::move(name);
  area.kind = kind;
  areas_.push_back(std::move(area));
  return areas_.back().id;
}

int StoreLayout::AddReader(int area_id) {
  ReaderSpec reader;
  reader.id = static_cast<int>(readers_.size());
  reader.area_id = area_id;
  readers_.push_back(reader);
  return readers_.back().id;
}

std::map<int, int> StoreLayout::ReaderToArea() const {
  std::map<int, int> mapping;
  for (const auto& reader : readers_) mapping[reader.id] = reader.area_id;
  return mapping;
}

std::map<int, std::string> StoreLayout::AreaToEventType() const {
  std::map<int, std::string> mapping;
  for (const auto& area : areas_) {
    mapping[area.id] = EventTypeForAreaKind(area.kind);
  }
  return mapping;
}

int StoreLayout::FindAreaByKind(AreaKind kind) const {
  for (const auto& area : areas_) {
    if (area.kind == kind) return area.id;
  }
  return -1;
}

std::vector<int> StoreLayout::AreasByKind(AreaKind kind) const {
  std::vector<int> ids;
  for (const auto& area : areas_) {
    if (area.kind == kind) ids.push_back(area.id);
  }
  return ids;
}

StoreLayout StoreLayout::RetailDemo() {
  StoreLayout layout;
  int shelf1 = layout.AddArea("Shelf 1", AreaKind::kShelf);
  int shelf2 = layout.AddArea("Shelf 2", AreaKind::kShelf);
  int counter = layout.AddArea("Check-out Counter", AreaKind::kCounter);
  int exit = layout.AddArea("Store Exit", AreaKind::kExit);
  layout.AddReader(shelf1);
  layout.AddReader(shelf2);
  layout.AddReader(counter);
  layout.AddReader(exit);
  return layout;
}

}  // namespace sase
