#ifndef SASE_RFID_STORE_LAYOUT_H_
#define SASE_RFID_STORE_LAYOUT_H_

#include <map>
#include <string>
#include <vector>

namespace sase {

/// Kind of a logical area; determines the event type generated for
/// readings observed there.
enum class AreaKind { kShelf, kCounter, kExit, kBackroom, kLoadingZone };

const char* AreaKindName(AreaKind kind);

/// Event type name produced for readings in an area of this kind.
const char* EventTypeForAreaKind(AreaKind kind);

/// A logical area of the store (Figure 2: "Each reader occupies only one
/// logical area").
struct Area {
  int id = -1;
  std::string name;
  AreaKind kind = AreaKind::kShelf;
};

/// One physical reader (antenna) watching one logical area. Multiple
/// readers may watch the same area (a "redundant setup" — the
/// Deduplication layer collapses them).
struct ReaderSpec {
  int id = -1;
  int area_id = -1;
};

/// The physical arrangement of areas and readers.
class StoreLayout {
 public:
  StoreLayout() = default;

  int AddArea(std::string name, AreaKind kind);
  int AddReader(int area_id);

  const std::vector<Area>& areas() const { return areas_; }
  const std::vector<ReaderSpec>& readers() const { return readers_; }
  const Area& area(int id) const { return areas_.at(static_cast<size_t>(id)); }

  /// reader id -> logical area id (the Deduplication layer's mapping).
  std::map<int, int> ReaderToArea() const;

  /// logical area id -> event type name (the Event Generation mapping).
  std::map<int, std::string> AreaToEventType() const;

  /// First area of the given kind, or -1.
  int FindAreaByKind(AreaKind kind) const;
  std::vector<int> AreasByKind(AreaKind kind) const;

  /// Figure 2's demo store: "four readers (antennas), with one reader in
  /// each of the following locations: the store exit, two shelves, and
  /// check-out counter."
  static StoreLayout RetailDemo();

 private:
  std::vector<Area> areas_;
  std::vector<ReaderSpec> readers_;
};

}  // namespace sase

#endif  // SASE_RFID_STORE_LAYOUT_H_
