#include "rfid/tag.h"

#include <cstdio>

namespace sase {

std::string MakeEpc(int64_t item_number) {
  char buf[kEpcLength + 1];
  std::snprintf(buf, sizeof(buf), "ABC%021llX",
                static_cast<unsigned long long>(item_number));
  return std::string(buf, kEpcLength);
}

std::string RandomEpc(Random* rng) {
  return rng->HexString(static_cast<int>(kEpcLength));
}

}  // namespace sase
