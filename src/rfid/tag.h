#ifndef SASE_RFID_TAG_H_
#define SASE_RFID_TAG_H_

#include <string>

#include "util/random.h"

namespace sase {

/// An EPC Class 1 Gen 1 tag attached to one product ("Individual objects
/// are tagged with EPC Class1 Generation 1 tags from Alien Technology",
/// §3). The 96-bit EPC is modeled as 24 hex characters.
struct TagInfo {
  std::string epc;
  std::string product_name;
  std::string expiration_date;
  bool saleable = true;
};

inline constexpr size_t kEpcLength = 24;

/// Deterministically derives a well-formed EPC from an item number, so
/// tests and workloads can reconstruct ids without bookkeeping.
std::string MakeEpc(int64_t item_number);

/// Generates a random (but well-formed) EPC.
std::string RandomEpc(Random* rng);

}  // namespace sase

#endif  // SASE_RFID_TAG_H_
