#include "rfid/trace_io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace sase {
namespace {

constexpr const char* kHeader = "raw_time,reader_id,tag_id,container_id,synthesized";

bool IdSafe(const std::string& id) {
  return id.find(',') == std::string::npos && id.find('\n') == std::string::npos;
}

void WriteReading(const RawReading& reading, std::ostream* out) {
  *out << reading.raw_time << "," << reading.reader_id << "," << reading.tag_id
       << "," << reading.container_id << "," << (reading.synthesized ? 1 : 0)
       << "\n";
}

}  // namespace

TraceRecorder::TraceRecorder(std::ostream* out) : out_(out) {
  *out_ << kHeader << "\n";
}

void TraceRecorder::OnReading(const RawReading& reading) {
  if (!IdSafe(reading.tag_id) || !IdSafe(reading.container_id)) {
    ++rejected_;
    return;
  }
  WriteReading(reading, out_);
  ++recorded_;
}

Result<std::vector<RawReading>> LoadTrace(std::istream* in) {
  std::vector<RawReading> readings;
  std::string line;
  bool first = true;
  int line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line == kHeader) continue;  // header is optional
    }
    auto fields = Split(line, ',');
    if (fields.size() != 5) {
      return Status::ParseError("trace line " + std::to_string(line_no) +
                                ": expected 5 fields, got " +
                                std::to_string(fields.size()));
    }
    RawReading reading;
    char* end = nullptr;
    reading.raw_time = std::strtoll(fields[0].c_str(), &end, 10);
    if (end == fields[0].c_str() || *end != '\0') {
      return Status::ParseError("trace line " + std::to_string(line_no) +
                                ": bad raw_time '" + fields[0] + "'");
    }
    reading.reader_id = static_cast<int>(std::strtol(fields[1].c_str(), &end, 10));
    if (end == fields[1].c_str() || *end != '\0') {
      return Status::ParseError("trace line " + std::to_string(line_no) +
                                ": bad reader_id '" + fields[1] + "'");
    }
    reading.tag_id = fields[2];
    reading.container_id = fields[3];
    if (fields[4] != "0" && fields[4] != "1") {
      return Status::ParseError("trace line " + std::to_string(line_no) +
                                ": bad synthesized flag '" + fields[4] + "'");
    }
    reading.synthesized = fields[4] == "1";
    readings.push_back(std::move(reading));
  }
  return readings;
}

Result<std::vector<RawReading>> LoadTraceFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open trace: " + path);
  }
  return LoadTrace(&file);
}

Status SaveTrace(const std::vector<RawReading>& readings, std::ostream* out) {
  *out << kHeader << "\n";
  for (const RawReading& reading : readings) {
    if (!IdSafe(reading.tag_id) || !IdSafe(reading.container_id)) {
      return Status::InvalidArgument("reading id contains ',' or newline: " +
                                     reading.ToString());
    }
    WriteReading(reading, out);
  }
  return out->good() ? Status::Ok() : Status::Internal("trace write failed");
}

Status SaveTraceToFile(const std::vector<RawReading>& readings,
                       const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open trace for writing: " + path);
  }
  return SaveTrace(readings, &file);
}

void ReplayTrace(const std::vector<RawReading>& readings, ReadingSink* sink) {
  for (const RawReading& reading : readings) sink->OnReading(reading);
  sink->OnFlush();
}

}  // namespace sase
