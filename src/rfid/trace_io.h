#ifndef SASE_RFID_TRACE_IO_H_
#define SASE_RFID_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "cleaning/reading.h"

namespace sase {

/// Reader-trace capture and replay.
///
/// The demo runs against live readers; for regression tests, benchmarks
/// and offline debugging a deployment wants to record the raw reading
/// stream once and replay it deterministically. The format is CSV:
///
///   raw_time,reader_id,tag_id,container_id,synthesized
///
/// with container_id possibly empty and synthesized 0/1. Tag and container
/// ids are EPC-style hex/alnum strings, so no quoting is needed; a reading
/// whose ids contain commas or newlines is rejected at write time.

/// Sink that appends every reading to a CSV stream (header written on
/// construction). The stream must outlive the recorder.
class TraceRecorder : public ReadingSink {
 public:
  explicit TraceRecorder(std::ostream* out);

  void OnReading(const RawReading& reading) override;

  uint64_t recorded() const { return recorded_; }
  uint64_t rejected() const { return rejected_; }

 private:
  std::ostream* out_;
  uint64_t recorded_ = 0;
  uint64_t rejected_ = 0;
};

/// Parses a CSV trace; fails on malformed lines.
Result<std::vector<RawReading>> LoadTrace(std::istream* in);
Result<std::vector<RawReading>> LoadTraceFromFile(const std::string& path);

/// Writes a batch of readings as CSV.
Status SaveTrace(const std::vector<RawReading>& readings, std::ostream* out);
Status SaveTraceToFile(const std::vector<RawReading>& readings,
                       const std::string& path);

/// Replays a trace into a sink (in stored order) and flushes it.
void ReplayTrace(const std::vector<RawReading>& readings, ReadingSink* sink);

}  // namespace sase

#endif  // SASE_RFID_TRACE_IO_H_
