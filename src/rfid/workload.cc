#include "rfid/workload.h"

#include <algorithm>

#include "rfid/tag.h"

namespace sase {

int64_t ScenarioScripter::Purchase(const std::string& epc, int shelf,
                                   int counter, int exit, int64_t start,
                                   int64_t shelf_dwell, int64_t counter_dwell,
                                   int64_t exit_dwell) {
  simulator_->Schedule(start, ActionKind::kPlace, epc, shelf);
  int64_t t = start + shelf_dwell;
  simulator_->Schedule(t, ActionKind::kMove, epc, counter);
  t += counter_dwell;
  simulator_->Schedule(t, ActionKind::kMove, epc, exit);
  t += exit_dwell;
  simulator_->Schedule(t, ActionKind::kRemove, epc);
  return t;
}

int64_t ScenarioScripter::Shoplift(const std::string& epc, int shelf, int exit,
                                   int64_t start, int64_t shelf_dwell,
                                   int64_t exit_dwell) {
  simulator_->Schedule(start, ActionKind::kPlace, epc, shelf);
  int64_t t = start + shelf_dwell;
  simulator_->Schedule(t, ActionKind::kMove, epc, exit);
  t += exit_dwell;
  simulator_->Schedule(t, ActionKind::kRemove, epc);
  return t;
}

int64_t ScenarioScripter::Misplace(const std::string& epc, int shelf_from,
                                   int shelf_to, int64_t start, int64_t dwell) {
  simulator_->Schedule(start, ActionKind::kPlace, epc, shelf_from);
  int64_t t = start + dwell;
  simulator_->Schedule(t, ActionKind::kMove, epc, shelf_to);
  return t;
}

int64_t ScenarioScripter::Restock(const std::string& epc, int shelf,
                                  int64_t start) {
  simulator_->Schedule(start, ActionKind::kPlace, epc, shelf);
  return start;
}

int64_t ScenarioScripter::WarehouseArrival(const std::string& epc,
                                           const std::string& container,
                                           int loading_zone, int backroom,
                                           int shelf, int64_t start,
                                           int64_t stage_dwell) {
  ScriptedAction load;
  load.at_tick = start;
  load.kind = ActionKind::kAssignContainer;
  load.epc = epc;
  load.container_id = container;
  simulator_->Schedule(load);
  simulator_->Schedule(start, ActionKind::kPlace, epc, loading_zone);

  int64_t t = start + stage_dwell;
  simulator_->Schedule(t, ActionKind::kClearContainer, epc);  // unloaded
  simulator_->Schedule(t, ActionKind::kMove, epc, backroom);
  t += stage_dwell;
  simulator_->Schedule(t, ActionKind::kMove, epc, shelf);
  return t;
}

SyntheticStreamGenerator::SyntheticStreamGenerator(const Catalog* catalog,
                                                   SyntheticConfig config)
    : catalog_(catalog), config_(std::move(config)), rng_(config_.seed) {
  for (const auto& [name, weight] : config_.type_weights) {
    auto id = catalog_->FindType(name);
    // Unknown types are a programming error in the experiment setup; fail
    // loudly by skipping them (the weight table would then be empty).
    if (id.ok()) {
      type_ids_.push_back(id.value());
      weights_.push_back(weight);
    }
  }
}

EventPtr SyntheticStreamGenerator::MakeEvent(SequenceNumber seq) {
  size_t pick = rng_.Weighted(weights_);
  EventTypeId type = type_ids_[pick];
  const EventSchema& schema = catalog_->schema(type);

  int64_t tag_number = config_.zipf_s > 0
                           ? rng_.Zipf(config_.tag_count, config_.zipf_s)
                           : rng_.Uniform(0, config_.tag_count - 1);
  std::string tag = MakeEpc(tag_number);
  int64_t area = rng_.Uniform(0, config_.area_count - 1);

  std::vector<Value> values(schema.attribute_count());
  AttrIndex tag_attr = schema.FindAttribute("TagId");
  AttrIndex area_attr = schema.FindAttribute("AreaId");
  AttrIndex product_attr = schema.FindAttribute("ProductName");
  if (tag_attr >= 0) values[static_cast<size_t>(tag_attr)] = Value(tag);
  if (area_attr >= 0) values[static_cast<size_t>(area_attr)] = Value(area);
  if (product_attr >= 0) {
    values[static_cast<size_t>(product_attr)] =
        Value("Product-" + std::to_string(tag_number % 50));
  }

  now_ += config_.mean_tick_gap <= 1.0 ? 1 : rng_.GeometricGap(config_.mean_tick_gap);
  return std::make_shared<Event>(type, now_, seq, std::move(values));
}

std::vector<EventPtr> SyntheticStreamGenerator::Generate() {
  std::vector<EventPtr> events;
  events.reserve(static_cast<size_t>(config_.event_count));
  for (int64_t i = 0; i < config_.event_count; ++i) {
    events.push_back(MakeEvent(static_cast<SequenceNumber>(i)));
  }
  return events;
}

int64_t SyntheticStreamGenerator::GenerateInto(EventSink* sink) {
  for (int64_t i = 0; i < config_.event_count; ++i) {
    sink->OnEvent(MakeEvent(static_cast<SequenceNumber>(i)));
  }
  return config_.event_count;
}

std::vector<EventPtr> WarehouseHistoryGenerator::Generate() {
  struct PendingEvent {
    Timestamp ts;
    std::string type;
    std::string tag;
    int64_t area;
    std::string container;  // empty = no container attribute
  };
  std::vector<PendingEvent> timeline;

  // Area numbering convention for the warehouse history: area 100 is the
  // loading zone, 101 the backroom, 0..shelf_count-1 the shelves.
  constexpr int64_t kLoadingZone = 100;
  constexpr int64_t kBackroom = 101;

  for (int64_t item = 0; item < config_.item_count; ++item) {
    std::string tag = MakeEpc(item);
    std::string container =
        "CONT" + std::to_string(rng_.Uniform(0, config_.container_count - 1));
    Timestamp t = rng_.Uniform(0, config_.mean_stage_ticks);

    timeline.push_back({t, "LOAD_READING", tag, kLoadingZone, container});
    t += rng_.GeometricGap(static_cast<double>(config_.mean_stage_ticks));

    // Occasionally the item is moved to a different container mid-transit.
    if (rng_.Bernoulli(0.2)) {
      container =
          "CONT" + std::to_string(rng_.Uniform(0, config_.container_count - 1));
      timeline.push_back({t, "LOAD_READING", tag, kLoadingZone, container});
      t += rng_.GeometricGap(static_cast<double>(config_.mean_stage_ticks));
    }

    timeline.push_back({t, "UNLOAD_READING", tag, kLoadingZone, container});
    t += rng_.GeometricGap(static_cast<double>(config_.mean_stage_ticks));

    timeline.push_back({t, "BACKROOM_READING", tag, kBackroom, ""});
    t += rng_.GeometricGap(static_cast<double>(config_.mean_stage_ticks));

    // Stocked on a shelf; some items are later moved to another shelf.
    int64_t shelf = rng_.Uniform(0, config_.shelf_count - 1);
    timeline.push_back({t, "SHELF_READING", tag, shelf, ""});
    if (rng_.Bernoulli(0.3)) {
      t += rng_.GeometricGap(static_cast<double>(config_.mean_stage_ticks));
      int64_t shelf2 = rng_.Uniform(0, config_.shelf_count - 1);
      timeline.push_back({t, "SHELF_READING", tag, shelf2, ""});
    }
  }

  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const PendingEvent& a, const PendingEvent& b) {
                     return a.ts < b.ts;
                   });

  std::vector<EventPtr> events;
  events.reserve(timeline.size());
  SequenceNumber seq = 0;
  for (const auto& pending : timeline) {
    auto type = catalog_->FindType(pending.type);
    if (!type.ok()) continue;
    const EventSchema& schema = catalog_->schema(type.value());
    std::vector<Value> values(schema.attribute_count());
    AttrIndex tag_attr = schema.FindAttribute("TagId");
    AttrIndex area_attr = schema.FindAttribute("AreaId");
    AttrIndex product_attr = schema.FindAttribute("ProductName");
    AttrIndex cont_attr = schema.FindAttribute("ContainerId");
    if (tag_attr >= 0) values[static_cast<size_t>(tag_attr)] = Value(pending.tag);
    if (area_attr >= 0) values[static_cast<size_t>(area_attr)] = Value(pending.area);
    if (product_attr >= 0) {
      values[static_cast<size_t>(product_attr)] = Value("Product-" + pending.tag.substr(20));
    }
    if (cont_attr >= 0 && !pending.container.empty()) {
      values[static_cast<size_t>(cont_attr)] = Value(pending.container);
    }
    events.push_back(
        std::make_shared<Event>(type.value(), pending.ts, seq++, std::move(values)));
  }
  return events;
}

WarehouseHistoryGenerator::WarehouseHistoryGenerator(const Catalog* catalog,
                                                     WarehouseConfig config)
    : catalog_(catalog), config_(config), rng_(config_.seed) {}

}  // namespace sase
