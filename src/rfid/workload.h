#ifndef SASE_RFID_WORKLOAD_H_
#define SASE_RFID_WORKLOAD_H_

#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/event.h"
#include "core/stream.h"
#include "rfid/simulator.h"
#include "util/random.h"

namespace sase {

/// High-level behaviour scripts for the retail demo. Each method schedules
/// the primitive place/move/remove actions that make one shopper behaviour
/// unfold on the simulator, and returns the tick after the behaviour
/// completes (convenient for chaining).
///
/// These are the behaviours of §4's live demonstration: honest purchases,
/// shoplifting (shelf -> exit, skipping the counter) and misplaced
/// inventory (item appearing on the wrong shelf).
class ScenarioScripter {
 public:
  explicit ScenarioScripter(RetailSimulator* simulator)
      : simulator_(simulator) {}

  /// Item sits on `shelf` from `start`, then is carried through the
  /// counter and the exit. Dwell times are in ticks.
  int64_t Purchase(const std::string& epc, int shelf, int counter, int exit,
                   int64_t start, int64_t shelf_dwell = 3,
                   int64_t counter_dwell = 2, int64_t exit_dwell = 1);

  /// Item sits on `shelf`, then goes straight out the exit — Q1's
  /// shoplifting pattern.
  int64_t Shoplift(const std::string& epc, int shelf, int exit, int64_t start,
                   int64_t shelf_dwell = 3, int64_t exit_dwell = 1);

  /// Item is moved from `shelf_from` to `shelf_to` (misplaced inventory).
  int64_t Misplace(const std::string& epc, int shelf_from, int shelf_to,
                   int64_t start, int64_t dwell = 3);

  /// Item is stocked onto a shelf and stays.
  int64_t Restock(const std::string& epc, int shelf, int64_t start);

  /// Warehouse arrival: the item shows up at the loading zone inside
  /// `container` (LOAD_READING events carry the ContainerId), is unloaded,
  /// parked in the backroom, and finally stocked on `shelf`. Returns the
  /// stocking tick.
  int64_t WarehouseArrival(const std::string& epc, const std::string& container,
                           int loading_zone, int backroom, int shelf,
                           int64_t start, int64_t stage_dwell = 2);

 private:
  RetailSimulator* simulator_;
};

/// Configuration for the synthetic event-stream generator used by the
/// engine benchmarks and property tests. Events are generated directly at
/// the event level (bypassing readers and cleaning) so experiments control
/// the stream precisely.
struct SyntheticConfig {
  uint64_t seed = 1;
  int64_t event_count = 10000;
  /// Number of distinct tags; keys are drawn uniformly (or Zipf-skewed).
  int64_t tag_count = 100;
  double zipf_s = 0.0;  // 0 = uniform tag popularity
  int64_t area_count = 4;
  /// Mean gap between consecutive events in ticks (geometric); 1.0 packs
  /// one event per tick on average.
  double mean_tick_gap = 1.0;
  /// Mix of event types by weight; defaults to the retail trio
  /// SHELF/COUNTER/EXIT at 50/25/25.
  std::vector<std::pair<std::string, double>> type_weights = {
      {"SHELF_READING", 0.50},
      {"COUNTER_READING", 0.25},
      {"EXIT_READING", 0.25},
  };
};

/// Generates reproducible synthetic event streams against a catalog.
class SyntheticStreamGenerator {
 public:
  SyntheticStreamGenerator(const Catalog* catalog, SyntheticConfig config);

  /// Generates the whole stream as a batch (events in stream order).
  std::vector<EventPtr> Generate();

  /// Streams events into `sink` one by one; returns the count delivered.
  int64_t GenerateInto(EventSink* sink);

 private:
  EventPtr MakeEvent(SequenceNumber seq);

  const Catalog* catalog_;
  SyntheticConfig config_;
  Random rng_;
  std::vector<EventTypeId> type_ids_;
  std::vector<double> weights_;
  Timestamp now_ = 0;
};

/// Generates a warehouse/retail movement history for the track-and-trace
/// experiments: "We pre-populate our Event Database with RFID data that
/// simulates typical warehouse and retail store workloads, such as
/// loading/unloading items, stocking shelves, and changing containments"
/// (§4). Each item's life cycle is
///   LOAD (into a container at a loading zone) -> UNLOAD -> BACKROOM ->
///   SHELF [-> SHELF...] with occasional container changes.
struct WarehouseConfig {
  uint64_t seed = 7;
  int64_t item_count = 200;
  int64_t container_count = 20;
  int64_t shelf_count = 4;
  int64_t mean_stage_ticks = 5;  // mean dwell per life-cycle stage
};

class WarehouseHistoryGenerator {
 public:
  WarehouseHistoryGenerator(const Catalog* catalog, WarehouseConfig config);

  /// Generates the full history in stream order.
  std::vector<EventPtr> Generate();

 private:
  const Catalog* catalog_;
  WarehouseConfig config_;
  Random rng_;
};

}  // namespace sase

#endif  // SASE_RFID_WORKLOAD_H_
