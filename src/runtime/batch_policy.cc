#include "runtime/batch_policy.h"

#include <algorithm>
#include <sstream>

namespace sase {

BatchPolicy::BatchPolicy(BatchConfig config, size_t fallback)
    : config_(config) {
  if (config_.min_batch == 0) config_.min_batch = 1;
  if (config_.max_batch < config_.min_batch) {
    config_.max_batch = config_.min_batch;
  }
  if (config_.check_interval == 0) config_.check_interval = 1;
  if (config_.latency_target_us == 0) config_.latency_target_us = 1;
  if (fallback == 0) fallback = 1;
  current_ = config_.enabled
                 ? std::clamp(fallback, config_.min_batch, config_.max_batch)
                 : fallback;
}

size_t BatchPolicy::Update(double events_per_sec) {
  if (!config_.enabled) return current_;
  ++checks_;
  size_t ideal = config_.min_batch;
  if (events_per_sec > 0) {
    double fill = events_per_sec *
                  (static_cast<double>(config_.latency_target_us) / 1e6);
    if (fill > static_cast<double>(config_.max_batch)) {
      ideal = config_.max_batch;
    } else if (fill > static_cast<double>(config_.min_batch)) {
      ideal = static_cast<size_t>(fill);
    }
  }
  // One doubling/halving per tick: converges in O(log) checks while a
  // single noisy sample moves the size at most 2x.
  if (ideal > current_) {
    current_ = std::min(ideal, current_ * 2);
  } else if (ideal < current_) {
    current_ = std::max(ideal, current_ / 2);
  }
  current_ = std::clamp(current_, config_.min_batch, config_.max_batch);
  return current_;
}

std::string BatchPolicy::Describe() const {
  std::ostringstream out;
  if (!config_.enabled) {
    out << "batch fixed=" << current_;
    return out.str();
  }
  out << "batch adaptive=" << current_ << " [" << config_.min_batch << ","
      << config_.max_batch << "] target=" << config_.latency_target_us
      << "us checks=" << checks_;
  return out.str();
}

}  // namespace sase
