#ifndef SASE_RUNTIME_BATCH_POLICY_H_
#define SASE_RUNTIME_BATCH_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace sase {

/// Knobs of the adaptive cross-thread handoff batching. Evaluated on the
/// dispatcher thread every `check_interval` dispatched events; the decision
/// replaces the batch cut-off ShardedRuntime's AppendToWorker uses for
/// subsequent batches (in-flight batches are unaffected).
struct BatchConfig {
  /// Master switch; off = batches always cut at RuntimeConfig::batch_size.
  bool enabled = false;

  /// Batch-size bounds the policy may move between.
  size_t min_batch = 16;
  size_t max_batch = 4096;

  /// Latency bound: the batch must fill (and thus hand off) within this
  /// span at the observed event rate, so the first event of a batch is
  /// never held longer than the target. Higher rates therefore earn larger
  /// batches (amortizing the ring handoff); an idle stream collapses to
  /// min_batch.
  uint64_t latency_target_us = 1000;

  /// Dispatched events between policy evaluations.
  size_t check_interval = 1024;
};

/// Pure decision core of adaptive batching: rate -> batch size, no clocks
/// and no runtime dependencies, so the growth/shrink behavior is
/// unit-testable without threads. The runtime samples the dispatch rate,
/// calls Update once per check interval, and cuts batches at current().
///
/// Sizing rule: the ideal batch is the number of events that arrive within
/// one latency target (rate x target) — any larger and the batch's first
/// event would wait past the bound before the handoff. To keep the size
/// from whipsawing on one noisy sample, each update moves at most one
/// doubling (or halving) from the current size, clamped to
/// [min_batch, max_batch]. A non-positive rate (idle, or no wall-clock
/// signal) decays toward min_batch.
class BatchPolicy {
 public:
  /// `fallback` is the fixed batch size used while the policy is disabled
  /// (RuntimeConfig::batch_size); it also seeds the adaptive size.
  BatchPolicy(BatchConfig config, size_t fallback);

  /// Evaluates one dispatch-rate sample (events per second across the
  /// dispatcher, <= 0 when unavailable) and returns the new batch size.
  size_t Update(double events_per_sec);

  /// The batch size AppendToWorker should cut at right now.
  size_t current() const { return current_; }

  const BatchConfig& config() const { return config_; }
  uint64_t checks() const { return checks_; }

  /// One-line state summary for StatsReport.
  std::string Describe() const;

 private:
  BatchConfig config_;
  size_t current_;
  uint64_t checks_ = 0;
};

}  // namespace sase

#endif  // SASE_RUNTIME_BATCH_POLICY_H_
