#include "runtime/elastic_policy.h"

#include <algorithm>
#include <sstream>

namespace sase {

ElasticPolicy::ElasticPolicy(ElasticConfig config) : config_(config) {
  config_.min_shards = std::max(1, config_.min_shards);
  config_.max_shards = std::max(config_.min_shards, config_.max_shards);
  config_.hysteresis = std::max(1, config_.hysteresis);
  config_.cooldown = std::max(0, config_.cooldown);
  if (config_.check_interval == 0) config_.check_interval = 1;
}

ElasticDecision ElasticPolicy::Evaluate(const LoadSample& sample) {
  ++checks_;

  // Cooldown: samples taken while queues re-settle under the new layout
  // are noise — ignore them outright so hysteresis rebuilds from scratch.
  if (cooldown_left_ > 0) {
    --cooldown_left_;
    grow_streak_ = 0;
    shrink_streak_ = 0;
    return ElasticDecision::kHold;
  }

  bool overload =
      sample.avg_queue_frac >= config_.grow_queue_frac ||
      (config_.grow_events_per_sec_per_shard > 0 &&
       sample.events_per_sec_per_shard > 0 &&
       sample.events_per_sec_per_shard >= config_.grow_events_per_sec_per_shard);
  // Strictly below: shrink_queue_frac = 0 therefore disables shrinking
  // entirely (an exactly-zero sample can never satisfy `< 0`).
  bool idle = !overload && sample.avg_queue_frac < config_.shrink_queue_frac;

  grow_streak_ = overload ? grow_streak_ + 1 : 0;
  shrink_streak_ = idle ? shrink_streak_ + 1 : 0;

  if (grow_streak_ >= config_.hysteresis && sample.shards < config_.max_shards) {
    grow_streak_ = 0;
    shrink_streak_ = 0;
    cooldown_left_ = config_.cooldown;
    ++grow_decisions_;
    return ElasticDecision::kGrow;
  }
  if (shrink_streak_ >= config_.hysteresis &&
      sample.shards > config_.min_shards) {
    grow_streak_ = 0;
    shrink_streak_ = 0;
    cooldown_left_ = config_.cooldown;
    ++shrink_decisions_;
    return ElasticDecision::kShrink;
  }
  return ElasticDecision::kHold;
}

int ElasticPolicy::NextShardCount(ElasticDecision decision, int current) const {
  switch (decision) {
    case ElasticDecision::kGrow:
      return std::min(config_.max_shards, std::max(current * 2, current + 1));
    case ElasticDecision::kShrink:
      return std::max(config_.min_shards, current / 2);
    case ElasticDecision::kHold:
      break;
  }
  return current;
}

std::string ElasticPolicy::Describe() const {
  std::ostringstream out;
  out << "elastic " << (config_.enabled ? "on" : "off")
      << " bounds=[" << config_.min_shards << "," << config_.max_shards << "]"
      << " checks=" << checks_ << " grows=" << grow_decisions_
      << " shrinks=" << shrink_decisions_
      << " cooldown_left=" << cooldown_left_;
  return out.str();
}

}  // namespace sase
