#ifndef SASE_RUNTIME_ELASTIC_POLICY_H_
#define SASE_RUNTIME_ELASTIC_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace sase {

/// Knobs of the load-driven shard autoscaler. All thresholds are evaluated
/// on the dispatcher thread every `check_interval` dispatched events; a
/// grow/shrink decision calls ShardedRuntime::Resize, which quiesces,
/// replays the in-flight window and resumes (see sharded_runtime.h).
struct ElasticConfig {
  /// Master switch; off = the shard count only changes via explicit
  /// Resize() calls.
  bool enabled = false;

  /// Shard-count bounds the policy may move between (each step doubles or
  /// halves, clamped to this range).
  int min_shards = 1;
  int max_shards = 8;

  /// Dispatched events between policy evaluations.
  size_t check_interval = 8192;

  /// Grow when the mean shard-queue occupancy fraction (0..1, queued
  /// batches / queue capacity averaged over shard workers) reaches this
  /// value: the workers are falling behind the dispatcher.
  double grow_queue_frac = 0.5;

  /// Shrink when the mean occupancy fraction stays strictly below this
  /// value: the fleet is mostly idle and fewer shards would do. 0 disables
  /// shrinking.
  double shrink_queue_frac = 0.05;

  /// Optional wall-clock signal: grow when the per-shard event rate
  /// (dispatched events per second / shard count) exceeds this. 0 disables
  /// the rate signal — tests and deterministic replays rely only on queue
  /// occupancy.
  double grow_events_per_sec_per_shard = 0;

  /// Consecutive agreeing evaluations required before a decision fires
  /// (hysteresis: one noisy sample never resizes).
  int hysteresis = 2;

  /// Evaluations to hold after a resize before the next one may fire
  /// (cooldown: lets queues re-settle under the new layout, preventing
  /// grow/shrink oscillation).
  int cooldown = 4;
};

/// One load observation, sampled by the runtime at a policy check. The
/// policy keys off the MEAN queue occupancy, deliberately not the hottest
/// single queue: one skewed partition must not grow the whole fleet, since
/// rehashing cannot split a single key's partition anyway (watch the
/// per-shard routing counts in StatsReport for skew instead).
struct LoadSample {
  int shards = 1;
  /// Mean queued-batches / capacity over the shard workers, 0..1.
  double avg_queue_frac = 0;
  /// Dispatched events per second per shard since the previous check;
  /// <= 0 when wall-clock rates are unavailable (deterministic tests).
  double events_per_sec_per_shard = 0;
};

enum class ElasticDecision { kHold, kGrow, kShrink };

/// Pure decision core of the autoscaler: thresholds + hysteresis +
/// cooldown, no clocks and no runtime dependencies, so the transition
/// behavior is unit-testable without threads. The runtime samples load,
/// calls Evaluate once per check interval, and acts on the decision.
class ElasticPolicy {
 public:
  explicit ElasticPolicy(ElasticConfig config);

  /// Evaluates one sample. Returns kGrow/kShrink only when the same
  /// pressure persisted for `hysteresis` consecutive samples, the cooldown
  /// from the previous decision elapsed, and the bounds allow a step.
  ElasticDecision Evaluate(const LoadSample& sample);

  /// Shard count a decision moves to: double on grow, halve on shrink,
  /// clamped to [min_shards, max_shards]; `current` for kHold.
  int NextShardCount(ElasticDecision decision, int current) const;

  const ElasticConfig& config() const { return config_; }

  // --- counters (surfaced through RuntimeStats / StatsReport) ---
  uint64_t checks() const { return checks_; }
  uint64_t grow_decisions() const { return grow_decisions_; }
  uint64_t shrink_decisions() const { return shrink_decisions_; }

  /// One-line state summary for StatsReport.
  std::string Describe() const;

 private:
  ElasticConfig config_;
  int grow_streak_ = 0;
  int shrink_streak_ = 0;
  int cooldown_left_ = 0;
  uint64_t checks_ = 0;
  uint64_t grow_decisions_ = 0;
  uint64_t shrink_decisions_ = 0;
};

}  // namespace sase

#endif  // SASE_RUNTIME_ELASTIC_POLICY_H_
