#ifndef SASE_RUNTIME_EVENT_BATCH_H_
#define SASE_RUNTIME_EVENT_BATCH_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/event.h"

namespace sase {

/// Unit of cross-thread handoff between the dispatcher (producer side) and a
/// shard worker. Batching amortizes the queue synchronization: one ring-slot
/// exchange moves `events.size()` events, so the per-event cost of the
/// cross-thread hop shrinks with the batch size. A batch carries events of
/// exactly one input stream; the dispatcher cuts a batch when the stream
/// switches.
struct EventBatch {
  /// Lowercased FROM-stream name the events belong to; empty = the default
  /// input (QueryEngine::OnEvent vs OnStreamEvent).
  std::string stream;

  std::vector<EventPtr> events;

  /// Per-stream clock broadcast: after processing `events` the worker
  /// advances each listed stream's negation watermark to the given
  /// timestamp, releasing deferred tail-negation matches even on shards
  /// whose partitions went quiet (their own events would otherwise be the
  /// only clock). Empty = no clock update.
  std::vector<std::pair<std::string, Timestamp>> clocks;

  /// Global dispatch index this batch certifies fully processed: once the
  /// worker acknowledges the batch, every record it can still emit triggers
  /// strictly after this index (the merger's safety bound). 0 = no claim.
  uint64_t progress_hi = 0;

  /// End-of-stream marker: the worker flushes its engine and acknowledges.
  bool flush = false;

  /// Sampled-trace bookkeeping (obs::TraceCollector). Each entry marks
  /// `events[index]` as carrying a live trace: the worker splits the batch
  /// around it and stamps ring/operator spans. Empty (the overwhelmingly
  /// common case, even with tracing on) = process the batch wholesale.
  struct TracedEvent {
    uint64_t trace_id = 0;
    size_t index = 0;
    uint64_t global = 0;
  };
  std::vector<TracedEvent> traced;

  /// MonotonicNs() at ring enqueue; 0 when observability is off. The worker
  /// turns it into the ring-wait latency sample (and the "ring" trace span).
  uint64_t enqueue_ns = 0;
};

/// Adaptive wait used by both ring endpoints: spin briefly (the common case
/// under load is a near-immediate slot), then yield, then sleep so an idle
/// runtime does not burn a core per shard.
class Backoff {
 public:
  void Pause() {
    if (spins_ < kSpinLimit) {
      ++spins_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  void Reset() { spins_ = 0; }

 private:
  static constexpr int kSpinLimit = 64;
  int spins_ = 0;
};

/// Bounded single-producer/single-consumer ring buffer.
///
/// The dispatcher thread is the only pusher and the owning shard worker the
/// only popper, so the ring needs no locks: `tail_` is written by the
/// producer with release ordering and read by the consumer with acquire
/// (and symmetrically for `head_`), which also publishes the slot contents.
/// A full ring applies backpressure to the dispatcher — the stream source
/// slows down instead of queues growing without bound.
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer: attempts to enqueue; false when full. `item` is only moved
  /// from on success.
  bool TryPush(T&& item) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer: blocks (backoff) until enqueued.
  void Push(T&& item) {
    Backoff backoff;
    while (!TryPush(std::move(item))) backoff.Pause();
  }

  /// Consumer: attempts to dequeue; false when empty.
  bool TryPop(T* out) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: blocks until an item arrives; false once the ring is closed
  /// AND drained (the shutdown signal for worker loops).
  bool Pop(T* out) {
    Backoff backoff;
    while (true) {
      if (TryPop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) return TryPop(out);
      backoff.Pause();
    }
  }

  void Close() { closed_.store(true, std::memory_order_release); }

  /// Re-arms a closed ring so a new consumer thread can attach (the elastic
  /// resize drains and joins a worker, then restarts it on the same ring).
  /// Only legal when the previous consumer has exited and the ring is empty.
  void Reopen() { closed_.store(false, std::memory_order_release); }

  size_t capacity() const { return mask_ + 1; }
  /// Racy size estimate, for stats only.
  size_t ApproxSize() const {
    return static_cast<size_t>(tail_.load(std::memory_order_relaxed) -
                               head_.load(std::memory_order_relaxed));
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer cursor
  std::atomic<bool> closed_{false};
};

}  // namespace sase

#endif  // SASE_RUNTIME_EVENT_BATCH_H_
