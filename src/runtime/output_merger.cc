#include "runtime/output_merger.h"

#include <algorithm>
#include <tuple>

#include "util/logging.h"

namespace sase {
namespace {

/// Composite sort key realizing serial emission order; see the class
/// comment in output_merger.h.
using SortKey = std::tuple<uint64_t,        // global trigger dispatch index
                           QueryId,         // plan iteration order
                           int,             // deferred releases (0) before
                                            // fresh matches (1)
                           Timestamp,       // release_ts (pending-map order)
                           Timestamp,       // completing event ts
                           SequenceNumber,  // completing event seq
                           int,             // worker  (tie-break)
                           uint64_t>;       // arrival (tie-break)

SortKey KeyFor(const TaggedRecord& r, uint64_t trigger) {
  const OutputRecord& rec = r.record;
  return SortKey(trigger, r.query, rec.deferred ? 0 : 1,
                 rec.deferred ? rec.release_ts : 0, rec.emit_ts, rec.emit_seq,
                 r.worker, r.arrival);
}

}  // namespace

uint64_t OutputMerger::NoteDispatched(StreamId stream, Timestamp ts,
                                      SequenceNumber seq) {
  if (logs_.size() <= stream) logs_.resize(static_cast<size_t>(stream) + 1);
  StreamLog& log = logs_[stream];
  if (!log.ts.empty() && (ts < log.ts.back() || seq <= log.seq.back())) {
    if (!warned_order_) {
      SASE_LOG_WARN << "OutputMerger: dispatch log out of stream order "
                    << "(stream=" << stream << " ts=" << ts << " seq=" << seq
                    << "); merge order may drift";
      warned_order_ = true;
    }
    if (ts < log.ts.back()) ts = log.ts.back();
  }
  log.ts.push_back(ts);
  log.seq.push_back(seq);
  log.global.push_back(++dispatched_);
  ++live_entries_;
  peak_log_len_ = std::max(peak_log_len_, live_entries_);
  return dispatched_;
}

void OutputMerger::Add(std::vector<TaggedRecord>&& records) {
  if (pending_.empty()) {
    pending_ = std::move(records);
    return;
  }
  pending_.insert(pending_.end(), std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
}

uint64_t OutputMerger::TriggerIndex(const TaggedRecord& record) const {
  if (record.stream >= logs_.size()) return kNoTrigger;
  const StreamLog& log = logs_[record.stream];
  if (record.record.deferred) {
    // First dispatched event of the query's stream with ts strictly greater
    // than the release window's close; until it exists the record is not yet
    // placeable. Compaction never removes it: a prefix is only truncated
    // below a safe index that bounds every live record's trigger.
    auto it = std::upper_bound(log.ts.begin(), log.ts.end(),
                               record.record.release_ts);
    if (it == log.ts.end()) return kNoTrigger;
    return log.global[static_cast<size_t>(it - log.ts.begin())];
  }
  // The completing constituent: seqs are strictly increasing per stream.
  auto it = std::lower_bound(log.seq.begin(), log.seq.end(),
                             record.record.emit_seq);
  if (it == log.seq.end()) return kNoTrigger;
  return log.global[static_cast<size_t>(it - log.seq.begin())];
}

std::vector<TaggedRecord> OutputMerger::Release(const std::vector<bool>& take) {
  std::vector<std::pair<SortKey, size_t>> keyed;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (take[i]) keyed.emplace_back(KeyFor(pending_[i], TriggerIndex(pending_[i])), i);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<TaggedRecord> out;
  out.reserve(keyed.size());
  for (const auto& [key, i] : keyed) out.push_back(std::move(pending_[i]));

  std::vector<TaggedRecord> keep;
  keep.reserve(pending_.size() - out.size());
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!take[i]) keep.push_back(std::move(pending_[i]));
  }
  pending_ = std::move(keep);
  // Stamp each record with its merge ordinal — the runtime-class delivery
  // cursor. The merge order is deterministic (serial-equivalent), and
  // SeedMerged continues the count across recovery, so a record regenerated
  // by journal replay carries the same position it had before the crash.
  for (TaggedRecord& released : out) {
    ++merged_;
    released.record.cursor_runtime_hosted = true;
    released.record.cursor_position = merged_;
  }
  return out;
}

void OutputMerger::Compact(uint64_t safe_index) {
  for (StreamLog& log : logs_) {
    // `global` is strictly increasing: the dead prefix ends at the first
    // entry above the safe index.
    auto it = std::upper_bound(log.global.begin(), log.global.end(), safe_index);
    size_t dead = static_cast<size_t>(it - log.global.begin());
    if (dead < compact_min_) continue;
    log.ts.erase(log.ts.begin(), log.ts.begin() + static_cast<ptrdiff_t>(dead));
    log.seq.erase(log.seq.begin(),
                  log.seq.begin() + static_cast<ptrdiff_t>(dead));
    log.global.erase(log.global.begin(),
                     log.global.begin() + static_cast<ptrdiff_t>(dead));
    live_entries_ -= dead;
    compacted_entries_ += dead;
    ++compactions_;
  }
}

std::vector<TaggedRecord> OutputMerger::DrainReady(uint64_t safe_index) {
  bool any = false;
  std::vector<bool> take(pending_.size(), false);
  for (size_t i = 0; i < pending_.size(); ++i) {
    uint64_t trigger = TriggerIndex(pending_[i]);
    if (trigger != kNoTrigger && trigger <= safe_index) {
      take[i] = true;
      any = true;
    }
  }
  std::vector<TaggedRecord> out;
  if (any) out = Release(take);
  // Everything at or below the safe index is now released and can never be
  // a trigger again; reclaim the prefix.
  Compact(safe_index);
  return out;
}

std::vector<TaggedRecord> OutputMerger::DrainFinal() {
  auto out = Release(std::vector<bool>(pending_.size(), true));
  // The end-of-stream clear reclaims the log like a compaction, but with
  // compaction disabled the counters must stay zero — they document the
  // knob's effect.
  if (live_entries_ > 0 && compact_min_ != static_cast<size_t>(-1)) {
    compacted_entries_ += live_entries_;
    ++compactions_;
  }
  for (StreamLog& log : logs_) {
    log.ts.clear();
    log.seq.clear();
    log.global.clear();
  }
  live_entries_ = 0;
  return out;
}

}  // namespace sase
