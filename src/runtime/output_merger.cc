#include "runtime/output_merger.h"

#include <algorithm>
#include <tuple>

#include "util/logging.h"

namespace sase {
namespace {

/// Composite sort key realizing serial emission order; see the class
/// comment in output_merger.h.
using SortKey = std::tuple<size_t,          // trigger dispatch index
                           QueryId,         // plan iteration order
                           int,             // deferred releases (0) before
                                            // fresh matches (1)
                           Timestamp,       // release_ts (pending-map order)
                           Timestamp,       // completing event ts
                           SequenceNumber,  // completing event seq
                           int,             // worker  (tie-break)
                           uint64_t>;       // arrival (tie-break)

SortKey KeyFor(const TaggedRecord& r, size_t trigger) {
  const OutputRecord& rec = r.record;
  return SortKey(trigger, r.query, rec.deferred ? 0 : 1,
                 rec.deferred ? rec.release_ts : 0, rec.emit_ts, rec.emit_seq,
                 r.worker, r.arrival);
}

}  // namespace

void OutputMerger::NoteDispatched(Timestamp ts, SequenceNumber seq) {
  if (!ts_.empty() && (ts < ts_.back() || seq <= seq_.back())) {
    if (!warned_order_) {
      SASE_LOG_WARN << "OutputMerger: dispatch log out of stream order (ts="
                    << ts << " seq=" << seq << "); merge order may drift";
      warned_order_ = true;
    }
    if (ts < ts_.back()) ts = ts_.back();
  }
  ts_.push_back(ts);
  seq_.push_back(seq);
}

void OutputMerger::Add(std::vector<TaggedRecord>&& records) {
  if (pending_.empty()) {
    pending_ = std::move(records);
    return;
  }
  pending_.insert(pending_.end(), std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
}

size_t OutputMerger::TriggerIndex(const TaggedRecord& record) const {
  if (record.record.deferred) {
    // First dispatched event with ts strictly greater than the release
    // window's close; until it exists the record is not yet placeable.
    auto it = std::upper_bound(ts_.begin(), ts_.end(), record.record.release_ts);
    if (it == ts_.end()) return kNoTrigger;
    return static_cast<size_t>(it - ts_.begin());
  }
  // The completing constituent: seqs are strictly increasing, binary search.
  auto it = std::lower_bound(seq_.begin(), seq_.end(), record.record.emit_seq);
  if (it == seq_.end()) return kNoTrigger;
  return static_cast<size_t>(it - seq_.begin());
}

std::vector<TaggedRecord> OutputMerger::Release(const std::vector<bool>& take) {
  std::vector<std::pair<SortKey, size_t>> keyed;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (take[i]) keyed.emplace_back(KeyFor(pending_[i], TriggerIndex(pending_[i])), i);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<TaggedRecord> out;
  out.reserve(keyed.size());
  for (const auto& [key, i] : keyed) out.push_back(std::move(pending_[i]));

  std::vector<TaggedRecord> keep;
  keep.reserve(pending_.size() - out.size());
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!take[i]) keep.push_back(std::move(pending_[i]));
  }
  pending_ = std::move(keep);
  merged_ += out.size();
  return out;
}

std::vector<TaggedRecord> OutputMerger::DrainReady(Timestamp safe_ts) {
  bool any = false;
  std::vector<bool> take(pending_.size(), false);
  for (size_t i = 0; i < pending_.size(); ++i) {
    size_t trigger = TriggerIndex(pending_[i]);
    if (trigger != kNoTrigger && ts_[trigger] < safe_ts) {
      take[i] = true;
      any = true;
    }
  }
  if (!any) return {};
  return Release(take);
}

std::vector<TaggedRecord> OutputMerger::DrainFinal() {
  return Release(std::vector<bool>(pending_.size(), true));
}

}  // namespace sase
