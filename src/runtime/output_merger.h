#ifndef SASE_RUNTIME_OUTPUT_MERGER_H_
#define SASE_RUNTIME_OUTPUT_MERGER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/match.h"
#include "engine/query_engine.h"

namespace sase {

/// One record captured from a shard engine's output callback, tagged with
/// enough provenance to re-sequence it into serial order.
struct TaggedRecord {
  QueryId query = 0;
  StreamId stream = kDefaultStream;  // input stream of the producing query
  int worker = 0;       // producing worker (final tie-break only)
  uint64_t arrival = 0; // per-worker arrival counter (final tie-break only)
  OutputRecord record;
};

/// Re-sequences shard outputs into the exact order serial execution would
/// have produced, using the serial-order stamp on each OutputRecord (see
/// engine/match.h) plus per-stream dispatch logs.
///
/// Serial execution emits records in *trigger order*: events are processed
/// in dispatch order (the interleaving of OnEvent / OnStreamEvent calls),
/// and while processing one event each plan reading that event's stream (in
/// QueryId order) first releases tail-negation deferrals whose window
/// closed, then emits the matches the event completes. A record's trigger
/// event is therefore
///   - the completing constituent itself (`emit_seq`) for immediate records,
///   - the first event of the query's input stream with timestamp >
///     `release_ts` for deferred (tail-negation) records, or end-of-stream
///     if no such event arrives.
///
/// The merger keeps one dispatch log per input stream (timestamp, seq of
/// every event the runtime forwarded to that stream, in stream order) plus a
/// single global dispatch index numbering all events across streams in
/// dispatch order. Each buffered record's trigger resolves within its
/// query's stream log to a *global* index, and records release sorted by
///   (global trigger index, query id, deferred-before-immediate, release_ts,
///    completing ts, completing seq, worker, arrival).
/// Records from one worker already arrive in this order relative to each
/// other; any two records that tie through `emit_seq` share a completing
/// event and hence a worker, so the worker/arrival tail makes the order
/// total without ever deciding between shards.
///
/// Memory bound: after each DrainReady(safe_index) the log prefix at or
/// below `safe_index` can never be a trigger again — every already-buffered
/// record there was just released, and the caller guarantees no worker can
/// still produce one — so the merger truncates it (amortized: a stream's
/// prefix is dropped once its dead run reaches `compact_min` entries).
/// Steady-state log length is therefore O(dispatch window between drains),
/// independent of total stream length.
///
/// All methods run on the single dispatcher thread.
class OutputMerger {
 public:
  /// Global dispatch index standing for "released at end-of-stream".
  static constexpr uint64_t kNoTrigger = static_cast<uint64_t>(-1);

  /// `compact_min`: dead prefix entries a stream log accumulates before the
  /// prefix is physically truncated (amortizes the erase); SIZE_MAX disables
  /// compaction entirely (the pre-compaction behavior, for benchmarks).
  explicit OutputMerger(size_t compact_min = 1024)
      : compact_min_(compact_min) {}

  /// Appends one dispatched event to `stream`'s dispatch log and advances
  /// the global dispatch clock; returns the event's global dispatch index
  /// (1-based). Events must arrive in stream order per stream:
  /// non-decreasing timestamps, increasing seq.
  uint64_t NoteDispatched(StreamId stream, Timestamp ts, SequenceNumber seq);

  /// Takes ownership of records drained from a worker's output buffer.
  void Add(std::vector<TaggedRecord>&& records);

  /// Releases, in serial order, every buffered record whose trigger event is
  /// known and has global dispatch index <= `safe_index` (the caller's bound
  /// on the latest trigger every worker has fully processed), then compacts
  /// the dead log prefixes.
  std::vector<TaggedRecord> DrainReady(uint64_t safe_index);

  /// End-of-stream: releases everything and clears the logs. Records with a
  /// resolved trigger come first in serial order; records whose release
  /// window never closed follow in per-query flush order (query id,
  /// release_ts, completion order), mirroring QueryEngine::OnFlush.
  std::vector<TaggedRecord> DrainFinal();

  /// Restores the global dispatch clock from a checkpoint (recovery
  /// bootstrap, before any NoteDispatched/Add call): post-recovery indices
  /// continue on the crashed process's scale, so checkpointed positions
  /// (query registration points, window-event indices) remain directly
  /// comparable with indices issued after recovery.
  void SeedDispatched(uint64_t dispatched) { dispatched_ = dispatched; }

  uint64_t merged_count() const { return merged_; }
  size_t pending_count() const { return pending_.size(); }
  uint64_t dispatched_count() const { return dispatched_; }

  // --- dispatch-log introspection ---
  /// Live (non-compacted) entries across all stream logs.
  size_t log_len() const { return live_entries_; }
  /// High-water mark of log_len() over the merger's lifetime.
  size_t peak_log_len() const { return peak_log_len_; }
  /// Prefix truncations performed.
  uint64_t compaction_count() const { return compactions_; }
  /// Total log entries reclaimed by compaction.
  uint64_t compacted_entries() const { return compacted_entries_; }

 private:
  /// Dispatch log of one input stream. The three arrays are parallel;
  /// `global` maps a position to its global dispatch index and is strictly
  /// increasing, so compaction can drop a prefix without renumbering.
  struct StreamLog {
    std::vector<Timestamp> ts;
    std::vector<SequenceNumber> seq;
    std::vector<uint64_t> global;
  };

  uint64_t TriggerIndex(const TaggedRecord& record) const;
  /// Extracts the records marked in `take`, sorted into serial order;
  /// everything else stays pending in arrival order.
  std::vector<TaggedRecord> Release(const std::vector<bool>& take);
  /// Truncates every stream log's prefix of entries with global index
  /// <= `safe_index` once the dead run is worth the erase.
  void Compact(uint64_t safe_index);

  size_t compact_min_;
  std::vector<StreamLog> logs_;  // indexed by StreamId
  std::vector<TaggedRecord> pending_;
  uint64_t dispatched_ = 0;  // global dispatch clock (== last issued index)
  uint64_t merged_ = 0;
  size_t live_entries_ = 0;
  size_t peak_log_len_ = 0;
  uint64_t compactions_ = 0;
  uint64_t compacted_entries_ = 0;
  bool warned_order_ = false;
};

}  // namespace sase

#endif  // SASE_RUNTIME_OUTPUT_MERGER_H_
