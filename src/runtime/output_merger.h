#ifndef SASE_RUNTIME_OUTPUT_MERGER_H_
#define SASE_RUNTIME_OUTPUT_MERGER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/match.h"
#include "engine/query_engine.h"

namespace sase {

/// One record captured from a shard engine's output callback, tagged with
/// enough provenance to re-sequence it into serial order.
struct TaggedRecord {
  QueryId query = 0;
  int worker = 0;       // producing worker (final tie-break only)
  uint64_t arrival = 0; // per-worker arrival counter (final tie-break only)
  OutputRecord record;
};

/// Re-sequences shard outputs into the exact order serial execution would
/// have produced, using the serial-order stamp on each OutputRecord (see
/// engine/match.h) plus the global dispatch log.
///
/// Serial execution emits records in *trigger order*: events are processed
/// in stream order, and while processing one event each plan (in QueryId
/// order) first releases tail-negation deferrals whose window closed, then
/// emits the matches the event completes. A record's trigger event is
/// therefore
///   - the completing constituent itself (`emit_seq`) for immediate records,
///   - the first stream event with timestamp > `release_ts` for deferred
///     (tail-negation) records, or end-of-stream if no such event arrives.
///
/// The merger keeps the dispatch log (timestamp, seq of every event the
/// runtime forwarded, in stream order), resolves each buffered record's
/// trigger to a dispatch index, and releases records sorted by
///   (trigger index, query id, deferred-before-immediate, release_ts,
///    completing ts, completing seq, worker, arrival).
/// Records from one worker already arrive in this order relative to each
/// other; any two records that tie through `emit_seq` share a completing
/// event and hence a worker, so the worker/arrival tail makes the order
/// total without ever deciding between shards.
///
/// All methods run on the single dispatcher thread.
class OutputMerger {
 public:
  /// Appends one dispatched event to the global dispatch log. Events must
  /// arrive in stream order: non-decreasing timestamps, increasing seq.
  void NoteDispatched(Timestamp ts, SequenceNumber seq);

  /// Takes ownership of records drained from a worker's output buffer.
  void Add(std::vector<TaggedRecord>&& records);

  /// Releases, in serial order, every buffered record whose trigger event is
  /// known and has timestamp strictly below `safe_ts` (the caller's bound on
  /// the earliest trigger any worker could still produce).
  std::vector<TaggedRecord> DrainReady(Timestamp safe_ts);

  /// End-of-stream: releases everything. Records with a resolved trigger
  /// come first in serial order; records whose release window never closed
  /// follow in per-query flush order (query id, release_ts, completion
  /// order), mirroring QueryEngine::OnFlush.
  std::vector<TaggedRecord> DrainFinal();

  uint64_t merged_count() const { return merged_; }
  size_t pending_count() const { return pending_.size(); }
  uint64_t dispatched_count() const { return ts_.size(); }

 private:
  // Dispatch index standing for "released at end-of-stream".
  static constexpr size_t kNoTrigger = static_cast<size_t>(-1);

  size_t TriggerIndex(const TaggedRecord& record) const;
  /// Extracts the records marked in `take`, sorted into serial order;
  /// everything else stays pending in arrival order.
  std::vector<TaggedRecord> Release(const std::vector<bool>& take);

  std::vector<Timestamp> ts_;        // dispatch log, parallel arrays
  std::vector<SequenceNumber> seq_;
  std::vector<TaggedRecord> pending_;
  uint64_t merged_ = 0;
  bool warned_order_ = false;
};

}  // namespace sase

#endif  // SASE_RUNTIME_OUTPUT_MERGER_H_
