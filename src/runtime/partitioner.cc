#include "runtime/partitioner.h"

#include <algorithm>

#include "util/string_util.h"

namespace sase {

Partitioner::Partitioner(const Catalog* catalog, std::string key_attr,
                         int shard_count)
    : catalog_(catalog), key_attr_(std::move(key_attr)),
      shard_count_(shard_count) {
  (void)InternStream("");  // the default input is always stream 0
}

AttrIndex Partitioner::KeyIndex(EventTypeId type) const {
  size_t index = static_cast<size_t>(type);
  while (key_index_cache_.size() <= index) {
    EventTypeId id = static_cast<EventTypeId>(key_index_cache_.size());
    AttrIndex attr = catalog_->schema(id).FindAttribute(key_attr_);
    // The virtual timestamp attribute is not a partition key.
    key_index_cache_.push_back(attr == kTimestampAttr ? kInvalidAttr : attr);
  }
  return key_index_cache_[index];
}

int Partitioner::ShardFor(const Event& event) const {
  AttrIndex key = KeyIndex(event.type());
  if (key < 0) {
    // Key-less type: no partition state to respect; spread by arrival.
    return static_cast<int>(event.seq() % static_cast<uint64_t>(shard_count_));
  }
  return static_cast<int>(event.attribute(key).Hash() %
                          static_cast<size_t>(shard_count_));
}

StreamId Partitioner::InternStream(const std::string& stream) {
  auto it = stream_ids_.find(stream);
  if (it != stream_ids_.end()) return it->second;
  StreamId id = static_cast<StreamId>(streams_.size());
  stream_ids_.emplace(stream, id);
  StreamState state;
  state.name = stream;
  state.per_shard.assign(static_cast<size_t>(shard_count_), 0);
  streams_.push_back(std::move(state));
  return id;
}

void Partitioner::Resize(int shard_count) {
  shard_count_ = shard_count;
  for (StreamState& state : streams_) {
    state.per_shard.assign(static_cast<size_t>(shard_count_), 0);
  }
}

StreamId Partitioner::RestoreStream(const std::string& stream, Timestamp clock,
                                    SequenceNumber last_seq, uint64_t events) {
  StreamId id = InternStream(stream);
  StreamState& state = streams_[id];
  state.clock = clock;
  state.last_seq = last_seq;
  state.events = events;
  return id;
}

int Partitioner::Route(StreamId stream, const Event& event) {
  int shard = ShardFor(event);
  StreamState& state = streams_[stream];
  state.clock = event.timestamp();
  state.last_seq = event.seq();
  ++state.events;
  ++state.per_shard[static_cast<size_t>(shard)];
  if (hotkey_capacity_ > 0) {
    AttrIndex key = KeyIndex(event.type());
    if (key >= 0) {
      if (sketches_.size() <= static_cast<size_t>(stream)) {
        sketches_.resize(static_cast<size_t>(stream) + 1);
      }
      HotKeySketch& sketch = sketches_[stream];
      ++sketch.keyed_events;
      sketch.Observe(event.attribute(key), hotkey_capacity_);
    }
  }
  return shard;
}

void Partitioner::HotKeySketch::Observe(const Value& key, size_t capacity) {
  auto it = index.find(key);
  if (it != index.end()) {
    ++slots[it->second].count;
    return;
  }
  if (slots.size() < capacity) {
    index.emplace(key, slots.size());
    slots.push_back(Slot{key, 1, 0});
    return;
  }
  // Space-saving eviction: the newcomer takes over the coldest slot and
  // inherits its count as the overestimate bound.
  size_t coldest = 0;
  for (size_t i = 1; i < slots.size(); ++i) {
    if (slots[i].count < slots[coldest].count) coldest = i;
  }
  Slot& slot = slots[coldest];
  index.erase(slot.key);
  slot.error = slot.count;
  slot.count += 1;
  slot.key = key;
  index.emplace(key, coldest);
}

void Partitioner::EnableHotKeyTracking(size_t capacity) {
  hotkey_capacity_ = capacity;
  sketches_.clear();
}

uint64_t Partitioner::keyed_events(StreamId stream) const {
  size_t index = static_cast<size_t>(stream);
  return index < sketches_.size() ? sketches_[index].keyed_events : 0;
}

std::vector<Partitioner::HotKeyStat> Partitioner::HotKeys(
    StreamId stream) const {
  std::vector<HotKeyStat> stats;
  size_t index = static_cast<size_t>(stream);
  if (index >= sketches_.size()) return stats;
  const HotKeySketch& sketch = sketches_[index];
  stats.reserve(sketch.slots.size());
  for (const HotKeySketch::Slot& slot : sketch.slots) {
    stats.push_back(
        HotKeyStat{slot.key, slot.count, slot.error, ShardForKey(slot.key)});
  }
  std::sort(stats.begin(), stats.end(),
            [](const HotKeyStat& a, const HotKeyStat& b) {
              return a.count > b.count;
            });
  return stats;
}

bool Partitioner::Shardable(const AnalyzedQuery& query, const Catalog& catalog,
                            const std::string& key_attr,
                            const PlanOptions& options) {
  if (query.has_aggregates) return false;
  if (query.positive_slots.empty()) return false;

  // Class 1: stateless single-event queries.
  if (query.positive_slots.size() == 1 && query.negations.empty()) return true;

  // Class 2: the partition equivalence class covers the shard key on every
  // component, and the plan actually evaluates with value partitioning (so
  // per-partition construction order is independent of other partitions).
  if (!options.use_partitioning) return false;
  if (!query.partitioned()) return false;
  for (size_t i = 0; i < query.positive_slots.size(); ++i) {
    int slot = query.positive_slots[i];
    const VarInfo& var = query.vars[static_cast<size_t>(slot)];
    AttrIndex attr = query.partition_attrs[i];
    if (attr < 0) return false;
    const EventSchema& schema = catalog.schema(var.type_id);
    if (!EqualsIgnoreCase(schema.attribute_name(attr), key_attr)) return false;
  }
  for (const NegationSpec& spec : query.negations) {
    if (spec.partition_attr < 0) return false;
    const EventSchema& schema = catalog.schema(spec.type_id);
    if (!EqualsIgnoreCase(schema.attribute_name(spec.partition_attr),
                          key_attr)) {
      return false;
    }
  }
  return true;
}

}  // namespace sase
