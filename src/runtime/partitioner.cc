#include "runtime/partitioner.h"

#include <algorithm>

#include "util/string_util.h"
#include "util/value_codec.h"

namespace sase {

Partitioner::Partitioner(const Catalog* catalog, std::string key_attr,
                         int shard_count)
    : catalog_(catalog), key_attr_(std::move(key_attr)),
      shard_count_(shard_count) {
  (void)InternStream("");  // the default input is always stream 0
}

AttrIndex Partitioner::KeyIndex(EventTypeId type) const {
  size_t index = static_cast<size_t>(type);
  while (key_index_cache_.size() <= index) {
    EventTypeId id = static_cast<EventTypeId>(key_index_cache_.size());
    AttrIndex attr = catalog_->schema(id).FindAttribute(key_attr_);
    // The virtual timestamp attribute is not a partition key.
    key_index_cache_.push_back(attr == kTimestampAttr ? kInvalidAttr : attr);
  }
  return key_index_cache_[index];
}

int Partitioner::ShardFor(const Event& event) const {
  AttrIndex key = KeyIndex(event.type());
  if (key < 0) {
    // Key-less type: no partition state to respect; spread by arrival.
    return static_cast<int>(event.seq() % static_cast<uint64_t>(shard_count_));
  }
  return static_cast<int>(event.attribute(key).Hash() %
                          static_cast<size_t>(shard_count_));
}

AttrIndex Partitioner::SecondaryIndex(const std::string& attr,
                                      EventTypeId type) const {
  std::vector<AttrIndex>& cache = secondary_index_cache_[attr];
  size_t index = static_cast<size_t>(type);
  while (cache.size() <= index) {
    EventTypeId id = static_cast<EventTypeId>(cache.size());
    AttrIndex found = catalog_->schema(id).FindAttribute(attr);
    // The virtual timestamp attribute is not a partition key.
    cache.push_back(found == kTimestampAttr ? kInvalidAttr : found);
  }
  return cache[index];
}

int Partitioner::ShardFor(StreamId stream, const Event& event) {
  AttrIndex key = KeyIndex(event.type());
  if (key < 0) {
    return static_cast<int>(event.seq() % static_cast<uint64_t>(shard_count_));
  }
  const Value& key_value = event.attribute(key);
  if (static_cast<size_t>(stream) < splits_.size() &&
      !splits_[stream].empty()) {
    auto it = splits_[stream].find(key_value);
    if (it != splits_[stream].end()) {
      SplitRoute& route = it->second;
      if (route.mode == SplitMode::kSpread) {
        return static_cast<int>(route.rr++ %
                                static_cast<uint64_t>(shard_count_));
      }
      AttrIndex secondary = SecondaryIndex(route.secondary_attr, event.type());
      if (secondary >= 0) {
        // Sub-partition by (key, secondary value): each (key, secondary)
        // pair pins to one shard — a pure function of the pair, so a
        // recovered process re-routes identically — and a covering query's
        // sub-partition state never straddles shards. Integer secondaries
        // offset by their raw value rather than a hash: they are typically
        // dense enumerations (area ids), and mod-spacing spreads
        // consecutive values across ALL shards where hashing a handful of
        // values into a handful of shards routinely collides half of them
        // onto one — squandering the split.
        const Value& sec = event.attribute(secondary);
        size_t offset = sec.type() == ValueType::kInt
                            ? static_cast<size_t>(sec.AsInt())
                            : sec.Hash();
        size_t base = key_value.Hash() * 0x9e3779b97f4a7c15ull;
        return static_cast<int>((base + offset) %
                                static_cast<size_t>(shard_count_));
      }
      // Type lacks the secondary attribute: keep the primary pin (see the
      // header — only queries indifferent to routing observe such events).
    }
  }
  return static_cast<int>(key_value.Hash() %
                          static_cast<size_t>(shard_count_));
}

void Partitioner::Split(StreamId stream, const Value& key, SplitMode mode,
                        const std::string& secondary_attr) {
  if (splits_.size() <= static_cast<size_t>(stream)) {
    splits_.resize(static_cast<size_t>(stream) + 1);
  }
  SplitRoute route;
  route.mode = mode;
  route.secondary_attr = secondary_attr;
  auto [it, inserted] = splits_[stream].insert_or_assign(key, std::move(route));
  (void)it;
  if (inserted) ++split_count_;
}

bool Partitioner::Unsplit(StreamId stream, const Value& key) {
  if (static_cast<size_t>(stream) >= splits_.size()) return false;
  if (splits_[stream].erase(key) == 0) return false;
  --split_count_;
  return true;
}

bool Partitioner::IsSplit(StreamId stream, const Value& key) const {
  return static_cast<size_t>(stream) < splits_.size() &&
         splits_[stream].count(key) > 0;
}

std::vector<Partitioner::SplitInfo> Partitioner::Splits() const {
  std::vector<SplitInfo> out;
  out.reserve(split_count_);
  for (size_t s = 0; s < splits_.size(); ++s) {
    for (const auto& [key, route] : splits_[s]) {
      out.push_back(SplitInfo{static_cast<StreamId>(s), key, route.mode,
                              route.secondary_attr});
    }
  }
  // Order by the type-tagged encoding (the SPLIT line payload itself):
  // ToString aliases across types (int 7 vs string "7"), which would leave
  // ties to unordered_map iteration order and let checkpoint bytes differ
  // between a run and its recovered twin.
  std::sort(out.begin(), out.end(), [](const SplitInfo& a, const SplitInfo& b) {
    if (a.stream != b.stream) return a.stream < b.stream;
    return EncodeValue(a.key) < EncodeValue(b.key);
  });
  return out;
}

StreamId Partitioner::InternStream(const std::string& stream) {
  auto it = stream_ids_.find(stream);
  if (it != stream_ids_.end()) return it->second;
  StreamId id = static_cast<StreamId>(streams_.size());
  stream_ids_.emplace(stream, id);
  StreamState state;
  state.name = stream;
  state.per_shard.assign(static_cast<size_t>(shard_count_), 0);
  streams_.push_back(std::move(state));
  return id;
}

void Partitioner::Resize(int shard_count) {
  shard_count_ = shard_count;
  for (StreamState& state : streams_) {
    state.per_shard.assign(static_cast<size_t>(shard_count_), 0);
  }
}

StreamId Partitioner::RestoreStream(const std::string& stream, Timestamp clock,
                                    SequenceNumber last_seq, uint64_t events) {
  StreamId id = InternStream(stream);
  StreamState& state = streams_[id];
  state.clock = clock;
  state.last_seq = last_seq;
  state.events = events;
  return id;
}

int Partitioner::Route(StreamId stream, const Event& event) {
  int shard = ShardFor(stream, event);
  StreamState& state = streams_[stream];
  state.clock = event.timestamp();
  state.last_seq = event.seq();
  ++state.events;
  ++state.per_shard[static_cast<size_t>(shard)];
  if (hotkey_capacity_ > 0) {
    AttrIndex key = KeyIndex(event.type());
    if (key >= 0) {
      if (sketches_.size() <= static_cast<size_t>(stream)) {
        sketches_.resize(static_cast<size_t>(stream) + 1);
      }
      HotKeySketch& sketch = sketches_[stream];
      ++sketch.keyed_events;
      sketch.Observe(event.attribute(key), hotkey_capacity_);
    }
  }
  return shard;
}

void Partitioner::HotKeySketch::Observe(const Value& key, size_t capacity) {
  auto it = index.find(key);
  if (it != index.end()) {
    ++slots[it->second].count;
    return;
  }
  if (slots.size() < capacity) {
    index.emplace(key, slots.size());
    slots.push_back(Slot{key, 1, 0});
    return;
  }
  // Space-saving eviction: the newcomer takes over the coldest slot and
  // inherits its count as the overestimate bound. Counts only grow, so the
  // minimum is non-decreasing: pop the first queued candidate still at
  // min_count (matching the naive scan's lowest-index tie-break) and only
  // rescan all slots when the queue drains — amortized O(1) per cold key.
  size_t coldest = slots.size();
  while (cold_head < cold_queue.size()) {
    size_t candidate = cold_queue[cold_head];
    if (slots[candidate].count == min_count) {
      coldest = candidate;
      break;
    }
    ++cold_head;  // grew past min_count since the rescan; skip for good
  }
  if (coldest == slots.size()) {
    min_count = slots[0].count;
    for (size_t i = 1; i < slots.size(); ++i) {
      if (slots[i].count < min_count) min_count = slots[i].count;
    }
    cold_queue.clear();
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].count == min_count) cold_queue.push_back(i);
    }
    cold_head = 0;
    coldest = cold_queue[0];
  }
  ++cold_head;  // the slot is about to leave min_count
  Slot& slot = slots[coldest];
  index.erase(slot.key);
  slot.error = slot.count;
  slot.count += 1;
  slot.key = key;
  index.emplace(key, coldest);
}

void Partitioner::EnableHotKeyTracking(size_t capacity) {
  hotkey_capacity_ = capacity;
  if (capacity == 0) {
    sketches_.clear();
    return;
  }
  // Re-arm resets slot contents only: `keyed_events` is the cumulative share
  // denominator and must survive a capacity change.
  for (HotKeySketch& sketch : sketches_) {
    sketch.slots.clear();
    sketch.index.clear();
    sketch.cold_queue.clear();
    sketch.cold_head = 0;
    sketch.min_count = 0;
  }
}

uint64_t Partitioner::keyed_events(StreamId stream) const {
  size_t index = static_cast<size_t>(stream);
  return index < sketches_.size() ? sketches_[index].keyed_events : 0;
}

std::vector<Partitioner::HotKeyStat> Partitioner::HotKeys(
    StreamId stream) const {
  std::vector<HotKeyStat> stats;
  size_t index = static_cast<size_t>(stream);
  if (index >= sketches_.size()) return stats;
  const HotKeySketch& sketch = sketches_[index];
  stats.reserve(sketch.slots.size());
  for (const HotKeySketch::Slot& slot : sketch.slots) {
    stats.push_back(
        HotKeyStat{slot.key, slot.count, slot.error, ShardForKey(slot.key)});
  }
  std::sort(stats.begin(), stats.end(),
            [](const HotKeyStat& a, const HotKeyStat& b) {
              return a.count > b.count;
            });
  return stats;
}

bool Partitioner::Shardable(const AnalyzedQuery& query, const Catalog& catalog,
                            const std::string& key_attr,
                            const PlanOptions& options) {
  if (query.has_aggregates) return false;
  if (query.positive_slots.empty()) return false;

  // Class 1: stateless single-event queries.
  if (query.positive_slots.size() == 1 && query.negations.empty()) return true;

  // Class 2: the partition equivalence class covers the shard key on every
  // component, and the plan actually evaluates with value partitioning (so
  // per-partition construction order is independent of other partitions).
  if (!options.use_partitioning) return false;
  if (!query.partitioned()) return false;
  for (size_t i = 0; i < query.positive_slots.size(); ++i) {
    int slot = query.positive_slots[i];
    const VarInfo& var = query.vars[static_cast<size_t>(slot)];
    AttrIndex attr = query.partition_attrs[i];
    if (attr < 0) return false;
    const EventSchema& schema = catalog.schema(var.type_id);
    if (!EqualsIgnoreCase(schema.attribute_name(attr), key_attr)) return false;
  }
  for (const NegationSpec& spec : query.negations) {
    if (spec.partition_attr < 0) return false;
    const EventSchema& schema = catalog.schema(spec.type_id);
    if (!EqualsIgnoreCase(schema.attribute_name(spec.partition_attr),
                          key_attr)) {
      return false;
    }
  }
  return true;
}

}  // namespace sase
