#ifndef SASE_RUNTIME_PARTITIONER_H_
#define SASE_RUNTIME_PARTITIONER_H_

#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/catalog.h"
#include "core/event.h"
#include "core/stream.h"
#include "engine/planner.h"
#include "query/analyzer.h"

namespace sase {

/// Routes events to shards by a key attribute (default `TagId` — the natural
/// partition key of an RFID stream) and decides which queries can be
/// distributed across those shards without changing results.
///
/// The partitioner is stream-aware: every named `FROM` input the runtime
/// sees is interned to a dense StreamId (0 = the default input), and each
/// stream carries its own dispatch stamp — clock (last dispatched
/// timestamp), event count and per-shard routing counts. Shardability is a
/// property of the query alone; events of every stream hash by the same key
/// attribute, so one shard owns a key value across all streams.
///
/// Routing rules:
///   - Events whose type carries the key attribute hash by key *value*, so
///     every event of one tag lands on the same shard (NULL keys form their
///     own partition). This preserves, per shard, exactly the sub-stream a
///     key-partitioned query's value partition would see under serial
///     execution.
///   - Events whose type lacks the key attribute ("key-less events") carry
///     no partition state a sharded pattern query could reference — such
///     queries only touch key-bearing types — so they are spread by sequence
///     number for load balance. Only stateless single-event queries observe
///     them, and those are correct under any routing.
class Partitioner {
 public:
  /// Per-stream dispatch stamp, updated by Route on the dispatcher thread.
  struct StreamState {
    std::string name;  // lowercased FROM name; empty = default input
    Timestamp clock = std::numeric_limits<Timestamp>::min();  // last ts
    SequenceNumber last_seq = 0;
    uint64_t events = 0;
    std::vector<uint64_t> per_shard;  // routed events per shard
  };

  Partitioner(const Catalog* catalog, std::string key_attr, int shard_count);

  /// Shard owning `event`'s partition, in [0, shard_count), ignoring any
  /// hot-key splits (the pre-mitigation pure key-hash routing).
  int ShardFor(const Event& event) const;

  /// Split-aware routing for `stream`: like ShardFor, but a key in the
  /// stream's split table reroutes per its SplitRoute — round-robin for
  /// kSpread (advances the route's cursor, hence non-const), sub-hash by
  /// (key, secondary attribute) for kSecondary. An event whose type lacks
  /// the secondary attribute keeps the primary key-hash pin: such types are
  /// referenced by no stateful query of the split (every component of those
  /// queries carries the covering attribute), so any routing is sound for
  /// the queries that do observe them.
  int ShardFor(StreamId stream, const Event& event);

  /// Interns a (lowercased) stream name; the empty string is always stream
  /// 0, the default input. Dispatcher thread only.
  StreamId InternStream(const std::string& stream);

  /// Routes one dispatched event of `stream`: ShardFor plus the stream's
  /// dispatch stamp (clock, counts). Dispatcher thread only.
  int Route(StreamId stream, const Event& event);

  /// Rehashes the partition map onto `shard_count` shards (the runtime's
  /// Resize calls this at its quiesce point). Stream clocks and cumulative
  /// event counts survive; the per-shard routing counts restart at zero —
  /// they describe the current layout, which just changed.
  void Resize(int shard_count);

  /// Interns `stream` and overwrites its dispatch stamp with a
  /// checkpointed one (recovery bootstrap). The per-shard routing counts
  /// restart at zero — they describe the recovered process's layout.
  /// Dispatcher thread only, before any Route call on the stream.
  StreamId RestoreStream(const std::string& stream, Timestamp clock,
                         SequenceNumber last_seq, uint64_t events);

  /// True when `type` carries the key attribute.
  bool HasKey(EventTypeId type) const { return KeyIndex(type) >= 0; }

  // --- hot-key split table (mitigation routing state) ---
  //
  // A split reroutes ONE (stream, key value) pair away from its key-hash
  // shard. The runtime decides soundness (see ShardedRuntime's mitigation
  // policy); the partitioner just routes. Splits survive Resize — spread
  // keys round-robin over the new shard count, secondary keys re-hash onto
  // it — and are checkpointed by the runtime so recovery re-routes
  // identically. The spread round-robin cursor is deliberately NOT
  // checkpointed: spread applies only where any routing is sound.

  /// How a split key's events are rerouted.
  enum class SplitMode {
    kSpread,     // round-robin across shards (replicable queries only)
    kSecondary,  // sub-hash by (key, secondary attribute value)
  };

  /// One split-table entry, as exported for checkpoints and reports.
  struct SplitInfo {
    StreamId stream = kDefaultStream;
    Value key;
    SplitMode mode = SplitMode::kSpread;
    std::string secondary_attr;  // empty for kSpread
  };

  /// Installs (or overwrites) a split for `key` on `stream`. Dispatcher
  /// thread only (like Route).
  void Split(StreamId stream, const Value& key, SplitMode mode,
             const std::string& secondary_attr = std::string());
  /// Removes `key`'s split on `stream`; false when none existed.
  bool Unsplit(StreamId stream, const Value& key);
  bool IsSplit(StreamId stream, const Value& key) const;
  /// All active splits, ordered (stream, type-tagged key encoding) for
  /// deterministic checkpoint bytes; the encoding cannot alias across value
  /// types, so the order is a total one.
  std::vector<SplitInfo> Splits() const;
  size_t split_count() const { return split_count_; }

  // --- hot-key accounting (space-saving top-K sketch) ---
  //
  // Skewed key distributions are the sharded runtime's failure mode: one
  // hot tag pins a shard while its siblings idle. The sketch (Metwally et
  // al.'s space-saving algorithm) keeps the K heaviest keys per stream in
  // O(K) memory with a deterministic overestimate bound, which is exactly
  // the input a future hot-key mitigation needs — and what the
  // `sase_partition_hotkey_*` metrics and the StatsReport section expose.

  /// One sketch entry. `count` overestimates the key's true frequency by at
  /// most `error` (the count inherited from the colder key it evicted), so
  /// `count - error` is a guaranteed lower bound.
  struct HotKeyStat {
    Value key;
    uint64_t count = 0;
    uint64_t error = 0;
    int shard = 0;  // owner under the current layout
  };

  /// Arms per-stream hot-key accounting with `capacity` sketch slots; 0
  /// disarms and drops existing sketches. The runtime arms this only when a
  /// metrics registry is attached, so disabled-observability dispatch stays
  /// a null branch. Dispatcher thread only.
  void EnableHotKeyTracking(size_t capacity);
  bool hotkey_tracking() const { return hotkey_capacity_ > 0; }

  /// Keyed events routed on `stream` — the denominator a hot key's share is
  /// measured against (key-less events spread round-robin and cannot be
  /// hot). 0 when tracking is disarmed or the stream is unknown.
  uint64_t keyed_events(StreamId stream) const;

  /// Sketch contents for `stream`, hottest first, with live shard owners.
  std::vector<HotKeyStat> HotKeys(StreamId stream) const;

  /// Shard owning `key` under the current layout (the value-hash half of
  /// ShardFor, for callers attributing per-key queue lag).
  int ShardForKey(const Value& key) const {
    return static_cast<int>(key.Hash() % static_cast<size_t>(shard_count_));
  }

  const std::string& key_attr() const { return key_attr_; }
  int shard_count() const { return shard_count_; }
  /// All interned streams (index = StreamId); streams().front() is the
  /// default input.
  const std::vector<StreamState>& streams() const { return streams_; }

  /// True when `query`, compiled under `options`, can be mirrored into every
  /// shard engine with each shard seeing only its key partition's events and
  /// the union of shard outputs equal to serial output. The query's input
  /// stream is irrelevant: a FROM-stream query shards exactly like a
  /// default-input query, it just reads a different feed on every shard.
  /// Two classes qualify:
  ///
  ///   1. Stateless single-event queries (one positive variable, no
  ///      negation, no aggregates): every event is evaluated on its own, so
  ///      any disjoint routing yields the serial result set.
  ///   2. Key-partitioned pattern queries: the analyzer's equivalence class
  ///      covers the shard key on every positive component AND every negated
  ///      component, and the plan runs with value partitioning enabled. A
  ///      match then only ever combines (and is only ever suppressed by)
  ///      events of one key value, all of which live on one shard.
  ///
  /// Aggregates disqualify: RETURN-clause aggregates fold running state over
  /// the full composite-event stream, which sharding would split.
  static bool Shardable(const AnalyzedQuery& query, const Catalog& catalog,
                        const std::string& key_attr,
                        const PlanOptions& options);

 private:
  AttrIndex KeyIndex(EventTypeId type) const;

  /// Per-stream space-saving sketch: when full, the coldest slot is evicted
  /// and the newcomer inherits its count as `error`.
  struct HotKeySketch {
    struct Slot {
      Value key;
      uint64_t count = 0;
      uint64_t error = 0;
    };
    std::vector<Slot> slots;  // unordered; located via `index`
    std::unordered_map<Value, size_t, ValueHash> index;  // key -> slot
    /// Cumulative across EnableHotKeyTracking re-arms: the share
    /// denominator must not reset when only the sketch capacity changes.
    uint64_t keyed_events = 0;

    // Amortized-O(1) coldest-slot tracking: slot counts only grow, so the
    // minimum count is non-decreasing. `cold_queue[cold_head..]` holds, in
    // ascending slot order, the slots whose count equalled `min_count` at
    // the last rescan; eviction pops the first entry still at min_count
    // (reproducing the naive scan's lowest-index tie-break), and a drained
    // queue triggers one O(capacity) rescan — amortized O(1) per cold key
    // instead of O(capacity) on the dispatch hot path.
    std::vector<size_t> cold_queue;
    size_t cold_head = 0;
    uint64_t min_count = 0;

    void Observe(const Value& key, size_t capacity);
  };

  /// Routing override for one hot key (see SplitMode).
  struct SplitRoute {
    SplitMode mode = SplitMode::kSpread;
    std::string secondary_attr;
    uint64_t rr = 0;  // kSpread round-robin cursor (not checkpointed)
  };

  /// Index of `attr` in `type`'s schema, memoized per attribute name (the
  /// secondary-attribute analogue of KeyIndex).
  AttrIndex SecondaryIndex(const std::string& attr, EventTypeId type) const;

  const Catalog* catalog_;
  std::string key_attr_;
  int shard_count_;
  // Key attribute index per EventTypeId; grown lazily from the single
  // dispatcher thread (the runtime routes from one thread by design).
  mutable std::vector<AttrIndex> key_index_cache_;
  std::vector<StreamState> streams_;
  std::unordered_map<std::string, StreamId> stream_ids_;
  std::vector<HotKeySketch> sketches_;  // aligned with streams_ when armed
  size_t hotkey_capacity_ = 0;          // 0 = hot-key accounting disarmed
  /// Per-stream split tables (indexed by StreamId; may trail streams_).
  std::vector<std::unordered_map<Value, SplitRoute, ValueHash>> splits_;
  size_t split_count_ = 0;
  /// Secondary-attribute index caches, one per attribute name (grown lazily
  /// from the dispatcher thread, like key_index_cache_).
  mutable std::unordered_map<std::string, std::vector<AttrIndex>>
      secondary_index_cache_;
};

}  // namespace sase

#endif  // SASE_RUNTIME_PARTITIONER_H_
