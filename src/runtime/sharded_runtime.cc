#include "runtime/sharded_runtime.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "query/analyzer.h"
#include "query/parser.h"
#include "util/string_util.h"

namespace sase {

ShardedRuntime::ShardedRuntime(const Catalog* catalog, RuntimeConfig config,
                               EngineInit engine_init)
    : catalog_(catalog), config_(config),
      partitioner_(catalog, config_.partition_key,
                   std::max(1, config_.shard_count)),
      merger_(config_.log_compact_min) {
  config_.shard_count = std::max(1, config_.shard_count);
  if (config_.batch_size == 0) config_.batch_size = 1;
  stream_queries_.resize(partitioner_.streams().size());

  // shard workers 0..N-1, broadcast worker N.
  for (int i = 0; i <= config_.shard_count; ++i) {
    auto worker = std::make_unique<Worker>(i, config_.queue_capacity);
    worker->engine =
        std::make_unique<QueryEngine>(catalog_, config_.time_config);
    if (engine_init) engine_init(*worker->engine);
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread(&ShardedRuntime::WorkerLoop, this, worker.get());
  }
}

ShardedRuntime::~ShardedRuntime() {
  for (auto& worker : workers_) worker->queue.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ShardedRuntime::WorkerLoop(Worker* worker) {
  EventBatch batch;
  while (worker->queue.Pop(&batch)) {
    if (batch.stream.empty()) {
      for (const EventPtr& event : batch.events) {
        worker->engine->OnEvent(event);
      }
    } else {
      worker->engine->OnStreamEvents(batch.stream, batch.events);
    }
    for (const auto& [stream, ts] : batch.clocks) {
      if (stream.empty()) {
        worker->engine->OnWatermark(ts);
      } else {
        worker->engine->OnStreamWatermark(stream, ts);
      }
    }
    if (batch.flush) worker->engine->OnFlush();
    // Publish the progress claim only after the engine finished the batch:
    // every record this worker can still emit now triggers strictly after
    // progress_hi in global dispatch order.
    if (batch.progress_hi > 0) {
      worker->progress_hi.store(batch.progress_hi, std::memory_order_release);
    }
    // Ack only once the whole batch — events, clocks, flush — is done;
    // WaitDrained relies on this to know the engine is quiescent.
    worker->batches_processed.fetch_add(1, std::memory_order_release);
  }
}

OutputCallback ShardedRuntime::CaptureCallback(Worker* worker, QueryId id,
                                               StreamId stream) {
  return [worker, id, stream](const OutputRecord& record) {
    std::lock_guard<std::mutex> lock(worker->out_mutex);
    TaggedRecord tagged;
    tagged.query = id;
    tagged.stream = stream;
    tagged.worker = worker->index;
    tagged.arrival = worker->arrival_counter++;
    tagged.record = record;
    worker->out.push_back(std::move(tagged));
  };
}

ShardedRuntime::StreamQueries& ShardedRuntime::QueriesFor(StreamId stream) {
  if (stream_queries_.size() <= stream) {
    stream_queries_.resize(static_cast<size_t>(stream) + 1);
  }
  return stream_queries_[stream];
}

Result<QueryId> ShardedRuntime::Register(const std::string& text,
                                         OutputCallback callback,
                                         PlanOptions options) {
  auto parsed = Parser::Parse(text);
  if (!parsed.ok()) return parsed.status();
  Analyzer analyzer(catalog_, config_.time_config);
  auto analyzed = analyzer.Analyze(std::move(parsed).value());
  if (!analyzed.ok()) return analyzed.status();
  std::string stream_name = ToLower(analyzed.value().parsed.from_stream);
  bool sharded = Partitioner::Shardable(analyzed.value(), *catalog_,
                                        config_.partition_key, options);

  // Quiesce so engine mutation cannot race in-flight batches; the push of
  // the next batch publishes the new plan to the worker.
  WaitIdle();

  StreamId stream = partitioner_.InternStream(stream_name);
  QueryId id = next_id_++;
  if (sharded) {
    for (int s = 0; s < config_.shard_count; ++s) {
      auto result = workers_[static_cast<size_t>(s)]->engine->RegisterAs(
          id, text,
          CaptureCallback(workers_[static_cast<size_t>(s)].get(), id, stream),
          options);
      if (!result.ok()) {
        for (int undo = 0; undo < s; ++undo) {
          (void)workers_[static_cast<size_t>(undo)]->engine->Unregister(id);
        }
        return result.status();
      }
    }
    ++sharded_queries_;
    ++QueriesFor(stream).sharded;
  } else {
    Worker& host = broadcast_worker();
    auto result = host.engine->RegisterAs(
        id, text, CaptureCallback(&host, id, stream), options);
    if (!result.ok()) return result.status();
    ++broadcast_queries_;
    ++QueriesFor(stream).broadcast;
  }
  queries_.emplace(id, QueryEntry{std::move(callback), sharded, stream});
  return id;
}

Status ShardedRuntime::Unregister(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  WaitIdle();
  if (it->second.sharded) {
    for (int s = 0; s < config_.shard_count; ++s) {
      (void)workers_[static_cast<size_t>(s)]->engine->Unregister(id);
    }
    --sharded_queries_;
    --QueriesFor(it->second.stream).sharded;
  } else {
    (void)broadcast_worker().engine->Unregister(id);
    --broadcast_queries_;
    --QueriesFor(it->second.stream).broadcast;
  }
  queries_.erase(it);
  return Status::Ok();
}

bool ShardedRuntime::IsSharded(QueryId id) const {
  auto it = queries_.find(id);
  return it != queries_.end() && it->second.sharded;
}

void ShardedRuntime::AppendToWorker(Worker* worker, const std::string& stream,
                                    const EventPtr& event, uint64_t global) {
  // One batch carries one stream; cut on a switch so the worker can route
  // the whole batch with a single stream lookup.
  if (!worker->pending.events.empty() && worker->pending.stream != stream) {
    FlushBatch(worker, nullptr, /*flush=*/false);
  }
  worker->pending.stream = stream;
  worker->pending.events.push_back(event);
  worker->pending_last_global = global;
  if (worker->pending.events.size() >= config_.batch_size) {
    FlushBatch(worker, nullptr, /*flush=*/false);
  }
}

void ShardedRuntime::FlushBatch(Worker* worker, const Clocks* clocks,
                                bool flush) {
  if (worker->pending.events.empty() && clocks == nullptr && !flush) return;
  if (clocks != nullptr) {
    worker->pending.clocks = *clocks;
    // The clocks release every deferral triggered at or below the current
    // dispatch point, so the batch certifies the full prefix.
    worker->pending.progress_hi = events_dispatched_;
  } else if (!worker->pending.events.empty() && !multi_routed_) {
    // Single-stream traffic: the batch's own events are the clock — any
    // record the worker can emit after them triggers later in dispatch
    // order. With interleaved streams this claim would be wrong (another
    // stream's deferral could trigger earlier), so progress then only
    // advances at clock broadcasts.
    worker->pending.progress_hi = worker->pending_last_global;
  }
  worker->pending.flush = flush;
  ++worker->batches_enqueued;
  worker->queue.Push(std::move(worker->pending));
  worker->pending = EventBatch{};
}

void ShardedRuntime::OnEvent(const EventPtr& event) {
  Dispatch(kDefaultStream, std::string(), event);
}

void ShardedRuntime::OnStreamEvent(const std::string& stream,
                                   const EventPtr& event) {
  // Streams are few and arrive in runs; resolving (lowercase + intern) only
  // on a name change keeps the per-event dispatch path allocation-free.
  if (!last_stream_valid_ || stream != last_stream_raw_) {
    last_stream_raw_ = stream;
    last_stream_name_ = ToLower(stream);
    last_stream_id_ = partitioner_.InternStream(last_stream_name_);
    last_stream_valid_ = true;
  }
  Dispatch(last_stream_id_, last_stream_name_, event);
}

void ShardedRuntime::Dispatch(StreamId stream, const std::string& name,
                              const EventPtr& event) {
  uint64_t global =
      merger_.NoteDispatched(stream, event->timestamp(), event->seq());
  events_dispatched_ = global;
  int shard = partitioner_.Route(stream, *event);

  const StreamQueries& hosts = QueriesFor(stream);
  if (hosts.sharded > 0 || hosts.broadcast > 0) {
    if (!any_routed_) {
      any_routed_ = true;
      routed_stream_ = stream;
    } else if (stream != routed_stream_) {
      multi_routed_ = true;
    }
    if (hosts.sharded > 0) {
      AppendToWorker(workers_[static_cast<size_t>(shard)].get(), name, event,
                     global);
    }
    if (hosts.broadcast > 0) {
      AppendToWorker(&broadcast_worker(), name, event, global);
    }
  }

  if (config_.merge_interval > 0 &&
      events_dispatched_ % config_.merge_interval == 0) {
    // Broadcast every stream's clock so quiet shards release tail-negation
    // deferrals, then surface whatever is safely ordered and compact the
    // dispatch log underneath it.
    BroadcastClocks();
    DeliverReady();
  }
}

ShardedRuntime::Clocks ShardedRuntime::CurrentClocks() const {
  Clocks clocks;
  for (const Partitioner::StreamState& state : partitioner_.streams()) {
    if (state.events > 0) clocks.emplace_back(state.name, state.clock);
  }
  return clocks;
}

void ShardedRuntime::BroadcastClocks() {
  Clocks clocks = CurrentClocks();
  if (clocks.empty()) return;
  for (auto& worker : workers_) {
    if (WorkerHostsQueries(*worker)) {
      FlushBatch(worker.get(), &clocks, /*flush=*/false);
    }
  }
}

bool ShardedRuntime::WorkerHostsQueries(const Worker& worker) const {
  if (worker.index == config_.shard_count) return broadcast_queries_ > 0;
  return sharded_queries_ > 0;
}

void ShardedRuntime::WaitDrained(Worker* worker) {
  Backoff backoff;
  while (worker->batches_processed.load(std::memory_order_acquire) !=
         worker->batches_enqueued) {
    backoff.Pause();
  }
}

void ShardedRuntime::WaitIdle() {
  BroadcastClocks();
  for (auto& worker : workers_) {
    FlushBatch(worker.get(), nullptr, /*flush=*/false);
  }
  for (auto& worker : workers_) WaitDrained(worker.get());
  // With every queue drained, all emitted records are buffered here and any
  // future record triggers strictly later in dispatch order, so everything
  // at or below the current dispatch point is safe to release.
  CollectOutputs();
  Deliver(merger_.DrainReady(events_dispatched_));
}

void ShardedRuntime::OnFlush() {
  for (auto& worker : workers_) {
    FlushBatch(worker.get(), nullptr, /*flush=*/true);
  }
  for (auto& worker : workers_) WaitDrained(worker.get());
  CollectOutputs();
  Deliver(merger_.DrainFinal());
}

void ShardedRuntime::CollectOutputs() {
  for (auto& worker : workers_) {
    std::vector<TaggedRecord> drained;
    {
      std::lock_guard<std::mutex> lock(worker->out_mutex);
      drained.swap(worker->out);
    }
    if (!drained.empty()) merger_.Add(std::move(drained));
  }
}

void ShardedRuntime::DeliverReady() {
  uint64_t threshold = std::numeric_limits<uint64_t>::max();
  bool any = false;
  for (auto& worker : workers_) {
    if (!WorkerHostsQueries(*worker)) continue;
    threshold = std::min(
        threshold, worker->progress_hi.load(std::memory_order_acquire));
    any = true;
  }
  if (!any || threshold == 0) return;
  CollectOutputs();
  Deliver(merger_.DrainReady(threshold));
}

void ShardedRuntime::Deliver(std::vector<TaggedRecord> records) {
  for (TaggedRecord& tagged : records) {
    auto it = queries_.find(tagged.query);
    if (it == queries_.end() || !it->second.callback) continue;
    it->second.callback(tagged.record);
  }
}

QueryEngine::EngineStats ShardedRuntime::Stats() {
  WaitIdle();
  QueryEngine::EngineStats total;
  for (auto& worker : workers_) total += worker->engine->Stats();
  // A sharded query is mirrored into every shard engine; report logical
  // queries, not plan instances.
  total.queries = queries_.size();
  return total;
}

ShardedRuntime::RuntimeStats ShardedRuntime::FullStats() {
  RuntimeStats stats;
  stats.engine = Stats();  // quiesces
  stats.events_dispatched = events_dispatched_;
  stats.records_merged = merger_.merged_count();
  stats.merge_pending = merger_.pending_count();
  stats.dispatch_log_len = merger_.log_len();
  stats.peak_dispatch_log_len = merger_.peak_log_len();
  stats.log_compactions = merger_.compaction_count();
  stats.log_entries_compacted = merger_.compacted_entries();
  stats.stream_count = partitioner_.streams().size();
  return stats;
}

std::string ShardedRuntime::StatsReport() {
  WaitIdle();
  std::ostringstream out;
  out << "runtime shards=" << config_.shard_count
      << " queries=" << queries_.size() << " (sharded=" << sharded_queries_
      << " broadcast=" << broadcast_queries_ << ")"
      << " dispatched=" << events_dispatched_
      << " merged=" << merger_.merged_count()
      << " pending=" << merger_.pending_count() << "\n";
  out << "dispatch log: len=" << merger_.log_len()
      << " peak=" << merger_.peak_log_len()
      << " compactions=" << merger_.compaction_count() << " ("
      << merger_.compacted_entries() << " entries reclaimed)\n";
  for (size_t s = 0; s < partitioner_.streams().size(); ++s) {
    const Partitioner::StreamState& state = partitioner_.streams()[s];
    StreamQueries queries = s < stream_queries_.size() ? stream_queries_[s]
                                                       : StreamQueries{};
    out << "stream " << (state.name.empty() ? "<default>" : state.name)
        << ": events=" << state.events << " queries=" << queries.sharded
        << "+" << queries.broadcast << " shards=[";
    for (size_t i = 0; i < state.per_shard.size(); ++i) {
      if (i > 0) out << " ";
      out << state.per_shard[i];
    }
    out << "]\n";
  }
  for (auto& worker : workers_) {
    QueryEngine::EngineStats stats = worker->engine->Stats();
    out << (worker->index == config_.shard_count
                ? std::string("broadcast")
                : "shard " + std::to_string(worker->index))
        << ": events=" << stats.events_processed
        << " sequences=" << stats.matches_scanned
        << " outputs=" << stats.outputs << " errors=" << stats.eval_errors
        << "\n";
  }
  return out.str();
}

}  // namespace sase
