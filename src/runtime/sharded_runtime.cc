#include "runtime/sharded_runtime.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "obs/report.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/value_codec.h"

namespace sase {

ShardedRuntime::ShardedRuntime(const Catalog* catalog, RuntimeConfig config,
                               EngineInit engine_init)
    : catalog_(catalog), config_(config),
      partitioner_(catalog, config_.partition_key,
                   std::max(1, config_.shard_count)),
      merger_(config_.log_compact_min), policy_(config.elastic),
      batch_policy_(config.batch,
                    config.batch_size == 0 ? 1 : config.batch_size),
      engine_init_(std::move(engine_init)) {
  config_.shard_count = std::max(1, config_.shard_count);
  if (config_.batch_size == 0) config_.batch_size = 1;
  stream_queries_.resize(partitioner_.streams().size());
  last_check_time_ = std::chrono::steady_clock::now();
  batch_check_time_ = last_check_time_;
  obs_stamp_ = config_.metrics != nullptr || config_.tracer != nullptr;
  if (config_.metrics != nullptr) {
    dispatch_merge_latency_ =
        config_.metrics->GetHistogram("sase_runtime_dispatch_merge_latency_ns");
    if (config_.batch.enabled) {
      batch_size_hist_ =
          config_.metrics->GetHistogram("sase_runtime_batch_size");
    }
  }
  // Hot-key accounting rides the metrics switch — without a registry the
  // dispatch path keeps its null-branch-only overhead contract — unless
  // mitigation is on, which consumes the sketch regardless of metrics.
  if (config_.metrics != nullptr || config_.hotkey_mitigation) {
    partitioner_.EnableHotKeyTracking(config_.hotkey_sketch_size);
  }
  // Either zeroed knob leaves mitigation armed but inert (an empty sketch
  // never reports a hot key; a zero cadence never runs the policy tick) —
  // an operator who opted in should hear about it rather than see silence.
  if (config_.hotkey_mitigation && config_.hotkey_sketch_size == 0) {
    SASE_LOG_WARN << "hotkey_mitigation is on but hotkey_sketch_size is 0: "
                     "no hot key can be detected, so no key will ever split";
  }
  if (config_.hotkey_mitigation && config_.hotkey_min_events == 0) {
    SASE_LOG_WARN << "hotkey_mitigation is on but hotkey_min_events is 0: "
                     "the mitigation check never runs, so no key will ever "
                     "split";
  }

  // shard workers 0..N-1, broadcast worker N.
  for (int i = 0; i <= config_.shard_count; ++i) {
    workers_.push_back(MakeWorker(i));
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread(&ShardedRuntime::WorkerLoop, this, worker.get());
  }
}

std::unique_ptr<ShardedRuntime::Worker> ShardedRuntime::MakeWorker(int index) {
  auto worker = std::make_unique<Worker>(index, config_.queue_capacity);
  worker->engine = std::make_unique<QueryEngine>(catalog_, config_.time_config);
  worker->engine->set_scan_sharing(config_.scan_sharing);
  if (engine_init_) engine_init_(*worker->engine);
  worker->lane = index == config_.shard_count
                     ? std::string("broadcast")
                     : "shard-" + std::to_string(index);
  if (config_.metrics != nullptr) {
    worker->ring_wait = config_.metrics->GetHistogram(
        "sase_shard_ring_wait_ns{shard=\"" +
        (index == config_.shard_count ? std::string("broadcast")
                                      : std::to_string(index)) +
        "\"}");
    worker->engine->AttachMetrics(config_.metrics, worker->lane);
    worker->engine->ConfigureSlowQueryLog(config_.slow_query_threshold_ns,
                                          config_.slow_query_log_size);
  }
  return worker;
}

ShardedRuntime::~ShardedRuntime() {
  for (auto& worker : workers_) worker->queue.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ShardedRuntime::WorkerLoop(Worker* worker) {
  EventBatch batch;
  while (worker->queue.Pop(&batch)) {
    obs::TraceCollector* tracer = config_.tracer;
    uint64_t pop_ns = 0;
    if (batch.enqueue_ns > 0) {
      pop_ns = obs::MonotonicNs();
      if (worker->ring_wait != nullptr) {
        worker->ring_wait->Record(
            static_cast<int64_t>(pop_ns - batch.enqueue_ns));
      }
    }
    if (batch.traced.empty() || tracer == nullptr) {
      if (batch.stream.empty()) {
        worker->engine->OnEvents(batch.events);
      } else {
        worker->engine->OnStreamEvents(batch.stream, batch.events);
      }
    } else {
      // The batch carries trace-sampled events: deliver per event (same
      // semantics as the wholesale call — OnEvents is a loop over OnEvent)
      // so each sampled event's "operator" span covers exactly its own
      // operator-chain work. Traced batches are rare even with tracing on.
      size_t next = 0;
      for (size_t i = 0; i < batch.events.size(); ++i) {
        bool traced =
            next < batch.traced.size() && batch.traced[next].index == i;
        uint64_t op_start = traced ? obs::MonotonicNs() : 0;
        if (batch.stream.empty()) {
          worker->engine->OnEvent(batch.events[i]);
        } else {
          worker->engine->OnStreamEvent(batch.stream, batch.events[i]);
        }
        if (traced) {
          const EventBatch::TracedEvent& mark = batch.traced[next++];
          if (pop_ns > 0) {
            tracer->AddSpan(mark.trace_id, "ring", worker->lane,
                            batch.enqueue_ns, pop_ns, mark.global);
          }
          tracer->AddSpan(mark.trace_id, "operator", worker->lane, op_start,
                          obs::MonotonicNs(), mark.global);
        }
      }
    }
    for (const auto& [stream, ts] : batch.clocks) {
      if (stream.empty()) {
        worker->engine->OnWatermark(ts);
      } else {
        worker->engine->OnStreamWatermark(stream, ts);
      }
    }
    if (batch.flush) worker->engine->OnFlush();
    // Publish the progress claim only after the engine finished the batch:
    // every record this worker can still emit now triggers strictly after
    // progress_hi in global dispatch order.
    if (batch.progress_hi > 0) {
      worker->progress_hi.store(batch.progress_hi, std::memory_order_release);
    }
    // Ack only once the whole batch — events, clocks, flush — is done;
    // WaitDrained relies on this to know the engine is quiescent.
    worker->batches_processed.fetch_add(1, std::memory_order_release);
  }
}

OutputCallback ShardedRuntime::CaptureCallback(Worker* worker, QueryId id,
                                               StreamId stream) {
  return [worker, id, stream](const OutputRecord& record) {
    std::lock_guard<std::mutex> lock(worker->out_mutex);
    TaggedRecord tagged;
    tagged.query = id;
    tagged.stream = stream;
    tagged.worker = worker->index;
    tagged.arrival = worker->arrival_counter++;
    tagged.record = record;
    worker->out.push_back(std::move(tagged));
  };
}

ShardedRuntime::StreamQueries& ShardedRuntime::QueriesFor(StreamId stream) {
  if (stream_queries_.size() <= stream) {
    stream_queries_.resize(static_cast<size_t>(stream) + 1);
  }
  return stream_queries_[stream];
}

Result<ShardedRuntime::QueryEntry> ShardedRuntime::AnalyzeEntry(
    const std::string& text, OutputCallback callback, PlanOptions options) {
  auto parsed = Parser::Parse(text);
  if (!parsed.ok()) return parsed.status();
  Analyzer analyzer(catalog_, config_.time_config);
  auto analyzed = analyzer.Analyze(std::move(parsed).value());
  if (!analyzed.ok()) return analyzed.status();
  std::string stream_name = ToLower(analyzed.value().parsed.from_stream);

  QueryEntry entry;
  entry.callback = std::move(callback);
  entry.sharded = Partitioner::Shardable(analyzed.value(), *catalog_,
                                         config_.partition_key, options);
  entry.stream = partitioner_.InternStream(stream_name);
  entry.text = text;
  entry.options = options;
  entry.registered_at = events_dispatched_;
  entry.window_ticks = analyzed.value().window_ticks;
  entry.stateful = analyzed.value().positive_slots.size() > 1 ||
                   !analyzed.value().negations.empty();
  // Secondary-partition candidates: covering attributes beyond the shard
  // key (the key's own equivalence class is the primary routing, not a
  // sub-partition candidate).
  for (const std::string& attr : analyzed.value().covering_attrs) {
    if (!EqualsIgnoreCase(attr, config_.partition_key)) {
      entry.covering_attrs.push_back(attr);
    }
  }
  return entry;
}

Status ShardedRuntime::InstallQuery(QueryId id, QueryEntry entry) {
  StreamQueries& hosts = QueriesFor(entry.stream);
  if (entry.sharded) {
    SASE_RETURN_IF_ERROR(RegisterIntoShards(id, entry));
    ++sharded_queries_;
    ++hosts.sharded;
    if (entry.stateful) {
      ++hosts.sharded_stateful;
      if (entry.window_ticks < 0) {
        ++unbounded_sharded_;
      } else {
        hosts.max_window = std::max(hosts.max_window, entry.window_ticks);
      }
    }
  } else {
    Worker& host = broadcast_worker();
    auto result = host.engine->RegisterAs(
        id, entry.text, CaptureCallback(&host, id, entry.stream),
        entry.options);
    if (!result.ok()) return result.status();
    ++broadcast_queries_;
    ++hosts.broadcast;
    if (entry.stateful) {
      ++hosts.broadcast_stateful;
      if (entry.window_ticks >= 0 && config_.retain_for_checkpoint) {
        hosts.max_window = std::max(hosts.max_window, entry.window_ticks);
      }
    }
  }
  queries_.emplace(id, std::move(entry));
  next_id_ = std::max(next_id_, id + 1);
  hotkey_refused_.clear();  // the query set changed; refusals may not hold
  return Status::Ok();
}

Result<QueryId> ShardedRuntime::Register(const std::string& text,
                                         OutputCallback callback,
                                         PlanOptions options) {
  auto entry = AnalyzeEntry(text, std::move(callback), options);
  if (!entry.ok()) return entry.status();

  // Quiesce so engine mutation cannot race in-flight batches; the push of
  // the next batch publishes the new plan to the worker.
  WaitIdle();

  // Active hot-key splits were sound for the query set that existed when
  // they were installed; a new stateful query can invalidate them.
  SASE_RETURN_IF_ERROR(ResolveSplitConflicts(entry.value()));

  QueryId id = next_id_;
  SASE_RETURN_IF_ERROR(InstallQuery(id, std::move(entry).value()));
  return id;
}

Status ShardedRuntime::RegisterIntoShards(QueryId id, const QueryEntry& entry) {
  for (int s = 0; s < config_.shard_count; ++s) {
    Worker* worker = workers_[static_cast<size_t>(s)].get();
    auto result = worker->engine->RegisterAs(
        id, entry.text, CaptureCallback(worker, id, entry.stream),
        entry.options);
    if (!result.ok()) {
      for (int undo = 0; undo < s; ++undo) {
        (void)workers_[static_cast<size_t>(undo)]->engine->Unregister(id);
      }
      return result.status();
    }
  }
  return Status::Ok();
}

Status ShardedRuntime::Unregister(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  WaitIdle();
  if (it->second.sharded) {
    for (int s = 0; s < config_.shard_count; ++s) {
      (void)workers_[static_cast<size_t>(s)]->engine->Unregister(id);
    }
  } else {
    (void)broadcast_worker().engine->Unregister(id);
  }
  DropQuery(it);
  return Status::Ok();
}

void ShardedRuntime::DropQuery(std::map<QueryId, QueryEntry>::iterator it) {
  StreamQueries& hosts = QueriesFor(it->second.stream);
  if (it->second.sharded) {
    --sharded_queries_;
    --hosts.sharded;
    if (it->second.stateful) {
      --hosts.sharded_stateful;
      if (it->second.window_ticks < 0) --unbounded_sharded_;
    }
  } else {
    --broadcast_queries_;
    --hosts.broadcast;
    if (it->second.stateful) --hosts.broadcast_stateful;
  }
  queries_.erase(it);
  RecomputeStreamWindows();
  PruneReplayAll();  // retention windows may have shrunk or vanished
  hotkey_refused_.clear();  // the query set changed; refusals may not hold
}

void ShardedRuntime::RecomputeStreamWindows() {
  for (StreamQueries& hosts : stream_queries_) hosts.max_window = -1;
  for (const auto& [id, entry] : queries_) {
    if (!entry.stateful || entry.window_ticks < 0) continue;
    if (!entry.sharded && !config_.retain_for_checkpoint) continue;
    StreamQueries& hosts = QueriesFor(entry.stream);
    hosts.max_window = std::max(hosts.max_window, entry.window_ticks);
  }
}

Status ShardedRuntime::Resize(int shard_count) {
  shard_count = std::max(1, shard_count);
  if (shard_count == config_.shard_count) return Status::Ok();
  int old_count = config_.shard_count;
  SASE_RETURN_IF_ERROR(RebuildShards(
      shard_count, [this, shard_count] { partitioner_.Resize(shard_count); }));
  ++resizes_;
  if (shard_count > old_count) {
    ++grows_;
  } else {
    ++shrinks_;
  }
  return Status::Ok();
}

Status ShardedRuntime::RebuildShards(int shard_count,
                                     const std::function<void()>& mutate) {
  if (unbounded_sharded_ > 0) {
    return Status::FailedPrecondition(
        "cannot rebuild shard engines: a sharded stateful query has no "
        "WITHIN window, so the in-flight replay window is unbounded");
  }
  resizing_ = true;

  // Quiesce: drain every batch, broadcast clocks, deliver everything
  // merge-safe. After this the merger buffers no undelivered records (every
  // emitted record's trigger is at or below the dispatch point), so the
  // only state to carry across the rebuild lives in the engines.
  WaitIdle();

  // Park every worker thread; the engines are now exclusively ours.
  for (auto& worker : workers_) worker->queue.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }

  // The broadcast engine's state (running aggregates, non-key patterns) is
  // layout-independent — carry the worker over whole. Shard workers are
  // rebuilt from scratch and their engines re-derived by replay; bank their
  // counters first so fleet-wide Stats() stays continuous.
  int old_count = config_.shard_count;
  for (int s = 0; s < old_count; ++s) {
    retired_engine_stats_ += workers_[static_cast<size_t>(s)]->engine->Stats();
  }
  std::unique_ptr<Worker> broadcast = std::move(workers_.back());
  {
    // The layout swap is the one moment workers_ is inconsistent; exclude
    // the cross-thread Healthy() probe for its duration and restart its
    // stall clocks (fresh workers start with zero progress by design).
    std::lock_guard<std::mutex> lock(health_mutex_);
    workers_.clear();
    health_.clear();
    config_.shard_count = shard_count;
    mutate();
    for (int i = 0; i < shard_count; ++i) workers_.push_back(MakeWorker(i));
    broadcast->index = shard_count;
    broadcast->queue.Reopen();
    workers_.push_back(std::move(broadcast));
  }

  events_replayed_ += ReplayIntoShards();

  for (auto& worker : workers_) {
    worker->thread = std::thread(&ShardedRuntime::WorkerLoop, this, worker.get());
  }
  resizing_ = false;
  return Status::Ok();
}

uint64_t ShardedRuntime::ReplayIntoShards() {
  // Sharded queries in registration order (ids are handed out
  // monotonically, so id order == registration order and registered_at is
  // non-decreasing along it).
  std::vector<std::pair<QueryId, const QueryEntry*>> sharded;
  for (const auto& [id, entry] : queries_) {
    if (entry.sharded) sharded.emplace_back(id, &entry);
  }
  size_t next = 0;
  std::vector<QueryId> failed;
  auto register_up_to = [&](uint64_t global) {
    // A query registered at dispatch index R saw exactly the events with
    // global index > R; re-registering it here, between the same events,
    // reproduces the serial construction history.
    while (next < sharded.size() && sharded[next].second->registered_at < global) {
      Status status = RegisterIntoShards(sharded[next].first, *sharded[next].second);
      if (!status.ok()) {
        // Should be impossible (the same text registered before), but a
        // query silently absent from the engines while queries_ lists it
        // would drop its output forever — drop the query loudly instead.
        SASE_LOG_WARN << "resize replay could not re-register query "
                      << sharded[next].first << " (" << status.ToString()
                      << "); the query is dropped";
        failed.push_back(sharded[next].first);
      }
      ++next;
    }
  };

  // Replay the in-flight window under the NEW partition map, k-way merging
  // the per-stream deques back into global dispatch order. Every replayed
  // event was fully processed (and its output delivered) before the resize,
  // so the records this regenerates are duplicates — they are discarded
  // below; what matters is the engine state left behind: exactly the
  // partial matches and parked deferrals a serial engine would still hold.
  uint64_t replayed = 0;
  std::vector<size_t> pos(replay_.size(), 0);
  while (true) {
    size_t best = replay_.size();
    uint64_t best_global = std::numeric_limits<uint64_t>::max();
    for (size_t s = 0; s < replay_.size(); ++s) {
      if (pos[s] < replay_[s].size() && replay_[s][pos[s]].global < best_global) {
        best_global = replay_[s][pos[s]].global;
        best = s;
      }
    }
    if (best == replay_.size()) break;
    const ReplayEntry& entry = replay_[best][pos[best]++];
    register_up_to(entry.global);
    QueryEngine& engine =
        *workers_[static_cast<size_t>(partitioner_.ShardFor(
             static_cast<StreamId>(best), *entry.event))]
             ->engine;
    const std::string& name = partitioner_.streams()[best].name;
    if (name.empty()) {
      engine.OnEvent(entry.event);
    } else {
      engine.OnStreamEvent(name, entry.event);
    }
    ++replayed;
  }
  register_up_to(std::numeric_limits<uint64_t>::max());

  // Drop queries that failed to re-register so IsSharded/stats never lie
  // about a query no engine hosts (partial registrations were already
  // rolled back by RegisterIntoShards).
  for (QueryId id : failed) {
    auto it = queries_.find(id);
    if (it != queries_.end()) DropQuery(it);
  }

  // Muted clock broadcast: deferrals whose release window already closed
  // were released (and delivered) before the resize; re-release them into
  // the discard pile so only genuinely parked deferrals survive.
  for (const Partitioner::StreamState& state : partitioner_.streams()) {
    if (state.events == 0) continue;
    for (int s = 0; s < config_.shard_count; ++s) {
      if (state.name.empty()) {
        workers_[static_cast<size_t>(s)]->engine->OnWatermark(state.clock);
      } else {
        workers_[static_cast<size_t>(s)]->engine->OnStreamWatermark(state.name,
                                                                    state.clock);
      }
    }
  }

  // Discard the replay output wholesale (worker threads are parked, but the
  // capture callbacks still take the lock — keep them honest).
  for (int s = 0; s < config_.shard_count; ++s) {
    Worker* worker = workers_[static_cast<size_t>(s)].get();
    std::lock_guard<std::mutex> lock(worker->out_mutex);
    worker->out.clear();
    worker->arrival_counter = 0;
  }
  return replayed;
}

void ShardedRuntime::MaybeAutoResize() {
  // Schedule off the policy's sanitized copy of the config (it clamps
  // check_interval to >= 1 etc.), so one validated view exists.
  const ElasticConfig& elastic = policy_.config();
  if (events_dispatched_ - last_check_global_ < elastic.check_interval) {
    return;
  }
  auto now = std::chrono::steady_clock::now();
  if (unbounded_sharded_ > 0) {
    // Resize would refuse anyway; keep the sampling window honest but
    // don't churn the policy (or warn every cycle) about the impossible.
    last_check_global_ = events_dispatched_;
    last_check_time_ = now;
    return;
  }
  LoadSample sample;
  sample.shards = config_.shard_count;
  double frac_sum = 0;
  for (int s = 0; s < config_.shard_count; ++s) {
    const SpscRing<EventBatch>& queue = workers_[static_cast<size_t>(s)]->queue;
    frac_sum += static_cast<double>(queue.ApproxSize()) /
                static_cast<double>(queue.capacity());
  }
  sample.avg_queue_frac = frac_sum / config_.shard_count;
  double seconds = std::chrono::duration<double>(now - last_check_time_).count();
  if (seconds > 0) {
    sample.events_per_sec_per_shard =
        static_cast<double>(events_dispatched_ - last_check_global_) /
        seconds / config_.shard_count;
  }
  last_check_global_ = events_dispatched_;
  last_check_time_ = now;

  ElasticDecision decision = policy_.Evaluate(sample);
  if (decision == ElasticDecision::kHold) return;
  int target = policy_.NextShardCount(decision, config_.shard_count);
  if (target == config_.shard_count) return;
  Status status = Resize(target);
  if (!status.ok()) {
    SASE_LOG_WARN << "elastic resize to " << target
                  << " shards failed: " << status.ToString();
  }
}

Result<ShardedRuntime::CheckpointState> ShardedRuntime::ExportCheckpoint() {
  if (resizing_) {
    return Status::FailedPrecondition(
        "cannot checkpoint during a Resize: the shard layout is mid-change");
  }

  // Quiesce: after WaitIdle every in-flight batch is drained and all
  // merge-safe output is delivered, so the only live state is in the
  // engines — which is serialized directly below (snapshot v2); no
  // window-replayability precondition remains.
  WaitIdle();

  CheckpointState state;
  state.shard_count = config_.shard_count;
  state.partition_key = config_.partition_key;
  state.events_dispatched = events_dispatched_;
  state.records_merged = merger_.merged_count();
  state.any_routed = any_routed_;
  state.routed_stream = routed_stream_;
  state.multi_routed = multi_routed_;
  for (const auto& [id, entry] : queries_) {
    state.queries.push_back(CheckpointState::Query{
        id, entry.text, entry.options, entry.registered_at});
  }
  for (const Partitioner::StreamState& stream : partitioner_.streams()) {
    state.streams.push_back(CheckpointState::Stream{
        stream.name, stream.clock, stream.last_seq, stream.events});
  }
  for (StreamId s = 0; s < replay_.size(); ++s) {
    for (const ReplayEntry& entry : replay_[s]) {
      state.window.push_back(CheckpointState::WindowEvent{s, entry.global,
                                                          entry.event});
    }
  }
  for (const Partitioner::SplitInfo& split : partitioner_.Splits()) {
    state.splits.push_back(CheckpointState::Split{
        split.stream, static_cast<int>(split.mode), split.key,
        split.secondary_attr});
  }

  // Direct operator-state serialization: one payload per query per hosting
  // engine (a sharded query has a plan instance in every shard engine),
  // plus each engine's own counters. The workers are parked on their rings
  // after WaitIdle, so reading the engines here is race-free.
  state.has_engine_state = true;
  for (const auto& [id, entry] : queries_) {
    if (entry.sharded) {
      for (int s = 0; s < config_.shard_count; ++s) {
        auto payload =
            workers_[static_cast<size_t>(s)]->engine->SerializeState(id);
        if (!payload.ok()) return payload.status();
        state.plan_states.push_back(
            CheckpointState::PlanState{s, id, std::move(payload).value()});
      }
    } else {
      auto payload = broadcast_worker().engine->SerializeState(id);
      if (!payload.ok()) return payload.status();
      state.plan_states.push_back(CheckpointState::PlanState{
          broadcast_index(), id, std::move(payload).value()});
    }
  }
  for (const auto& worker : workers_) {
    state.plan_states.push_back(CheckpointState::PlanState{
        worker->index, 0, worker->engine->SerializeEngineState()});
  }
  return state;
}

Status ShardedRuntime::RestoreCheckpoint(const CheckpointState& state,
                                         const CallbackResolver& callbacks) {
  if (events_dispatched_ != 0 || !queries_.empty()) {
    return Status::FailedPrecondition(
        "RestoreCheckpoint requires a freshly constructed runtime");
  }
  if (state.shard_count != config_.shard_count ||
      state.partition_key != config_.partition_key) {
    return Status::InvalidArgument(
        "runtime shape mismatch: checkpoint was taken at " +
        std::to_string(state.shard_count) + " shards / key '" +
        state.partition_key + "'");
  }

  // Park the worker threads; until the restart below, the engines are
  // exclusively ours — the same exclusivity Resize establishes.
  for (auto& worker : workers_) worker->queue.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }

  // Per-stream dispatch stamps first: the muted clock broadcast below and
  // all future routing read them.
  for (const CheckpointState::Stream& stream : state.streams) {
    partitioner_.RestoreStream(stream.name, stream.clock, stream.last_seq,
                               stream.events);
  }
  if (stream_queries_.size() < partitioner_.streams().size()) {
    stream_queries_.resize(partitioner_.streams().size());
  }

  // Hot-key splits before any replay or routing: a secondary-split key's
  // sub-partition state lives on the shard the (key, secondary) sub-hash
  // picks, so the recovered process must route identically from the start.
  for (const CheckpointState::Split& split : state.splits) {
    if (split.stream >= partitioner_.streams().size()) {
      return Status::InvalidArgument(
          "hot-key split references unknown stream");
    }
    if (split.mode != static_cast<int>(Partitioner::SplitMode::kSpread) &&
        split.mode != static_cast<int>(Partitioner::SplitMode::kSecondary)) {
      return Status::InvalidArgument("unknown hot-key split mode " +
                                     std::to_string(split.mode));
    }
    partitioner_.Split(split.stream, split.key,
                       static_cast<Partitioner::SplitMode>(split.mode),
                       split.secondary_attr);
  }

  // Checkpointed queries in id (= registration) order; ids are handed out
  // monotonically, so registered_at is non-decreasing along this order.
  std::vector<const CheckpointState::Query*> queries;
  queries.reserve(state.queries.size());
  for (const CheckpointState::Query& query : state.queries) {
    queries.push_back(&query);
  }
  std::sort(queries.begin(), queries.end(),
            [](const CheckpointState::Query* a, const CheckpointState::Query* b) {
              return a->id < b->id;
            });
  size_t next = 0;
  auto register_up_to = [&](uint64_t global) -> Status {
    while (next < queries.size() && queries[next]->registered_at < global) {
      const CheckpointState::Query& query = *queries[next];
      auto entry = AnalyzeEntry(query.text,
                                callbacks ? callbacks(query.id) : nullptr,
                                query.options);
      if (!entry.ok()) return entry.status();
      entry.value().registered_at = query.registered_at;
      SASE_RETURN_IF_ERROR(InstallQuery(query.id, std::move(entry).value()));
      ++next;
    }
    return Status::Ok();
  };

  if (state.has_engine_state) {
    // Snapshot v2: direct operator-state restore. Register everything, load
    // each hosting engine's serialized state wholesale, and refill the
    // resize replay buffer from the window events. No muted replay and no
    // watermark re-silencing: the restored engines hold exactly the stacks,
    // negation buffers, parked deferrals and aggregate accumulators the
    // checkpointed engines held at the quiesce point.
    SASE_RETURN_IF_ERROR(
        register_up_to(std::numeric_limits<uint64_t>::max()));
    std::set<std::pair<int, QueryId>> restored;
    for (const CheckpointState::PlanState& plan : state.plan_states) {
      if (plan.worker < 0 ||
          static_cast<size_t>(plan.worker) >= workers_.size()) {
        return Status::InvalidArgument(
            "engine-state payload references worker " +
            std::to_string(plan.worker) + " of a " +
            std::to_string(config_.shard_count) + "-shard runtime");
      }
      QueryEngine& engine = *workers_[static_cast<size_t>(plan.worker)]->engine;
      Status loaded = plan.query == 0
                          ? engine.RestoreEngineState(plan.data)
                          : engine.RestoreState(plan.query, plan.data);
      if (!loaded.ok()) {
        return Status::InvalidArgument(
            "cannot restore engine state of query #" +
            std::to_string(plan.query) + " on worker " +
            std::to_string(plan.worker) + ": " + loaded.ToString());
      }
      restored.emplace(plan.worker, plan.query);
    }
    // Completeness: every registered query must have received a payload on
    // every engine hosting it. A payload silently missing (lost section,
    // corrupted kind field) would otherwise restore the query with empty
    // operator state — exactly the state loss checkpoints exist to prevent.
    for (const auto& [id, entry] : queries_) {
      if (entry.sharded) {
        for (int s = 0; s < config_.shard_count; ++s) {
          if (restored.count({s, id}) == 0) {
            return Status::InvalidArgument(
                "snapshot carries no engine-state payload for query #" +
                std::to_string(id) + " on shard " + std::to_string(s));
          }
        }
      } else if (restored.count({broadcast_index(), id}) == 0) {
        return Status::InvalidArgument(
            "snapshot carries no engine-state payload for query #" +
            std::to_string(id) + " on the broadcast engine");
      }
    }
    // Likewise each worker's engine-counter payload (query id 0): losing
    // one would silently reset events_processed_ and break the stats
    // continuity the checkpoint guarantees. Only enforced when the state
    // carries runtime payloads at all — a snapshot taken by a runtime-less
    // (serial-only) system legitimately has none.
    if (!state.plan_states.empty()) {
      for (const auto& worker : workers_) {
        if (restored.count({worker->index, 0}) == 0) {
          return Status::InvalidArgument(
              "snapshot carries no engine-counter payload for worker " +
              std::to_string(worker->index));
        }
      }
    }
    for (const CheckpointState::WindowEvent& entry : state.window) {
      if (entry.stream >= partitioner_.streams().size()) {
        return Status::InvalidArgument(
            "window event references unknown stream");
      }
      if (replay_.size() <= entry.stream) {
        replay_.resize(static_cast<size_t>(entry.stream) + 1);
      }
      replay_[entry.stream].push_back(ReplayEntry{entry.global, entry.event});
      ++replay_len_;
    }
    return FinishRestore(state);
  }

  // v1 snapshot: no serialized engine state — rebuild by muted replay of
  // the in-flight window in original dispatch order (k-way merge of the
  // per-stream runs by global index), re-registering each query between the
  // same two events it was originally registered between. This is the
  // Resize replay generalized to a fresh broadcast engine: the replay
  // output is discarded below, and the muted clock broadcast re-parks
  // deferrals whose release was already delivered before the checkpoint.
  std::vector<size_t> pos(partitioner_.streams().size(), 0);
  std::vector<std::vector<const CheckpointState::WindowEvent*>> runs(
      partitioner_.streams().size());
  for (const CheckpointState::WindowEvent& entry : state.window) {
    if (entry.stream >= runs.size()) {
      return Status::InvalidArgument("window event references unknown stream");
    }
    runs[entry.stream].push_back(&entry);
  }
  while (true) {
    size_t best = runs.size();
    uint64_t best_global = std::numeric_limits<uint64_t>::max();
    for (size_t s = 0; s < runs.size(); ++s) {
      if (pos[s] < runs[s].size() && runs[s][pos[s]]->global < best_global) {
        best_global = runs[s][pos[s]]->global;
        best = s;
      }
    }
    if (best == runs.size()) break;
    const CheckpointState::WindowEvent& entry = *runs[best][pos[best]++];
    SASE_RETURN_IF_ERROR(register_up_to(entry.global));
    const StreamQueries& hosts = QueriesFor(entry.stream);
    const std::string& name = partitioner_.streams()[entry.stream].name;
    if (hosts.sharded > 0) {
      QueryEngine& engine =
          *workers_[static_cast<size_t>(partitioner_.ShardFor(entry.stream,
                                                              *entry.event))]
               ->engine;
      if (name.empty()) {
        engine.OnEvent(entry.event);
      } else {
        engine.OnStreamEvent(name, entry.event);
      }
    }
    if (hosts.broadcast > 0) {
      QueryEngine& engine = *broadcast_worker().engine;
      if (name.empty()) {
        engine.OnEvent(entry.event);
      } else {
        engine.OnStreamEvent(name, entry.event);
      }
    }
    // Refill the replay window for future resizes/checkpoints.
    if (replay_.size() <= entry.stream) {
      replay_.resize(static_cast<size_t>(entry.stream) + 1);
    }
    replay_[entry.stream].push_back(ReplayEntry{entry.global, entry.event});
    ++replay_len_;
  }
  SASE_RETURN_IF_ERROR(
      register_up_to(std::numeric_limits<uint64_t>::max()));

  // Muted clock broadcast: deferrals whose release window closed before the
  // checkpoint were delivered before it; re-release them into the discard
  // pile so only genuinely parked deferrals survive — exactly the Resize
  // replay's re-silencing, extended to the fresh broadcast engine.
  for (const Partitioner::StreamState& stream : partitioner_.streams()) {
    if (stream.events == 0) continue;
    for (auto& worker : workers_) {
      if (stream.name.empty()) {
        worker->engine->OnWatermark(stream.clock);
      } else {
        worker->engine->OnStreamWatermark(stream.name, stream.clock);
      }
    }
  }
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->out_mutex);
    worker->out.clear();
    worker->arrival_counter = 0;
  }

  return FinishRestore(state);
}

Status ShardedRuntime::FinishRestore(const CheckpointState& state) {
  // Continue the crashed process's dispatch clock so checkpointed positions
  // (registration points, window globals) compare directly with indices
  // issued from here on.
  events_dispatched_ = state.events_dispatched;
  merger_.SeedDispatched(state.events_dispatched);
  merger_.SeedMerged(state.records_merged);
  any_routed_ = state.any_routed;
  routed_stream_ = state.routed_stream;
  multi_routed_ = state.multi_routed;
  last_check_global_ = events_dispatched_;
  hotkey_check_global_ = events_dispatched_;

  for (auto& worker : workers_) worker->queue.Reopen();
  for (auto& worker : workers_) {
    worker->thread = std::thread(&ShardedRuntime::WorkerLoop, this, worker.get());
  }
  return Status::Ok();
}

bool ShardedRuntime::IsSharded(QueryId id) const {
  auto it = queries_.find(id);
  return it != queries_.end() && it->second.sharded;
}

uint64_t ShardedRuntime::shared_scan_hits() const {
  uint64_t hits = 0;
  for (const auto& worker : workers_) {
    hits += worker->engine->shared_scan_hits();
  }
  return hits;
}

void ShardedRuntime::AppendToWorker(Worker* worker, const std::string& stream,
                                    const EventPtr& event, uint64_t global,
                                    uint64_t trace_id) {
  // One batch carries one stream; cut on a switch so the worker can route
  // the whole batch with a single stream lookup.
  if (!worker->pending.events.empty() && worker->pending.stream != stream) {
    FlushBatch(worker, nullptr, /*flush=*/false);
  }
  worker->pending.stream = stream;
  worker->pending.events.push_back(event);
  if (trace_id != 0) {
    worker->pending.traced.push_back(EventBatch::TracedEvent{
        trace_id, worker->pending.events.size() - 1, global});
  }
  worker->pending_last_global = global;
  if (worker->pending.events.size() >= batch_policy_.current()) {
    FlushBatch(worker, nullptr, /*flush=*/false);
  }
}

void ShardedRuntime::FlushBatch(Worker* worker, const Clocks* clocks,
                                bool flush) {
  if (worker->pending.events.empty() && clocks == nullptr && !flush) return;
  if (clocks != nullptr) {
    worker->pending.clocks = *clocks;
    // The clocks release every deferral triggered at or below the current
    // dispatch point, so the batch certifies the full prefix.
    worker->pending.progress_hi = events_dispatched_;
  } else if (!worker->pending.events.empty()) {
    if (multi_routed_) {
      // Interleaved streams: the batch's own events cannot vouch for the
      // other streams' parked deferrals, so the batch carries every
      // stream's current clock — the worker advances them before acking,
      // and the claim covers the dispatched prefix minus the one event
      // that may have been dispatched but not yet appended (a batch cut on
      // a stream switch flushes before the cutting event joins a batch).
      // This is the per-batch merge progress that keeps merges advancing
      // under heavily interleaved multi-stream traffic.
      worker->pending.clocks = CurrentClocks();
      worker->pending.progress_hi =
          events_dispatched_ > 0 ? events_dispatched_ - 1 : 0;
    } else {
      // Single-stream traffic: the batch's own events are the clock — any
      // record the worker can emit after them triggers later in dispatch
      // order.
      worker->pending.progress_hi = worker->pending_last_global;
    }
  }
  worker->pending.flush = flush;
  if (obs_stamp_) worker->pending.enqueue_ns = obs::MonotonicNs();
  ++worker->batches_enqueued;
  worker->queue.Push(std::move(worker->pending));
  worker->pending = EventBatch{};
}

void ShardedRuntime::OnEvent(const EventPtr& event) {
  Dispatch(kDefaultStream, std::string(), event);
}

void ShardedRuntime::OnStreamEvent(const std::string& stream,
                                   const EventPtr& event) {
  // Streams are few and arrive in runs; resolving (lowercase + intern) only
  // on a name change keeps the per-event dispatch path allocation-free.
  if (!last_stream_valid_ || stream != last_stream_raw_) {
    last_stream_raw_ = stream;
    last_stream_name_ = ToLower(stream);
    last_stream_id_ = partitioner_.InternStream(last_stream_name_);
    last_stream_valid_ = true;
  }
  Dispatch(last_stream_id_, last_stream_name_, event);
}

void ShardedRuntime::Dispatch(StreamId stream, const std::string& name,
                              const EventPtr& event) {
  obs::TraceCollector* tracer = config_.tracer;
  uint64_t trace_id = 0;
  uint64_t trace_start = 0;
  if (tracer != nullptr && tracer->enabled()) {
    // Embedded under SaseSystem the ingest tap samples and stamps the
    // current slot; standalone, the dispatcher IS the ingest point.
    trace_id =
        tracer->external_sampler() ? tracer->current() : tracer->MaybeSample();
    if (trace_id != 0) trace_start = obs::MonotonicNs();
  }
  uint64_t global =
      merger_.NoteDispatched(stream, event->timestamp(), event->seq());
  events_dispatched_ = global;
  int shard = partitioner_.Route(stream, *event);

  const StreamQueries& hosts = QueriesFor(stream);
  if (hosts.sharded > 0 || hosts.broadcast > 0) {
    if (!any_routed_) {
      any_routed_ = true;
      routed_stream_ = stream;
    } else if (stream != routed_stream_) {
      multi_routed_ = true;
    }
    if (hosts.sharded > 0) {
      AppendToWorker(workers_[static_cast<size_t>(shard)].get(), name, event,
                     global, trace_id);
    }
    if (hosts.broadcast > 0) {
      AppendToWorker(&broadcast_worker(), name, event, global, trace_id);
    }
  }
  RetainForReplay(stream, event, global);
  if (trace_id != 0) {
    // The span covers dispatch-log stamping, routing and the ring handoff
    // (including any backpressure block); the merge span opens here and
    // NoteDelivered closes it once the merge watermark passes `global`.
    uint64_t now = obs::MonotonicNs();
    tracer->AddSpan(trace_id, "partition", "dispatcher", trace_start, now,
                    global);
    open_traces_.push_back(OpenTrace{global, trace_id, now});
  }

  if (config_.merge_interval > 0 &&
      events_dispatched_ % config_.merge_interval == 0) {
    // Broadcast every stream's clock so quiet shards release tail-negation
    // deferrals, then surface whatever is safely ordered and compact the
    // dispatch log underneath it.
    if (dispatch_merge_latency_ != nullptr) {
      merge_marks_.push_back(
          MergeMark{events_dispatched_, obs::MonotonicNs()});
    }
    BroadcastClocks();
    DeliverReady();
  }
  if (config_.hotkey_mitigation) MaybeMitigateHotKeys();
  if (config_.elastic.enabled) MaybeAutoResize();
  if (config_.batch.enabled) MaybeAdaptBatch();
}

void ShardedRuntime::MaybeMitigateHotKeys() {
  // Event-count cadence, not wall clock: the split decision (and therefore
  // the routing history) is a deterministic function of the event sequence,
  // which is what keeps mitigated runs byte-reproducible.
  if (config_.hotkey_min_events == 0 ||
      events_dispatched_ - hotkey_check_global_ < config_.hotkey_min_events) {
    return;
  }
  hotkey_check_global_ = events_dispatched_;
  for (size_t s = 0; s < partitioner_.streams().size(); ++s) {
    StreamId stream = static_cast<StreamId>(s);
    uint64_t keyed = partitioner_.keyed_events(stream);
    if (keyed < config_.hotkey_min_events) continue;
    for (const Partitioner::HotKeyStat& stat : partitioner_.HotKeys(stream)) {
      // Trigger on the guaranteed lower bound (count - error): sketch
      // overestimation alone can never split a key. Not monotone along the
      // count-sorted order, so scan the whole sketch.
      uint64_t guaranteed = stat.count > stat.error ? stat.count - stat.error : 0;
      if (guaranteed * 100 <
          static_cast<uint64_t>(config_.hotkey_split_threshold) * keyed) {
        continue;
      }
      if (partitioner_.IsSplit(stream, stat.key)) continue;
      (void)SplitHotKey(stream, stat.key);
    }
  }
}

bool ShardedRuntime::SplitHotKey(StreamId stream, const Value& key) {
  const StreamQueries& hosts = QueriesFor(stream);
  if (hosts.sharded == 0) return false;  // nothing routes by key; moot
  if (hosts.sharded_stateful == 0) {
    // Every sharded query reading the stream is stateless single-event:
    // any disjoint routing reproduces the serial result set (the merger
    // restores emission order), so spread the key round-robin. No engine
    // holds cross-event state for this stream — no rebuild.
    partitioner_.Split(stream, key, Partitioner::SplitMode::kSpread);
    ++hotkey_spread_splits_;
    SASE_LOG_INFO << "hot key " << key.ToString()
                  << " spread round-robin across " << config_.shard_count
                  << " shards";
    return true;
  }
  std::string secondary = CommonSecondaryAttr(stream);
  if (!secondary.empty()) {
    // Sub-partition by (key, secondary): every sharded stateful query on
    // the stream covers `secondary` on all components, so a match only ever
    // combines events agreeing on it — sub-hash routing keeps each
    // sub-partition whole on one shard. The key's existing state must move
    // with the routing: rebuild the shard engines by replay.
    Status status = RebuildShards(config_.shard_count, [&] {
      partitioner_.Split(stream, key, Partitioner::SplitMode::kSecondary,
                         secondary);
    });
    if (status.ok()) {
      ++hotkey_secondary_splits_;
      SASE_LOG_INFO << "hot key " << key.ToString()
                    << " sub-partitioned by secondary attribute '" << secondary
                    << "'";
      return true;
    }
    SASE_LOG_WARN << "hot key " << key.ToString()
                  << " secondary split failed: " << status.ToString();
  }
  // No covering secondary attribute (or the rebuild refused): correctness
  // first — the key stays pinned, and the refusal surfaces in StatsReport
  // and sase_partition_hotkey_split_refused_total. Booked once per key
  // until the query set changes.
  if (hotkey_refused_.insert({stream, EncodeValue(key)}).second) {
    ++hotkey_split_refusals_;
    SASE_LOG_WARN << "hot key " << key.ToString()
                  << " cannot be split: a sharded stateful query has no "
                     "second covering attribute; the key stays pinned";
  }
  return false;
}

std::string ShardedRuntime::CommonSecondaryAttr(StreamId stream) const {
  std::vector<std::string> candidates;
  bool first = true;
  for (const auto& [id, entry] : queries_) {
    if (!entry.sharded || !entry.stateful || entry.stream != stream) continue;
    if (first) {
      candidates = entry.covering_attrs;
      first = false;
      continue;
    }
    std::vector<std::string> kept;
    for (const std::string& attr : candidates) {
      for (const std::string& other : entry.covering_attrs) {
        if (EqualsIgnoreCase(attr, other)) {
          kept.push_back(attr);
          break;
        }
      }
    }
    candidates.swap(kept);
    if (candidates.empty()) break;
  }
  return candidates.empty() ? std::string() : candidates.front();
}

Status ShardedRuntime::ResolveSplitConflicts(const QueryEntry& entry) {
  // Only a sharded stateful newcomer can invalidate a split: broadcast
  // queries read the whole stream regardless of routing, and stateless
  // sharded queries are sound under any routing.
  if (!entry.sharded || !entry.stateful) return Status::Ok();
  if (partitioner_.split_count() == 0) return Status::Ok();
  std::vector<Value> drop_spread;
  std::vector<Value> drop_secondary;
  for (const Partitioner::SplitInfo& split : partitioner_.Splits()) {
    if (split.stream != entry.stream) continue;
    if (split.mode == Partitioner::SplitMode::kSpread) {
      drop_spread.push_back(split.key);
      continue;
    }
    bool covered = false;
    for (const std::string& attr : entry.covering_attrs) {
      if (EqualsIgnoreCase(attr, split.secondary_attr)) {
        covered = true;
        break;
      }
    }
    if (!covered) drop_secondary.push_back(split.key);
  }
  // Spread splits existed only while the stream hosted no sharded stateful
  // query, so the shard engines hold no cross-event state for it — re-pin
  // the keys without a rebuild. (Mitigation re-splits later if still hot.)
  for (const Value& key : drop_spread) {
    (void)partitioner_.Unsplit(entry.stream, key);
    SASE_LOG_INFO << "hot-key spread of " << key.ToString()
                  << " dropped: a stateful query now reads the stream";
  }
  // Secondary splits whose attribute the newcomer does not cover: the
  // existing sub-partitioned state must collapse back onto the key's
  // primary shard — re-pin and rebuild by replay.
  if (!drop_secondary.empty()) {
    SASE_RETURN_IF_ERROR(RebuildShards(config_.shard_count, [&] {
      for (const Value& key : drop_secondary) {
        (void)partitioner_.Unsplit(entry.stream, key);
      }
    }));
    for (const Value& key : drop_secondary) {
      SASE_LOG_INFO << "hot-key secondary split of " << key.ToString()
                    << " dropped: the new query does not cover its attribute";
    }
  }
  return Status::Ok();
}

void ShardedRuntime::MaybeAdaptBatch() {
  const BatchConfig& batch = batch_policy_.config();
  if (events_dispatched_ - batch_check_global_ < batch.check_interval) {
    return;
  }
  auto now = std::chrono::steady_clock::now();
  double seconds =
      std::chrono::duration<double>(now - batch_check_time_).count();
  double rate = 0;
  if (seconds > 0) {
    rate = static_cast<double>(events_dispatched_ - batch_check_global_) /
           seconds;
  }
  batch_check_global_ = events_dispatched_;
  batch_check_time_ = now;
  size_t chosen = batch_policy_.Update(rate);
  if (batch_size_hist_ != nullptr) {
    batch_size_hist_->Record(static_cast<int64_t>(chosen));
  }
}

void ShardedRuntime::RetainForReplay(StreamId stream, const EventPtr& event,
                                     uint64_t global) {
  const StreamQueries& hosts = QueriesFor(stream);
  // Only streams read by a stateful query with a finite WITHIN window need
  // replay material (stateless queries rebuild from nothing;
  // unbounded-window queries make Resize/ExportCheckpoint refuse outright,
  // so buffering for them would only grow without bound). Broadcast
  // stateful windows count only under retain_for_checkpoint — see
  // RetentionNeeded.
  if (RetentionNeeded(hosts)) {
    if (replay_.size() <= stream) {
      replay_.resize(static_cast<size_t>(stream) + 1);
    }
    replay_[stream].push_back(ReplayEntry{global, event});
    ++replay_len_;
  }
  PruneReplay(stream);
}

void ShardedRuntime::PruneReplay(StreamId stream) {
  if (replay_.size() <= stream) return;
  std::deque<ReplayEntry>& entries = replay_[stream];
  const StreamQueries& hosts = stream_queries_[stream];
  Ticks window = RetentionNeeded(hosts) ? hosts.max_window : -1;
  const Partitioner::StreamState& state = partitioner_.streams()[stream];
  while (!entries.empty()) {
    // Still inside the stream's in-flight window: a future event of this
    // stream may yet complete a match reaching back to it. (The clock only
    // advances with the stream's own events, so a quiescent stream's deque
    // simply stops growing — it never blocks other streams' pruning.)
    if (window >= 0 &&
        entries.front().event->timestamp() + window >= state.clock) {
      break;
    }
    entries.pop_front();
    --replay_len_;
  }
}

void ShardedRuntime::PruneReplayAll() {
  for (StreamId s = 0; s < replay_.size(); ++s) PruneReplay(s);
}

ShardedRuntime::Clocks ShardedRuntime::CurrentClocks() const {
  Clocks clocks;
  for (const Partitioner::StreamState& state : partitioner_.streams()) {
    if (state.events > 0) clocks.emplace_back(state.name, state.clock);
  }
  return clocks;
}

void ShardedRuntime::BroadcastClocks() {
  Clocks clocks = CurrentClocks();
  if (clocks.empty()) return;
  for (auto& worker : workers_) {
    if (WorkerHostsQueries(*worker)) {
      FlushBatch(worker.get(), &clocks, /*flush=*/false);
    }
  }
}

bool ShardedRuntime::WorkerHostsQueries(const Worker& worker) const {
  if (worker.index == config_.shard_count) return broadcast_queries_ > 0;
  return sharded_queries_ > 0;
}

void ShardedRuntime::WaitDrained(Worker* worker) {
  Backoff backoff;
  while (worker->batches_processed.load(std::memory_order_acquire) !=
         worker->batches_enqueued) {
    backoff.Pause();
  }
}

void ShardedRuntime::WaitIdle() {
  BroadcastClocks();
  for (auto& worker : workers_) {
    FlushBatch(worker.get(), nullptr, /*flush=*/false);
  }
  for (auto& worker : workers_) WaitDrained(worker.get());
  // With every queue drained, all emitted records are buffered here and any
  // future record triggers strictly later in dispatch order, so everything
  // at or below the current dispatch point is safe to release.
  CollectOutputs();
  bool obs_pending = !merge_marks_.empty() || !open_traces_.empty();
  uint64_t t0 = obs_pending ? obs::MonotonicNs() : 0;
  Deliver(merger_.DrainReady(events_dispatched_));
  if (obs_pending) {
    NoteDelivered(events_dispatched_, t0, obs::MonotonicNs());
  }
}

void ShardedRuntime::OnFlush() {
  for (auto& worker : workers_) {
    FlushBatch(worker.get(), nullptr, /*flush=*/true);
  }
  for (auto& worker : workers_) WaitDrained(worker.get());
  CollectOutputs();
  bool obs_pending = !merge_marks_.empty() || !open_traces_.empty();
  uint64_t t0 = obs_pending ? obs::MonotonicNs() : 0;
  Deliver(merger_.DrainFinal());
  if (obs_pending) {
    NoteDelivered(std::numeric_limits<uint64_t>::max(), t0,
                  obs::MonotonicNs());
  }
}

void ShardedRuntime::CollectOutputs() {
  for (auto& worker : workers_) {
    std::vector<TaggedRecord> drained;
    {
      std::lock_guard<std::mutex> lock(worker->out_mutex);
      drained.swap(worker->out);
    }
    if (!drained.empty()) merger_.Add(std::move(drained));
  }
}

void ShardedRuntime::DeliverReady() {
  uint64_t threshold = std::numeric_limits<uint64_t>::max();
  bool any = false;
  for (auto& worker : workers_) {
    if (!WorkerHostsQueries(*worker)) continue;
    threshold = std::min(
        threshold, worker->progress_hi.load(std::memory_order_acquire));
    any = true;
  }
  if (!any || threshold == 0) return;
  CollectOutputs();
  bool obs_pending =
      (!merge_marks_.empty() && merge_marks_.front().global <= threshold) ||
      (!open_traces_.empty() && open_traces_.front().global <= threshold);
  uint64_t t0 = obs_pending ? obs::MonotonicNs() : 0;
  Deliver(merger_.DrainReady(threshold));
  if (obs_pending) NoteDelivered(threshold, t0, obs::MonotonicNs());
}

void ShardedRuntime::NoteDelivered(uint64_t threshold, uint64_t t0,
                                   uint64_t t1) {
  while (!merge_marks_.empty() && merge_marks_.front().global <= threshold) {
    if (dispatch_merge_latency_ != nullptr) {
      dispatch_merge_latency_->Record(
          static_cast<int64_t>(t0 - merge_marks_.front().ns));
    }
    merge_marks_.pop_front();
  }
  obs::TraceCollector* tracer = config_.tracer;
  while (!open_traces_.empty() && open_traces_.front().global <= threshold) {
    const OpenTrace& open = open_traces_.front();
    if (tracer != nullptr) {
      // "merge" = parked in the merger until its watermark passed;
      // "emit" = the delivery sweep that released it to user callbacks.
      tracer->AddSpan(open.trace_id, "merge", "merge", open.ns, t0,
                      open.global);
      tracer->AddSpan(open.trace_id, "emit", "dispatcher", t0, t1,
                      open.global);
    }
    open_traces_.pop_front();
  }
}

void ShardedRuntime::Deliver(std::vector<TaggedRecord> records) {
  for (TaggedRecord& tagged : records) {
    auto it = queries_.find(tagged.query);
    if (it == queries_.end() || !it->second.callback) continue;
    it->second.callback(tagged.record);
  }
}

QueryEngine::EngineStats ShardedRuntime::Stats() {
  WaitIdle();
  QueryEngine::EngineStats total = retired_engine_stats_;
  for (auto& worker : workers_) total += worker->engine->Stats();
  // A sharded query is mirrored into every shard engine; report logical
  // queries, not plan instances.
  total.queries = queries_.size();
  return total;
}

ShardedRuntime::RuntimeStats ShardedRuntime::FullStats() {
  RuntimeStats stats;
  stats.engine = Stats();  // quiesces
  stats.events_dispatched = events_dispatched_;
  stats.records_merged = merger_.merged_count();
  stats.merge_pending = merger_.pending_count();
  stats.dispatch_log_len = merger_.log_len();
  stats.peak_dispatch_log_len = merger_.peak_log_len();
  stats.log_compactions = merger_.compaction_count();
  stats.log_entries_compacted = merger_.compacted_entries();
  stats.stream_count = partitioner_.streams().size();
  stats.shard_count = config_.shard_count;
  stats.resizes = resizes_;
  stats.grows = grows_;
  stats.shrinks = shrinks_;
  stats.events_replayed = events_replayed_;
  stats.replay_buffer_len = replay_len_;
  stats.elastic_checks = policy_.checks();
  return stats;
}

std::string ShardedRuntime::StatsReport() {
  WaitIdle();
  std::ostringstream out;
  out << obs::ReportLine("runtime")
             .Kv("shards", config_.shard_count)
             .Kv("queries", queries_.size())
             .Text("(" + obs::Kv("sharded", sharded_queries_) + " " +
                   obs::Kv("broadcast", broadcast_queries_) + ")")
             .Kv("dispatched", events_dispatched_)
             .Kv("merged", merger_.merged_count())
             .Kv("pending", merger_.pending_count())
             .Str();
  out << obs::ReportLine("dispatch log:")
             .Kv("len", merger_.log_len())
             .Kv("peak", merger_.peak_log_len())
             .Kv("compactions", merger_.compaction_count())
             .Text("(" + std::to_string(merger_.compacted_entries()) +
                   " entries reclaimed)")
             .Str();
  out << obs::ReportLine("resizes:")
             .Kv("total", resizes_)
             .Kv("up", grows_)
             .Kv("down", shrinks_)
             .Kv("replayed", events_replayed_)
             .Kv("replay_window", replay_len_)
             .Str();
  out << policy_.Describe() << "\n";
  if (config_.hotkey_mitigation) {
    out << obs::ReportLine("hot-key splits:")
               .Kv("active", partitioner_.split_count())
               .Kv("spread", hotkey_spread_splits_)
               .Kv("secondary", hotkey_secondary_splits_)
               .Kv("refused", hotkey_split_refusals_)
               .Str();
  }
  for (size_t s = 0; s < partitioner_.streams().size(); ++s) {
    const Partitioner::StreamState& state = partitioner_.streams()[s];
    StreamQueries queries = s < stream_queries_.size() ? stream_queries_[s]
                                                       : StreamQueries{};
    std::string shards = "[";
    for (size_t i = 0; i < state.per_shard.size(); ++i) {
      if (i > 0) shards += " ";
      shards += std::to_string(state.per_shard[i]);
    }
    shards += "]";
    out << obs::ReportLine(
               "stream " + (state.name.empty() ? "<default>" : state.name) +
               ":")
               .Kv("events", state.events)
               .Kv("queries", std::to_string(queries.sharded) + "+" +
                                  std::to_string(queries.broadcast))
               .Kv("shards", shards)
               .Str();
    // Hot keys (space-saving sketch, armed only with metrics attached):
    // count is an overestimate by at most `err`; share is against the
    // stream's keyed-event total.
    std::vector<Partitioner::HotKeyStat> hot =
        partitioner_.HotKeys(static_cast<StreamId>(s));
    uint64_t keyed = partitioner_.keyed_events(static_cast<StreamId>(s));
    if (!hot.empty() && keyed > 0) {
      if (hot.size() > 5) hot.resize(5);
      obs::ReportLine line("  hot keys:");
      for (const Partitioner::HotKeyStat& stat : hot) {
        std::string marker;
        if (partitioner_.IsSplit(static_cast<StreamId>(s), stat.key)) {
          marker = " split";
        } else if (hotkey_refused_.count({static_cast<StreamId>(s),
                                          EncodeValue(stat.key)}) > 0) {
          marker = " split-refused";
        }
        line.Text(stat.key.ToString() + "=" + std::to_string(stat.count) +
                  " (~" + std::to_string(stat.count * 100 / keyed) + "%" +
                  (stat.error > 0 ? " err<=" + std::to_string(stat.error)
                                  : std::string()) +
                  " shard " + std::to_string(stat.shard) + marker + ")");
      }
      out << line.Str();
    }
  }
  for (auto& worker : workers_) {
    QueryEngine::EngineStats stats = worker->engine->Stats();
    out << obs::ReportLine(worker->index == config_.shard_count
                               ? std::string("broadcast:")
                               : "shard " + std::to_string(worker->index) +
                                     ":")
               .Kv("events", stats.events_processed)
               .Kv("sequences", stats.matches_scanned)
               .Kv("outputs", stats.outputs)
               .Kv("errors", stats.eval_errors)
               .Str();
  }
  return out.str();
}

void ShardedRuntime::ScrapeMetrics() {
  obs::MetricsRegistry* metrics = config_.metrics;
  if (metrics == nullptr) return;

  // Live gauges first — quiescing would drain the queues and close the
  // merge watermark gap, so sample occupancy and lag pre-WaitIdle. The
  // occupancy sample is kept for the hot-key queue-lag attribution below.
  std::vector<int64_t> queue_sample(static_cast<size_t>(config_.shard_count),
                                    0);
  uint64_t min_progress = std::numeric_limits<uint64_t>::max();
  bool any_hosting = false;
  for (auto& worker : workers_) {
    if (worker->index < config_.shard_count) {
      int64_t occupancy = static_cast<int64_t>(worker->queue.ApproxSize());
      queue_sample[static_cast<size_t>(worker->index)] = occupancy;
      metrics
          ->GetGauge("sase_shard_queue_len{shard=\"" +
                     std::to_string(worker->index) + "\"}")
          ->Set(occupancy);
    }
    if (!WorkerHostsQueries(*worker)) continue;
    min_progress = std::min(
        min_progress, worker->progress_hi.load(std::memory_order_acquire));
    any_hosting = true;
  }
  uint64_t lag = any_hosting && min_progress < events_dispatched_
                     ? events_dispatched_ - min_progress
                     : 0;
  metrics->GetGauge("sase_runtime_merge_watermark_lag")
      ->Set(static_cast<int64_t>(lag));

  // Quiesce, then mirror the truth counters — the same numbers FullStats()
  // and StatsReport() read, so registry and report can never disagree.
  WaitIdle();
  metrics->GetCounter("sase_runtime_events_dispatched_total")
      ->Set(events_dispatched_);
  metrics->GetCounter("sase_runtime_records_merged_total")
      ->Set(merger_.merged_count());
  metrics->GetCounter("sase_runtime_log_compactions_total")
      ->Set(merger_.compaction_count());
  metrics->GetCounter("sase_runtime_resizes_total{direction=\"up\"}")
      ->Set(grows_);
  metrics->GetCounter("sase_runtime_resizes_total{direction=\"down\"}")
      ->Set(shrinks_);
  metrics->GetCounter("sase_runtime_events_replayed_total")
      ->Set(events_replayed_);
  metrics->GetCounter("sase_runtime_elastic_checks_total")
      ->Set(policy_.checks());
  metrics->GetGauge("sase_runtime_shards")->Set(config_.shard_count);
  metrics->GetGauge("sase_runtime_merge_pending")
      ->Set(static_cast<int64_t>(merger_.pending_count()));
  metrics->GetGauge("sase_runtime_dispatch_log_len")
      ->Set(static_cast<int64_t>(merger_.log_len()));
  metrics->GetGauge("sase_runtime_replay_buffer_len")
      ->Set(static_cast<int64_t>(replay_len_));
  metrics->GetGauge("sase_runtime_current_batch")
      ->Set(static_cast<int64_t>(batch_policy_.current()));

  std::vector<uint64_t> per_shard(static_cast<size_t>(config_.shard_count), 0);
  for (const Partitioner::StreamState& state : partitioner_.streams()) {
    metrics
        ->GetCounter("sase_stream_events_total{stream=\"" +
                     (state.name.empty() ? std::string("<default>")
                                         : state.name) +
                     "\"}")
        ->Set(state.events);
    for (size_t i = 0; i < state.per_shard.size() && i < per_shard.size();
         ++i) {
      per_shard[i] += state.per_shard[i];
    }
  }
  for (size_t i = 0; i < per_shard.size(); ++i) {
    metrics
        ->GetCounter("sase_shard_events_total{shard=\"" + std::to_string(i) +
                     "\"}")
        ->Set(per_shard[i]);
  }
  // Hot-key accounting. Sketch counts are dispatcher-maintained truth;
  // queue-lag attribution uses the PRE-quiesce occupancy sample of the
  // key's owning shard (a drained queue would always read 0). A key evicted
  // from the sketch keeps its last mirrored series — the sketch bounds live
  // tracking, not registry cardinality, which stays <= kHotKeyFanout new
  // series per stream per scrape.
  if (partitioner_.hotkey_tracking()) {
    constexpr size_t kHotKeyFanout = 5;
    for (size_t s = 0; s < partitioner_.streams().size(); ++s) {
      StreamId stream = static_cast<StreamId>(s);
      uint64_t keyed = partitioner_.keyed_events(stream);
      const std::string& name = partitioner_.streams()[s].name;
      std::string stream_label = name.empty() ? std::string("<default>") : name;
      metrics
          ->GetCounter("sase_partition_keyed_events_total{stream=\"" +
                       stream_label + "\"}")
          ->Set(keyed);
      std::vector<Partitioner::HotKeyStat> hot = partitioner_.HotKeys(stream);
      if (hot.size() > kHotKeyFanout) hot.resize(kHotKeyFanout);
      for (const Partitioner::HotKeyStat& stat : hot) {
        std::string labels = "{stream=\"" + stream_label + "\",key=\"" +
                             stat.key.ToString() + "\"}";
        metrics->GetCounter("sase_partition_hotkey_events_total" + labels)
            ->Set(stat.count);
        metrics->GetGauge("sase_partition_hotkey_share_percent" + labels)
            ->Set(keyed == 0
                      ? 0
                      : static_cast<int64_t>(stat.count * 100 / keyed));
        metrics->GetGauge("sase_partition_hotkey_shard" + labels)
            ->Set(stat.shard);
        metrics->GetGauge("sase_partition_hotkey_queue_lag" + labels)
            ->Set(queue_sample[static_cast<size_t>(stat.shard)]);
      }
    }
  }
  // Hot-key mitigation outcomes (only meaningful with mitigation on; the
  // series stay absent otherwise, like every other gated family).
  if (config_.hotkey_mitigation) {
    metrics->GetCounter("sase_partition_hotkey_splits_total{mode=\"spread\"}")
        ->Set(hotkey_spread_splits_);
    metrics
        ->GetCounter("sase_partition_hotkey_splits_total{mode=\"secondary\"}")
        ->Set(hotkey_secondary_splits_);
    metrics->GetCounter("sase_partition_hotkey_split_refused_total")
        ->Set(hotkey_split_refusals_);
    metrics->GetGauge("sase_partition_hotkey_split_active")
        ->Set(static_cast<int64_t>(partitioner_.split_count()));
  }
  // Per-query operator counters and occupancy gauges, per hosting engine.
  for (auto& worker : workers_) worker->engine->ScrapeMetrics();
}

std::vector<ShardedRuntime::SlowSample> ShardedRuntime::SlowSamples() {
  WaitIdle();
  std::vector<SlowSample> merged;
  for (auto& worker : workers_) {
    for (const QueryEngine::SlowQuerySample& sample :
         worker->engine->SlowSamples()) {
      merged.push_back(SlowSample{worker->lane, sample});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const SlowSample& a, const SlowSample& b) {
              return a.sample.at_ns > b.sample.at_ns;
            });
  return merged;
}

bool ShardedRuntime::Healthy(uint64_t stall_ns, std::string* why) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  uint64_t now = obs::MonotonicNs();
  if (health_.size() != workers_.size()) {
    health_.assign(workers_.size(), HealthProbe{});
  }
  bool healthy = true;
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker& worker = *workers_[i];
    uint64_t batches =
        worker.batches_processed.load(std::memory_order_acquire);
    size_t queued = worker.queue.ApproxSize();
    HealthProbe& probe = health_[i];
    if (queued == 0 || batches != probe.batches) {
      // Empty queue or visible progress: not wedged, restart the clock.
      probe.batches = batches;
      probe.stuck_since_ns = 0;
      continue;
    }
    if (probe.stuck_since_ns == 0) {
      probe.stuck_since_ns = now;  // first stuck sighting arms the clock
      continue;
    }
    if (now - probe.stuck_since_ns >= stall_ns) {
      healthy = false;
      if (why != nullptr) {
        *why = worker.lane + " wedged: " + std::to_string(queued) +
               " queued batch(es), no progress for " +
               std::to_string((now - probe.stuck_since_ns) / 1000000) + " ms";
      }
    }
  }
  return healthy;
}

}  // namespace sase
