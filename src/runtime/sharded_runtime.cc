#include "runtime/sharded_runtime.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "query/analyzer.h"
#include "query/parser.h"

namespace sase {

namespace {
constexpr Timestamp kMinTimestamp = std::numeric_limits<Timestamp>::min();
}  // namespace

ShardedRuntime::ShardedRuntime(const Catalog* catalog, RuntimeConfig config,
                               EngineInit engine_init)
    : catalog_(catalog), config_(config),
      partitioner_(catalog, config_.partition_key,
                   std::max(1, config_.shard_count)) {
  config_.shard_count = std::max(1, config_.shard_count);
  if (config_.batch_size == 0) config_.batch_size = 1;

  // shard workers 0..N-1, broadcast worker N.
  for (int i = 0; i <= config_.shard_count; ++i) {
    auto worker = std::make_unique<Worker>(i, config_.queue_capacity);
    worker->engine =
        std::make_unique<QueryEngine>(catalog_, config_.time_config);
    if (engine_init) engine_init(*worker->engine);
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread(&ShardedRuntime::WorkerLoop, this, worker.get());
  }
}

ShardedRuntime::~ShardedRuntime() {
  for (auto& worker : workers_) worker->queue.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ShardedRuntime::WorkerLoop(Worker* worker) {
  EventBatch batch;
  while (worker->queue.Pop(&batch)) {
    for (const EventPtr& event : batch.events) {
      worker->engine->OnEvent(event);
      worker->progress_ts.store(event->timestamp(), std::memory_order_release);
    }
    if (batch.watermark >= 0) {
      worker->engine->OnWatermark(batch.watermark);
      // Dispatch order guarantees no later event is older than the
      // watermark, so the worker's future output triggers at or after it.
      Timestamp progress = worker->progress_ts.load(std::memory_order_relaxed);
      worker->progress_ts.store(std::max(progress, batch.watermark),
                                std::memory_order_release);
    }
    if (batch.flush) worker->engine->OnFlush();
    // Ack only once the whole batch — events, watermark, flush — is done;
    // WaitDrained relies on this to know the engine is quiescent.
    worker->batches_processed.fetch_add(1, std::memory_order_release);
  }
}

OutputCallback ShardedRuntime::CaptureCallback(Worker* worker, QueryId id) {
  return [worker, id](const OutputRecord& record) {
    std::lock_guard<std::mutex> lock(worker->out_mutex);
    TaggedRecord tagged;
    tagged.query = id;
    tagged.worker = worker->index;
    tagged.arrival = worker->arrival_counter++;
    tagged.record = record;
    worker->out.push_back(std::move(tagged));
  };
}

Result<QueryId> ShardedRuntime::Register(const std::string& text,
                                         OutputCallback callback,
                                         PlanOptions options) {
  auto parsed = Parser::Parse(text);
  if (!parsed.ok()) return parsed.status();
  Analyzer analyzer(catalog_, config_.time_config);
  auto analyzed = analyzer.Analyze(std::move(parsed).value());
  if (!analyzed.ok()) return analyzed.status();
  if (!analyzed.value().parsed.from_stream.empty()) {
    return Status::Unimplemented(
        "sharded runtime feeds the default input stream only; register "
        "FROM-stream queries on a serial engine");
  }
  bool sharded = Partitioner::Shardable(analyzed.value(), *catalog_,
                                        config_.partition_key, options);

  // Quiesce so engine mutation cannot race in-flight batches; the push of
  // the next batch publishes the new plan to the worker.
  WaitIdle();

  QueryId id = next_id_++;
  if (sharded) {
    for (int s = 0; s < config_.shard_count; ++s) {
      auto result = workers_[static_cast<size_t>(s)]->engine->RegisterAs(
          id, text, CaptureCallback(workers_[static_cast<size_t>(s)].get(), id),
          options);
      if (!result.ok()) {
        for (int undo = 0; undo < s; ++undo) {
          (void)workers_[static_cast<size_t>(undo)]->engine->Unregister(id);
        }
        return result.status();
      }
    }
    ++sharded_queries_;
  } else {
    Worker& host = broadcast_worker();
    auto result =
        host.engine->RegisterAs(id, text, CaptureCallback(&host, id), options);
    if (!result.ok()) return result.status();
    ++broadcast_queries_;
  }
  queries_.emplace(id, QueryEntry{std::move(callback), sharded});
  return id;
}

Status ShardedRuntime::Unregister(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  WaitIdle();
  if (it->second.sharded) {
    for (int s = 0; s < config_.shard_count; ++s) {
      (void)workers_[static_cast<size_t>(s)]->engine->Unregister(id);
    }
    --sharded_queries_;
  } else {
    (void)broadcast_worker().engine->Unregister(id);
    --broadcast_queries_;
  }
  queries_.erase(it);
  return Status::Ok();
}

bool ShardedRuntime::IsSharded(QueryId id) const {
  auto it = queries_.find(id);
  return it != queries_.end() && it->second.sharded;
}

void ShardedRuntime::AppendToWorker(Worker* worker, const EventPtr& event) {
  worker->pending.events.push_back(event);
  if (worker->pending.events.size() >= config_.batch_size) {
    FlushPending(worker, /*watermark=*/-1, /*flush=*/false);
  }
}

void ShardedRuntime::FlushPending(Worker* worker, Timestamp watermark,
                                  bool flush) {
  if (worker->pending.events.empty() && watermark < 0 && !flush) return;
  worker->pending.watermark = watermark;
  worker->pending.flush = flush;
  ++worker->batches_enqueued;
  worker->queue.Push(std::move(worker->pending));
  worker->pending = EventBatch{};
}

void ShardedRuntime::OnEvent(const EventPtr& event) {
  merger_.NoteDispatched(event->timestamp(), event->seq());
  ++events_dispatched_;
  last_dispatched_ts_ = event->timestamp();
  any_dispatched_ = true;

  if (sharded_queries_ > 0) {
    Worker& shard =
        *workers_[static_cast<size_t>(partitioner_.ShardFor(*event))];
    AppendToWorker(&shard, event);
  }
  if (broadcast_queries_ > 0) AppendToWorker(&broadcast_worker(), event);

  if (config_.merge_interval > 0 &&
      events_dispatched_ % config_.merge_interval == 0) {
    // Broadcast the stream clock so quiet shards release tail-negation
    // deferrals, then surface whatever is safely ordered.
    for (auto& worker : workers_) {
      if (WorkerHostsQueries(*worker)) {
        FlushPending(worker.get(), last_dispatched_ts_, /*flush=*/false);
      }
    }
    DeliverReady();
  }
}

bool ShardedRuntime::WorkerHostsQueries(const Worker& worker) const {
  if (worker.index == config_.shard_count) return broadcast_queries_ > 0;
  return sharded_queries_ > 0;
}

void ShardedRuntime::WaitDrained(Worker* worker) {
  Backoff backoff;
  while (worker->batches_processed.load(std::memory_order_acquire) !=
         worker->batches_enqueued) {
    backoff.Pause();
  }
}

void ShardedRuntime::WaitIdle() {
  Timestamp watermark = any_dispatched_ ? last_dispatched_ts_ : -1;
  for (auto& worker : workers_) {
    FlushPending(worker.get(),
                 WorkerHostsQueries(*worker) ? watermark : Timestamp{-1},
                 /*flush=*/false);
  }
  for (auto& worker : workers_) WaitDrained(worker.get());
  // With every queue drained, all emitted records are buffered here and any
  // future record triggers strictly later in dispatch order, so everything
  // with a resolved trigger is safe to release.
  CollectOutputs();
  Deliver(merger_.DrainReady(std::numeric_limits<Timestamp>::max()));
}

void ShardedRuntime::OnFlush() {
  for (auto& worker : workers_) {
    FlushPending(worker.get(), /*watermark=*/-1, /*flush=*/true);
  }
  for (auto& worker : workers_) WaitDrained(worker.get());
  CollectOutputs();
  Deliver(merger_.DrainFinal());
}

void ShardedRuntime::CollectOutputs() {
  for (auto& worker : workers_) {
    std::vector<TaggedRecord> drained;
    {
      std::lock_guard<std::mutex> lock(worker->out_mutex);
      drained.swap(worker->out);
    }
    if (!drained.empty()) merger_.Add(std::move(drained));
  }
}

void ShardedRuntime::DeliverReady() {
  Timestamp threshold = std::numeric_limits<Timestamp>::max();
  bool any = false;
  for (auto& worker : workers_) {
    if (!WorkerHostsQueries(*worker)) continue;
    threshold = std::min(
        threshold, worker->progress_ts.load(std::memory_order_acquire));
    any = true;
  }
  if (!any || threshold == kMinTimestamp) return;
  CollectOutputs();
  Deliver(merger_.DrainReady(threshold));
}

void ShardedRuntime::Deliver(std::vector<TaggedRecord> records) {
  for (TaggedRecord& tagged : records) {
    auto it = queries_.find(tagged.query);
    if (it == queries_.end() || !it->second.callback) continue;
    it->second.callback(tagged.record);
  }
}

QueryEngine::EngineStats ShardedRuntime::Stats() {
  WaitIdle();
  QueryEngine::EngineStats total;
  for (auto& worker : workers_) total += worker->engine->Stats();
  // A sharded query is mirrored into every shard engine; report logical
  // queries, not plan instances.
  total.queries = queries_.size();
  return total;
}

std::string ShardedRuntime::StatsReport() {
  WaitIdle();
  std::ostringstream out;
  out << "runtime shards=" << config_.shard_count
      << " queries=" << queries_.size() << " (sharded=" << sharded_queries_
      << " broadcast=" << broadcast_queries_ << ")"
      << " dispatched=" << events_dispatched_
      << " merged=" << merger_.merged_count()
      << " pending=" << merger_.pending_count() << "\n";
  for (auto& worker : workers_) {
    QueryEngine::EngineStats stats = worker->engine->Stats();
    out << (worker->index == config_.shard_count
                ? std::string("broadcast")
                : "shard " + std::to_string(worker->index))
        << ": events=" << stats.events_processed
        << " sequences=" << stats.matches_scanned
        << " outputs=" << stats.outputs << " errors=" << stats.eval_errors
        << "\n";
  }
  return out.str();
}

}  // namespace sase
