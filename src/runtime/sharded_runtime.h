#ifndef SASE_RUNTIME_SHARDED_RUNTIME_H_
#define SASE_RUNTIME_SHARDED_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/catalog.h"
#include "core/stream.h"
#include "engine/query_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/batch_policy.h"
#include "runtime/elastic_policy.h"
#include "runtime/event_batch.h"
#include "runtime/output_merger.h"
#include "runtime/partitioner.h"

namespace sase {

/// Configuration knobs for the sharded execution runtime.
struct RuntimeConfig {
  /// Number of key-partitioned shards (worker threads with a private
  /// QueryEngine each). One extra broadcast worker hosts queries that
  /// cannot be key-partitioned.
  int shard_count = 4;
  /// Attribute whose value partitions the stream; `TagId` for the paper's
  /// RFID workloads.
  std::string partition_key = "TagId";
  /// Events per cross-thread handoff (ring-slot exchange). With
  /// `batch.enabled` this is only the starting size — the policy then grows
  /// the batch under load (bounded by its latency target) and shrinks it
  /// when the stream idles.
  size_t batch_size = 256;
  /// Adaptive handoff batching (off by default); see runtime/batch_policy.h
  /// for the sizing rule.
  BatchConfig batch;
  /// Compile structurally identical queries onto one shared NFA per worker
  /// engine (QueryEngine::set_scan_sharing). Output is byte-identical to
  /// dedicated plans; a checkpoint taken with sharing on must be restored
  /// with sharing on (the plans' NFA signatures differ across modes
  /// whenever predicate pushdown applies).
  bool scan_sharing = false;
  /// Batches per shard queue before the dispatcher blocks (backpressure).
  size_t queue_capacity = 64;
  /// Dispatcher events between incremental merge attempts (and per-stream
  /// clock broadcasts that unstick quiet shards' tail negations). 0 disables
  /// incremental delivery: all output surfaces on OnFlush/WaitIdle.
  size_t merge_interval = 4096;
  /// Dead dispatch-log prefix entries a stream log accumulates before the
  /// merger physically truncates it (amortizes the erase). SIZE_MAX disables
  /// compaction — the log then grows with the stream, the pre-compaction
  /// behavior kept for benchmarking the difference.
  size_t log_compact_min = 1024;
  /// Extend the in-flight replay window to also cover broadcast-hosted
  /// stateful queries with a finite WITHIN span. Elastic Resize never needs
  /// that (the broadcast engine is carried over live), but a durable
  /// checkpoint rebuilds every engine by replay, so the checkpoint subsystem
  /// turns this on. Costs replay-buffer memory proportional to the extra
  /// windows; see ExportCheckpoint.
  bool retain_for_checkpoint = false;
  /// Load-driven shard autoscaling (off by default); see
  /// runtime/elastic_policy.h for the thresholds and ShardedRuntime::Resize
  /// for the mechanism it triggers.
  ElasticConfig elastic;
  TimeConfig time_config;
  /// Optional metrics registry (not owned; must outlive the runtime). When
  /// set, every worker engine records per-query operator latency, the
  /// workers record ring-wait latency, the dispatcher records
  /// dispatch->merge watermark latency, and ScrapeMetrics() mirrors the
  /// runtime counters. nullptr (default): the hot path is the exact
  /// uninstrumented code behind one null check per batch.
  obs::MetricsRegistry* metrics = nullptr;
  /// Slow-query log arming for every worker engine, active only with
  /// `metrics` set (the threshold is checked on the instrumented timing
  /// path): operator passes taking at least this long are counted per query
  /// and sampled into a last-`slow_query_log_size` ring per engine. 0
  /// disables. SaseSystem copies these from ObsConfig.
  uint64_t slow_query_threshold_ns = 1000000;
  size_t slow_query_log_size = 32;
  /// Space-saving sketch slots for per-stream hot-key accounting
  /// (Partitioner::EnableHotKeyTracking), armed only with `metrics` set so
  /// disabled-observability dispatch stays a null branch. 0 disables.
  size_t hotkey_sketch_size = 16;
  /// Hot-key mitigation: act on the sketch instead of just reporting it.
  /// When a key's sketch share of a stream's keyed events reaches
  /// `hotkey_split_threshold` percent (measured by the guaranteed lower
  /// bound count - error, so sketch overestimation cannot trigger a split)
  /// after at least `hotkey_min_events` keyed events, the runtime splits the
  /// key at a quiesce point: round-robin spread when the stream hosts no
  /// sharded stateful query, secondary sub-partitioning when every sharded
  /// stateful query on the stream shares a second covering attribute, and a
  /// surfaced refusal otherwise (see StatsReport "hot-key splits:" and the
  /// sase_partition_hotkey_split_* series). Mitigation arms the sketch even
  /// without a metrics registry. Off by default: splitting rebuilds shard
  /// engines by replay, a deliberate operator opt-in.
  bool hotkey_mitigation = false;
  /// Sketch-share percentage (of a stream's keyed events) at which a key is
  /// split. Also re-checked every `hotkey_min_events` dispatched events, so
  /// the trigger is deterministic in the event sequence.
  int hotkey_split_threshold = 50;
  uint64_t hotkey_min_events = 4096;
  /// Optional event-lifecycle tracer (not owned). Sampled events accumulate
  /// partition -> ring -> operator -> merge -> emit spans. A standalone
  /// runtime samples at dispatch; embedded under SaseSystem the ingest tap
  /// owns sampling (TraceCollector::SetExternalSampler) and adds the
  /// "ingest" span.
  obs::TraceCollector* tracer = nullptr;
};

/// The sharded parallel execution runtime: stands between the event bus and
/// N+1 private QueryEngine instances, scaling the complex event processor
/// across cores while producing byte-identical output to serial execution.
///
///   StreamBus / sources (dispatcher thread)
///     -> Partitioner: key-hash routing (TagId) + per-stream batching
///        -> SPSC ring -> shard worker 0 .. N-1 (own QueryEngine each)
///        -> SPSC ring -> broadcast worker (non-shardable queries, all
///                        events)
///     <- OutputMerger: re-sequences tagged shard outputs into serial
///        dispatch order; user callbacks fire on the dispatcher thread.
///
/// Shardable queries (see Partitioner::Shardable) are mirrored into every
/// shard engine under the same QueryId; each shard evaluates only its key
/// partition's events, so the union of shard outputs equals the serial
/// result set, and the merger restores the serial emission order. Everything
/// else runs serially on the broadcast worker, which receives the full
/// stream.
///
/// Named input streams: queries with a `FROM <stream>` clause route through
/// the runtime exactly like default-input queries — feed their events in via
/// OnStreamEvent. Each stream keeps its own dispatch log and clock; the
/// merge order across streams is the dispatch interleaving, i.e. the order
/// the serial engine would have seen the OnEvent/OnStreamEvent calls.
///
/// Memory bound: the merger's dispatch log is compacted below the merge
/// watermark after every incremental merge, so steady-state runtime memory
/// is O(shards x in-flight window) — batches in flight plus one
/// merge-interval of log — independent of total stream length.
///
/// Elasticity: Resize(n) re-partitions mid-stream at a quiesce point
/// (deterministic replay of the in-flight window; see the method comment),
/// and RuntimeConfig::elastic turns on a load-driven autoscaler that calls
/// it automatically with hysteresis (runtime/elastic_policy.h).
///
/// Threading contract: Register/Unregister/OnEvent/OnStreamEvent/OnFlush/
/// WaitIdle are called from ONE dispatcher thread (the stream's producer).
/// Output callbacks fire on that same thread, during OnEvent (incremental
/// merges), OnFlush and WaitIdle — user code never needs to synchronize.
/// Events must arrive in stream order per input stream (non-decreasing
/// timestamp, increasing seq), the invariant StreamSource already enforces.
class ShardedRuntime : public EventSink {
 public:
  /// Hook run once per private engine at construction, before any query
  /// registration — install custom functions here. Functions installed into
  /// shard engines run on worker threads; keep them thread-safe or register
  /// the queries that call them outside the runtime.
  using EngineInit = std::function<void(QueryEngine&)>;

  explicit ShardedRuntime(const Catalog* catalog, RuntimeConfig config = {},
                          EngineInit engine_init = nullptr);
  ~ShardedRuntime() override;

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  /// Registers a continuous query; `callback` receives merged, serially
  /// ordered records on the dispatcher thread. Queries reading a named FROM
  /// stream are hosted like any other — their events arrive via
  /// OnStreamEvent. Quiesces the workers, so mid-stream registration is safe
  /// (the query sees the stream suffix, exactly as with a serial engine).
  Result<QueryId> Register(const std::string& text, OutputCallback callback,
                           PlanOptions options = {});

  /// Removes a query from every hosting engine. Records already emitted but
  /// not yet merge-safe are dropped, matching the serial engine's contract
  /// that an unregistered plan's undelivered state vanishes.
  Status Unregister(QueryId id);

  /// Re-partitions the runtime onto `shard_count` shards at a quiesce
  /// point, mid-stream, without changing a byte of output:
  ///
  ///   1. quiesce — drain every in-flight batch, broadcast the per-stream
  ///      clocks, deliver everything merge-safe (after this the merger holds
  ///      no undelivered records);
  ///   2. stop the worker threads; the broadcast engine (aggregates,
  ///      non-key queries) is carried over untouched — its state never
  ///      depends on the shard layout;
  ///   3. rehash the partition map and build fresh shard engines;
  ///   4. deterministically replay the in-flight window — the retained
  ///      events younger than the largest sharded WITHIN span, with query
  ///      registrations re-interleaved at their original stream positions —
  ///      routing each event under the NEW layout. Replay output is
  ///      discarded (those records were all delivered before the resize);
  ///      a final muted clock broadcast re-releases the already-delivered
  ///      tail-negation deferrals, leaving each fresh engine holding
  ///      exactly the partial matches and parked deferrals a serial engine
  ///      would still hold;
  ///   5. resume the workers. Dispatch continues with the same global
  ///      dispatch index, so the merge order is seamless across the resize.
  ///
  /// Fails with kFailedPrecondition when a registered sharded stateful
  /// query has no WITHIN window (the in-flight window would be the whole
  /// stream); no-ops when `shard_count` already matches. Dispatcher thread
  /// only, like every other entry point.
  Status Resize(int shard_count);

  /// Serialized-state view of the runtime at a quiesce point — what a
  /// durable checkpoint persists and what a cross-process handoff would put
  /// on the wire. Since snapshot v2 the engines' operator state is
  /// serialized directly (`plan_states`, one payload per query per hosting
  /// engine, via QueryEngine::SerializeState): RestoreCheckpoint rebuilds
  /// each engine from its payloads instead of replaying the in-flight
  /// window, which lifts the old window-replayability restrictions
  /// (aggregates, stateful queries without WITHIN). The window events still
  /// ride along — they refill the resize replay buffer, and they remain the
  /// rebuild recipe for v1 snapshots (`has_engine_state == false`), whose
  /// muted-replay restore path is kept for backward compatibility.
  struct CheckpointState {
    /// One QueryEngine::SerializeState payload: the operator state of
    /// query `query` on worker `worker` (shards 0..N-1, broadcast == N).
    /// `query == 0` carries the worker engine's own counters
    /// (QueryEngine::SerializeEngineState).
    struct PlanState {
      int worker = 0;
      QueryId query = 0;
      std::string data;
    };
    struct Query {
      QueryId id = 0;
      std::string text;
      PlanOptions options;
      uint64_t registered_at = 0;
    };
    struct Stream {
      std::string name;
      Timestamp clock = 0;
      SequenceNumber last_seq = 0;
      uint64_t events = 0;
    };
    struct WindowEvent {
      StreamId stream = kDefaultStream;
      uint64_t global = 0;
      EventPtr event;
    };
    /// One hot-key split-table entry (mode: Partitioner::SplitMode as int).
    /// Splits must survive recovery: a secondary-split key's sub-partition
    /// state lives on the shard its (key, secondary) sub-hash picks, so the
    /// recovered process must route it identically.
    struct Split {
      StreamId stream = kDefaultStream;
      int mode = 0;
      Value key;
      std::string secondary_attr;
    };
    int shard_count = 1;
    std::string partition_key;
    uint64_t events_dispatched = 0;
    /// Merge ordinal at the quiesce point: seeds the OutputMerger's
    /// delivery-cursor clock on restore so replayed records re-stamp with
    /// their pre-crash positions.
    uint64_t records_merged = 0;
    bool any_routed = false;
    StreamId routed_stream = kDefaultStream;
    bool multi_routed = false;
    std::vector<Query> queries;   // id (= registration) order
    std::vector<Stream> streams;  // StreamId order
    std::vector<WindowEvent> window;
    /// Direct operator-state payloads (snapshot v2). False/empty when the
    /// state was read from a v1 snapshot — restore then falls back to
    /// muted window replay.
    bool has_engine_state = false;
    std::vector<PlanState> plan_states;
    std::vector<Split> splits;  // (stream, key) order
  };

  /// Captures the runtime's checkpoint state at a quiesce point (WaitIdle:
  /// every in-flight batch drained, all merge-safe output delivered),
  /// including every hosting engine's serialized operator state. The only
  /// refusal left is kFailedPrecondition from inside a Resize (a callback
  /// fired at the resize quiesce point — the layout is mid-change): with
  /// direct state serialization, aggregates, WITHIN-less stateful queries
  /// and broadcast-hosted state all checkpoint.
  Result<CheckpointState> ExportCheckpoint();

  /// Maps a checkpointed QueryId to the output callback its restored query
  /// should deliver to (callbacks cannot be serialized).
  using CallbackResolver = std::function<OutputCallback(QueryId)>;

  /// Rebuilds checkpointed state into this runtime (recovery bootstrap).
  /// The runtime must be freshly constructed, with the same shard count and
  /// partition key the state was captured under. Restores the per-stream
  /// dispatch stamps and re-registers every query at its original
  /// registration position, then:
  ///   - v2 state (`has_engine_state`): loads each hosting engine's
  ///     serialized operator state directly (QueryEngine::RestoreState) and
  ///     refills the resize replay buffer from the window events — no
  ///     replay, no watermark re-silencing; the engines resume holding
  ///     exactly the stacks, buffers, parked deferrals and aggregate
  ///     accumulators the checkpointed engines held;
  ///   - v1 state: deterministically replays the in-flight window with
  ///     registrations interleaved at their original dispatch positions,
  ///     discarding the replay output and re-silencing already-released
  ///     deferrals exactly like a Resize replay.
  /// Either way the global dispatch clock continues from the checkpoint, so
  /// positions recorded before the crash stay comparable with indices
  /// issued after recovery.
  Status RestoreCheckpoint(const CheckpointState& state,
                           const CallbackResolver& callbacks);

  /// True while a Resize is mid-flight (only observable from callbacks
  /// fired at the resize quiesce point).
  bool resizing() const { return resizing_; }

  // EventSink: routes one default-input event (dispatcher thread).
  void OnEvent(const EventPtr& event) override;

  /// Routes one event of a named input stream (case-insensitive), the
  /// sharded counterpart of QueryEngine::OnStreamEvent. Only queries
  /// registered with `FROM <stream>` receive it.
  void OnStreamEvent(const std::string& stream, const EventPtr& event);

  /// End-of-stream barrier: flushes partial batches, waits for every worker
  /// to flush its engine (releasing tail-negation deferrals), then merges
  /// and delivers ALL remaining output in serial order.
  void OnFlush() override;

  /// Quiesces: blocks until every worker drained its queue, then delivers
  /// whatever output is safely ordered. Unlike OnFlush this does not end the
  /// stream — tail-negation deferrals stay parked.
  void WaitIdle();

  // --- introspection (dispatcher thread) ---
  int shard_count() const { return config_.shard_count; }
  size_t query_count() const { return queries_.size(); }
  /// True when `id` runs key-partitioned across the shards (false: hosted on
  /// the broadcast worker, or unknown id).
  bool IsSharded(QueryId id) const;
  uint64_t events_dispatched() const { return events_dispatched_; }
  uint64_t records_merged() const { return merger_.merged_count(); }
  const Partitioner& partitioner() const { return partitioner_; }

  // Dispatch-log health (the memory-bound guarantee, live — no quiesce).
  size_t dispatch_log_len() const { return merger_.log_len(); }
  size_t peak_dispatch_log_len() const { return merger_.peak_log_len(); }
  uint64_t log_compactions() const { return merger_.compaction_count(); }
  uint64_t log_entries_compacted() const { return merger_.compacted_entries(); }

  /// Aggregated engine counters across all workers (quiesces first).
  /// Continuous across resizes: counters of shard engines retired by a
  /// Resize are carried over, and the replayed in-flight window adds to
  /// events_processed/outputs (reconcile with events_replayed(); the
  /// delivered-record truth is records_merged()). The per-worker lines in
  /// StatsReport() show the CURRENT engines only — they restart at a
  /// resize with the replayed window as their history.
  QueryEngine::EngineStats Stats();

  // Elastic / resize health (live — no quiesce).
  uint64_t resize_count() const { return resizes_; }
  uint64_t grow_count() const { return grows_; }
  uint64_t shrink_count() const { return shrinks_; }
  uint64_t events_replayed() const { return events_replayed_; }
  /// Events currently retained for resize replay (the in-flight window).
  size_t replay_buffer_len() const { return replay_len_; }
  // Hot-key mitigation health (live — no quiesce; dispatcher-thread state
  // read for reports and bench counters).
  size_t hotkey_active_splits() const { return partitioner_.split_count(); }
  uint64_t hotkey_spread_splits() const { return hotkey_spread_splits_; }
  uint64_t hotkey_secondary_splits() const { return hotkey_secondary_splits_; }
  uint64_t hotkey_split_refusals() const { return hotkey_split_refusals_; }
  const ElasticPolicy& elastic_policy() const { return policy_; }
  /// Batch size the dispatcher is cutting handoffs at right now (fixed
  /// batch_size unless RuntimeConfig::batch.enabled).
  size_t current_batch() const { return batch_policy_.current(); }
  const BatchPolicy& batch_policy() const { return batch_policy_; }
  /// Shared-scan activity summed over every worker engine. Reads the
  /// engines, so call from the dispatcher thread at a quiesce point
  /// (after WaitIdle or OnFlush).
  uint64_t shared_scan_hits() const;

  /// Fleet-wide runtime counters: the aggregated engine view plus dispatch,
  /// merge, dispatch-log and elastic/resize health (quiesces first).
  struct RuntimeStats {
    QueryEngine::EngineStats engine;
    uint64_t events_dispatched = 0;
    uint64_t records_merged = 0;
    size_t merge_pending = 0;
    size_t dispatch_log_len = 0;
    size_t peak_dispatch_log_len = 0;
    uint64_t log_compactions = 0;
    uint64_t log_entries_compacted = 0;
    size_t stream_count = 0;  // interned input streams (incl. default)
    // --- elastic / resize ---
    int shard_count = 0;           // current layout
    uint64_t resizes = 0;          // completed Resize() calls (manual + auto)
    uint64_t grows = 0;            // resizes that increased the shard count
    uint64_t shrinks = 0;          // resizes that decreased it
    uint64_t events_replayed = 0;  // replay work across all resizes
    size_t replay_buffer_len = 0;  // retained in-flight window, in events
    uint64_t elastic_checks = 0;   // policy evaluations
  };
  RuntimeStats FullStats();

  /// Multi-line fleet view: per-worker engine lines, merger and dispatch-log
  /// state, and one line per input stream (events, queries, per-shard
  /// routing counts).
  std::string StatsReport();

  /// One slow-query offender with the worker lane that recorded it
  /// ("shard-3", "broadcast").
  struct SlowSample {
    std::string host;
    QueryEngine::SlowQuerySample sample;
  };

  /// Slow-query ring contents across every worker engine, newest first
  /// (merged by capture time). Quiesces, so the rings are settled.
  /// Dispatcher thread only.
  std::vector<SlowSample> SlowSamples();

  /// Liveness probe for /healthz, callable from ANY thread (unlike every
  /// other entry point): a worker is wedged when its queue holds batches but
  /// its progress counter has not advanced for `stall_ns`. The first
  /// observation of a stuck worker only starts its stall clock, so a probe
  /// must fire twice before declaring a wedge — poll it. Returns true and
  /// leaves `why` untouched when healthy; false with a diagnosis otherwise.
  bool Healthy(uint64_t stall_ns, std::string* why);

  /// Mirrors the runtime's counters and gauges into RuntimeConfig::metrics:
  /// dispatch/merge/resize counters, per-stream and per-shard event counts,
  /// queue occupancy and merge watermark lag (sampled live, pre-quiesce),
  /// then each worker engine's per-query counters. Safe to call any time
  /// from the dispatcher thread; no-op without a registry.
  void ScrapeMetrics();

 private:
  using Clocks = std::vector<std::pair<std::string, Timestamp>>;

  struct Worker {
    Worker(int index_in, size_t queue_capacity) : index(index_in), queue(queue_capacity) {}

    int index;  // mutated only at a resize quiesce (broadcast worker moves)
    std::unique_ptr<QueryEngine> engine;  // owned; touched only by `thread`
                                          // while batches are in flight
    SpscRing<EventBatch> queue;
    std::thread thread;

    // Dispatcher-side state.
    EventBatch pending;                // accumulating batch (one stream)
    uint64_t pending_last_global = 0;  // global index of pending's last event
    uint64_t batches_enqueued = 0;

    // Worker-side progress, read by the dispatcher. The batch counter is
    // advanced only after the WHOLE batch — events, clocks, flush —
    // finished, so batches_processed == batches_enqueued means the worker
    // is parked on its ring and its engine is safe to touch. progress_hi
    // republishes the highest batch progress claim (global dispatch index
    // below which this worker can emit nothing new).
    std::atomic<uint64_t> batches_processed{0};
    std::atomic<uint64_t> progress_hi{0};

    // Output capture: engine callbacks append under `out_mutex`; the
    // dispatcher swaps the buffer out when merging.
    std::mutex out_mutex;
    std::vector<TaggedRecord> out;
    uint64_t arrival_counter = 0;  // guarded by out_mutex

    // Observability (set at MakeWorker, constant afterwards). The lane names
    // the worker in trace dumps and metric labels ("shard-3", "broadcast");
    // a carried-over broadcast worker keeps its lane across resizes.
    std::string lane;
    obs::HistogramMetric* ring_wait = nullptr;  // null = metrics off
  };

  struct QueryEntry {
    OutputCallback callback;
    bool sharded = false;
    StreamId stream = kDefaultStream;
    // Re-registration material for resize replay.
    std::string text;
    PlanOptions options;
    /// Global dispatch index at registration: the query saw exactly the
    /// events dispatched after this point, and resize replay re-registers
    /// it at the same position in the replayed timeline.
    uint64_t registered_at = 0;
    /// WITHIN span in ticks (-1 = none) and whether the plan carries
    /// cross-event state (>1 positive component or any negation); together
    /// these bound the replay window a resize needs.
    Ticks window_ticks = -1;
    bool stateful = false;
    /// Attribute names (beyond the shard key) whose equivalence class covers
    /// every component — hot-key secondary-partition candidates (see
    /// AnalyzedQuery::covering_attrs). Empty for stateless queries.
    std::vector<std::string> covering_attrs;
  };

  /// Registered-query counts per input stream; events of a stream nobody
  /// reads skip the worker handoff entirely (they still stamp the dispatch
  /// log, preserving the global order).
  struct StreamQueries {
    size_t sharded = 0;
    size_t broadcast = 0;
    /// Stateful queries reading this stream by host, and the largest WITHIN
    /// span among those that count toward retention (-1 = none): the
    /// stream's replay-retention window. Broadcast stateful queries extend
    /// the window only under RuntimeConfig::retain_for_checkpoint.
    size_t sharded_stateful = 0;
    size_t broadcast_stateful = 0;
    Ticks max_window = -1;
  };

  /// One retained event of the in-flight window (resize replay material).
  /// Kept in per-stream deques so a quiescent stream's frozen window never
  /// blocks other streams' pruning; replay k-way merges them back into
  /// global dispatch order.
  struct ReplayEntry {
    uint64_t global = 0;
    EventPtr event;
  };

  int broadcast_index() const { return config_.shard_count; }
  Worker& broadcast_worker() { return *workers_[static_cast<size_t>(broadcast_index())]; }

  /// Fresh worker with a private engine (engine_init applied); used by the
  /// constructor for every worker and by Resize for the new shard set.
  std::unique_ptr<Worker> MakeWorker(int index);
  /// Parse/analyze `text` into a QueryEntry (shardability, input stream,
  /// window/stateful/aggregate classification, registered_at = current
  /// dispatch index). Shared by Register and RestoreCheckpoint.
  Result<QueryEntry> AnalyzeEntry(const std::string& text,
                                  OutputCallback callback,
                                  PlanOptions options);
  /// Registers `entry` under `id` into its hosting engines and applies all
  /// bookkeeping (counters, per-stream windows, queries_ map). The workers
  /// must be quiescent (WaitIdle) or parked (restore/replay).
  Status InstallQuery(QueryId id, QueryEntry entry);
  /// True when `stream`'s events must be retained for replay.
  bool RetentionNeeded(const StreamQueries& hosts) const {
    return (hosts.sharded_stateful > 0 ||
            (config_.retain_for_checkpoint && hosts.broadcast_stateful > 0)) &&
           hosts.max_window >= 0;
  }
  /// Largest WITHIN span per stream can shrink on Unregister; rescan.
  void RecomputeStreamWindows();
  void WorkerLoop(Worker* worker);
  bool WorkerHostsQueries(const Worker& worker) const;
  OutputCallback CaptureCallback(Worker* worker, QueryId id, StreamId stream);
  StreamQueries& QueriesFor(StreamId stream);
  /// Shared dispatch tail of OnEvent/OnStreamEvent.
  void Dispatch(StreamId stream, const std::string& name,
                const EventPtr& event);
  /// `trace_id != 0` marks the event as trace-sampled in the pending batch.
  void AppendToWorker(Worker* worker, const std::string& stream,
                      const EventPtr& event, uint64_t global,
                      uint64_t trace_id);
  /// Pushes the worker's partial batch (if any, or if it carries clocks or a
  /// flush marker), stamping the progress claim.
  void FlushBatch(Worker* worker, const Clocks* clocks, bool flush);
  /// Per-stream clocks of every stream with traffic.
  Clocks CurrentClocks() const;
  /// Flushes batches with the current clocks to every hosting worker.
  void BroadcastClocks();
  void CollectOutputs();
  void DeliverReady();
  void Deliver(std::vector<TaggedRecord> records);
  void WaitDrained(Worker* worker);
  /// Appends the event to the replay window when its stream needs one, then
  /// prunes that stream's entries older than its retention window.
  void RetainForReplay(StreamId stream, const EventPtr& event,
                       uint64_t global);
  void PruneReplay(StreamId stream);
  void PruneReplayAll();
  /// Registers sharded query `id` into every shard engine (fresh capture
  /// callbacks); shared by Register and resize replay.
  Status RegisterIntoShards(QueryId id, const QueryEntry& entry);
  /// Shared tail of RestoreCheckpoint's direct (v2) and replay (v1) paths:
  /// continues the dispatch clock and restarts the worker threads.
  Status FinishRestore(const CheckpointState& state);
  /// Drops a query's bookkeeping (counters, per-stream windows, replay
  /// retention) and erases it; shared by Unregister and the resize replay's
  /// failed-re-registration path. Does NOT touch the engines.
  void DropQuery(std::map<QueryId, QueryEntry>::iterator it);
  /// Replays the retained window into the fresh shard engines, interleaving
  /// query registrations at their original positions; discards the replay
  /// output and re-silences already-released deferrals. Returns the number
  /// of events replayed.
  uint64_t ReplayIntoShards();
  /// Shared quiesce-point shard-rebuild machinery behind Resize and
  /// secondary-split activation: quiesce, stop the workers, carry the
  /// broadcast engine over, run `mutate` (the partitioner layout change)
  /// under health_mutex_, build fresh shard engines, replay the in-flight
  /// window, resume. Refuses (kFailedPrecondition) while a sharded stateful
  /// query has no WITHIN bound — no finite replay window exists.
  Status RebuildShards(int shard_count, const std::function<void()>& mutate);
  /// Mitigation policy tick (config_.hotkey_mitigation): every
  /// hotkey_min_events dispatched events, scan each stream's sketch for
  /// unsplit keys whose guaranteed share crosses the threshold and split
  /// them (SplitHotKey). Runs on the dispatcher between batches.
  void MaybeMitigateHotKeys();
  /// Splits one hot key: spread when `stream` hosts no sharded stateful
  /// query; secondary sub-partitioning by CommonSecondaryAttr when one
  /// exists (rebuilds the shard engines by replay); otherwise books a
  /// refusal. Returns true when a split was installed.
  bool SplitHotKey(StreamId stream, const Value& key);
  /// Covering attribute (beyond the shard key) shared by EVERY sharded
  /// stateful query reading `stream`; empty when none qualifies. First
  /// common candidate in the lowest-QueryId query's covering order, so the
  /// choice is deterministic.
  std::string CommonSecondaryAttr(StreamId stream) const;
  /// Re-examines active splits on `entry.stream` against a newly registered
  /// query (Register, before InstallQuery): spread splits are dropped when
  /// the newcomer is sharded stateful (they were sound only while none
  /// existed), and secondary splits whose attribute the newcomer's covering
  /// set lacks are unsplit with a shard rebuild. Keeps correctness ahead of
  /// mitigation.
  Status ResolveSplitConflicts(const QueryEntry& entry);
  /// Elastic policy tick: samples queue occupancy + event rate every
  /// check_interval dispatched events and resizes on a grow/shrink verdict.
  void MaybeAutoResize();
  /// Adaptive-batch policy tick: samples the dispatch rate every
  /// batch.check_interval events and adjusts the handoff cut-off.
  void MaybeAdaptBatch();
  /// Books a finished delivery at `threshold`: records dispatch->merge
  /// watermark latency for pending merge marks, and closes sampled events'
  /// "merge" and "emit" spans. `t0`/`t1` bracket the callback loop.
  void NoteDelivered(uint64_t threshold, uint64_t t0, uint64_t t1);

  const Catalog* catalog_;
  RuntimeConfig config_;
  Partitioner partitioner_;
  OutputMerger merger_;
  ElasticPolicy policy_;
  BatchPolicy batch_policy_;
  EngineInit engine_init_;

  std::vector<std::unique_ptr<Worker>> workers_;  // shards + broadcast
  /// Guards workers_ layout changes (Resize's teardown/rebuild) against the
  /// cross-thread Healthy() probe — the ONLY reader of workers_ off the
  /// dispatcher thread. Dispatcher-thread readers stay lock-free.
  mutable std::mutex health_mutex_;
  /// Per-worker stall tracking for Healthy(): last observed batch progress
  /// and when it first looked stuck (0 = advancing). Guarded by
  /// health_mutex_; reset when the layout changes.
  struct HealthProbe {
    uint64_t batches = 0;
    uint64_t stuck_since_ns = 0;
  };
  std::vector<HealthProbe> health_;
  std::map<QueryId, QueryEntry> queries_;
  std::vector<StreamQueries> stream_queries_;  // indexed by StreamId
  QueryId next_id_ = 1;
  size_t sharded_queries_ = 0;
  size_t broadcast_queries_ = 0;
  /// Sharded stateful queries with no WITHIN bound: while > 0 a resize has
  /// no finite replay window and Resize refuses. (Checkpointing has no such
  /// restriction since snapshot v2: engine state is serialized directly.)
  size_t unbounded_sharded_ = 0;
  /// True for the duration of a Resize; callbacks fired at the resize
  /// quiesce point see it and ExportCheckpoint refuses.
  bool resizing_ = false;

  // In-flight window retained for resize replay: one deque per StreamId,
  // each in dispatch order, independently pruned by its stream's window.
  std::vector<std::deque<ReplayEntry>> replay_;
  size_t replay_len_ = 0;  // total entries across all stream deques

  // Elastic / resize health.
  /// Counters of shard engines retired by past resizes, so fleet-wide
  /// Stats() stays continuous across layout changes.
  QueryEngine::EngineStats retired_engine_stats_;
  uint64_t resizes_ = 0;
  uint64_t grows_ = 0;
  uint64_t shrinks_ = 0;
  uint64_t events_replayed_ = 0;
  uint64_t last_check_global_ = 0;
  std::chrono::steady_clock::time_point last_check_time_{};
  // Hot-key mitigation bookkeeping (dispatcher thread only).
  uint64_t hotkey_check_global_ = 0;  // dispatch index of the last check
  uint64_t hotkey_spread_splits_ = 0;
  uint64_t hotkey_secondary_splits_ = 0;
  uint64_t hotkey_split_refusals_ = 0;
  /// (stream, type-tagged EncodeValue(key)) pairs already refused, so a
  /// pinned hot key books one refusal instead of one per check. The encoded
  /// rendering keeps differently-typed keys distinct where ToString aliases
  /// (int 7 vs string "7"). Cleared when the query set changes — a refusal
  /// may become splittable (or vice versa).
  std::set<std::pair<StreamId, std::string>> hotkey_refused_;
  // Adaptive-batch sampling window (independent of the elastic window).
  uint64_t batch_check_global_ = 0;
  std::chrono::steady_clock::time_point batch_check_time_{};
  /// Batch sizes chosen by the policy, one sample per tick; null without a
  /// registry or with adaptive batching off.
  obs::HistogramMetric* batch_size_hist_ = nullptr;

  uint64_t events_dispatched_ = 0;  // == global dispatch index of last event
  // Memoized OnStreamEvent name resolution (raw -> lowered + interned id).
  std::string last_stream_raw_;
  std::string last_stream_name_;
  StreamId last_stream_id_ = kDefaultStream;
  bool last_stream_valid_ = false;
  // With single-stream traffic an event batch claims progress by itself
  // (its own events are the clock); once routed traffic spans multiple
  // input streams, every event batch instead carries the current per-stream
  // clocks so the claim also covers the other streams' parked deferrals —
  // per-batch merge progress under interleaved traffic (see FlushBatch).
  bool any_routed_ = false;
  StreamId routed_stream_ = kDefaultStream;
  bool multi_routed_ = false;

  // --- observability (dispatcher thread only) ---
  /// True when batches should carry an enqueue timestamp (metrics or tracer
  /// attached); one MonotonicNs() call per batch, not per event.
  bool obs_stamp_ = false;
  obs::HistogramMetric* dispatch_merge_latency_ = nullptr;
  /// Merge-watermark marks: {dispatch index, MonotonicNs at dispatch}, one
  /// per merge-interval cycle; popped when a delivery's threshold passes the
  /// index, yielding the dispatch->merge latency sample.
  struct MergeMark {
    uint64_t global = 0;
    uint64_t ns = 0;
  };
  std::deque<MergeMark> merge_marks_;
  /// Sampled events awaiting delivery; closed into "merge"/"emit" spans by
  /// NoteDelivered once the merge watermark passes their dispatch index.
  struct OpenTrace {
    uint64_t global = 0;
    uint64_t trace_id = 0;
    uint64_t ns = 0;
  };
  std::deque<OpenTrace> open_traces_;
};

}  // namespace sase

#endif  // SASE_RUNTIME_SHARDED_RUNTIME_H_
