#ifndef SASE_RUNTIME_SHARDED_RUNTIME_H_
#define SASE_RUNTIME_SHARDED_RUNTIME_H_

#include <atomic>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/catalog.h"
#include "core/stream.h"
#include "engine/query_engine.h"
#include "runtime/event_batch.h"
#include "runtime/output_merger.h"
#include "runtime/partitioner.h"

namespace sase {

/// Configuration knobs for the sharded execution runtime.
struct RuntimeConfig {
  /// Number of key-partitioned shards (worker threads with a private
  /// QueryEngine each). One extra broadcast worker hosts queries that
  /// cannot be key-partitioned.
  int shard_count = 4;
  /// Attribute whose value partitions the stream; `TagId` for the paper's
  /// RFID workloads.
  std::string partition_key = "TagId";
  /// Events per cross-thread handoff (ring-slot exchange).
  size_t batch_size = 256;
  /// Batches per shard queue before the dispatcher blocks (backpressure).
  size_t queue_capacity = 64;
  /// Dispatcher events between incremental merge attempts (and per-stream
  /// clock broadcasts that unstick quiet shards' tail negations). 0 disables
  /// incremental delivery: all output surfaces on OnFlush/WaitIdle.
  size_t merge_interval = 4096;
  /// Dead dispatch-log prefix entries a stream log accumulates before the
  /// merger physically truncates it (amortizes the erase). SIZE_MAX disables
  /// compaction — the log then grows with the stream, the pre-compaction
  /// behavior kept for benchmarking the difference.
  size_t log_compact_min = 1024;
  TimeConfig time_config;
};

/// The sharded parallel execution runtime: stands between the event bus and
/// N+1 private QueryEngine instances, scaling the complex event processor
/// across cores while producing byte-identical output to serial execution.
///
///   StreamBus / sources (dispatcher thread)
///     -> Partitioner: key-hash routing (TagId) + per-stream batching
///        -> SPSC ring -> shard worker 0 .. N-1 (own QueryEngine each)
///        -> SPSC ring -> broadcast worker (non-shardable queries, all
///                        events)
///     <- OutputMerger: re-sequences tagged shard outputs into serial
///        dispatch order; user callbacks fire on the dispatcher thread.
///
/// Shardable queries (see Partitioner::Shardable) are mirrored into every
/// shard engine under the same QueryId; each shard evaluates only its key
/// partition's events, so the union of shard outputs equals the serial
/// result set, and the merger restores the serial emission order. Everything
/// else runs serially on the broadcast worker, which receives the full
/// stream.
///
/// Named input streams: queries with a `FROM <stream>` clause route through
/// the runtime exactly like default-input queries — feed their events in via
/// OnStreamEvent. Each stream keeps its own dispatch log and clock; the
/// merge order across streams is the dispatch interleaving, i.e. the order
/// the serial engine would have seen the OnEvent/OnStreamEvent calls.
///
/// Memory bound: the merger's dispatch log is compacted below the merge
/// watermark after every incremental merge, so steady-state runtime memory
/// is O(shards x in-flight window) — batches in flight plus one
/// merge-interval of log — independent of total stream length.
///
/// Threading contract: Register/Unregister/OnEvent/OnStreamEvent/OnFlush/
/// WaitIdle are called from ONE dispatcher thread (the stream's producer).
/// Output callbacks fire on that same thread, during OnEvent (incremental
/// merges), OnFlush and WaitIdle — user code never needs to synchronize.
/// Events must arrive in stream order per input stream (non-decreasing
/// timestamp, increasing seq), the invariant StreamSource already enforces.
class ShardedRuntime : public EventSink {
 public:
  /// Hook run once per private engine at construction, before any query
  /// registration — install custom functions here. Functions installed into
  /// shard engines run on worker threads; keep them thread-safe or register
  /// the queries that call them outside the runtime.
  using EngineInit = std::function<void(QueryEngine&)>;

  explicit ShardedRuntime(const Catalog* catalog, RuntimeConfig config = {},
                          EngineInit engine_init = nullptr);
  ~ShardedRuntime() override;

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  /// Registers a continuous query; `callback` receives merged, serially
  /// ordered records on the dispatcher thread. Queries reading a named FROM
  /// stream are hosted like any other — their events arrive via
  /// OnStreamEvent. Quiesces the workers, so mid-stream registration is safe
  /// (the query sees the stream suffix, exactly as with a serial engine).
  Result<QueryId> Register(const std::string& text, OutputCallback callback,
                           PlanOptions options = {});

  /// Removes a query from every hosting engine. Records already emitted but
  /// not yet merge-safe are dropped, matching the serial engine's contract
  /// that an unregistered plan's undelivered state vanishes.
  Status Unregister(QueryId id);

  // EventSink: routes one default-input event (dispatcher thread).
  void OnEvent(const EventPtr& event) override;

  /// Routes one event of a named input stream (case-insensitive), the
  /// sharded counterpart of QueryEngine::OnStreamEvent. Only queries
  /// registered with `FROM <stream>` receive it.
  void OnStreamEvent(const std::string& stream, const EventPtr& event);

  /// End-of-stream barrier: flushes partial batches, waits for every worker
  /// to flush its engine (releasing tail-negation deferrals), then merges
  /// and delivers ALL remaining output in serial order.
  void OnFlush() override;

  /// Quiesces: blocks until every worker drained its queue, then delivers
  /// whatever output is safely ordered. Unlike OnFlush this does not end the
  /// stream — tail-negation deferrals stay parked.
  void WaitIdle();

  // --- introspection (dispatcher thread) ---
  int shard_count() const { return config_.shard_count; }
  size_t query_count() const { return queries_.size(); }
  /// True when `id` runs key-partitioned across the shards (false: hosted on
  /// the broadcast worker, or unknown id).
  bool IsSharded(QueryId id) const;
  uint64_t events_dispatched() const { return events_dispatched_; }
  uint64_t records_merged() const { return merger_.merged_count(); }
  const Partitioner& partitioner() const { return partitioner_; }

  // Dispatch-log health (the memory-bound guarantee, live — no quiesce).
  size_t dispatch_log_len() const { return merger_.log_len(); }
  size_t peak_dispatch_log_len() const { return merger_.peak_log_len(); }
  uint64_t log_compactions() const { return merger_.compaction_count(); }
  uint64_t log_entries_compacted() const { return merger_.compacted_entries(); }

  /// Aggregated engine counters across all workers (quiesces first).
  QueryEngine::EngineStats Stats();

  /// Fleet-wide runtime counters: the aggregated engine view plus dispatch,
  /// merge and dispatch-log health (quiesces first).
  struct RuntimeStats {
    QueryEngine::EngineStats engine;
    uint64_t events_dispatched = 0;
    uint64_t records_merged = 0;
    size_t merge_pending = 0;
    size_t dispatch_log_len = 0;
    size_t peak_dispatch_log_len = 0;
    uint64_t log_compactions = 0;
    uint64_t log_entries_compacted = 0;
    size_t stream_count = 0;  // interned input streams (incl. default)
  };
  RuntimeStats FullStats();

  /// Multi-line fleet view: per-worker engine lines, merger and dispatch-log
  /// state, and one line per input stream (events, queries, per-shard
  /// routing counts).
  std::string StatsReport();

 private:
  using Clocks = std::vector<std::pair<std::string, Timestamp>>;

  struct Worker {
    Worker(int index_in, size_t queue_capacity) : index(index_in), queue(queue_capacity) {}

    const int index;
    std::unique_ptr<QueryEngine> engine;  // owned; touched only by `thread`
                                          // while batches are in flight
    SpscRing<EventBatch> queue;
    std::thread thread;

    // Dispatcher-side state.
    EventBatch pending;                // accumulating batch (one stream)
    uint64_t pending_last_global = 0;  // global index of pending's last event
    uint64_t batches_enqueued = 0;

    // Worker-side progress, read by the dispatcher. The batch counter is
    // advanced only after the WHOLE batch — events, clocks, flush —
    // finished, so batches_processed == batches_enqueued means the worker
    // is parked on its ring and its engine is safe to touch. progress_hi
    // republishes the highest batch progress claim (global dispatch index
    // below which this worker can emit nothing new).
    std::atomic<uint64_t> batches_processed{0};
    std::atomic<uint64_t> progress_hi{0};

    // Output capture: engine callbacks append under `out_mutex`; the
    // dispatcher swaps the buffer out when merging.
    std::mutex out_mutex;
    std::vector<TaggedRecord> out;
    uint64_t arrival_counter = 0;  // guarded by out_mutex
  };

  struct QueryEntry {
    OutputCallback callback;
    bool sharded = false;
    StreamId stream = kDefaultStream;
  };

  /// Registered-query counts per input stream; events of a stream nobody
  /// reads skip the worker handoff entirely (they still stamp the dispatch
  /// log, preserving the global order).
  struct StreamQueries {
    size_t sharded = 0;
    size_t broadcast = 0;
  };

  int broadcast_index() const { return config_.shard_count; }
  Worker& broadcast_worker() { return *workers_[static_cast<size_t>(broadcast_index())]; }

  void WorkerLoop(Worker* worker);
  bool WorkerHostsQueries(const Worker& worker) const;
  OutputCallback CaptureCallback(Worker* worker, QueryId id, StreamId stream);
  StreamQueries& QueriesFor(StreamId stream);
  /// Shared dispatch tail of OnEvent/OnStreamEvent.
  void Dispatch(StreamId stream, const std::string& name,
                const EventPtr& event);
  void AppendToWorker(Worker* worker, const std::string& stream,
                      const EventPtr& event, uint64_t global);
  /// Pushes the worker's partial batch (if any, or if it carries clocks or a
  /// flush marker), stamping the progress claim.
  void FlushBatch(Worker* worker, const Clocks* clocks, bool flush);
  /// Per-stream clocks of every stream with traffic.
  Clocks CurrentClocks() const;
  /// Flushes batches with the current clocks to every hosting worker.
  void BroadcastClocks();
  void CollectOutputs();
  void DeliverReady();
  void Deliver(std::vector<TaggedRecord> records);
  void WaitDrained(Worker* worker);

  const Catalog* catalog_;
  RuntimeConfig config_;
  Partitioner partitioner_;
  OutputMerger merger_;

  std::vector<std::unique_ptr<Worker>> workers_;  // shards + broadcast
  std::map<QueryId, QueryEntry> queries_;
  std::vector<StreamQueries> stream_queries_;  // indexed by StreamId
  QueryId next_id_ = 1;
  size_t sharded_queries_ = 0;
  size_t broadcast_queries_ = 0;

  uint64_t events_dispatched_ = 0;  // == global dispatch index of last event
  // Memoized OnStreamEvent name resolution (raw -> lowered + interned id).
  std::string last_stream_raw_;
  std::string last_stream_name_;
  StreamId last_stream_id_ = kDefaultStream;
  bool last_stream_valid_ = false;
  // Event batches may claim merge progress only while every routed event so
  // far belongs to one input stream (see FlushBatch); with interleaved
  // streams, progress advances at clock broadcasts instead.
  bool any_routed_ = false;
  StreamId routed_stream_ = kDefaultStream;
  bool multi_routed_ = false;
};

}  // namespace sase

#endif  // SASE_RUNTIME_SHARDED_RUNTIME_H_
