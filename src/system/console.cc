#include "system/console.h"

#include <sstream>

#include "util/string_util.h"

namespace sase {
namespace {

/// Splits "<head> <rest...>" at the first whitespace run.
std::pair<std::string, std::string> SplitHead(const std::string& line) {
  std::string_view trimmed = Trim(line);
  size_t space = trimmed.find_first_of(" \t");
  if (space == std::string_view::npos) {
    return {std::string(trimmed), ""};
  }
  return {std::string(trimmed.substr(0, space)),
          std::string(Trim(trimmed.substr(space + 1)))};
}

constexpr const char* kHelp =
    "commands:\n"
    "  register <name> <query>  register a monitoring query\n"
    "  rule <name> <query>      register an archiving rule\n"
    "  sql <statement>          ad-hoc SQL over the event database\n"
    "  trace <tag>              movement history of an item\n"
    "  inventory <area-id>      tags currently in an area\n"
    "  run <ticks>              advance the simulation\n"
    "  stats                    engine + cleaning statistics\n"
    "  window <channel>         dump a UI report channel\n"
    "  queries                  list registered queries\n"
    "  .checkpoint [dir]        write a durable checkpoint\n"
    "  .restore <dir>           recover the session from a checkpoint\n"
    "  .metrics [path]          scrape + render Prometheus metrics\n"
    "  .statusz                 human-readable system status page\n"
    "  .slowlog [n]             last n slow-query samples (newest first)\n"
    "  .trace on <N>|off|dump <path>  event-lifecycle trace sampling\n"
    "  .acks [commit]           ack-cursor status; 'commit' forces the\n"
    "                           pending ack batch to the journal\n"
    "  help                     this summary";

}  // namespace

std::string Console::Execute(const std::string& line) {
  auto [command, args] = SplitHead(line);
  if (command.empty() || command[0] == '#') return "";
  if (EqualsIgnoreCase(command, "register")) return CmdRegister(args, false);
  if (EqualsIgnoreCase(command, "rule")) return CmdRegister(args, true);
  if (EqualsIgnoreCase(command, "sql")) return CmdSql(args);
  if (EqualsIgnoreCase(command, "trace")) return CmdTrace(args);
  if (EqualsIgnoreCase(command, "inventory")) return CmdInventory(args);
  if (EqualsIgnoreCase(command, "run")) return CmdRun(args);
  if (EqualsIgnoreCase(command, "stats")) return CmdStats();
  if (EqualsIgnoreCase(command, "window")) return CmdWindow(args);
  if (EqualsIgnoreCase(command, "queries")) return CmdQueries();
  if (EqualsIgnoreCase(command, ".checkpoint")) return CmdCheckpoint(args);
  if (EqualsIgnoreCase(command, ".restore")) return CmdRestore(args);
  if (EqualsIgnoreCase(command, ".metrics")) return CmdMetrics(args);
  if (EqualsIgnoreCase(command, ".statusz")) return CmdStatusz();
  if (EqualsIgnoreCase(command, ".slowlog")) return CmdSlowlog(args);
  if (EqualsIgnoreCase(command, ".trace")) return CmdTracing(args);
  if (EqualsIgnoreCase(command, ".acks")) return CmdAcks(args);
  if (EqualsIgnoreCase(command, "help")) return kHelp;
  return "error: unknown command '" + command + "' (try 'help')";
}

std::string Console::ExecuteScript(const std::string& script) {
  std::ostringstream out;
  std::istringstream in(script);
  std::string line;
  while (std::getline(in, line)) {
    std::string result = Execute(line);
    if (!result.empty()) out << result << "\n";
  }
  return out.str();
}

std::string Console::CmdRegister(const std::string& args, bool archiving) {
  auto [name, query] = SplitHead(args);
  if (name.empty() || query.empty()) {
    return "error: usage: register <name> <query>";
  }
  Result<QueryId> id =
      archiving ? system_->RegisterArchivingRule(name, query)
                : system_->RegisterMonitoringQuery(
                      name, query,
                      [this, name = name](const OutputRecord& record) {
                        alerts_.push_back("[" + name + "] " + record.ToString());
                      });
  if (!id.ok()) return "error: " + id.status().ToString();
  queries_.emplace_back(name, id.value());
  return (archiving ? "rule '" : "query '") + name + "' registered as #" +
         std::to_string(id.value());
}

std::string Console::CmdSql(const std::string& args) {
  if (args.empty()) return "error: usage: sql <statement>";
  auto result = system_->ExecuteSql(args);
  if (!result.ok()) return "error: " + result.status().ToString();
  return result.value().ToString();
}

std::string Console::CmdTrace(const std::string& args) {
  if (args.empty()) return "error: usage: trace <tag>";
  auto trace = system_->track_trace();
  auto history = trace.MovementHistory(args);
  if (history.empty()) return "no history for " + args;
  std::ostringstream out;
  out << "movement history of " << args << ":";
  for (const auto& entry : history) {
    out << "\n  " << entry.ToString();
  }
  auto current = trace.CurrentLocation(args);
  if (current.has_value()) {
    out << "\ncurrent: "
        << system_->archiver().RetrieveLocation(current->where.AsInt());
  }
  return out.str();
}

std::string Console::CmdInventory(const std::string& args) {
  char* end = nullptr;
  long area = std::strtol(args.c_str(), &end, 10);
  if (args.empty() || end == args.c_str() || *end != '\0') {
    return "error: usage: inventory <area-id>";
  }
  auto tags = system_->track_trace().TagsInArea(area);
  std::ostringstream out;
  out << tags.size() << " item(s) in "
      << system_->archiver().RetrieveLocation(area);
  for (const auto& tag : tags) out << "\n  " << tag;
  return out.str();
}

std::string Console::CmdRun(const std::string& args) {
  char* end = nullptr;
  long ticks = std::strtol(args.c_str(), &end, 10);
  if (args.empty() || end == args.c_str() || *end != '\0' || ticks < 0) {
    return "error: usage: run <ticks>";
  }
  int64_t until = system_->simulator().now() + ticks;
  system_->RunUntil(until - 1);
  return "simulated to tick " + std::to_string(system_->simulator().now());
}

std::string Console::CmdStats() {
  std::ostringstream out;
  out << system_->engine().StatsReport();
  out << system_->cleaning().StatsReport();
  if (system_->runtime() != nullptr) out << system_->runtime()->StatsReport();
  out << system_->CheckpointReport();
  return out.str();
}

std::string Console::CmdCheckpoint(const std::string& args) {
  Status status = system_->Checkpoint(args);
  if (!status.ok()) return "error: " + status.ToString();
  const std::string& dir = args.empty() ? system_->config().checkpoint.dir : args;
  return "checkpoint written to " + dir;
}

std::string Console::CmdRestore(const std::string& args) {
  if (args.empty()) return "error: usage: .restore <dir>";
  // Recovered monitoring queries re-attach to this console's alert list
  // under their registration names, exactly as CmdRegister wires new ones.
  auto recovered = SaseSystem::Recover(
      args, system_->layout(), system_->config(),
      [this](const std::string& name) -> OutputCallback {
        return [this, name](const OutputRecord& record) {
          alerts_.push_back("[" + name + "] " + record.ToString());
        };
      });
  if (!recovered.ok()) return "error: " + recovered.status().ToString();
  owned_ = std::move(recovered).value();
  system_ = owned_.get();
  queries_.clear();
  for (const SaseSystem::QueryInfo& info : system_->registered_queries()) {
    queries_.emplace_back(info.name, info.id);
  }
  std::ostringstream out;
  out << "restored from " << args << ": " << queries_.size()
      << " quer" << (queries_.size() == 1 ? "y" : "ies") << ", "
      << system_->recovered_journal_records() << " journal records replayed";
  if (system_->recovered_journal_truncated()) {
    out << " (journal tail was torn; recovered the valid prefix)";
  }
  return out.str();
}

std::string Console::CmdMetrics(const std::string& args) {
  obs::MetricsRegistry* metrics = system_->metrics();
  if (metrics == nullptr) {
    return "error: metrics are disabled (SystemConfig.obs.metrics_enabled)";
  }
  system_->ScrapeMetrics();
  if (args.empty()) return metrics->RenderPrometheus();
  Status written = metrics->WritePrometheus(args);
  if (!written.ok()) return "error: " + written.ToString();
  return "metrics written to " + args;
}

std::string Console::CmdStatusz() {
  // Mirror the scrape first so the counter sections the status page shares
  // with /metrics (checkpoint, delivery) are fresh; this also refreshes the
  // HTTP endpoint's cached copy of the page.
  system_->ScrapeMetrics();
  return system_->StatusReport();
}

std::string Console::CmdSlowlog(const std::string& args) {
  size_t limit = 10;
  if (!args.empty()) {
    char* end = nullptr;
    long n = std::strtol(args.c_str(), &end, 10);
    if (end == args.c_str() || *end != '\0' || n <= 0) {
      return "error: usage: .slowlog [n]";
    }
    limit = static_cast<size_t>(n);
  }
  uint64_t threshold = system_->config().obs.slow_query_threshold_ns;
  if (system_->metrics() == nullptr || threshold == 0) {
    return "slow-query log is disarmed (obs.metrics_enabled + "
           "obs.slow_query_threshold_ns arm it)";
  }
  std::vector<ShardedRuntime::SlowSample> slow = system_->SlowSamples();
  std::ostringstream out;
  out << "slow-query log: " << slow.size() << " sample(s) >= " << threshold
      << " ns/event";
  size_t shown = 0;
  for (const ShardedRuntime::SlowSample& entry : slow) {
    if (++shown > limit) break;
    out << "\n  " << entry.host << " query=#" << entry.sample.query
        << " seq=" << entry.sample.seq << " ts=" << entry.sample.timestamp
        << " duration_ns=" << entry.sample.duration_ns;
  }
  return out.str();
}

std::string Console::CmdTracing(const std::string& args) {
  auto [verb, rest] = SplitHead(args);
  obs::TraceCollector& tracer = system_->tracer();
  if (EqualsIgnoreCase(verb, "on")) {
    char* end = nullptr;
    long every = std::strtol(rest.c_str(), &end, 10);
    if (rest.empty() || end == rest.c_str() || *end != '\0' || every <= 0) {
      return "error: usage: .trace on <sample-every-N>";
    }
    tracer.SetSampling(static_cast<uint64_t>(every));
    return "tracing on: sampling 1 in " + std::to_string(every) + " events";
  }
  if (EqualsIgnoreCase(verb, "off")) {
    tracer.SetSampling(0);
    return "tracing off (" + std::to_string(tracer.span_count()) +
           " spans collected)";
  }
  if (EqualsIgnoreCase(verb, "dump")) {
    if (rest.empty()) return "error: usage: .trace dump <path>";
    // Quiesce first so spans of in-flight sampled events reach the
    // collector before the file is written.
    if (system_->runtime() != nullptr) system_->runtime()->WaitIdle();
    size_t spans = tracer.span_count();
    Status dumped = tracer.DumpJson(rest);
    if (!dumped.ok()) return "error: " + dumped.ToString();
    return "trace dumped to " + rest + " (" + std::to_string(spans) +
           " spans)";
  }
  return "error: usage: .trace on <N> | .trace off | .trace dump <path>";
}

std::string Console::CmdAcks(const std::string& args) {
  if (EqualsIgnoreCase(Trim(args), "commit")) {
    Status committed = system_->CommitAcks();
    if (!committed.ok()) return "error: " + committed.ToString();
    return "ack batch committed (acked " +
           std::to_string(system_->acked_runtime()) + "+" +
           std::to_string(system_->acked_serial()) + ")";
  }
  if (!args.empty()) return "error: usage: .acks [commit]";
  bool consumer = system_->config().checkpoint.ack_mode ==
                  checkpoint::AckMode::kConsumer;
  std::ostringstream out;
  out << "ack mode: " << (consumer ? "consumer" : "auto") << "\n"
      << "delivered: " << system_->records_delivered() << " acked: "
      << system_->acked_runtime() + system_->acked_serial() << " lag: "
      << system_->records_delivered() -
             (system_->acked_runtime() + system_->acked_serial())
      << "\n"
      << "suppressed duplicates: " << system_->suppressed_duplicates();
  return out.str();
}

std::string Console::CmdWindow(const std::string& args) {
  if (args.empty()) return "error: usage: window <channel name>";
  const ReportChannel* channel = system_->reports().Find(args);
  if (channel == nullptr) {
    std::string names;
    for (const auto& name : system_->reports().ChannelNames()) {
      names += "\n  " + name;
    }
    return "error: no channel '" + args + "'; available:" + names;
  }
  return channel->ToString();
}

std::string Console::CmdQueries() {
  if (queries_.empty()) return "(no queries registered)";
  std::ostringstream out;
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (i > 0) out << "\n";
    out << "#" << queries_[i].second << " " << queries_[i].first;
  }
  return out.str();
}

}  // namespace sase
