#ifndef SASE_SYSTEM_CONSOLE_H_
#define SASE_SYSTEM_CONSOLE_H_

#include <memory>
#include <string>
#include <vector>

#include "system/sase_system.h"

namespace sase {

/// Text command surface over a SaseSystem — the stand-in for the demo UI's
/// interactive controls ("SASE has a UI that allows the user to issue both
/// continuous queries over the RFID stream and ad hoc queries on the event
/// database", §3). Each Execute() call takes one command line and returns
/// the text the UI would display.
///
/// Commands:
///   register <name> <sase query...>   register a monitoring query
///   rule <name> <sase query...>       register an archiving rule
///   sql <statement...>                ad-hoc SQL over the event database
///   trace <tag>                       movement history + current location
///   inventory <area-id>               tags currently in an area
///   run <ticks>                       advance the simulation
///   stats                             engine + cleaning statistics
///   window <channel name...>          dump a UI report channel
///   queries                           list registered queries
///   .checkpoint [dir]                 write a durable checkpoint
///   .restore <dir>                    replace the session's system with one
///                                     recovered from a checkpoint directory
///   .metrics [path]                   scrape + render Prometheus metrics
///                                     (to `path` when given)
///   .statusz                          human-readable system status (what
///                                     the HTTP endpoint serves at /statusz)
///   .slowlog [n]                      last n slow-query samples across all
///                                     host engines, newest first
///   .trace on <N> | off | dump <path> event-lifecycle trace sampling
///   .acks [commit]                    ack-cursor status / force the pending
///                                     ack batch to the journal
///   help                              command summary
class Console {
 public:
  explicit Console(SaseSystem* system) : system_(system) {}

  /// Executes one command line; never throws, errors come back as text
  /// prefixed with "error:".
  std::string Execute(const std::string& line);

  /// Executes a script (one command per line, '#' comments); returns the
  /// concatenated outputs.
  std::string ExecuteScript(const std::string& script);

  /// Alerts received from queries registered through this console.
  const std::vector<std::string>& alerts() const { return alerts_; }

 private:
  std::string CmdRegister(const std::string& args, bool archiving);
  std::string CmdSql(const std::string& args);
  std::string CmdTrace(const std::string& args);
  std::string CmdInventory(const std::string& args);
  std::string CmdRun(const std::string& args);
  std::string CmdStats();
  std::string CmdWindow(const std::string& args);
  std::string CmdQueries();
  std::string CmdCheckpoint(const std::string& args);
  std::string CmdRestore(const std::string& args);
  std::string CmdMetrics(const std::string& args);
  std::string CmdStatusz();
  std::string CmdSlowlog(const std::string& args);
  std::string CmdTracing(const std::string& args);
  std::string CmdAcks(const std::string& args);

  SaseSystem* system_;
  /// Set by `.restore`: the console owns the recovered system it switched
  /// to (the original, caller-owned system is left untouched).
  std::unique_ptr<SaseSystem> owned_;
  std::vector<std::pair<std::string, QueryId>> queries_;
  std::vector<std::string> alerts_;
};

}  // namespace sase

#endif  // SASE_SYSTEM_CONSOLE_H_
