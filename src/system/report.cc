#include "system/report.h"

#include <cstdio>
#include <sstream>

namespace sase {

void ReportChannel::Append(const std::string& line) {
  lines_.push_back(line);
  if (echo_) std::printf("[%s] %s\n", name_.c_str(), line.c_str());
}

bool ReportChannel::Contains(const std::string& needle) const {
  for (const auto& line : lines_) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string ReportChannel::ToString() const {
  std::ostringstream out;
  out << "=== " << name_ << " ===\n";
  for (const auto& line : lines_) out << line << "\n";
  return out.str();
}

ReportChannel& ReportBoard::Channel(const std::string& name) {
  auto it = channels_.find(name);
  if (it == channels_.end()) {
    it = channels_.emplace(name, ReportChannel(name, echo_)).first;
  }
  return it->second;
}

const ReportChannel* ReportBoard::Find(const std::string& name) const {
  auto it = channels_.find(name);
  return it == channels_.end() ? nullptr : &it->second;
}

std::vector<std::string> ReportBoard::ChannelNames() const {
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, channel] : channels_) names.push_back(name);
  return names;
}

}  // namespace sase
