#ifndef SASE_SYSTEM_REPORT_H_
#define SASE_SYSTEM_REPORT_H_

#include <map>
#include <string>
#include <vector>

namespace sase {

/// One window of the demo UI, reduced to a text channel. Figure 3 shows
/// five windows ("Present Queries", "Cleaning and Association Layer
/// Output", "Database Report", "Stream Processor Output", "Message
/// Results"); the system writes the same intermediate results to these
/// channels, which tests assert on and examples print.
class ReportChannel {
 public:
  ReportChannel() = default;
  explicit ReportChannel(std::string name, bool echo = false)
      : name_(std::move(name)), echo_(echo) {}

  void Append(const std::string& line);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& lines() const { return lines_; }
  size_t size() const { return lines_.size(); }
  void Clear() { lines_.clear(); }

  /// True if any line contains `needle`.
  bool Contains(const std::string& needle) const;

  /// The channel rendered with a header, for example programs.
  std::string ToString() const;

 private:
  std::string name_;
  bool echo_ = false;
  std::vector<std::string> lines_;
};

/// The set of UI windows.
class ReportBoard {
 public:
  explicit ReportBoard(bool echo = false) : echo_(echo) {}

  /// Returns (creating on first use) the named channel.
  ReportChannel& Channel(const std::string& name);
  const ReportChannel* Find(const std::string& name) const;

  std::vector<std::string> ChannelNames() const;

  /// Standard window names from Figure 3.
  static constexpr const char* kPresentQueries = "Present Queries";
  static constexpr const char* kCleaningOutput =
      "Cleaning and Association Layer Output";
  static constexpr const char* kDatabaseReport = "Database Report";
  static constexpr const char* kStreamOutput = "Stream Processor Output";
  static constexpr const char* kMessageResults = "Message Results";

 private:
  bool echo_;
  std::map<std::string, ReportChannel> channels_;
};

}  // namespace sase

#endif  // SASE_SYSTEM_REPORT_H_
