#include "system/sase_system.h"

#include <algorithm>
#include <filesystem>
#include <set>
#include <sstream>

#include "checkpoint/journal.h"
#include "obs/report.h"
#include "db/dump.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sase {
namespace {

/// True when any node of the expression tree is a function call. Hybrid
/// stream+database queries (_retrieveLocation, _updateContainment, ...)
/// must run on the serial engine: the simulation thread owns the Event
/// Database, and shard workers must never touch it.
bool HasCall(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kCall:
      return true;
    case ExprKind::kBinary: {
      const auto& node = static_cast<const BinaryExpr&>(expr);
      return HasCall(*node.left()) || HasCall(*node.right());
    }
    case ExprKind::kUnary:
      return HasCall(*static_cast<const UnaryExpr&>(expr).operand());
    case ExprKind::kAggregate: {
      const auto& node = static_cast<const AggregateExpr&>(expr);
      return node.arg() != nullptr && HasCall(*node.arg());
    }
    default:
      return false;
  }
}

/// True when the query must run on the serial engine even in sharded mode:
/// it calls database functions (the simulation thread owns the Event
/// Database, so shard workers must never touch it). Named FROM streams are
/// no longer a reason — the runtime routes them.
bool RequiresSerialEngine(const std::string& text) {
  auto parsed = Parser::Parse(text);
  if (!parsed.ok()) return false;  // let registration surface the error
  const ParsedQuery& query = parsed.value();
  if (query.where != nullptr && HasCall(*query.where)) return true;
  for (const auto& item : query.return_items) {
    if (HasCall(*item.expr)) return true;
  }
  return false;
}

/// Sink appending every cleaned event to the `events` archive table.
class RawEventArchiver : public EventSink {
 public:
  RawEventArchiver(db::Database* database, const Catalog* catalog)
      : catalog_(catalog) {
    table_ = database->GetTable("events");
    if (table_ == nullptr) {
      table_ = database
                   ->CreateTable("events", {{"Type", ValueType::kString},
                                            {"TagId", ValueType::kString},
                                            {"AreaId", ValueType::kInt},
                                            {"ProductName", ValueType::kString},
                                            {"Timestamp", ValueType::kInt}})
                   .value();
    }
    (void)table_->CreateIndex("TagId");
  }

  void OnEvent(const EventPtr& event) override {
    const EventSchema& schema = catalog_->schema(event->type());
    AttrIndex tag = schema.FindAttribute("TagId");
    AttrIndex area = schema.FindAttribute("AreaId");
    AttrIndex product = schema.FindAttribute("ProductName");
    (void)table_->Insert({Value(schema.name()),
                          tag >= 0 ? event->attribute(tag) : Value(),
                          area >= 0 ? event->attribute(area) : Value(),
                          product >= 0 ? event->attribute(product) : Value(),
                          Value(event->timestamp())});
  }

 private:
  const Catalog* catalog_;
  db::Table* table_;
};

/// Hosting-engine name for a runtime worker in the snapshot's engine-state
/// sections, and its inverse (recovery). The serial engine is "serial".
std::string RuntimeHostName(int worker, int shard_count) {
  return worker == shard_count ? "broadcast" : "shard-" + std::to_string(worker);
}

Result<int> RuntimeWorkerFromHost(const std::string& host, int shard_count) {
  if (host == "broadcast") return shard_count;
  if (StartsWith(host, "shard-")) {
    auto shard = ParseU64(host.substr(6));
    if (shard.ok() && shard.value() < static_cast<uint64_t>(shard_count)) {
      return static_cast<int>(shard.value());
    }
  }
  return Status::InvalidArgument(
      "engine-state section names unknown host '" + host + "' for a " +
      std::to_string(shard_count) + "-shard runtime");
}

/// Section triage shared by FinishRecovery's serial and runtime loops:
/// false = skip it (unknown kinds are skippable by design), true = restore
/// it; a known kind with a payload version newer than this reader supports
/// is a hard error, not a skip.
Result<bool> UsableEngineSection(const checkpoint::EngineStateSection& section) {
  if (section.kind != "plan" && section.kind != "engine") return false;
  if (section.version > 1) {
    return Status::InvalidArgument(
        "engine-state section for query #" + std::to_string(section.query) +
        " uses payload version " + std::to_string(section.version) +
        "; this reader supports up to 1");
  }
  return true;
}

/// /healthz wedge threshold: a worker whose queue holds batches while its
/// progress counter has not advanced for this long is reported unhealthy.
/// The first probe of a stuck worker only arms its stall clock (see
/// ShardedRuntime::Healthy), so an external poller flips to 503 within two
/// polls plus this span.
constexpr uint64_t kHealthzStallNs = 2ull * 1000 * 1000 * 1000;

}  // namespace

/// Write-ahead tap: first bus subscriber, so every published event reaches
/// the journal before any processor sees it.
class SaseSystem::JournalHeadTap : public EventSink {
 public:
  explicit JournalHeadTap(SaseSystem* system) : system_(system) {}
  void OnEvent(const EventPtr& event) override {
    system_->JournalEvent("", event);
  }
  void OnFlush() override { system_->JournalFlush(); }

 private:
  SaseSystem* system_;
};

/// Post-processing tap: last bus subscriber, runs after every processor
/// finished one event — appends delivery marks and drives the automatic
/// checkpoint policy.
class SaseSystem::JournalTailTap : public EventSink {
 public:
  explicit JournalTailTap(SaseSystem* system) : system_(system) {}
  void OnEvent(const EventPtr&) override { system_->AfterEventProcessed(); }
  void OnFlush() override { system_->AfterEventProcessed(); }

 private:
  SaseSystem* system_;
};

/// Trace-sampling tap: the very first bus subscriber, so a sampled event's
/// "ingest" span opens before the journal write-ahead or any processor.
class SaseSystem::ObsHeadTap : public EventSink {
 public:
  explicit ObsHeadTap(SaseSystem* system) : system_(system) {}
  void OnEvent(const EventPtr&) override { system_->ObsIngestBegin(); }

 private:
  SaseSystem* system_;
};

/// Trace-closing tap: the very last bus subscriber; closes the "ingest"
/// span after every subscriber (journal tail included) finished the event.
class SaseSystem::ObsTailTap : public EventSink {
 public:
  explicit ObsTailTap(SaseSystem* system) : system_(system) {}
  void OnEvent(const EventPtr&) override { system_->ObsIngestEnd(); }

 private:
  SaseSystem* system_;
};

void SaseSystem::ObsIngestBegin() {
  if (!tracer_.enabled()) {
    ingest_trace_ = 0;
    return;
  }
  ingest_trace_ = tracer_.MaybeSample();
  // Downstream layers (the runtime's Dispatch in particular) read the
  // in-flight event's trace id from this slot: the whole bus fan-out is
  // synchronous on this thread.
  tracer_.SetCurrent(ingest_trace_);
  if (ingest_trace_ != 0) ingest_start_ns_ = obs::MonotonicNs();
}

void SaseSystem::ObsIngestEnd() {
  if (ingest_trace_ != 0) {
    tracer_.AddSpan(ingest_trace_, "ingest", "ingest", ingest_start_ns_,
                    obs::MonotonicNs(), 0);
    ingest_trace_ = 0;
  }
  tracer_.SetCurrent(0);
}

SaseSystem::SaseSystem(StoreLayout layout, SystemConfig config)
    : SaseSystem(std::move(layout), std::move(config), nullptr) {}

SaseSystem::~SaseSystem() {
  // The endpoint's accept thread reads metrics_ and runtime_; stop it
  // before any member is torn down.
  if (http_endpoint_ != nullptr) http_endpoint_->Stop();
  if (!config_.obs.trace_path.empty() && tracer_.span_count() > 0) {
    Status dumped = tracer_.DumpJson(config_.obs.trace_path);
    if (!dumped.ok()) {
      SASE_LOG_WARN << "trace dump failed: " << dumped.ToString();
    }
  }
}

SaseSystem::SaseSystem(StoreLayout layout, SystemConfig config,
                       const RecoverySpec* recovery)
    : catalog_(Catalog::RetailDemo()), config_(std::move(config)),
      layout_(layout), sql_(&database_), recovering_(recovery != nullptr) {
  // Recovery restores the Event Database dump before any component runs its
  // get-or-create table setup, so the components adopt the restored tables
  // instead of racing them.
  if (recovery != nullptr && recovery->snapshot != nullptr) {
    Status restored = db::LoadFileInto(
        checkpoint::DbDumpPath(recovery->dir, recovery->epoch), &database_);
    if (!restored.ok()) {
      SASE_LOG_WARN << "checkpoint database restore failed: "
                    << restored.ToString();
    }
  }

  ons_ = std::make_unique<db::Ons>(&database_);
  archiver_ = std::make_unique<db::Archiver>(&database_);
  reports_ = ReportBoard(config_.echo_reports);

  // Seed the area directory from the layout so _retrieveLocation returns
  // meaningful descriptions (upsert: a restored directory stays intact).
  for (const Area& area : layout_.areas()) {
    (void)archiver_->DescribeArea(area.id, area.name);
  }

  engine_ = std::make_unique<QueryEngine>(&catalog_, config_.time_config);
  engine_->set_scan_sharing(config_.scan_sharing);
  (void)archiver_->RegisterFunctions(engine_->functions());

  // Observability: the registry spans every layer; the trace collector is
  // always constructed (so `.trace on <N>` can enable sampling later) and
  // samples at this system's ingest taps — the runtime reads the sampled id
  // instead of drawing its own.
  if (config_.obs.metrics_enabled) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    engine_->AttachMetrics(metrics_.get(), "serial");
    engine_->ConfigureSlowQueryLog(config_.obs.slow_query_threshold_ns,
                                   config_.obs.slow_query_log_size);
  }
  tracer_.SetSampling(config_.obs.trace_sample_every);
  tracer_.SetExternalSampler(true);
  obs_head_ = std::make_unique<ObsHeadTap>(this);
  obs_tail_ = std::make_unique<ObsTailTap>(this);
  // The sampling tap precedes even the journal write-ahead tap.
  event_bus_.Subscribe(obs_head_.get());

  bool checkpointing = !config_.checkpoint.dir.empty();
  if (checkpointing) {
    journal_head_ = std::make_unique<JournalHeadTap>(this);
    journal_tail_ = std::make_unique<JournalTailTap>(this);
    checkpoint_policy_ =
        std::make_unique<checkpoint::CheckpointPolicy>(config_.checkpoint);
    // The write-ahead tap precedes every processor on the bus.
    event_bus_.Subscribe(journal_head_.get());
  }

  // With checkpointing enabled a runtime exists even at one shard: pure
  // stream queries then live on engines the checkpoint subsystem can
  // rebuild by window replay (the serial engine keeps only archiving rules
  // and hybrid database queries, which stay stateless).
  if (config_.shard_count >= 2 || checkpointing) {
    RuntimeConfig runtime_config;
    runtime_config.shard_count = std::max(1, config_.shard_count);
    runtime_config.partition_key = config_.partition_key;
    runtime_config.time_config = config_.time_config;
    runtime_config.merge_interval = config_.runtime_merge_interval;
    runtime_config.log_compact_min = config_.runtime_log_compact_min;
    runtime_config.elastic = config_.runtime_elastic;
    runtime_config.batch = config_.runtime_batch;
    runtime_config.scan_sharing = config_.scan_sharing;
    runtime_config.retain_for_checkpoint = checkpointing;
    runtime_config.metrics = metrics_.get();
    runtime_config.tracer = &tracer_;
    runtime_config.slow_query_threshold_ns = config_.obs.slow_query_threshold_ns;
    runtime_config.slow_query_log_size = config_.obs.slow_query_log_size;
    runtime_config.hotkey_sketch_size = config_.obs.hotkey_sketch_size;
    runtime_config.hotkey_mitigation = config_.hotkey_mitigation;
    runtime_config.hotkey_split_threshold = config_.hotkey_split_threshold;
    runtime_config.hotkey_min_events = config_.hotkey_min_events;
    runtime_ = std::make_unique<ShardedRuntime>(&catalog_, runtime_config);
    event_bus_.Subscribe(runtime_.get());
  }

  // UI channel: cleaned events ("Cleaning and Association Layer Output").
  event_logger_ = std::make_unique<CallbackSink>(
      [this](const EventPtr& event) { LogEvent(event); });

  event_bus_.Subscribe(engine_.get());
  event_bus_.Subscribe(event_logger_.get());
  if (config_.archive_raw_events) {
    event_archiver_ = std::make_unique<RawEventArchiver>(&database_, &catalog_);
    event_bus_.Subscribe(event_archiver_.get());
  }
  if (checkpointing) {
    // The mark/policy tap runs after every processor finished the event.
    event_bus_.Subscribe(journal_tail_.get());
  }
  // The span-closing tap is last of all.
  event_bus_.Subscribe(obs_tail_.get());

  // Cleaning pipeline configured from the layout.
  CleaningPipeline::Config cleaning_config;
  for (const ReaderSpec& reader : layout_.readers()) {
    cleaning_config.anomaly.valid_readers.insert(reader.id);
  }
  cleaning_config.smoothing.window =
      config_.smoothing_window_ticks * config_.raw_units_per_tick;
  cleaning_config.smoothing.sampling_interval = config_.raw_units_per_tick;
  cleaning_config.time.raw_units_per_tick = config_.raw_units_per_tick;
  cleaning_config.dedup.reader_to_area = layout_.ReaderToArea();
  cleaning_config.generation.area_to_event_type = layout_.AreaToEventType();
  cleaning_ = std::make_unique<CleaningPipeline>(
      std::move(cleaning_config), &catalog_, ons_->Resolver(), &event_bus_);

  simulator_ = std::make_unique<RetailSimulator>(
      std::move(layout), config_.noise, config_.seed, config_.raw_units_per_tick);
  simulator_->set_sink(cleaning_.get());

  if (checkpointing && recovery == nullptr) {
    auto existing = checkpoint::ReadManifest(config_.checkpoint.dir);
    if (existing.ok()) {
      SASE_LOG_WARN << "checkpoint directory " << config_.checkpoint.dir
                    << " already holds snapshot " << existing.value()
                    << "; a fresh system journals a new epoch 0 over it — "
                    << "use SaseSystem::Recover to resume instead";
    }
    Status opened = OpenJournal(0, 0);
    if (!opened.ok()) {
      SASE_LOG_WARN << "cannot open event journal: " << opened.ToString();
    }
  }

  // Embedded scrape endpoint: /metrics renders the registry live (the
  // mirrored counters show the last ScrapeMetrics), /healthz probes worker
  // liveness cross-thread, /statusz serves the page cached at the last
  // scrape. A bind failure degrades to "no endpoint" — the system itself
  // must come up regardless.
  if (metrics_ != nullptr && config_.obs.http_port != 0) {
    http_endpoint_ = std::make_unique<obs::HttpEndpoint>();
    http_endpoint_->Handle("/metrics", [this] {
      return obs::HttpEndpoint::Response{
          200, "text/plain; version=0.0.4; charset=utf-8",
          metrics_->RenderPrometheus()};
    });
    http_endpoint_->Handle("/healthz", [this] {
      std::string why;
      if (runtime_ != nullptr && !runtime_->Healthy(kHealthzStallNs, &why)) {
        return obs::HttpEndpoint::Response{503, "text/plain; charset=utf-8",
                                           "unhealthy: " + why + "\n"};
      }
      return obs::HttpEndpoint::Response{200, "text/plain; charset=utf-8",
                                         "ok\n"};
    });
    http_endpoint_->Handle("/statusz", [this] {
      std::lock_guard<std::mutex> lock(statusz_mutex_);
      return obs::HttpEndpoint::Response{
          200, "text/plain; charset=utf-8",
          statusz_.empty() ? std::string("no status captured yet: "
                                         "ScrapeMetrics() (console `.statusz`) "
                                         "refreshes this page\n")
                           : statusz_};
    });
    Status started = http_endpoint_->Start(
        config_.obs.http_port < 0 ? 0 : config_.obs.http_port);
    if (!started.ok()) {
      SASE_LOG_WARN << "observability http endpoint disabled: "
                    << started.ToString();
      http_endpoint_.reset();
    }
  }
}

void SaseSystem::LogEvent(const EventPtr& event) {
  reports_.Channel(ReportBoard::kCleaningOutput).Append(event->ToString(catalog_));
}

void SaseSystem::AddProduct(const TagInfo& tag) {
  ProductInfo info;
  info.product_name = tag.product_name;
  info.expiration_date = tag.expiration_date;
  info.saleable = tag.saleable;
  (void)ons_->RegisterProduct(tag.epc, info);
  simulator_->AddItem(tag);
}

OutputCallback SaseSystem::MakeDeliver(const std::string& name,
                                       OutputCallback callback,
                                       bool runtime_hosted) {
  return [this, name, callback = std::move(callback),
          runtime_hosted](const OutputRecord& record) {
    // Per-host delivery watermark; during recovery replay the first
    // `suppress` regenerated records per class are exactly the ones the
    // crashed process already delivered (under AckMode::kConsumer: durably
    // acked), so the gate swallows them and resumes at the record after.
    uint64_t& delivered = runtime_hosted ? delivered_runtime_ : delivered_serial_;
    uint64_t& suppress = runtime_hosted ? suppress_runtime_ : suppress_serial_;
    ++delivered;
    if (suppress > 0) {
      --suppress;
      ++suppressed_duplicates_;
      return;
    }
    // Runtime-merged records arrive pre-stamped by the OutputMerger (whose
    // merge ordinal IS the runtime-class cursor); serial-engine deliveries
    // are stamped here from the class counter.
    const OutputRecord* out = &record;
    OutputRecord stamped;
    if (record.cursor_position == 0) {
      stamped = record;
      stamped.cursor_runtime_hosted = runtime_hosted;
      stamped.cursor_position = delivered;
      out = &stamped;
    }
    if (config_.checkpoint.ack_mode == checkpoint::AckMode::kAuto) {
      // Delivery is acknowledgment; the journal's output marks double as
      // the durable cursor, so no separate ack record is written.
      uint64_t& acked = runtime_hosted ? acked_runtime_ : acked_serial_;
      acked = delivered;
    }
    reports_.Channel(ReportBoard::kStreamOutput).Append(out->ToString());
    reports_.Channel(ReportBoard::kMessageResults)
        .Append("[" + name + "] " + out->ToString());
    if (callback) callback(*out);
  };
}

Result<QueryId> SaseSystem::RegisterMonitoringQuery(const std::string& name,
                                                    const std::string& text,
                                                    OutputCallback callback) {
  // Hybrid stream+database queries stay on the serial engine; pure stream
  // queries — including named FROM-stream readers — scale out when the
  // runtime is enabled. Runtime callbacks fire on the simulation thread
  // during merges, so the report board needs no locking either way.
  bool runtime_hosted = runtime_ != nullptr && !RequiresSerialEngine(text);
  OutputCallback deliver = MakeDeliver(name, std::move(callback), runtime_hosted);
  Result<QueryId> id = runtime_hosted
                           ? runtime_->Register(text, std::move(deliver))
                           : engine_->Register(text, std::move(deliver));
  if (id.ok()) {
    reports_.Channel(ReportBoard::kPresentQueries).Append(name + ":\n" + text);
    registry_.push_back(QueryInfo{id.value(), runtime_hosted, false, name, text});
    if (JournalActive()) {
      Status logged = journal_->AppendRegister(false, name, text);
      if (!logged.ok() && !journal_warned_) {
        SASE_LOG_WARN << "journal append failed: " << logged.ToString();
        journal_warned_ = true;
      }
    }
  }
  return id;
}

Result<QueryId> SaseSystem::RegisterArchivingRule(const std::string& name,
                                                  const std::string& text) {
  auto id = engine_->Register(text, [](const OutputRecord&) {
    // Archiving rules act through their _update* side effects; the record
    // itself is not user-facing.
  });
  if (id.ok()) {
    reports_.Channel(ReportBoard::kPresentQueries)
        .Append(name + " (archiving):\n" + text);
    registry_.push_back(QueryInfo{id.value(), false, true, name, text});
    if (JournalActive()) {
      Status logged = journal_->AppendRegister(true, name, text);
      if (!logged.ok() && !journal_warned_) {
        SASE_LOG_WARN << "journal append failed: " << logged.ToString();
        journal_warned_ = true;
      }
    }
  }
  return id;
}

Result<db::ResultSet> SaseSystem::ExecuteSql(const std::string& text) {
  auto result = sql_.Execute(text);
  auto& channel = reports_.Channel(ReportBoard::kDatabaseReport);
  channel.Append("> " + text);
  channel.Append(result.ok() ? result.value().ToString()
                             : result.status().ToString());
  return result;
}

void SaseSystem::PublishStreamEvent(const std::string& stream,
                                    const EventPtr& event) {
  // Named-stream events bypass the bus, so the obs/journal tap sequence is
  // reproduced inline in the same order.
  ObsIngestBegin();
  JournalEvent(stream, event);
  if (runtime_ != nullptr) runtime_->OnStreamEvent(stream, event);
  engine_->OnStreamEvent(stream, event);
  AfterEventProcessed();
  ObsIngestEnd();
}

void SaseSystem::RunUntil(int64_t until_tick) {
  simulator_->RunUntil(until_tick);
}

void SaseSystem::Flush() {
  cleaning_->OnFlush();
  // CleaningPipeline::OnFlush flushes its StreamSource, which calls
  // EventSink::OnFlush on the bus; the bus fans that out to the engine (and
  // to the journal taps when checkpointing).
  //
  // End-of-stream is an ack commit point: a sink that acked everything it
  // saw must not lose those acks to the group-commit batching window.
  Status committed = CommitAcks();
  if (!committed.ok() && !journal_warned_) {
    SASE_LOG_WARN << "journal append failed: " << committed.ToString();
    journal_warned_ = true;
  }
}

Status SaseSystem::AckOutput(const OutputCursor& cursor) {
  if (cursor.position == 0) {
    return Status::InvalidArgument(
        "cannot ack cursor position 0: the record carries no delivery stamp");
  }
  uint64_t delivered =
      cursor.runtime_hosted ? delivered_runtime_ : delivered_serial_;
  uint64_t& acked = cursor.runtime_hosted ? acked_runtime_ : acked_serial_;
  if (cursor.position > delivered) {
    return Status::InvalidArgument(
        "cannot ack position " + std::to_string(cursor.position) + ": only " +
        std::to_string(delivered) + " records delivered in this class");
  }
  if (cursor.position <= acked) return Status::Ok();  // cumulative: covered
  acked = cursor.position;
  if (config_.checkpoint.ack_mode == checkpoint::AckMode::kConsumer &&
      JournalActive()) {
    Status logged = journal_->AppendAckCursor(acked_runtime_, acked_serial_);
    if (!logged.ok() && !journal_warned_) {
      SASE_LOG_WARN << "journal append failed: " << logged.ToString();
      journal_warned_ = true;
    }
  }
  return Status::Ok();
}

Status SaseSystem::CommitAcks() {
  if (journal_ == nullptr) return Status::Ok();
  return journal_->CommitAcks();
}

// --- durable checkpoint & crash recovery -----------------------------------

void SaseSystem::JournalEvent(const std::string& stream,
                              const EventPtr& event) {
  if (!JournalActive()) return;
  Status logged = journal_->AppendEvent(stream, *event);
  if (!logged.ok() && !journal_warned_) {
    SASE_LOG_WARN << "journal append failed: " << logged.ToString();
    journal_warned_ = true;
  }
}

void SaseSystem::JournalFlush() {
  if (!JournalActive()) return;
  Status logged = journal_->AppendFlush();
  if (!logged.ok() && !journal_warned_) {
    SASE_LOG_WARN << "journal append failed: " << logged.ToString();
    journal_warned_ = true;
  }
}

void SaseSystem::AfterEventProcessed() {
  if (!JournalActive()) return;
  ++events_since_checkpoint_;
  if (delivered_runtime_ != last_mark_runtime_ ||
      delivered_serial_ != last_mark_serial_) {
    Status logged =
        journal_->AppendOutputMark(delivered_runtime_, delivered_serial_);
    if (logged.ok()) {
      last_mark_runtime_ = delivered_runtime_;
      last_mark_serial_ = delivered_serial_;
    } else if (!journal_warned_) {
      SASE_LOG_WARN << "journal append failed: " << logged.ToString();
      journal_warned_ = true;
    }
  }
  checkpoint::CheckpointSample sample;
  sample.events_since_checkpoint = events_since_checkpoint_;
  sample.journal_bytes_since_checkpoint =
      journal_->bytes_written() - journal_bytes_at_checkpoint_;
  if (checkpoint_policy_->Evaluate(sample) ==
      checkpoint::CheckpointDecision::kCheckpoint) {
    Status taken = Checkpoint();
    if (!taken.ok()) {
      SASE_LOG_WARN << "automatic checkpoint failed: " << taken.ToString();
      // Re-arm the thresholds instead of retrying on every event.
      events_since_checkpoint_ = 0;
      journal_bytes_at_checkpoint_ = journal_->bytes_written();
    }
    checkpoint_policy_->NoteCheckpoint();
  }
}

Status SaseSystem::OpenJournal(uint64_t epoch, uint64_t segment) {
  journal_.reset();
  auto journal = checkpoint::EventJournal::Open(
      config_.checkpoint.dir, epoch, segment,
      config_.checkpoint.journal_rotate_bytes, config_.checkpoint.journal_fsync);
  if (!journal.ok()) return journal.status();
  journal_ = std::move(journal).value();
  journal_->set_ack_commit_interval(config_.checkpoint.ack_commit_interval);
  journal_->set_group_commit(config_.checkpoint.group_commit_interval,
                             config_.checkpoint.group_commit_max_delay_us);
  if (metrics_ != nullptr) {
    journal_->set_latency_metrics(
        metrics_->GetHistogram("sase_journal_append_latency_ns"),
        metrics_->GetHistogram("sase_journal_fsync_latency_ns"));
    journal_->set_group_occupancy_metric(
        metrics_->GetHistogram("sase_journal_group_commit_records"));
  }
  journal_bytes_at_checkpoint_ = journal_->bytes_written();
  last_mark_runtime_ = delivered_runtime_;
  last_mark_serial_ = delivered_serial_;
  return Status::Ok();
}

Status SaseSystem::Checkpoint(const std::string& dir_arg) {
  const std::string& dir =
      dir_arg.empty() ? config_.checkpoint.dir : dir_arg;
  if (dir.empty()) {
    return Status::InvalidArgument(
        "no checkpoint directory configured or given");
  }
  if (in_checkpoint_) {
    return Status::FailedPrecondition("a checkpoint is already in progress");
  }
  in_checkpoint_ = true;
  uint64_t written_snapshot = 0;  // snapshot id the lambda ends up writing

  auto build_and_write = [&]() -> Status {
    checkpoint::SystemSnapshot snap;
    if (runtime_ != nullptr) {
      auto exported = runtime_->ExportCheckpoint();  // quiesces; may refuse
      if (!exported.ok()) return exported.status();
      ShardedRuntime::CheckpointState& state = exported.value();
      for (auto& plan : state.plan_states) {
        // Payloads embed whole event tables; move, don't double-buffer.
        snap.engine_state.push_back(checkpoint::EngineStateSection{
            plan.query == 0 ? "engine" : "plan",
            RuntimeHostName(plan.worker, state.shard_count), plan.query, 1,
            std::move(plan.data)});
      }
      snap.shard_count = state.shard_count;
      snap.partition_key = state.partition_key;
      snap.events_dispatched = state.events_dispatched;
      snap.any_routed = state.any_routed;
      snap.routed_stream = state.routed_stream;
      snap.multi_routed = state.multi_routed;
      for (size_t i = 0; i < state.streams.size(); ++i) {
        const auto& stream = state.streams[i];
        snap.streams.push_back(checkpoint::SnapshotStream{
            static_cast<StreamId>(i), stream.name, stream.clock,
            stream.last_seq, stream.events});
      }
      for (const auto& query : state.queries) {
        checkpoint::SnapshotQuery entry;
        entry.id = query.id;
        entry.runtime_hosted = true;
        entry.registered_at = query.registered_at;
        entry.options = query.options;
        entry.text = query.text;
        entry.name = "query-" + std::to_string(query.id);
        for (const QueryInfo& info : registry_) {
          if (info.runtime_hosted && info.id == query.id) {
            entry.name = info.name;
            entry.archiving = info.archiving;
            break;
          }
        }
        snap.queries.push_back(std::move(entry));
      }
      for (const auto& window : state.window) {
        snap.window.push_back(checkpoint::SnapshotWindowEvent{
            window.stream, window.global, window.event});
      }
      for (const auto& split : state.splits) {
        snap.splits.push_back(checkpoint::SnapshotSplit{
            split.stream, split.mode, split.key, split.secondary_attr});
      }
    } else {
      snap.shard_count = std::max(1, config_.shard_count);
      snap.partition_key = config_.partition_key;
    }

    for (const auto& query : engine_->RegisteredQueries()) {
      checkpoint::SnapshotQuery entry;
      entry.id = query.id;
      entry.runtime_hosted = false;
      entry.options = query.options;
      entry.text = query.text;
      entry.name = "query-" + std::to_string(query.id);
      for (const QueryInfo& info : registry_) {
        if (!info.runtime_hosted && info.id == query.id) {
          entry.name = info.name;
          entry.archiving = info.archiving;
          break;
        }
      }
      // Recovery re-registers from the query text before restoring state;
      // a query registered from a pre-parsed AST has none, so the snapshot
      // cannot cover it. This is the one remaining per-query refusal; it
      // names the offender so the console message is actionable.
      if (query.text.empty()) {
        return Status::FailedPrecondition(
            "cannot checkpoint: query '" + entry.name + "' (#" +
            std::to_string(query.id) +
            ") on the serial engine was registered from a pre-parsed AST "
            "and has no registration text to re-register on recovery");
      }
      // Direct operator-state serialization (snapshot v2): serial-engine
      // queries — archiving rules and hybrid database queries included —
      // checkpoint their stacks, buffers and aggregate accumulators like
      // any runtime-hosted query.
      auto payload = engine_->SerializeState(query.id);
      if (!payload.ok()) return payload.status();
      snap.engine_state.push_back(checkpoint::EngineStateSection{
          "plan", "serial", query.id, 1, std::move(payload).value()});
      snap.queries.push_back(std::move(entry));
    }
    snap.engine_state.push_back(checkpoint::EngineStateSection{
        "engine", "serial", 0, 1, engine_->SerializeEngineState()});

    for (size_t i = 0; i < catalog_.type_count(); ++i) {
      snap.catalog_types.push_back(
          catalog_.schema(static_cast<EventTypeId>(i)).name());
    }
    snap.delivered_runtime = delivered_runtime_;
    snap.delivered_serial = delivered_serial_;
    // The snapshot's ACKED line supersedes every journaled cursor record of
    // the epoch it closes — a pending (uncommitted) ack batch is covered
    // here and simply dropped with the rolled journal.
    snap.acked_runtime = acked_runtime_;
    snap.acked_serial = acked_serial_;
    snap.has_acked = true;

    bool own_dir = journal_ != nullptr && dir == config_.checkpoint.dir;
    if (own_dir) {
      snap.snapshot_id = epoch_ + 1;
    } else {
      auto existing = checkpoint::ReadManifest(dir);
      snap.snapshot_id = existing.ok() ? existing.value() + 1 : 1;
    }
    SASE_RETURN_IF_ERROR(checkpoint::WriteSnapshot(dir, snap, database_));
    ++checkpoints_taken_;
    written_snapshot = snap.snapshot_id;

    if (own_dir) {
      // The journal epoch rolls with the snapshot: everything before the
      // checkpoint is now covered by it, so the previous epoch's segments
      // and snapshot are garbage.
      epoch_ = snap.snapshot_id;
      SASE_RETURN_IF_ERROR(OpenJournal(epoch_, 0));
      checkpoint::RemoveStaleJournals(dir, epoch_);
      checkpoint::RemoveStaleSnapshots(dir, epoch_);
      events_since_checkpoint_ = 0;
    }
    return Status::Ok();
  };

  uint64_t obs_start = metrics_ != nullptr ? obs::MonotonicNs() : 0;
  Status status = build_and_write();
  in_checkpoint_ = false;
  if (status.ok() && metrics_ != nullptr) {
    metrics_->GetHistogram("sase_checkpoint_snapshot_duration_ns")
        ->Record(static_cast<int64_t>(obs::MonotonicNs() - obs_start));
    // Snapshot footprint: every file of the snapshot directory just written
    // (state + engine state + database dump).
    std::error_code ec;
    std::filesystem::path snap_dir =
        std::filesystem::path(checkpoint::DbDumpPath(dir, written_snapshot))
            .parent_path();
    int64_t bytes = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(snap_dir, ec)) {
      if (entry.is_regular_file(ec)) {
        bytes += static_cast<int64_t>(entry.file_size(ec));
      }
    }
    metrics_->GetGauge("sase_checkpoint_snapshot_bytes")->Set(bytes);
  }
  return status;
}

Result<std::unique_ptr<SaseSystem>> SaseSystem::Recover(
    const std::string& dir, StoreLayout layout, SystemConfig config,
    CallbackFactory callbacks) {
  RecoverySpec spec;
  spec.dir = dir;
  checkpoint::SystemSnapshot snapshot;
  auto manifest = checkpoint::ReadManifest(dir);
  if (manifest.ok()) {
    auto read = checkpoint::ReadSnapshot(dir, manifest.value(), nullptr);
    if (!read.ok()) return read.status();
    snapshot = std::move(read).value();
    spec.epoch = manifest.value();
    spec.snapshot = &snapshot;
    config.shard_count = snapshot.shard_count;
    config.partition_key = snapshot.partition_key;
  } else if (manifest.status().code() != StatusCode::kNotFound) {
    return manifest.status();
  }
  // A recovered system keeps journaling (and checkpointing) into `dir`.
  config.checkpoint.dir = dir;

  uint64_t obs_start = obs::MonotonicNs();
  std::unique_ptr<SaseSystem> system(
      new SaseSystem(std::move(layout), std::move(config), &spec));
  SASE_RETURN_IF_ERROR(system->FinishRecovery(spec, callbacks));
  if (system->metrics_ != nullptr) {
    // Wall time from construction (includes the database restore) through
    // snapshot state install and journal replay.
    system->metrics_->GetHistogram("sase_recovery_duration_ns")
        ->Record(static_cast<int64_t>(obs::MonotonicNs() - obs_start));
  }
  return system;
}

Status SaseSystem::FinishRecovery(const RecoverySpec& spec,
                                  const CallbackFactory& callbacks) {
  recovered_ = true;
  epoch_ = spec.epoch;
  checkpoint::SystemSnapshot* snap = spec.snapshot;

  if (snap != nullptr) {
    // Window events and journal records reference event types by id; a
    // catalog drift would silently misread them, so refuse instead.
    for (size_t i = 0; i < snap->catalog_types.size(); ++i) {
      auto type = catalog_.FindType(snap->catalog_types[i]);
      if (!type.ok() || type.value() != static_cast<EventTypeId>(i)) {
        return Status::InvalidArgument(
            "catalog mismatch: checkpoint type '" + snap->catalog_types[i] +
            "' does not resolve to id " + std::to_string(i));
      }
    }
    delivered_runtime_ = snap->delivered_runtime;
    delivered_serial_ = snap->delivered_serial;

    for (const checkpoint::SnapshotQuery& query : snap->queries) {
      registry_.push_back(QueryInfo{query.id, query.runtime_hosted,
                                    query.archiving, query.name, query.text});
      reports_.Channel(ReportBoard::kPresentQueries)
          .Append(query.name + (query.archiving ? " (archiving):\n" : ":\n") +
                  query.text);
    }

    // Serial-hosted queries: install them all before any replay, under
    // their original ids. Their serialized operator state (v2) is loaded
    // right below, so registration position does not matter — the restored
    // plan carries exactly the construction history of the crashed one.
    for (const checkpoint::SnapshotQuery& query : snap->queries) {
      if (query.runtime_hosted) continue;
      OutputCallback deliver;
      if (query.archiving) {
        deliver = [](const OutputRecord&) {};
      } else {
        deliver = MakeDeliver(query.name,
                              callbacks ? callbacks(query.name) : nullptr,
                              /*runtime_hosted=*/false);
      }
      auto id = engine_->RegisterAs(query.id, query.text, std::move(deliver),
                                    query.options);
      if (!id.ok()) return id.status();
    }
    std::set<QueryId> serial_restored;
    bool serial_counters = false;
    for (const checkpoint::EngineStateSection& section : snap->engine_state) {
      if (section.host != "serial") continue;
      SASE_ASSIGN_OR_RETURN(bool usable, UsableEngineSection(section));
      if (!usable) continue;
      Status loaded = section.kind == "engine"
                          ? engine_->RestoreEngineState(section.payload)
                          : engine_->RestoreState(section.query, section.payload);
      if (!loaded.ok()) {
        return Status::InvalidArgument(
            "cannot restore serial-engine state of query #" +
            std::to_string(section.query) + ": " + loaded.ToString());
      }
      if (section.kind == "plan") {
        serial_restored.insert(section.query);
      } else {
        serial_counters = true;
      }
    }
    if (snap->format >= checkpoint::kSnapshotFormatV2) {
      // Completeness: a payload silently missing (lost section, corrupted
      // kind field — the SECTION header rides outside the payload CRC)
      // would restore the query with empty state, or reset the engine
      // counters. Fail loudly instead.
      for (const checkpoint::SnapshotQuery& query : snap->queries) {
        if (query.runtime_hosted || serial_restored.count(query.id) > 0) {
          continue;
        }
        return Status::InvalidArgument(
            "snapshot carries no engine-state payload for serial query #" +
            std::to_string(query.id));
      }
      if (!serial_counters) {
        return Status::InvalidArgument(
            "snapshot carries no engine-counter payload for the serial "
            "engine");
      }
    }

    // Runtime-hosted queries + engine state: the runtime re-registers them
    // interleaved into the muted in-flight-window replay.
    ShardedRuntime::CheckpointState state;
    state.shard_count = snap->shard_count;
    state.partition_key = snap->partition_key;
    state.events_dispatched = snap->events_dispatched;
    // Every runtime-merged record goes through exactly one MakeDeliver, so
    // the snapshot's runtime delivery counter is the merge ordinal to
    // continue the cursor clock from.
    state.records_merged = snap->delivered_runtime;
    state.any_routed = snap->any_routed;
    state.routed_stream = snap->routed_stream;
    state.multi_routed = snap->multi_routed;
    std::vector<checkpoint::SnapshotStream> streams = snap->streams;
    std::sort(streams.begin(), streams.end(),
              [](const checkpoint::SnapshotStream& a,
                 const checkpoint::SnapshotStream& b) { return a.id < b.id; });
    for (size_t i = 0; i < streams.size(); ++i) {
      if (streams[i].id != static_cast<StreamId>(i)) {
        return Status::InvalidArgument("snapshot stream ids are not dense");
      }
      state.streams.push_back(ShardedRuntime::CheckpointState::Stream{
          streams[i].name, streams[i].clock, streams[i].last_seq,
          streams[i].events});
    }
    for (const checkpoint::SnapshotQuery& query : snap->queries) {
      if (!query.runtime_hosted) continue;
      state.queries.push_back(ShardedRuntime::CheckpointState::Query{
          query.id, query.text, query.options, query.registered_at});
    }
    for (const checkpoint::SnapshotWindowEvent& window : snap->window) {
      state.window.push_back(ShardedRuntime::CheckpointState::WindowEvent{
          window.stream, window.global, window.event});
    }
    for (const checkpoint::SnapshotSplit& split : snap->splits) {
      state.splits.push_back(ShardedRuntime::CheckpointState::Split{
          split.stream, split.mode, split.key, split.secondary_attr});
    }
    state.has_engine_state = snap->format >= checkpoint::kSnapshotFormatV2;
    for (checkpoint::EngineStateSection& section : snap->engine_state) {
      if (section.host == "serial") continue;
      SASE_ASSIGN_OR_RETURN(bool usable, UsableEngineSection(section));
      if (!usable) continue;
      auto worker = RuntimeWorkerFromHost(section.host, snap->shard_count);
      if (!worker.ok()) return worker.status();
      state.plan_states.push_back(ShardedRuntime::CheckpointState::PlanState{
          worker.value(), section.query, std::move(section.payload)});
    }
    if (runtime_ != nullptr) {
      auto resolver = [this, snap, &callbacks](QueryId id) -> OutputCallback {
        for (const checkpoint::SnapshotQuery& query : snap->queries) {
          if (query.runtime_hosted && query.id == id) {
            return MakeDeliver(query.name,
                               callbacks ? callbacks(query.name) : nullptr,
                               /*runtime_hosted=*/true);
          }
        }
        return MakeDeliver("query-" + std::to_string(id), nullptr, true);
      };
      SASE_RETURN_IF_ERROR(runtime_->RestoreCheckpoint(state, resolver));
    } else if (!state.queries.empty()) {
      return Status::Internal(
          "snapshot holds runtime-hosted queries but no runtime exists");
    }
  }

  // Journal suffix: scan first (validates CRCs, finds the delivery marks),
  // then replay the valid prefix through the regular publication paths with
  // the taps dormant.
  auto scan = checkpoint::ReadJournal(spec.dir, epoch_);
  if (!scan.ok()) return scan.status();
  if (snap == nullptr && scan.value().segments_read == 0) {
    return Status::NotFound("no checkpoint snapshot or event journal in " +
                            spec.dir);
  }
  recovered_records_ = scan.value().records.size();
  recovered_truncated_ = scan.value().truncated;
  if (scan.value().truncated) {
    SASE_LOG_WARN << "event journal ends at a torn/corrupt record ("
                  << scan.value().truncation_reason
                  << "); recovering the valid prefix of "
                  << scan.value().records.size() << " records";
  }
  uint64_t mark_runtime = delivered_runtime_;
  uint64_t mark_serial = delivered_serial_;
  uint64_t acked_runtime = snap != nullptr && snap->has_acked
                               ? snap->acked_runtime
                               : 0;
  uint64_t acked_serial = snap != nullptr && snap->has_acked
                              ? snap->acked_serial
                              : 0;
  bool cursor_found = snap != nullptr && snap->has_acked;
  for (const checkpoint::JournalRecord& record : scan.value().records) {
    if (record.kind == checkpoint::JournalRecord::Kind::kOutputMark) {
      mark_runtime = record.delivered_runtime;
      mark_serial = record.delivered_serial;
    } else if (record.kind == checkpoint::JournalRecord::Kind::kAckCursor) {
      acked_runtime = std::max(acked_runtime, record.acked_runtime);
      acked_serial = std::max(acked_serial, record.acked_serial);
      cursor_found = true;
    }
  }
  uint64_t gate_runtime;
  uint64_t gate_serial;
  if (config_.checkpoint.ack_mode == checkpoint::AckMode::kConsumer) {
    if (cursor_found || snap == nullptr) {
      // The durable acked cursor is authoritative: everything delivered
      // past it re-emits (with its original cursor stamp) for the consumer
      // to re-ack or dedup. A journal-only epoch with no cursor records
      // means nothing was durably acked — replay re-delivers everything.
      gate_runtime = acked_runtime;
      gate_serial = acked_serial;
    } else {
      // Pre-cursor checkpoint: the snapshot predates the ACKED cursor line
      // (format < v3) and the journal holds no ack-cursor records, so there
      // is no acked cursor to resume from. Fall back to the delivered-output
      // marks — the legacy gate — rather than re-emitting the whole epoch:
      // at-least-once across this one crash, exactly-once again from the
      // next ack on.
      recovered_ack_fallback_ = true;
      SASE_LOG_WARN << "recovery under ack_mode=consumer found no acked "
                    << "output cursor (snapshot format " << snap->format
                    << " has no ACKED line and the journal holds no "
                    << "ack-cursor records); falling back to the "
                    << "delivered-output marks — at-least-once across this "
                    << "crash";
      gate_runtime = mark_runtime;
      gate_serial = mark_serial;
    }
  } else {
    // Auto-ack: delivery is acknowledgment — the marks are the cursor. Max
    // with any consumer-era acks so a mode switch across a crash never
    // regresses the gate below what was durably acked.
    gate_runtime = std::max(mark_runtime, acked_runtime);
    gate_serial = std::max(mark_serial, acked_serial);
  }
  acked_runtime_ = gate_runtime;
  acked_serial_ = gate_serial;
  suppress_runtime_ =
      gate_runtime > delivered_runtime_ ? gate_runtime - delivered_runtime_ : 0;
  suppress_serial_ =
      gate_serial > delivered_serial_ ? gate_serial - delivered_serial_ : 0;

  uint64_t replayed_events = 0;
  for (const checkpoint::JournalRecord& record : scan.value().records) {
    switch (record.kind) {
      case checkpoint::JournalRecord::Kind::kEvent:
      case checkpoint::JournalRecord::Kind::kStreamEvent: {
        if (static_cast<size_t>(record.type) >= catalog_.type_count()) {
          return Status::InvalidArgument(
              "journal event references unknown type id " +
              std::to_string(record.type));
        }
        auto event = std::make_shared<Event>(record.type, record.timestamp,
                                             record.seq, record.values);
        if (record.kind == checkpoint::JournalRecord::Kind::kEvent) {
          event_bus_.OnEvent(event);
        } else {
          PublishStreamEvent(record.stream, event);
        }
        ++replayed_events;
        break;
      }
      case checkpoint::JournalRecord::Kind::kFlush:
        event_bus_.OnFlush();
        break;
      case checkpoint::JournalRecord::Kind::kRegister: {
        if (record.archiving) {
          auto id = RegisterArchivingRule(record.name, record.text);
          if (!id.ok()) return id.status();
        } else {
          auto id = RegisterMonitoringQuery(
              record.name, record.text,
              callbacks ? callbacks(record.name) : nullptr);
          if (!id.ok()) return id.status();
        }
        break;
      }
      case checkpoint::JournalRecord::Kind::kOutputMark:
      case checkpoint::JournalRecord::Kind::kAckCursor:
        break;  // consumed by the gate computation above
    }
  }
  // Quiesce: surface every record the replay made merge-safe, consuming
  // the suppression quota in full. Every record the crashed process
  // delivered was triggered at or below the journal's dispatch point, so
  // after this drain a non-zero quota means the journal tail (and the
  // records it covered) was genuinely lost.
  if (runtime_ != nullptr) runtime_->WaitIdle();
  if (suppress_runtime_ > 0 || suppress_serial_ > 0) {
    SASE_LOG_WARN << "recovery replay regenerated fewer records than the "
                  << "journal's delivery marks claim (" << suppress_runtime_
                  << "+" << suppress_serial_
                  << " unmatched, journal truncated=" << recovered_truncated_
                  << "); the remainder stays suppressed until matching "
                  << "records regenerate";
  }

  recovering_ = false;
  // A torn tail is physically cut out before journaling resumes: left in
  // place it would stop every future scan at the old crash point, hiding
  // the records journaled after this recovery from the next one.
  SASE_RETURN_IF_ERROR(OpenJournal(
      epoch_, checkpoint::RepairJournal(spec.dir, epoch_, scan.value())));
  events_since_checkpoint_ = replayed_events;
  return Status::Ok();
}

void SaseSystem::ScrapeMetrics() {
  if (metrics_ == nullptr) return;
  // The runtime scrape quiesces it (WaitIdle) and scrapes its hosted
  // engines; the serial engine scrape then reads settled counters.
  if (runtime_ != nullptr) runtime_->ScrapeMetrics();
  engine_->ScrapeMetrics();
  metrics_->GetCounter("sase_checkpoints_total")->Set(checkpoints_taken_);
  metrics_->GetCounter("sase_delivered_records_total{host=\"runtime\"}")
      ->Set(delivered_runtime_);
  metrics_->GetCounter("sase_delivered_records_total{host=\"serial\"}")
      ->Set(delivered_serial_);
  metrics_->GetGauge("sase_ack_lag_records{host=\"runtime\"}")
      ->Set(static_cast<int64_t>(delivered_runtime_ - acked_runtime_));
  metrics_->GetGauge("sase_ack_lag_records{host=\"serial\"}")
      ->Set(static_cast<int64_t>(delivered_serial_ - acked_serial_));
  metrics_->GetCounter("sase_recovery_suppressed_duplicates_total")
      ->Set(suppressed_duplicates_);
  if (journal_ != nullptr) {
    metrics_->GetCounter("sase_journal_records_total")
        ->Set(journal_->records_written());
    metrics_->GetCounter("sase_journal_bytes_total")
        ->Set(journal_->bytes_written());
    metrics_->GetCounter("sase_journal_rotations_total")
        ->Set(journal_->rotations());
    metrics_->GetCounter("sase_journal_group_commits_total")
        ->Set(journal_->group_commits());
    metrics_->GetGauge("sase_journal_unsynced_records")
        ->Set(static_cast<int64_t>(journal_->unsynced_records()));
  }
  if (recovered_) {
    metrics_->GetCounter("sase_recovery_replayed_records_total")
        ->Set(recovered_records_);
  }
  if (http_endpoint_ != nullptr) {
    // Refresh the /statusz cache while everything is quiesced; the accept
    // thread serves the copy, never this dispatcher-only path.
    std::string status = StatusReport();
    std::lock_guard<std::mutex> lock(statusz_mutex_);
    statusz_ = std::move(status);
  }
}

std::string SaseSystem::StatusReport() {
  std::ostringstream out;
  out << "queries: " << registry_.size() << " registered\n";
  for (const QueryInfo& info : registry_) {
    out << obs::ReportLine("  #" + std::to_string(info.id))
               .Kv("host", info.runtime_hosted ? "runtime" : "serial")
               .Kv("kind", info.archiving ? "archiving" : "monitoring")
               .Kv("name", info.name)
               .Str();
  }
  if (metrics_ != nullptr) {
    // One line per (host, query) operator-latency series; the label part of
    // the metric name already names both.
    constexpr const char kLatency[] = "sase_query_op_latency_ns";
    bool any = false;
    for (const std::string& name : metrics_->HistogramNames()) {
      if (name.rfind(kLatency, 0) != 0 || name.size() <= sizeof(kLatency)) {
        continue;
      }
      Histogram hist = metrics_->GetHistogram(name)->Aggregate();
      if (hist.count() == 0) continue;
      if (!any) {
        out << "per-query operator latency (ns):\n";
        any = true;
      }
      out << obs::ReportLine("  " + name.substr(sizeof(kLatency) - 1))
                 .Kv("count", hist.count())
                 .Kv("p50", static_cast<int64_t>(hist.Quantile(0.5)))
                 .Kv("p99", static_cast<int64_t>(hist.Quantile(0.99)))
                 .Kv("max", hist.max())
                 .Str();
    }
  }
  if (runtime_ != nullptr) {
    out << runtime_->StatsReport();
  }
  out << CheckpointReport();
  std::vector<ShardedRuntime::SlowSample> slow = SlowSamples();
  if (!slow.empty()) {
    out << "slow queries (>= " << config_.obs.slow_query_threshold_ns
        << " ns/event, newest first):\n";
    for (const ShardedRuntime::SlowSample& entry : slow) {
      out << obs::ReportLine("  " + entry.host)
                 .Kv("query", entry.sample.query)
                 .Kv("seq", entry.sample.seq)
                 .Kv("ts", entry.sample.timestamp)
                 .Kv("duration_ns", entry.sample.duration_ns)
                 .Str();
    }
  }
  return out.str();
}

std::vector<ShardedRuntime::SlowSample> SaseSystem::SlowSamples() {
  std::vector<ShardedRuntime::SlowSample> slow;
  if (runtime_ != nullptr) slow = runtime_->SlowSamples();
  for (const QueryEngine::SlowQuerySample& sample : engine_->SlowSamples()) {
    slow.push_back(ShardedRuntime::SlowSample{"serial", sample});
  }
  std::sort(slow.begin(), slow.end(),
            [](const ShardedRuntime::SlowSample& a,
               const ShardedRuntime::SlowSample& b) {
              return a.sample.at_ns > b.sample.at_ns;
            });
  return slow;
}

std::string SaseSystem::CheckpointReport() const {
  if (journal_ == nullptr && checkpoints_taken_ == 0 && !recovered_) return "";
  std::string out =
      obs::ReportLine("checkpoint:")
          .Kv("dir", config_.checkpoint.dir.empty() ? "<none>"
                                                    : config_.checkpoint.dir)
          .Kv("epoch", epoch_)
          .Kv("taken", checkpoints_taken_)
          .Kv("delivered", std::to_string(delivered_runtime_) + "+" +
                               std::to_string(delivered_serial_))
          .Str();
  bool consumer_acks =
      config_.checkpoint.ack_mode == checkpoint::AckMode::kConsumer;
  out += obs::ReportLine("acks:")
             .Kv("mode", consumer_acks ? "consumer" : "auto")
             .Kv("acked", std::to_string(acked_runtime_) + "+" +
                              std::to_string(acked_serial_))
             .Kv("lag",
                 std::to_string(delivered_runtime_ - acked_runtime_) + "+" +
                     std::to_string(delivered_serial_ - acked_serial_))
             .Kv("pending", journal_ != nullptr ? journal_->pending_acks() : 0)
             .Kv("commits", journal_ != nullptr ? journal_->ack_commits() : 0)
             .Kv("suppressed", suppressed_duplicates_)
             .Str();
  if (journal_ != nullptr) {
    out += obs::ReportLine("journal:")
               .Kv("segment", journal_->segment())
               .Kv("records", journal_->records_written())
               .Kv("bytes", journal_->bytes_written())
               .Kv("rotations", journal_->rotations())
               .Kv("since_checkpoint", events_since_checkpoint_)
               .Text("events")
               .Str();
  }
  if (checkpoint_policy_ != nullptr) {
    out += checkpoint_policy_->Describe() + "\n";
  }
  if (recovered_) {
    out += obs::ReportLine("recovery:")
               .Kv("replayed", recovered_records_)
               .Text("records")
               .Kv("truncated", recovered_truncated_ ? "yes" : "no")
               .Kv("suppressed_remaining", suppress_runtime_ + suppress_serial_)
               .Kv("ack_fallback", recovered_ack_fallback_
                                       ? "missing acked cursor (pre-v3)"
                                       : "no")
               .Str();
  }
  return out;
}

}  // namespace sase
