#include "system/sase_system.h"

#include "query/parser.h"

namespace sase {
namespace {

/// True when any node of the expression tree is a function call. Hybrid
/// stream+database queries (_retrieveLocation, _updateContainment, ...)
/// must run on the serial engine: the simulation thread owns the Event
/// Database, and shard workers must never touch it.
bool HasCall(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kCall:
      return true;
    case ExprKind::kBinary: {
      const auto& node = static_cast<const BinaryExpr&>(expr);
      return HasCall(*node.left()) || HasCall(*node.right());
    }
    case ExprKind::kUnary:
      return HasCall(*static_cast<const UnaryExpr&>(expr).operand());
    case ExprKind::kAggregate: {
      const auto& node = static_cast<const AggregateExpr&>(expr);
      return node.arg() != nullptr && HasCall(*node.arg());
    }
    default:
      return false;
  }
}

/// True when the query must run on the serial engine even in sharded mode:
/// it calls database functions (the simulation thread owns the Event
/// Database, so shard workers must never touch it). Named FROM streams are
/// no longer a reason — the runtime routes them.
bool RequiresSerialEngine(const std::string& text) {
  auto parsed = Parser::Parse(text);
  if (!parsed.ok()) return false;  // let registration surface the error
  const ParsedQuery& query = parsed.value();
  if (query.where != nullptr && HasCall(*query.where)) return true;
  for (const auto& item : query.return_items) {
    if (HasCall(*item.expr)) return true;
  }
  return false;
}

/// Sink appending every cleaned event to the `events` archive table.
class RawEventArchiver : public EventSink {
 public:
  RawEventArchiver(db::Database* database, const Catalog* catalog)
      : catalog_(catalog) {
    table_ = database->GetTable("events");
    if (table_ == nullptr) {
      table_ = database
                   ->CreateTable("events", {{"Type", ValueType::kString},
                                            {"TagId", ValueType::kString},
                                            {"AreaId", ValueType::kInt},
                                            {"ProductName", ValueType::kString},
                                            {"Timestamp", ValueType::kInt}})
                   .value();
    }
    (void)table_->CreateIndex("TagId");
  }

  void OnEvent(const EventPtr& event) override {
    const EventSchema& schema = catalog_->schema(event->type());
    AttrIndex tag = schema.FindAttribute("TagId");
    AttrIndex area = schema.FindAttribute("AreaId");
    AttrIndex product = schema.FindAttribute("ProductName");
    (void)table_->Insert({Value(schema.name()),
                          tag >= 0 ? event->attribute(tag) : Value(),
                          area >= 0 ? event->attribute(area) : Value(),
                          product >= 0 ? event->attribute(product) : Value(),
                          Value(event->timestamp())});
  }

 private:
  const Catalog* catalog_;
  db::Table* table_;
};

}  // namespace

SaseSystem::SaseSystem(StoreLayout layout, SystemConfig config)
    : catalog_(Catalog::RetailDemo()), config_(config), sql_(&database_) {
  ons_ = std::make_unique<db::Ons>(&database_);
  archiver_ = std::make_unique<db::Archiver>(&database_);
  reports_ = ReportBoard(config_.echo_reports);

  // Seed the area directory from the layout so _retrieveLocation returns
  // meaningful descriptions.
  for (const Area& area : layout.areas()) {
    (void)archiver_->DescribeArea(area.id, area.name);
  }

  engine_ = std::make_unique<QueryEngine>(&catalog_, config_.time_config);
  (void)archiver_->RegisterFunctions(engine_->functions());

  if (config_.shard_count >= 2) {
    RuntimeConfig runtime_config;
    runtime_config.shard_count = config_.shard_count;
    runtime_config.partition_key = config_.partition_key;
    runtime_config.time_config = config_.time_config;
    runtime_config.merge_interval = config_.runtime_merge_interval;
    runtime_config.log_compact_min = config_.runtime_log_compact_min;
    runtime_config.elastic = config_.runtime_elastic;
    runtime_ = std::make_unique<ShardedRuntime>(&catalog_, runtime_config);
    event_bus_.Subscribe(runtime_.get());
  }

  // UI channel: cleaned events ("Cleaning and Association Layer Output").
  event_logger_ = std::make_unique<CallbackSink>(
      [this](const EventPtr& event) { LogEvent(event); });

  event_bus_.Subscribe(engine_.get());
  event_bus_.Subscribe(event_logger_.get());
  if (config_.archive_raw_events) {
    event_archiver_ = std::make_unique<RawEventArchiver>(&database_, &catalog_);
    event_bus_.Subscribe(event_archiver_.get());
  }

  // Cleaning pipeline configured from the layout.
  CleaningPipeline::Config cleaning_config;
  for (const ReaderSpec& reader : layout.readers()) {
    cleaning_config.anomaly.valid_readers.insert(reader.id);
  }
  cleaning_config.smoothing.window =
      config_.smoothing_window_ticks * config_.raw_units_per_tick;
  cleaning_config.smoothing.sampling_interval = config_.raw_units_per_tick;
  cleaning_config.time.raw_units_per_tick = config_.raw_units_per_tick;
  cleaning_config.dedup.reader_to_area = layout.ReaderToArea();
  cleaning_config.generation.area_to_event_type = layout.AreaToEventType();
  cleaning_ = std::make_unique<CleaningPipeline>(
      std::move(cleaning_config), &catalog_, ons_->Resolver(), &event_bus_);

  simulator_ = std::make_unique<RetailSimulator>(
      std::move(layout), config_.noise, config_.seed, config_.raw_units_per_tick);
  simulator_->set_sink(cleaning_.get());
}

void SaseSystem::LogEvent(const EventPtr& event) {
  reports_.Channel(ReportBoard::kCleaningOutput).Append(event->ToString(catalog_));
}

void SaseSystem::AddProduct(const TagInfo& tag) {
  ProductInfo info;
  info.product_name = tag.product_name;
  info.expiration_date = tag.expiration_date;
  info.saleable = tag.saleable;
  (void)ons_->RegisterProduct(tag.epc, info);
  simulator_->AddItem(tag);
}

Result<QueryId> SaseSystem::RegisterMonitoringQuery(const std::string& name,
                                                    const std::string& text,
                                                    OutputCallback callback) {
  OutputCallback deliver = [this, name, callback](const OutputRecord& record) {
    reports_.Channel(ReportBoard::kStreamOutput).Append(record.ToString());
    reports_.Channel(ReportBoard::kMessageResults)
        .Append("[" + name + "] " + record.ToString());
    if (callback) callback(record);
  };
  // Hybrid stream+database queries stay on the serial engine; pure stream
  // queries — including named FROM-stream readers — scale out when the
  // runtime is enabled. Runtime callbacks fire on the simulation thread
  // during merges, so the report board needs no locking either way.
  Result<QueryId> id =
      (runtime_ != nullptr && !RequiresSerialEngine(text))
          ? runtime_->Register(text, std::move(deliver))
          : engine_->Register(text, std::move(deliver));
  if (id.ok()) {
    reports_.Channel(ReportBoard::kPresentQueries).Append(name + ":\n" + text);
  }
  return id;
}

Result<QueryId> SaseSystem::RegisterArchivingRule(const std::string& name,
                                                  const std::string& text) {
  auto id = engine_->Register(text, [](const OutputRecord&) {
    // Archiving rules act through their _update* side effects; the record
    // itself is not user-facing.
  });
  if (id.ok()) {
    reports_.Channel(ReportBoard::kPresentQueries)
        .Append(name + " (archiving):\n" + text);
  }
  return id;
}

Result<db::ResultSet> SaseSystem::ExecuteSql(const std::string& text) {
  auto result = sql_.Execute(text);
  auto& channel = reports_.Channel(ReportBoard::kDatabaseReport);
  channel.Append("> " + text);
  channel.Append(result.ok() ? result.value().ToString()
                             : result.status().ToString());
  return result;
}

void SaseSystem::PublishStreamEvent(const std::string& stream,
                                    const EventPtr& event) {
  if (runtime_ != nullptr) runtime_->OnStreamEvent(stream, event);
  engine_->OnStreamEvent(stream, event);
}

void SaseSystem::RunUntil(int64_t until_tick) {
  simulator_->RunUntil(until_tick);
}

void SaseSystem::Flush() {
  cleaning_->OnFlush();
  // CleaningPipeline::OnFlush flushes its StreamSource, which calls
  // EventSink::OnFlush on the bus; the bus fans that out to the engine.
}

}  // namespace sase
