#ifndef SASE_SYSTEM_SASE_SYSTEM_H_
#define SASE_SYSTEM_SASE_SYSTEM_H_

#include <memory>
#include <string>

#include "cleaning/pipeline.h"
#include "core/catalog.h"
#include "core/stream.h"
#include "db/archiver.h"
#include "db/database.h"
#include "db/ons.h"
#include "db/sql_executor.h"
#include "db/track_trace.h"
#include "engine/query_engine.h"
#include "rfid/simulator.h"
#include "rfid/workload.h"
#include "runtime/sharded_runtime.h"
#include "system/report.h"

namespace sase {

/// System-wide configuration knobs.
struct SystemConfig {
  NoiseModel noise;                    // reader imperfection model
  TimeConfig time_config;              // logical tick length
  uint64_t seed = 42;                  // simulator noise seed
  int64_t raw_units_per_tick = 1000;   // device clock granularity (ms/tick)
  int64_t smoothing_window_ticks = 3;  // temporal smoothing reach
  bool archive_raw_events = true;      // keep an events table for ad-hoc SQL
  bool echo_reports = false;           // print UI channels to stdout

  /// Complex-event-processor parallelism: with shard_count >= 2 a
  /// ShardedRuntime is attached to the event bus and monitoring queries that
  /// do not call database functions — including named FROM-stream readers —
  /// execute across `shard_count` worker threads, partitioned by
  /// `partition_key`. Archiving rules and function-calling (hybrid
  /// stream+database) queries always run on the serial engine so that only
  /// the simulation thread touches the Event Database. 0/1 = fully serial
  /// (the seed behavior).
  int shard_count = 1;
  std::string partition_key = "TagId";
  /// Runtime merge cadence (events between incremental merges + clock
  /// broadcasts) and dispatch-log compaction threshold; see RuntimeConfig.
  size_t runtime_merge_interval = 4096;
  size_t runtime_log_compact_min = 1024;
  /// Load-driven shard autoscaling (`runtime_elastic.enabled = true` turns
  /// it on; requires shard_count >= 2 so a runtime exists). Thresholds,
  /// bounds and hysteresis: see ElasticConfig in runtime/elastic_policy.h
  /// and docs/operations.md.
  ElasticConfig runtime_elastic;
};

/// The complete SASE system of Figure 1, assembled:
///
///   RFID devices (RetailSimulator)
///     -> Cleaning and Association (CleaningPipeline, ONS-backed)
///       -> event stream (StreamBus)
///         -> Complex Event Processor (QueryEngine)  -> user notifications
///         -> Event Database (db::Database via archiving rules)
///   + User Interface stand-in (ReportBoard channels)
///   + ad-hoc SQL over the Event Database (SqlExecutor)
///
/// See examples/retail_monitoring.cc for the full §4 demo scenario built on
/// this class.
class SaseSystem {
 public:
  explicit SaseSystem(StoreLayout layout, SystemConfig config = {});

  // --- component access ---
  const Catalog& catalog() const { return catalog_; }
  RetailSimulator& simulator() { return *simulator_; }
  CleaningPipeline& cleaning() { return *cleaning_; }
  QueryEngine& engine() { return *engine_; }
  /// The parallel execution runtime; nullptr when shard_count <= 1.
  ShardedRuntime* runtime() { return runtime_.get(); }
  db::Database& database() { return database_; }
  db::Ons& ons() { return *ons_; }
  db::Archiver& archiver() { return *archiver_; }
  ReportBoard& reports() { return reports_; }
  StreamBus& event_bus() { return event_bus_; }

  /// Track-and-trace view over the Event Database.
  db::TrackTrace track_trace() { return db::TrackTrace(&database_); }

  // --- high-level operations (what the demo UI exposes) ---

  /// Registers a product with the ONS and creates the tagged item in the
  /// simulator.
  void AddProduct(const TagInfo& tag);

  /// Registers a monitoring query: results go to the "Stream Processor
  /// Output" and "Message Results" channels and to `callback` if given.
  Result<QueryId> RegisterMonitoringQuery(const std::string& name,
                                          const std::string& text,
                                          OutputCallback callback = nullptr);

  /// Registers a data-transformation (archiving) rule; its RETURN clause
  /// is expected to call `_updateLocation` / `_updateContainment`.
  Result<QueryId> RegisterArchivingRule(const std::string& name,
                                        const std::string& text);

  /// Ad-hoc SQL against the Event Database; statement and result are
  /// logged to the "Database Report" channel.
  Result<db::ResultSet> ExecuteSql(const std::string& text);

  /// Publishes one event onto a named input stream: FROM-stream queries on
  /// the runtime (when enabled) and the serial engine receive it. Call from
  /// the simulation thread; events must arrive in stream order per stream.
  void PublishStreamEvent(const std::string& stream, const EventPtr& event);

  /// Advances the simulation to `until_tick` (readers poll every tick).
  void RunUntil(int64_t until_tick);

  /// Ends the stream: flushes the pipeline and the engine (releases
  /// tail-negation deferrals).
  void Flush();

 private:
  void LogEvent(const EventPtr& event);

  Catalog catalog_;
  SystemConfig config_;
  db::Database database_;
  std::unique_ptr<db::Ons> ons_;
  std::unique_ptr<db::Archiver> archiver_;
  db::SqlExecutor sql_;

  ReportBoard reports_;

  StreamBus event_bus_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<ShardedRuntime> runtime_;
  std::unique_ptr<CallbackSink> event_logger_;
  std::unique_ptr<EventSink> event_archiver_;
  std::unique_ptr<CleaningPipeline> cleaning_;
  std::unique_ptr<RetailSimulator> simulator_;
};

}  // namespace sase

#endif  // SASE_SYSTEM_SASE_SYSTEM_H_
