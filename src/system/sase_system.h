#ifndef SASE_SYSTEM_SASE_SYSTEM_H_
#define SASE_SYSTEM_SASE_SYSTEM_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "checkpoint/checkpoint_policy.h"
#include "checkpoint/snapshot.h"
#include "cleaning/pipeline.h"
#include "core/catalog.h"
#include "core/stream.h"
#include "db/archiver.h"
#include "db/database.h"
#include "db/ons.h"
#include "db/sql_executor.h"
#include "db/track_trace.h"
#include "engine/query_engine.h"
#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rfid/simulator.h"
#include "rfid/workload.h"
#include "runtime/sharded_runtime.h"
#include "system/report.h"

namespace sase {

/// System-wide configuration knobs.
struct SystemConfig {
  NoiseModel noise;                    // reader imperfection model
  TimeConfig time_config;              // logical tick length
  uint64_t seed = 42;                  // simulator noise seed
  int64_t raw_units_per_tick = 1000;   // device clock granularity (ms/tick)
  int64_t smoothing_window_ticks = 3;  // temporal smoothing reach
  bool archive_raw_events = true;      // keep an events table for ad-hoc SQL
  bool echo_reports = false;           // print UI channels to stdout

  /// Complex-event-processor parallelism: with shard_count >= 2 a
  /// ShardedRuntime is attached to the event bus and monitoring queries that
  /// do not call database functions — including named FROM-stream readers —
  /// execute across `shard_count` worker threads, partitioned by
  /// `partition_key`. Archiving rules and function-calling (hybrid
  /// stream+database) queries always run on the serial engine so that only
  /// the simulation thread touches the Event Database. 0/1 = fully serial
  /// (the seed behavior) — unless durable checkpointing is enabled, which
  /// attaches a single-shard runtime so pure stream queries live on the
  /// engines the checkpoint subsystem knows how to rebuild.
  int shard_count = 1;
  std::string partition_key = "TagId";
  /// Runtime merge cadence (events between incremental merges + clock
  /// broadcasts) and dispatch-log compaction threshold; see RuntimeConfig.
  size_t runtime_merge_interval = 4096;
  size_t runtime_log_compact_min = 1024;
  /// Load-driven shard autoscaling (`runtime_elastic.enabled = true` turns
  /// it on; requires shard_count >= 2 so a runtime exists). Thresholds,
  /// bounds and hysteresis: see ElasticConfig in runtime/elastic_policy.h
  /// and docs/operations.md.
  ElasticConfig runtime_elastic;
  /// Hot-key mitigation: when a key's share of a stream's keyed events
  /// reaches `hotkey_split_threshold` percent (after `hotkey_min_events`
  /// keyed events), the runtime splits the key — round-robin spread for
  /// replicable query sets, secondary sub-partitioning when every sharded
  /// stateful query shares a second covering attribute, and a surfaced
  /// refusal otherwise. Output stays byte-identical to serial either way.
  /// Requires shard_count >= 2 (a runtime); see RuntimeConfig and
  /// docs/operations.md.
  bool hotkey_mitigation = false;
  int hotkey_split_threshold = 50;
  uint64_t hotkey_min_events = 4096;
  /// Adaptive handoff batching for the runtime's cross-thread rings (grows
  /// under load bounded by a latency target, shrinks when idle); see
  /// BatchConfig in runtime/batch_policy.h and docs/operations.md.
  BatchConfig runtime_batch;
  /// Compile structurally identical monitoring queries onto one shared NFA
  /// per engine (multi-query sharing; see engine/shared_scan.h). Applies to
  /// the runtime's worker engines AND the serial engine. Checkpoints taken
  /// with sharing on must be recovered with sharing on.
  bool scan_sharing = false;
  /// Durable checkpoint & crash recovery: with `checkpoint.dir` set, every
  /// published event is write-ahead journaled there, Checkpoint() persists
  /// a quiesce-point snapshot (and the CheckpointPolicy thresholds take
  /// them automatically), and SaseSystem::Recover rebuilds a system that
  /// resumes byte-identical output after a crash. Knobs and recovery
  /// walkthrough: src/checkpoint/checkpoint_policy.h and docs/recovery.md.
  checkpoint::CheckpointConfig checkpoint;
  /// Observability (src/obs/): `obs.metrics_enabled` attaches a
  /// MetricsRegistry spanning the engine, runtime and checkpoint layers
  /// (scrape with ScrapeMetrics() + RenderPrometheus(), or the console's
  /// `.metrics`); `obs.trace_sample_every = N` samples every Nth published
  /// event into a Chrome-trace-JSON event-lifecycle trace, dumped to
  /// `obs.trace_path` at destruction (or on demand via `.trace dump`).
  /// Knob table: docs/observability.md.
  obs::ObsConfig obs;
};

/// One position in a delivery class's output sequence — what
/// OutputRecord's cursor stamp names and what SaseSystem::AckOutput
/// acknowledges. Positions are 1-based and deterministic per class
/// (runtime-merged vs serial-synchronous), so the same record carries the
/// same cursor before and after a crash.
struct OutputCursor {
  bool runtime_hosted = false;
  uint64_t position = 0;
};

/// Adapter for sinks that cannot acknowledge: drops any record whose
/// cursor stamp was already forwarded (recovery re-deliveries under
/// AckMode::kConsumer), passing each position through exactly once.
/// Delivery within a class is in cursor order, so a max-seen watermark per
/// class suffices. Unstamped records (position 0 — e.g. bare engine
/// callbacks) are always forwarded. Use via Wrap(), which shares one
/// watermark across the std::function copies:
///
///   auto sink = std::make_shared<IdempotentSink>(my_callback);
///   system.RegisterMonitoringQuery("q", text, IdempotentSink::Wrap(sink));
class IdempotentSink {
 public:
  explicit IdempotentSink(OutputCallback inner) : inner_(std::move(inner)) {}

  void operator()(const OutputRecord& record) {
    if (record.cursor_position != 0) {
      uint64_t& seen =
          record.cursor_runtime_hosted ? seen_runtime_ : seen_serial_;
      if (record.cursor_position <= seen) {
        ++dropped_;
        return;
      }
      seen = record.cursor_position;
    }
    if (inner_) inner_(record);
  }

  static OutputCallback Wrap(std::shared_ptr<IdempotentSink> sink) {
    return [sink](const OutputRecord& record) { (*sink)(record); };
  }

  /// Duplicates swallowed so far.
  uint64_t dropped() const { return dropped_; }

 private:
  OutputCallback inner_;
  uint64_t seen_runtime_ = 0;
  uint64_t seen_serial_ = 0;
  uint64_t dropped_ = 0;
};

/// The complete SASE system of Figure 1, assembled:
///
///   RFID devices (RetailSimulator)
///     -> Cleaning and Association (CleaningPipeline, ONS-backed)
///       -> event stream (StreamBus)
///         -> Complex Event Processor (QueryEngine)  -> user notifications
///         -> Event Database (db::Database via archiving rules)
///   + User Interface stand-in (ReportBoard channels)
///   + ad-hoc SQL over the Event Database (SqlExecutor)
///   + durable checkpoint & crash recovery (src/checkpoint/, optional)
///
/// See examples/retail_monitoring.cc for the full §4 demo scenario built on
/// this class.
class SaseSystem {
 public:
  explicit SaseSystem(StoreLayout layout, SystemConfig config = {});
  ~SaseSystem();  // out-of-line: the journal taps are defined in the .cc

  // --- component access ---
  const Catalog& catalog() const { return catalog_; }
  RetailSimulator& simulator() { return *simulator_; }
  CleaningPipeline& cleaning() { return *cleaning_; }
  QueryEngine& engine() { return *engine_; }
  /// The parallel execution runtime; nullptr when shard_count <= 1 and
  /// checkpointing is disabled.
  ShardedRuntime* runtime() { return runtime_.get(); }
  db::Database& database() { return database_; }
  db::Ons& ons() { return *ons_; }
  db::Archiver& archiver() { return *archiver_; }
  ReportBoard& reports() { return reports_; }
  StreamBus& event_bus() { return event_bus_; }
  const SystemConfig& config() const { return config_; }
  const StoreLayout& layout() const { return layout_; }
  /// The unified metrics registry; nullptr when `config.obs.metrics_enabled`
  /// is false (the zero-overhead mode — no layer takes timestamps).
  obs::MetricsRegistry* metrics() { return metrics_.get(); }
  /// The event-lifecycle trace collector (always present; dormant until
  /// SetSampling / `.trace on <N>` enables it).
  obs::TraceCollector& tracer() { return tracer_; }

  /// Refreshes every scrape-mirrored metric from its source-of-truth
  /// counter — runtime (quiesces it), serial engine, checkpoint/journal —
  /// so a following RenderPrometheus/WritePrometheus reads a consistent
  /// snapshot. No-op when metrics are disabled. Also refreshes the cached
  /// /statusz page served by the HTTP endpoint.
  void ScrapeMetrics();

  /// Human-readable system status (what HTTP /statusz and the console's
  /// `.statusz` show): registered-queries table with per-query operator
  /// latency summaries, runtime fleet view (shard/key skew, hot keys),
  /// checkpoint + ack cursor state, and the most recent slow-query samples.
  /// Dispatcher thread only — it quiesces the runtime; the HTTP handler
  /// serves a copy cached at the last ScrapeMetrics instead.
  std::string StatusReport();

  /// Merged slow-query samples across every host engine (runtime workers +
  /// the serial engine), newest first, each tagged with its host lane
  /// ("serial", "shard-N", "broadcast"). Dispatcher thread only (quiesces
  /// the runtime). Empty when the slow-query log is disarmed
  /// (`obs.slow_query_threshold_ns = 0` or metrics disabled).
  std::vector<ShardedRuntime::SlowSample> SlowSamples();

  /// Port the embedded HTTP endpoint is bound to (the resolved one when
  /// `obs.http_port = -1` asked for an ephemeral port); 0 when no endpoint
  /// is running.
  int http_port() const {
    return http_endpoint_ != nullptr ? http_endpoint_->port() : 0;
  }

  /// Track-and-trace view over the Event Database.
  db::TrackTrace track_trace() { return db::TrackTrace(&database_); }

  // --- high-level operations (what the demo UI exposes) ---

  /// Registers a product with the ONS and creates the tagged item in the
  /// simulator.
  void AddProduct(const TagInfo& tag);

  /// Registers a monitoring query: results go to the "Stream Processor
  /// Output" and "Message Results" channels and to `callback` if given.
  Result<QueryId> RegisterMonitoringQuery(const std::string& name,
                                          const std::string& text,
                                          OutputCallback callback = nullptr);

  /// Registers a data-transformation (archiving) rule; its RETURN clause
  /// is expected to call `_updateLocation` / `_updateContainment`.
  Result<QueryId> RegisterArchivingRule(const std::string& name,
                                        const std::string& text);

  /// Ad-hoc SQL against the Event Database; statement and result are
  /// logged to the "Database Report" channel.
  Result<db::ResultSet> ExecuteSql(const std::string& text);

  /// Publishes one event onto a named input stream: FROM-stream queries on
  /// the runtime (when enabled) and the serial engine receive it. Call from
  /// the simulation thread; events must arrive in stream order per stream.
  void PublishStreamEvent(const std::string& stream, const EventPtr& event);

  /// Advances the simulation to `until_tick` (readers poll every tick).
  void RunUntil(int64_t until_tick);

  /// Ends the stream: flushes the pipeline and the engine (releases
  /// tail-negation deferrals).
  void Flush();

  // --- durable checkpoint & crash recovery (src/checkpoint/) ---

  /// Writes a durable checkpoint: quiesces the runtime, persists a
  /// versioned snapshot (registered queries in dispatch order, per-stream
  /// dispatch stamps, the in-flight replay window, runtime shape, delivery
  /// watermarks, and the Event Database via db::Dump) into `dir` — or into
  /// the configured checkpoint directory when `dir` is empty — and, when
  /// journaling into that same directory, rotates the event journal onto a
  /// fresh epoch and garbage-collects the superseded one.
  ///
  /// Refuses with kFailedPrecondition while a runtime Resize is mid-flight,
  /// and when any registered query is not window-replayable (a stateful
  /// query with no WITHIN span, or a running aggregate): such state cannot
  /// be rebuilt from a finite replay window, so a checkpoint would lie.
  Status Checkpoint(const std::string& dir = "");

  /// Re-attaches user callbacks on recovery (callbacks cannot be
  /// serialized): called once per recovered monitoring query with its
  /// registration name; return nullptr for report-channels-only delivery.
  using CallbackFactory = std::function<OutputCallback(const std::string&)>;

  /// Rebuilds a SaseSystem from a checkpoint directory: restores the Event
  /// Database, re-registers every query, mutedly replays the snapshot's
  /// in-flight window, then replays the event journal suffix — suppressing
  /// exactly the records the crashed process already delivered (tracked by
  /// the journal's output marks) — so the recovered system resumes emitting
  /// byte-identical output from the record where the crash cut it off. The
  /// recovered system keeps journaling into `dir`.
  ///
  /// `config` supplies the non-checkpointed knobs (noise, tick length,
  /// report echo...); the runtime shape (shard count, partition key) comes
  /// from the snapshot. The simulator and cleaning pipeline restart fresh
  /// from `layout` — recovery covers the event-processing layers, not
  /// simulated device state.
  static Result<std::unique_ptr<SaseSystem>> Recover(
      const std::string& dir, StoreLayout layout, SystemConfig config = {},
      CallbackFactory callbacks = nullptr);

  // --- exactly-once output (consumer-acknowledged cursor) ---

  /// Acknowledges every delivered record at or below `cursor.position` in
  /// its class — acks are cumulative, like Kafka offsets, so sinks may ack
  /// every Nth record. Under AckMode::kConsumer the durable acked cursor
  /// (journaled as batched kAckCursor records, persisted in the snapshot)
  /// is what recovery suppression resumes from: anything past it re-emits
  /// with its original cursor stamp. Under the default AckMode::kAuto
  /// delivery self-acks and this call is a harmless no-op. Rejects a
  /// zero cursor and positions beyond what was delivered.
  Status AckOutput(const OutputCursor& cursor);
  /// Convenience: acknowledges a delivered record by its cursor stamp.
  Status AckOutput(const OutputRecord& record) {
    return AckOutput(
        OutputCursor{record.cursor_runtime_hosted, record.cursor_position});
  }

  /// Forces the journal's pending ack batch to disk now (see
  /// CheckpointConfig::ack_commit_interval). Also happens at Flush() and
  /// before every snapshot. No-op when nothing is pending.
  Status CommitAcks();

  /// Cumulative consumer-acked positions per delivery class (== the
  /// delivered counters under AckMode::kAuto).
  uint64_t acked_runtime() const { return acked_runtime_; }
  uint64_t acked_serial() const { return acked_serial_; }

  /// One registered query as the checkpoint registry tracks it. Query ids
  /// are unique per host (the runtime and the serial engine assign ids
  /// independently), hence the host flag in the key.
  struct QueryInfo {
    QueryId id = 0;
    bool runtime_hosted = false;
    bool archiving = false;
    std::string name;
    std::string text;
  };
  /// Every query registered through this system, in registration order.
  const std::vector<QueryInfo>& registered_queries() const { return registry_; }

  /// Multi-line checkpoint/journal/recovery health; "" when checkpointing
  /// is disabled and no checkpoint was ever taken.
  std::string CheckpointReport() const;

  // --- checkpoint introspection ---
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  /// Records delivered to monitoring callbacks (runtime-hosted + serial).
  uint64_t records_delivered() const {
    return delivered_runtime_ + delivered_serial_;
  }
  /// Journal records replayed by the Recover that built this system.
  uint64_t recovered_journal_records() const { return recovered_records_; }
  /// True when that recovery stopped early at a torn/corrupt journal tail.
  bool recovered_journal_truncated() const { return recovered_truncated_; }
  /// True when recovery ran under AckMode::kConsumer but found no acked
  /// cursor anywhere (pre-v3 snapshot, no kAckCursor journal records) and
  /// fell back to the delivered-output marks — the documented at-least-once
  /// fallback for pre-cursor checkpoints.
  bool recovered_ack_fallback() const { return recovered_ack_fallback_; }
  /// Re-deliveries the recovery gate swallowed (suppression quota consumed)
  /// over this system's lifetime.
  uint64_t suppressed_duplicates() const { return suppressed_duplicates_; }

 private:
  /// Snapshot + journal-scan bundle handed from Recover to the private
  /// recovery constructor and FinishRecovery.
  struct RecoverySpec {
    std::string dir;
    uint64_t epoch = 0;  // snapshot id; 0 = journal-only (no snapshot yet)
    /// Mutable: FinishRecovery moves the engine-state payloads out rather
    /// than double-buffering them (they embed whole event tables).
    checkpoint::SystemSnapshot* snapshot = nullptr;  // null at epoch 0
  };

  SaseSystem(StoreLayout layout, SystemConfig config,
             const RecoverySpec* recovery);

  /// Journal taps around the event bus: Head write-ahead logs every
  /// published event before any processor sees it; Tail runs after every
  /// subscriber finished, appending output marks and driving the automatic
  /// checkpoint policy.
  class JournalHeadTap;
  class JournalTailTap;

  /// Observability taps around the event bus: Head is the FIRST subscriber
  /// (samples the event into the trace before the journal or any processor
  /// sees it), Tail the LAST (closes the "ingest" span after every
  /// subscriber — journal tail included — finished the event).
  class ObsHeadTap;
  class ObsTailTap;

  /// One-per-published-event trace bracket; also wraps PublishStreamEvent
  /// (named-stream events bypass the bus). Near-free while sampling is off.
  void ObsIngestBegin();
  void ObsIngestEnd();

  void LogEvent(const EventPtr& event);
  /// Monitoring-query delivery wrapper: report channels + user callback,
  /// behind the recovery suppression gate and the delivery counters.
  OutputCallback MakeDeliver(const std::string& name, OutputCallback callback,
                             bool runtime_hosted);
  bool JournalActive() const { return journal_ != nullptr && !recovering_; }
  void JournalEvent(const std::string& stream, const EventPtr& event);
  void JournalFlush();
  /// After one published event (or flush) is fully processed: appends an
  /// output mark if deliveries advanced, then evaluates the checkpoint
  /// policy and acts on it.
  void AfterEventProcessed();
  Status OpenJournal(uint64_t epoch, uint64_t segment);
  /// Registers the snapshot's queries and replays window + journal; runs
  /// with `recovering_` set so the taps stay dormant.
  Status FinishRecovery(const RecoverySpec& spec, const CallbackFactory& callbacks);

  Catalog catalog_;
  SystemConfig config_;
  StoreLayout layout_;
  db::Database database_;
  std::unique_ptr<db::Ons> ons_;
  std::unique_ptr<db::Archiver> archiver_;
  db::SqlExecutor sql_;

  ReportBoard reports_;

  // --- observability (src/obs/) ---
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::TraceCollector tracer_;
  std::unique_ptr<ObsHeadTap> obs_head_;
  std::unique_ptr<ObsTailTap> obs_tail_;
  /// Embedded scrape endpoint (`obs.http_port`); null when disabled. Its
  /// accept thread serves /metrics live (RenderPrometheus is thread-safe),
  /// /healthz via the runtime's cross-thread Healthy() probe, and /statusz
  /// from `statusz_` — a copy cached under `statusz_mutex_` at each
  /// ScrapeMetrics, because StatusReport() itself is dispatcher-only.
  std::unique_ptr<obs::HttpEndpoint> http_endpoint_;
  mutable std::mutex statusz_mutex_;
  std::string statusz_;
  uint64_t ingest_trace_ = 0;     // sampled id of the in-flight event (0 = not)
  uint64_t ingest_start_ns_ = 0;  // its "ingest" span start

  StreamBus event_bus_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<ShardedRuntime> runtime_;
  std::unique_ptr<CallbackSink> event_logger_;
  std::unique_ptr<EventSink> event_archiver_;
  std::unique_ptr<CleaningPipeline> cleaning_;
  std::unique_ptr<RetailSimulator> simulator_;

  // --- checkpoint subsystem state (all dispatcher-thread) ---
  std::unique_ptr<JournalHeadTap> journal_head_;
  std::unique_ptr<JournalTailTap> journal_tail_;
  std::unique_ptr<checkpoint::EventJournal> journal_;
  std::unique_ptr<checkpoint::CheckpointPolicy> checkpoint_policy_;
  std::vector<QueryInfo> registry_;
  uint64_t epoch_ = 0;  // current snapshot epoch (0 before first checkpoint)
  bool recovering_ = false;     // journal taps dormant during replay
  bool in_checkpoint_ = false;  // reentrancy guard (callback -> Checkpoint)
  bool journal_warned_ = false;
  // Delivery watermarks: absolute records delivered per host class, and the
  // recovery gate's remaining suppression quota per class. Runtime-merged
  // and serial-synchronous outputs interleave differently run-to-run (merge
  // cadence), but each class's own sequence is deterministic — hence
  // per-class counters.
  uint64_t delivered_runtime_ = 0;
  uint64_t delivered_serial_ = 0;
  uint64_t suppress_runtime_ = 0;
  uint64_t suppress_serial_ = 0;
  uint64_t last_mark_runtime_ = 0;
  uint64_t last_mark_serial_ = 0;
  // Consumer-acked cursor per class (mirrors delivered_* under kAuto) and
  // lifetime count of re-deliveries the recovery gate swallowed.
  uint64_t acked_runtime_ = 0;
  uint64_t acked_serial_ = 0;
  uint64_t suppressed_duplicates_ = 0;
  bool recovered_ack_fallback_ = false;
  // Policy baseline + stats.
  uint64_t events_since_checkpoint_ = 0;
  uint64_t journal_bytes_at_checkpoint_ = 0;
  uint64_t checkpoints_taken_ = 0;
  uint64_t recovered_records_ = 0;
  bool recovered_ = false;
  bool recovered_truncated_ = false;
};

}  // namespace sase

#endif  // SASE_SYSTEM_SASE_SYSTEM_H_
