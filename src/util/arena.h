#ifndef SASE_UTIL_ARENA_H_
#define SASE_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sase {

/// Epoch-reset bump allocator for engine hot-path scratch storage.
///
/// Allocate() hands out raw bytes from a chain of blocks; individual frees
/// are no-ops and Reset() reclaims everything at once, keeping the blocks
/// for the next epoch — so steady-state allocation is pointer arithmetic,
/// not malloc. Callers own the epoch discipline: nothing allocated from an
/// arena may be touched after Reset() (the arena property test hammers this
/// under ASan/UBSan via the shared-scan match buffers).
class Arena {
 public:
  explicit Arena(std::size_t min_block_bytes = 4096)
      : min_block_bytes_(min_block_bytes == 0 ? 4096 : min_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (current_ < blocks_.size()) {
      Block& block = blocks_[current_];
      std::size_t aligned = (block.used + (align - 1)) & ~(align - 1);
      if (aligned + bytes <= block.size) {
        block.used = aligned + bytes;
        return block.data.get() + aligned;
      }
      ++current_;
    }
    std::size_t size = min_block_bytes_;
    if (!blocks_.empty()) size = blocks_.back().size * 2;
    if (size < bytes + align) size = bytes + align;
    blocks_.push_back(Block{std::make_unique<char[]>(size), size, 0});
    reserved_ += size;
    // Block starts come from operator new[], aligned for any type with
    // fundamental alignment — which covers every arena client here.
    Block& block = blocks_.back();
    block.used = bytes;
    return block.data.get();
  }

  /// Epoch reset: every prior allocation is invalidated; the blocks stay
  /// reserved for reuse.
  void Reset() {
    for (Block& block : blocks_) block.used = 0;
    current_ = 0;
  }

  /// Total bytes reserved from the heap (block capacity, survives Reset).
  std::uint64_t bytes_reserved() const { return reserved_; }

  /// Bytes handed out in the current epoch.
  std::uint64_t bytes_in_use() const {
    std::uint64_t used = 0;
    for (const Block& block : blocks_) used += block.used;
    return used;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::size_t min_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;
  std::uint64_t reserved_ = 0;
};

/// Minimal std allocator over an Arena, for containers whose lifetime obeys
/// the arena's epoch discipline. deallocate() is a no-op — memory returns
/// at Arena::Reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace sase

#endif  // SASE_UTIL_ARENA_H_
