#ifndef SASE_UTIL_CRC32_H_
#define SASE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace sase {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant). Used by the
/// checkpoint subsystem's event journal to detect torn or corrupted
/// records after a crash. `seed` chains incremental computations:
/// Crc32(b, n, Crc32(a, m)) == Crc32(a + b, m + n). Deliberately no
/// string_view convenience overload: with one, a (pointer, uint32_t) call
/// silently binds the integer to `len` instead of `seed`.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace sase

#endif  // SASE_UTIL_CRC32_H_
