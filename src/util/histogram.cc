#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace sase {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  size_t bucket = 1;
  uint64_t v = static_cast<uint64_t>(value);
  while (v > 1 && bucket < kNumBuckets - 1) {
    v >>= 1;
    ++bucket;
  }
  return bucket;
}

int64_t Histogram::BucketLower(size_t bucket) {
  if (bucket == 0) return 0;
  return int64_t{1} << (bucket - 1);
}

int64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= kNumBuckets - 1) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << index) - 1;
}

void Histogram::Record(int64_t value) {
  value = std::max<int64_t>(value, 0);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
  ++buckets_[BucketIndex(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  MergeBuckets(other.buckets_.data(), other.buckets_.size(), other.count_,
               other.min_, other.max_, other.sum_);
}

void Histogram::MergeBuckets(const uint64_t* buckets, size_t n, uint64_t count,
                             int64_t min, int64_t max, double sum) {
  if (count == 0) return;
  if (count_ == 0) {
    min_ = min;
    max_ = max;
  } else {
    min_ = std::min(min_, min);
    max_ = std::max(max_, max);
  }
  count_ += count;
  sum_ += sum;
  for (size_t i = 0; i < std::min(n, kNumBuckets); ++i) {
    buckets_[i] += buckets[i];
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  double rank = q / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    uint64_t next = seen + buckets_[i];
    if (static_cast<double>(next) >= rank) {
      // Interpolate within the bucket's value range.
      double lo = static_cast<double>(BucketLower(i));
      double hi = i == 0 ? 0.0 : lo * 2.0 - 1.0;
      double fraction = buckets_[i] == 0
                            ? 0.0
                            : (rank - static_cast<double>(seen)) /
                                  static_cast<double>(buckets_[i]);
      double value = lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
      return std::clamp(value, static_cast<double>(min_), static_cast<double>(max_));
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

double Histogram::Quantile(double p) const {
  return Percentile(std::clamp(p, 0.0, 1.0) * 100.0);
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  out << "count=" << count_ << " min=" << min() << " p50=" << Percentile(50)
      << " p99=" << Percentile(99) << " max=" << max() << " mean=" << mean();
  return out.str();
}

}  // namespace sase
