#ifndef SASE_UTIL_HISTOGRAM_H_
#define SASE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sase {

/// Log-bucketed latency/size histogram in the style of storage-engine
/// statistics: cheap to record (one increment), summarizable as
/// min/mean/percentiles. Used by the end-to-end benchmarks to report the
/// paper's "low latency" claim and by tests to assert distribution shapes.
class Histogram {
 public:
  /// Number of log buckets: bucket 0 covers {0}, bucket i covers
  /// [2^(i-1), 2^i), and the last bucket absorbs everything above.
  static constexpr size_t kNumBuckets = 64;

  /// Bucket index a value falls into (negatives clamp to bucket 0). Public
  /// so external recorders — the metrics registry's wait-free per-thread
  /// cells — can bucket with the exact same boundaries and later fold their
  /// raw counts back in via MergeBuckets.
  static size_t BucketIndex(int64_t value);

  /// Largest value bucket `index` covers (inclusive); 0 for bucket 0 and
  /// INT64_MAX for the open-ended last bucket.
  static int64_t BucketUpperBound(size_t index);

  Histogram();

  /// Records one sample (negative values clamp to 0).
  void Record(int64_t value);

  void Merge(const Histogram& other);

  /// Merges raw per-bucket counts recorded elsewhere with this class's
  /// bucket boundaries (see BucketIndex). `n` may be less than kNumBuckets;
  /// the summary fields ride alongside because raw buckets alone cannot
  /// reconstruct them. No-op when `count` is 0.
  void MergeBuckets(const uint64_t* buckets, size_t n, uint64_t count,
                    int64_t min, int64_t max, double sum);

  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const;

  /// Approximate percentile (q in [0,100]); interpolates within the
  /// matched bucket. Exact for values seen at bucket boundaries.
  double Percentile(double q) const;
  double Median() const { return Percentile(50); }

  /// Percentile with the quantile convention (p in [0, 1], clamped):
  /// Quantile(0.99) == Percentile(99). The /statusz latency summaries use
  /// this form because alert rules are written in quantiles.
  double Quantile(double p) const;

  /// "count=N min=a p50=b p99=c max=d mean=e".
  std::string ToString() const;

  /// Raw bucket counts (kNumBuckets entries), for renderers that emit the
  /// distribution itself (Prometheus cumulative `le` buckets).
  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  static int64_t BucketLower(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0;
};

}  // namespace sase

#endif  // SASE_UTIL_HISTOGRAM_H_
