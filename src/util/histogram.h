#ifndef SASE_UTIL_HISTOGRAM_H_
#define SASE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sase {

/// Log-bucketed latency/size histogram in the style of storage-engine
/// statistics: cheap to record (one increment), summarizable as
/// min/mean/percentiles. Used by the end-to-end benchmarks to report the
/// paper's "low latency" claim and by tests to assert distribution shapes.
class Histogram {
 public:
  Histogram();

  /// Records one sample (negative values clamp to 0).
  void Record(int64_t value);

  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const;

  /// Approximate percentile (q in [0,100]); interpolates within the
  /// matched bucket. Exact for values seen at bucket boundaries.
  double Percentile(double q) const;
  double Median() const { return Percentile(50); }

  /// "count=N min=a p50=b p99=c max=d mean=e".
  std::string ToString() const;

 private:
  static size_t BucketFor(int64_t value);
  static int64_t BucketLower(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0;
};

}  // namespace sase

#endif  // SASE_UTIL_HISTOGRAM_H_
