#include "util/logging.h"

#include <cstdio>

namespace sase {

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (level >= LogLevel::kWarn) ++warning_count_;
  if (level < min_level_) return;
  const char* tag = "INFO";
  switch (level) {
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO"; break;
    case LogLevel::kWarn: tag = "WARN"; break;
    case LogLevel::kError: tag = "ERROR"; break;
  }
  std::fprintf(stderr, "[sase %s] %s\n", tag, message.c_str());
}

}  // namespace sase
