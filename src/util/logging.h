#ifndef SASE_UTIL_LOGGING_H_
#define SASE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace sase {

/// Severity levels for the library logger. kDebug messages are compiled in
/// but suppressed unless the level is lowered at runtime.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal process-wide logger. SASE is a library, so logging is off the
/// hot path: operators never log per event; only setup, teardown and
/// anomalies are logged.
class Logger {
 public:
  /// Returns the process-wide logger instance.
  static Logger& Get();

  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  /// Emits one line to stderr if `level` is at or above the minimum.
  void Log(LogLevel level, const std::string& message);

  /// Number of messages emitted at kWarn or above; used by tests to assert
  /// that clean runs stay clean.
  int warning_count() const { return warning_count_; }
  void ResetCounters() { warning_count_ = 0; }

 private:
  LogLevel min_level_ = LogLevel::kInfo;
  int warning_count_ = 0;
};

namespace log_internal {

/// Stream-style log statement collector: builds the message then hands it
/// to the logger on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace sase

#define SASE_LOG_DEBUG ::sase::log_internal::LogMessage(::sase::LogLevel::kDebug)
#define SASE_LOG_INFO ::sase::log_internal::LogMessage(::sase::LogLevel::kInfo)
#define SASE_LOG_WARN ::sase::log_internal::LogMessage(::sase::LogLevel::kWarn)
#define SASE_LOG_ERROR ::sase::log_internal::LogMessage(::sase::LogLevel::kError)

#endif  // SASE_UTIL_LOGGING_H_
