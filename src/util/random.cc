#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace sase {

int64_t Random::Uniform(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Random::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Random::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

int64_t Random::GeometricGap(double mean) {
  if (mean <= 1.0) return 1;
  // Geometric distribution over {1, 2, ...} with the requested mean.
  std::geometric_distribution<int64_t> dist(1.0 / mean);
  return dist(engine_) + 1;
}

int64_t Random::Zipf(int64_t n, double s) {
  if (n <= 1) return 0;
  // Rejection-inversion would be faster; a simple CDF walk is fine for the
  // generator sizes used in benches (n <= ~100k, built once per run).
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(static_cast<size_t>(n));
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[static_cast<size_t>(i)] = sum;
    }
    for (auto& v : zipf_cdf_) v /= sum;
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<int64_t>(it - zipf_cdf_.begin());
}

std::string Random::HexString(int length) {
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    out.push_back(kHex[Uniform(0, 15)]);
  }
  return out;
}

size_t Random::Weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace sase
