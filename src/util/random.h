#ifndef SASE_UTIL_RANDOM_H_
#define SASE_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace sase {

/// Deterministic pseudo-random source used by the RFID simulator, the
/// workload generators and the property tests. All randomness in the repo
/// flows through an explicitly seeded Random so that every experiment is
/// reproducible from its seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0xC0FFEE) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Geometric inter-arrival gap with mean `mean` (>= 1).
  int64_t GeometricGap(double mean);

  /// Zipfian rank in [0, n) with exponent `s`; rank 0 is the hottest.
  /// Used to skew tag popularity in workload generators.
  int64_t Zipf(int64_t n, double s);

  /// Random uppercase hex string of `length` characters (tag EPC codes).
  std::string HexString(int length);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  size_t Weighted(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  // Cached Zipf CDF; rebuilt when (n, s) change.
  int64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace sase

#endif  // SASE_UTIL_RANDOM_H_
