#ifndef SASE_UTIL_STATUS_H_
#define SASE_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace sase {

/// Error categories used across the library. Mirrors the style of embedded
/// storage engines: a small closed set of codes plus a human message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kSemanticError,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kFailedPrecondition,
};

/// Lightweight status object returned by fallible operations.
///
/// A default-constructed Status is OK and carries no allocation. Error
/// statuses carry a code and a message describing what went wrong, suitable
/// for surfacing to the user of the SASE language (e.g. parse errors point
/// at the offending token).
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kSemanticError: return "SemanticError";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    }
    return "Unknown";
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T> is either a value or an error Status. The accessors assert on
/// misuse in debug builds via the underlying std::variant.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace sase

/// Propagates a non-OK Status from the current function, RocksDB-style.
#define SASE_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::sase::Status _st = (expr);               \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result<T> expression; on success assigns the value to `lhs`
/// (which may be a declaration), on error returns the Status. Keeps the
/// line-by-line decoding in the checkpoint/state readers legible.
#define SASE_STATUS_CONCAT_INNER_(x, y) x##y
#define SASE_STATUS_CONCAT_(x, y) SASE_STATUS_CONCAT_INNER_(x, y)
#define SASE_ASSIGN_OR_RETURN(lhs, rexpr)                                \
  auto SASE_STATUS_CONCAT_(_sase_result_, __LINE__) = (rexpr);           \
  if (!SASE_STATUS_CONCAT_(_sase_result_, __LINE__).ok())                \
    return SASE_STATUS_CONCAT_(_sase_result_, __LINE__).status();        \
  lhs = std::move(SASE_STATUS_CONCAT_(_sase_result_, __LINE__)).value()

#endif  // SASE_UTIL_STATUS_H_
