#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace sase {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string EscapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '|': out += "\\p"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c); break;
    }
  }
  return out;
}

Result<uint64_t> ParseU64(std::string_view s) {
  std::string text(s);
  // First char must be a digit: strtoull itself skips leading whitespace
  // and accepts a sign (wrapping negatives), which would defeat the guard.
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return Status::ParseError("bad number: '" + text + "'");
  }
  char* end = nullptr;
  errno = 0;
  uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return Status::ParseError("bad number: '" + text + "'");
  }
  return value;
}

Result<int64_t> ParseI64(std::string_view s) {
  std::string text(s);
  bool digit_start =
      !text.empty() && std::isdigit(static_cast<unsigned char>(text[0]));
  bool negative = text.size() >= 2 && text[0] == '-' &&
                  std::isdigit(static_cast<unsigned char>(text[1]));
  if (!digit_start && !negative) {
    return Status::ParseError("bad number: '" + text + "'");
  }
  char* end = nullptr;
  errno = 0;
  int64_t value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return Status::ParseError("bad number: '" + text + "'");
  }
  return value;
}

Result<std::string> UnescapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 1 >= s.size()) return Status::ParseError("dangling field escape");
    switch (s[++i]) {
      case '\\': out.push_back('\\'); break;
      case 'p': out.push_back('|'); break;
      case 'n': out.push_back('\n'); break;
      default: return Status::ParseError("unknown field escape");
    }
  }
  return out;
}

}  // namespace sase
