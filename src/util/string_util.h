#ifndef SASE_UTIL_STRING_UTIL_H_
#define SASE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sase {

/// Case-insensitive equality for SASE / SQL keywords.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Uppercases ASCII characters; non-ASCII bytes pass through unchanged.
std::string ToUpper(std::string_view s);

/// Lowercases ASCII characters; non-ASCII bytes pass through unchanged.
std::string ToLower(std::string_view s);

/// Splits on a single character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins the elements with `sep` between them.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Escapes a string for embedding as one '|'-delimited field of a
/// line-oriented text format: '\' -> \\, '|' -> \p, newline -> \n. Shared
/// by the database dump (db/dump.cc) and the checkpoint snapshot/manifest
/// files, which use the same field grammar.
std::string EscapeField(std::string_view s);

/// Strict decimal parsers for fields of the same formats: the whole string
/// must be one base-10 number with no sign prefix for U64 (so a negative
/// count cannot wrap around silently) and no trailing bytes. Shared by the
/// checkpoint snapshot/manifest readers and the engine-state codec.
Result<uint64_t> ParseU64(std::string_view s);
Result<int64_t> ParseI64(std::string_view s);

/// Inverse of EscapeField; fails on a dangling or unknown escape.
Result<std::string> UnescapeField(std::string_view s);

}  // namespace sase

#endif  // SASE_UTIL_STRING_UTIL_H_
