#include "util/time_util.h"

#include <cstdlib>
#include <sstream>

#include "util/string_util.h"

namespace sase {
namespace {

// Seconds per supported duration unit; lookup is case-insensitive and
// accepts both singular and plural spellings.
Result<int64_t> UnitSeconds(std::string_view unit) {
  if (EqualsIgnoreCase(unit, "second") || EqualsIgnoreCase(unit, "seconds") ||
      EqualsIgnoreCase(unit, "sec") || EqualsIgnoreCase(unit, "secs")) {
    return int64_t{1};
  }
  if (EqualsIgnoreCase(unit, "minute") || EqualsIgnoreCase(unit, "minutes") ||
      EqualsIgnoreCase(unit, "min") || EqualsIgnoreCase(unit, "mins")) {
    return int64_t{60};
  }
  if (EqualsIgnoreCase(unit, "hour") || EqualsIgnoreCase(unit, "hours")) {
    return int64_t{3600};
  }
  if (EqualsIgnoreCase(unit, "day") || EqualsIgnoreCase(unit, "days")) {
    return int64_t{86400};
  }
  return Status::ParseError("unknown duration unit: '" + std::string(unit) + "'");
}

}  // namespace

Result<Ticks> DurationToTicks(int64_t count, const std::string& unit,
                              const TimeConfig& config) {
  if (count < 0) {
    return Status::InvalidArgument("duration must be non-negative");
  }
  auto secs = UnitSeconds(unit);
  if (!secs.ok()) return secs.status();
  return count * secs.value() * config.ticks_per_second;
}

Result<Ticks> ParseDuration(const std::string& text, const TimeConfig& config) {
  std::string_view body = Trim(text);
  if (body.empty()) return Status::ParseError("empty duration");
  size_t i = 0;
  while (i < body.size() && (std::isdigit(static_cast<unsigned char>(body[i])))) ++i;
  if (i == 0) return Status::ParseError("duration must start with a number: '" + text + "'");
  int64_t count = std::strtoll(std::string(body.substr(0, i)).c_str(), nullptr, 10);
  std::string_view unit = Trim(body.substr(i));
  if (unit.empty()) return count;  // bare tick count
  return DurationToTicks(count, std::string(unit), config);
}

std::string FormatDuration(Ticks ticks, const TimeConfig& config) {
  std::ostringstream out;
  int64_t tps = config.ticks_per_second > 0 ? config.ticks_per_second : 1;
  int64_t seconds = ticks / tps;
  if (seconds >= 86400 && seconds % 86400 == 0) {
    out << seconds / 86400 << " days";
  } else if (seconds >= 3600 && seconds % 3600 == 0) {
    out << seconds / 3600 << " hours";
  } else if (seconds >= 60 && seconds % 60 == 0) {
    out << seconds / 60 << " minutes";
  } else if (ticks % tps == 0) {
    out << seconds << " seconds";
  } else {
    out << ticks << " ticks";
  }
  return out.str();
}

}  // namespace sase
