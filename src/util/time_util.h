#ifndef SASE_UTIL_TIME_UTIL_H_
#define SASE_UTIL_TIME_UTIL_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace sase {

/// SASE timestamps are logical time units ("ticks"). The paper's Time
/// Conversion Layer appends "a timestamp ... based on a logical time unit
/// that is set as a system configuration parameter"; the language's WITHIN
/// clause accepts wall-clock durations (e.g. "12 hours") that are converted
/// to ticks using the configured tick length.
using Timestamp = int64_t;

/// Duration expressed in logical ticks.
using Ticks = int64_t;

/// How many ticks one second corresponds to. The demo setup samples readers
/// once per second, so the default maps 1 tick = 1 second.
struct TimeConfig {
  int64_t ticks_per_second = 1;
};

/// Parses a SASE duration literal: "<number> <unit>" where unit is one of
/// seconds/minutes/hours/days (singular or plural, case-insensitive), or a
/// bare number meaning ticks. Examples: "12 hours", "30 seconds", "500".
Result<Ticks> ParseDuration(const std::string& text, const TimeConfig& config);

/// Converts a count of `unit` into ticks. `unit` as in ParseDuration.
Result<Ticks> DurationToTicks(int64_t count, const std::string& unit,
                              const TimeConfig& config);

/// Renders ticks as a human-readable duration under `config`.
std::string FormatDuration(Ticks ticks, const TimeConfig& config);

}  // namespace sase

#endif  // SASE_UTIL_TIME_UTIL_H_
