#include "util/value_codec.h"

#include <cstdlib>
#include <sstream>

#include "util/string_util.h"

namespace sase {

std::string EncodeValue(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull: return "N";
    case ValueType::kInt: return "I:" + std::to_string(value.AsInt());
    case ValueType::kDouble: {
      std::ostringstream out;
      out.precision(17);
      out << "D:" << value.AsDouble();
      return out.str();
    }
    case ValueType::kString: return "S:" + EscapeField(value.AsString());
    case ValueType::kBool: return value.AsBool() ? "B:1" : "B:0";
  }
  return "N";
}

Result<Value> DecodeValue(const std::string& text) {
  if (text == "N") return Value();
  if (text.size() < 2 || text[1] != ':') {
    return Status::ParseError("bad value encoding: '" + text + "'");
  }
  std::string body = text.substr(2);
  // Strict bodies: a malformed field is a loud ParseError, never a silent
  // zero — these decode checkpointed operator state, not just dump files.
  switch (text[0]) {
    case 'I': {
      auto value = ParseI64(body);
      if (!value.ok()) {
        return Status::ParseError("bad value encoding: '" + text + "'");
      }
      return Value(value.value());
    }
    case 'D': {
      char* end = nullptr;
      double value = std::strtod(body.c_str(), &end);
      if (body.empty() || end != body.c_str() + body.size()) {
        return Status::ParseError("bad value encoding: '" + text + "'");
      }
      return Value(value);
    }
    case 'B':
      if (body != "0" && body != "1") {
        return Status::ParseError("bad value encoding: '" + text + "'");
      }
      return Value(body == "1");
    case 'S': {
      auto unescaped = UnescapeField(body);
      if (!unescaped.ok()) return unescaped.status();
      return Value(std::move(unescaped).value());
    }
    default:
      return Status::ParseError("bad value tag: '" + text + "'");
  }
}

}  // namespace sase
