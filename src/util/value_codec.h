#ifndef SASE_UTIL_VALUE_CODEC_H_
#define SASE_UTIL_VALUE_CODEC_H_

#include <string>

#include "core/value.h"
#include "util/status.h"

namespace sase {

/// One '|'-delimited field of a single Value in the line-oriented text
/// formats shared by the database dump, the checkpoint snapshot and the
/// engine-state sections: N, I:<int>, D:<double> (17 significant digits,
/// lossless roundtrip), S:<escaped>, B:0/1. Strings use util EscapeField.
///
/// Hoisted from db/dump.cc (whose db::EncodeValue/DecodeValue delegate
/// here) so src/engine can serialize operator state without a dependency
/// on the database layer.
std::string EncodeValue(const Value& value);
Result<Value> DecodeValue(const std::string& text);

}  // namespace sase

#endif  // SASE_UTIL_VALUE_CODEC_H_
