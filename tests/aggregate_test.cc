#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "test_util.h"

namespace sase {
namespace {

using testing::StreamBuilder;

class AggregateTest : public ::testing::Test {
 protected:
  /// Runs `query` over `events` and returns the records.
  std::vector<OutputRecord> Run(const std::string& query,
                                const std::vector<EventPtr>& events) {
    QueryEngine engine(&catalog_);
    std::vector<OutputRecord> records;
    auto id = engine.Register(
        query, [&records](const OutputRecord& r) { records.push_back(r); });
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    for (const auto& event : events) engine.OnEvent(event);
    engine.OnFlush();
    return records;
  }

  Catalog catalog_ = Catalog::RetailDemo();
};

TEST_F(AggregateTest, CountStarIsRunning) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A").Add("SHELF_READING", 2, "B")
        .Add("SHELF_READING", 3, "C");
  auto records = Run("EVENT SHELF_READING s RETURN COUNT(*) AS N",
                     stream.events());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].Get("N").AsInt(), 1);
  EXPECT_EQ(records[1].Get("N").AsInt(), 2);
  EXPECT_EQ(records[2].Get("N").AsInt(), 3);
}

TEST_F(AggregateTest, SumOverIntStaysInt) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A", 2).Add("SHELF_READING", 2, "B", 5);
  auto records = Run("EVENT SHELF_READING s RETURN SUM(s.AreaId) AS Total",
                     stream.events());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].Get("Total").type(), ValueType::kInt);
  EXPECT_EQ(records[0].Get("Total").AsInt(), 2);
  EXPECT_EQ(records[1].Get("Total").AsInt(), 7);
}

TEST_F(AggregateTest, AvgIsDouble) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A", 1).Add("SHELF_READING", 2, "B", 2);
  auto records = Run("EVENT SHELF_READING s RETURN AVG(s.AreaId) AS M",
                     stream.events());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].Get("M").AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(records[1].Get("M").AsDouble(), 1.5);
}

TEST_F(AggregateTest, MinAndMaxTrackExtremes) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A", 5)
        .Add("SHELF_READING", 2, "B", 1)
        .Add("SHELF_READING", 3, "C", 9);
  auto records = Run(
      "EVENT SHELF_READING s RETURN MIN(s.AreaId) AS Lo, MAX(s.AreaId) AS Hi",
      stream.events());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].Get("Lo").AsInt(), 1);
  EXPECT_EQ(records[2].Get("Hi").AsInt(), 9);
  EXPECT_EQ(records[0].Get("Lo").AsInt(), 5);
}

TEST_F(AggregateTest, MinMaxOverStrings) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "M").Add("SHELF_READING", 2, "A")
        .Add("SHELF_READING", 3, "Z");
  auto records = Run(
      "EVENT SHELF_READING s RETURN MIN(s.TagId) AS Lo, MAX(s.TagId) AS Hi",
      stream.events());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].Get("Lo").AsString(), "A");
  EXPECT_EQ(records[2].Get("Hi").AsString(), "Z");
}

TEST_F(AggregateTest, AggregateInArithmeticExpression) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A", 4).Add("SHELF_READING", 2, "B", 8);
  auto records = Run(
      "EVENT SHELF_READING s RETURN SUM(s.AreaId) / COUNT(*) AS Mean",
      stream.events());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].Get("Mean").AsInt(), 4);
  EXPECT_EQ(records[1].Get("Mean").AsInt(), 6);
}

TEST_F(AggregateTest, MixedAggregateAndPlainItems) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A").Add("SHELF_READING", 2, "B");
  auto records = Run(
      "EVENT SHELF_READING s RETURN s.TagId AS Tag, COUNT(*) AS N",
      stream.events());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].Get("Tag").AsString(), "A");
  EXPECT_EQ(records[0].Get("N").AsInt(), 1);
  EXPECT_EQ(records[1].Get("Tag").AsString(), "B");
  EXPECT_EQ(records[1].Get("N").AsInt(), 2);
}

TEST_F(AggregateTest, AggregatesOverCompositeMatches) {
  // Aggregates run over the composite-event stream, i.e. matches of the
  // whole SEQ pattern, not raw events.
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A")
        .Add("EXIT_READING", 2, "A")
        .Add("SHELF_READING", 3, "B")
        .Add("EXIT_READING", 4, "B");
  auto records = Run(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId "
      "RETURN COUNT(*) AS Matches",
      stream.events());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].Get("Matches").AsInt(), 2);
}

TEST_F(AggregateTest, CountExpressionSkipsNull) {
  // ProductName is NULL when unset; COUNT(expr) must skip NULLs.
  StreamBuilder with_null(&catalog_);
  // StreamBuilder always sets ProductName, so build events manually.
  EventBuilder b1(catalog_, "SHELF_READING");
  auto e1 = b1.Set("TagId", "A").Build(1, 0).value();  // ProductName NULL
  EventBuilder b2(catalog_, "SHELF_READING");
  auto e2 = b2.Set("TagId", "B").Set("ProductName", "Soap").Build(2, 1).value();
  auto records = Run("EVENT SHELF_READING s RETURN COUNT(s.ProductName) AS N",
                     {e1, e2});
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].Get("N").AsInt(), 0);
  EXPECT_EQ(records[1].Get("N").AsInt(), 1);
}

}  // namespace
}  // namespace sase
