#include "query/analyzer.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace sase {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzedQuery MustAnalyze(const std::string& text) {
    auto parsed = Parser::Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    Analyzer analyzer(&catalog_, time_config_);
    auto analyzed = analyzer.Analyze(std::move(parsed).value());
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    return std::move(analyzed).value();
  }

  Status AnalyzeError(const std::string& text) {
    auto parsed = Parser::Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    Analyzer analyzer(&catalog_, time_config_);
    auto analyzed = analyzer.Analyze(std::move(parsed).value());
    EXPECT_FALSE(analyzed.ok()) << "expected analysis failure for: " << text;
    return analyzed.status();
  }

  Catalog catalog_ = Catalog::RetailDemo();
  TimeConfig time_config_;
};

TEST_F(AnalyzerTest, ResolvesTypesAndSlots) {
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId");
  ASSERT_EQ(q.vars.size(), 2u);
  EXPECT_EQ(q.vars[0].name, "x");
  EXPECT_EQ(q.vars[1].name, "z");
  EXPECT_FALSE(q.vars[0].negated);
  EXPECT_EQ(q.positive_slots, (std::vector<int>{0, 1}));
  EXPECT_EQ(q.vars[0].type_id, catalog_.FindType("SHELF_READING").value());
}

TEST_F(AnalyzerTest, WindowConvertedToTicks) {
  AnalyzedQuery q = MustAnalyze("EVENT SHELF_READING x WITHIN 12 hours");
  EXPECT_EQ(q.window_ticks, 12 * 3600);
  AnalyzedQuery bare = MustAnalyze("EVENT SHELF_READING x WITHIN 500");
  EXPECT_EQ(bare.window_ticks, 500);
  AnalyzedQuery none = MustAnalyze("EVENT SHELF_READING x");
  EXPECT_EQ(none.window_ticks, -1);
}

TEST_F(AnalyzerTest, EdgeFilterClassification) {
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.AreaId = 1 AND "
      "z.AreaId = 3");
  ASSERT_EQ(q.edge_filters.size(), 2u);
  EXPECT_EQ(q.edge_filters[0].size(), 1u);
  EXPECT_EQ(q.edge_filters[1].size(), 1u);
  EXPECT_TRUE(q.residual_predicates.empty());
  EXPECT_FALSE(q.partitioned());
}

TEST_F(AnalyzerTest, PartitionDetectionAcrossAllPositives) {
  // Q1-style equivalence chain: x.TagId = y.TagId AND x.TagId = z.TagId
  // (y negated). All three variables join the class; the partition covers
  // the positives and keys the negation.
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100");
  EXPECT_TRUE(q.partitioned());
  ASSERT_EQ(q.partition_attrs.size(), 2u);  // two positives
  ASSERT_EQ(q.negations.size(), 1u);
  EXPECT_NE(q.negations[0].partition_attr, kInvalidAttr);
  EXPECT_EQ(q.negations[0].subsumed_cross.size(), 1u);
  EXPECT_TRUE(q.negations[0].cross_preds.empty());
  EXPECT_TRUE(q.residual_predicates.empty());
  EXPECT_EQ(q.partition_subsumed.size(), 1u);  // x.TagId = z.TagId
}

TEST_F(AnalyzerTest, NoPartitionWhenChainIncomplete) {
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(SHELF_READING x, COUNTER_READING y, EXIT_READING z) "
      "WHERE x.TagId = y.TagId");
  EXPECT_FALSE(q.partitioned());
  EXPECT_EQ(q.residual_predicates.size(), 1u);
}

TEST_F(AnalyzerTest, InequalityJoinStaysResidual) {
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(SHELF_READING x, SHELF_READING y) "
      "WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId WITHIN 10");
  EXPECT_TRUE(q.partitioned());  // TagId chain covers both
  EXPECT_EQ(q.residual_predicates.size(), 1u);  // the != predicate
  EXPECT_EQ(q.residual_predicates[0]->ToString(), "(x.AreaId != y.AreaId)");
}

TEST_F(AnalyzerTest, TimestampEqualityNotAPartitionKey) {
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(SHELF_READING x, SHELF_READING y) "
      "WHERE x.Timestamp = y.Timestamp");
  EXPECT_FALSE(q.partitioned());
}

TEST_F(AnalyzerTest, CoveringAttrsRecordAllComponentClasses) {
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId AND x.AreaId = z.AreaId WITHIN 10");
  EXPECT_EQ(q.covering_attrs, (std::vector<std::string>{"TagId", "AreaId"}));
}

TEST_F(AnalyzerTest, CoveringAttrsRejectDifferentlyNamedMembers) {
  // {x.ContainerId, y.TagId} covers both components, but routing resolves
  // a covering attribute by name per event type: SHELF_READING has no
  // ContainerId, so y events could not follow the class. The class must
  // not be published as a covering attribute.
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(LOAD_READING x, SHELF_READING y) "
      "WHERE x.ContainerId = y.TagId WITHIN 10");
  EXPECT_TRUE(q.covering_attrs.empty());
}

TEST_F(AnalyzerTest, CoveringAttrsRejectSameNamedUnrelatedAttribute) {
  // {x.ProductName, y.TagId}: SHELF_READING *does* have a ProductName, but
  // it is not the class member for y — name-based routing would key y
  // events off an unrelated attribute, separating events that must
  // co-locate for a match.
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(LOAD_READING x, SHELF_READING y) "
      "WHERE x.ProductName = y.TagId WITHIN 10");
  EXPECT_TRUE(q.covering_attrs.empty());
}

TEST_F(AnalyzerTest, CoveringAttrsRequireNegationComponentsToResolve) {
  // The positives agree on TagId, but the negated component joins the
  // class through a differently-named attribute — suppression would need
  // the negation's events on the same shard, so the class is excluded.
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(SHELF_READING x, !(LOAD_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.ContainerId AND x.TagId = z.TagId WITHIN 10");
  EXPECT_TRUE(q.covering_attrs.empty());
}

TEST_F(AnalyzerTest, NegationFiltersAndCrossPredicates) {
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE y.AreaId = 2 AND y.ProductName = x.ProductName WITHIN 50");
  ASSERT_EQ(q.negations.size(), 1u);
  const NegationSpec& spec = q.negations[0];
  EXPECT_EQ(spec.filters.size(), 1u);      // y.AreaId = 2
  // y.ProductName = x.ProductName is an equality, but the class does not
  // cover all positives (z missing), so it stays a cross predicate.
  EXPECT_EQ(spec.cross_preds.size(), 1u);
  EXPECT_EQ(spec.prev_positive, 0);
  EXPECT_EQ(spec.next_positive, 1);
}

TEST_F(AnalyzerTest, HeadAndTailNegationPositions) {
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(!(COUNTER_READING a), SHELF_READING x, !(EXIT_READING b)) "
      "WITHIN 100");
  ASSERT_EQ(q.negations.size(), 2u);
  EXPECT_EQ(q.negations[0].prev_positive, -1);  // head
  EXPECT_EQ(q.negations[0].next_positive, 0);
  EXPECT_EQ(q.negations[1].prev_positive, 0);
  EXPECT_EQ(q.negations[1].next_positive, -1);  // tail
}

TEST_F(AnalyzerTest, ClassificationJournal) {
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId AND x.AreaId = 1 AND x.Timestamp < z.Timestamp");
  ASSERT_EQ(q.classification.size(), 3u);
  int partition = 0, edge = 0, residual = 0;
  for (const auto& [text, cls] : q.classification) {
    if (cls == PredicateClass::kPartition) ++partition;
    if (cls == PredicateClass::kEdgeFilter) ++edge;
    if (cls == PredicateClass::kResidual) ++residual;
  }
  EXPECT_EQ(partition, 1);
  EXPECT_EQ(edge, 1);
  EXPECT_EQ(residual, 1);
}

TEST_F(AnalyzerTest, ExplainMentionsKeyFacts) {
  AnalyzedQuery q = MustAnalyze(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId "
      "WITHIN 60");
  std::string explain = q.Explain();
  EXPECT_NE(explain.find("partitioned: yes"), std::string::npos);
  EXPECT_NE(explain.find("window: 60 ticks"), std::string::npos);
}

TEST_F(AnalyzerTest, ErrorUnknownEventType) {
  Status status = AnalyzeError("EVENT NO_SUCH_TYPE x");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(AnalyzerTest, ErrorUnknownVariable) {
  Status status =
      AnalyzeError("EVENT SHELF_READING x WHERE q.TagId = 'T'");
  EXPECT_EQ(status.code(), StatusCode::kSemanticError);
}

TEST_F(AnalyzerTest, ErrorUnknownAttribute) {
  Status status = AnalyzeError("EVENT SHELF_READING x WHERE x.Bogus = 1");
  EXPECT_EQ(status.code(), StatusCode::kSemanticError);
}

TEST_F(AnalyzerTest, ErrorTypeMismatchComparison) {
  Status status =
      AnalyzeError("EVENT SHELF_READING x WHERE x.TagId = 5");
  EXPECT_EQ(status.code(), StatusCode::kSemanticError);
}

TEST_F(AnalyzerTest, ErrorNonBooleanWhere) {
  Status status = AnalyzeError("EVENT SHELF_READING x WHERE x.AreaId + 1");
  EXPECT_EQ(status.code(), StatusCode::kSemanticError);
}

TEST_F(AnalyzerTest, ErrorAggregateInWhere) {
  Status status =
      AnalyzeError("EVENT SHELF_READING x WHERE COUNT(*) > 3");
  EXPECT_NE(status.message().find("aggregate"), std::string::npos);
}

TEST_F(AnalyzerTest, ErrorReturnReferencesNegatedVariable) {
  Status status = AnalyzeError(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WITHIN 10 RETURN y.TagId");
  EXPECT_NE(status.message().find("negated"), std::string::npos);
}

TEST_F(AnalyzerTest, ErrorPredicateOverTwoNegatedVariables) {
  Status status = AnalyzeError(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), !(EXIT_READING w), "
      "SHELF_READING z) WHERE y.TagId = w.TagId WITHIN 10");
  EXPECT_NE(status.message().find("negated"), std::string::npos);
}

TEST_F(AnalyzerTest, ErrorHeadTailNegationWithoutWindow) {
  Status status = AnalyzeError(
      "EVENT SEQ(!(COUNTER_READING y), SHELF_READING x)");
  EXPECT_NE(status.message().find("WITHIN"), std::string::npos);
  Status tail = AnalyzeError(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y))");
  EXPECT_NE(tail.message().find("WITHIN"), std::string::npos);
}

TEST_F(AnalyzerTest, ErrorNonPositiveWindow) {
  Status status = AnalyzeError("EVENT SHELF_READING x WITHIN 0");
  EXPECT_NE(status.message().find("positive"), std::string::npos);
}

}  // namespace
}  // namespace sase
